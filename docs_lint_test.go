// Documentation lint, run as part of CI's docs-lint step:
//
//   - every relative link in the repo's Markdown files must resolve to a
//     file or directory that exists;
//   - every exported identifier in the serving-stack packages
//     (internal/serve, internal/solver, internal/speculate) must carry a
//     doc comment, so `go doc` is complete where operators look first.
package respect_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRE matches Markdown inline links and captures the destination.
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks checks in-repo relative links in the authored
// documentation (README.md, docs/, ROADMAP.md, CHANGES.md) resolve.
// PAPER.md / PAPERS.md / SNIPPETS.md are scraped research artifacts and
// are out of scope.
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md", "CHANGES.md"}
	err := filepath.WalkDir("docs", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("only %v found; docs/ is missing", files)
	}

	checked := 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(raw), -1) {
			dest := m[1]
			if strings.Contains(dest, "://") || strings.HasPrefix(dest, "mailto:") || strings.HasPrefix(dest, "#") {
				continue // external links and same-file anchors are out of scope
			}
			if i := strings.IndexByte(dest, '#'); i >= 0 {
				dest = dest[:i]
			}
			if dest == "" {
				continue
			}
			target := filepath.Join(filepath.Dir(file), dest)
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", file, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked; lint is miswired")
	}
	t.Logf("checked %d relative links across %d Markdown files", checked, len(files))
}

// docCheckedPackages are the serving-stack packages held to full go-doc
// coverage of their exported identifiers.
var docCheckedPackages = []string{
	"internal/analysis",
	"internal/cluster",
	"internal/online",
	"internal/rt",
	"internal/serve",
	"internal/solver",
	"internal/speculate",
}

// TestDocsExportedDocComments enforces doc comments on every exported
// top-level identifier (functions, methods on exported receivers, types,
// consts, vars) in the doc-checked packages.
func TestDocsExportedDocComments(t *testing.T) {
	for _, dir := range docCheckedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDeclDocs(t, fset, decl)
				}
			}
		}
	}
}

// checkDeclDocs reports exported declarations without doc comments.
func checkDeclDocs(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s lacks a doc comment", fset.Position(d.Pos()), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported type %s lacks a doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				// A documented const/var block covers its members.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						t.Errorf("%s: exported %s lacks a doc comment", fset.Position(s.Pos()), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether fn is a plain function or a method
// whose receiver type is itself exported — methods on unexported types
// are not part of the package's go doc surface.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	typ := fn.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
