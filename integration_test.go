package respect

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"respect/internal/deploy"
	"respect/internal/models"
	"respect/internal/tpu"
)

// TestFullDeploymentFlow exercises the complete paper pipeline end to end:
// train → schedule a real model → partition into per-stage sub-models →
// serialize to disk → reload → verify integrity → simulate the pipeline.
func TestFullDeploymentFlow(t *testing.T) {
	agent, err := Train(TrainConfig{Hidden: 16, NumNodes: 12, Degrees: []int{2},
		Stages: 4, Iterations: 10, BatchSize: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	g := models.MustLoad("Xception")
	const stages = 4
	s, err := agent.Schedule(g, stages)
	if err != nil {
		t.Fatal(err)
	}

	// Partition and serialize one image per stage.
	subs, err := deploy.Partition(g, s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for k := range subs {
		p := filepath.Join(dir, fmt.Sprintf("stage%d.rspt", k))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := subs[k].Write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	// Reload every image and cross-check against the schedule.
	var totalParams int64
	for k, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := deploy.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("stage %d: %v", k, err)
		}
		if sm.Stage != k || sm.NumStages != stages || sm.ModelName != g.Name {
			t.Fatalf("stage %d header wrong: %+v", k, sm)
		}
		for _, op := range sm.Ops {
			if s.Stage[op.Node] != k {
				t.Fatalf("op %d serialized into wrong stage", op.Node)
			}
		}
		totalParams += sm.ParamBytes()
	}
	if totalParams != g.TotalParamBytes() {
		t.Fatalf("params lost in serialization: %d vs %d", totalParams, g.TotalParamBytes())
	}

	// The deployed schedule must run on the simulator.
	rep, err := tpu.Simulate(g, s, tpu.Coral())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput() <= 0 || rep.EnergyPerInference <= 0 {
		t.Fatalf("implausible simulation: %+v", rep)
	}
}

// TestSchedulerQualityOrdering checks the expected dominance chain on a
// real model: exact <= DP heuristic <= greedy compiler (peak memory), with
// RESPECT never below the proven optimum.
func TestSchedulerQualityOrdering(t *testing.T) {
	g := models.MustLoad("ResNet101")
	for _, ns := range []int{4, 5, 6} {
		_, opt, proven := ScheduleExact(g, ns, 0)
		if !proven {
			t.Fatalf("exact truncated at %d stages", ns)
		}
		comp := ScheduleCompiler(g, ns).Evaluate(g)
		if comp.PeakParamBytes < opt.PeakParamBytes {
			t.Fatalf("%d stages: compiler %v beats optimum %v", ns, comp, opt)
		}
	}
}
