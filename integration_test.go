package respect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"respect/internal/cluster"
	"respect/internal/deploy"
	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/serve"
	"respect/internal/tpu"
)

// TestFullDeploymentFlow exercises the complete paper pipeline end to end:
// train → schedule a real model → partition into per-stage sub-models →
// serialize to disk → reload → verify integrity → simulate the pipeline.
func TestFullDeploymentFlow(t *testing.T) {
	agent, err := Train(TrainConfig{Hidden: 16, NumNodes: 12, Degrees: []int{2},
		Stages: 4, Iterations: 10, BatchSize: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	g := models.MustLoad("Xception")
	const stages = 4
	s, err := agent.Schedule(g, stages)
	if err != nil {
		t.Fatal(err)
	}

	// Partition and serialize one image per stage.
	subs, err := deploy.Partition(g, s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for k := range subs {
		p := filepath.Join(dir, fmt.Sprintf("stage%d.rspt", k))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := subs[k].Write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	// Reload every image and cross-check against the schedule.
	var totalParams int64
	for k, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := deploy.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("stage %d: %v", k, err)
		}
		if sm.Stage != k || sm.NumStages != stages || sm.ModelName != g.Name {
			t.Fatalf("stage %d header wrong: %+v", k, sm)
		}
		for _, op := range sm.Ops {
			if s.Stage[op.Node] != k {
				t.Fatalf("op %d serialized into wrong stage", op.Node)
			}
		}
		totalParams += sm.ParamBytes()
	}
	if totalParams != g.TotalParamBytes() {
		t.Fatalf("params lost in serialization: %d vs %d", totalParams, g.TotalParamBytes())
	}

	// The deployed schedule must run on the simulator.
	rep, err := tpu.Simulate(g, s, tpu.Coral())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput() <= 0 || rep.EnergyPerInference <= 0 {
		t.Fatalf("implausible simulation: %+v", rep)
	}
}

// TestSchedulerQualityOrdering checks the expected dominance chain on a
// real model: exact <= DP heuristic <= greedy compiler (peak memory), with
// RESPECT never below the proven optimum.
func TestSchedulerQualityOrdering(t *testing.T) {
	g := models.MustLoad("ResNet101")
	for _, ns := range []int{4, 5, 6} {
		_, opt, proven := ScheduleExact(g, ns, 0)
		if !proven {
			t.Fatalf("exact truncated at %d stages", ns)
		}
		comp := ScheduleCompiler(g, ns).Evaluate(g)
		if comp.PeakParamBytes < opt.PeakParamBytes {
			t.Fatalf("%d stages: compiler %v beats optimum %v", ns, comp, opt)
		}
	}
}

// ---------------------------------------------------------------------------
// Fleet-scale sharded serving: chaos/partition end-to-end suite.
//
// The tests below boot 3-5 in-process replicas over httptest with a static
// peer list and drive membership probes, popularity gossip and speculation
// passes explicitly (no background loops), so every assertion is
// deterministic under -race. A kill is the replica's HTTP server closing
// (peers see connection refusals); a partition is a cut link in a shared
// reachability matrix behind each replica's HTTP transport.
// ---------------------------------------------------------------------------

// fleetPartition is the shared reachability matrix between fleet replicas.
type fleetPartition struct {
	mu      sync.Mutex
	blocked map[[2]string]bool
}

func newFleetPartition() *fleetPartition {
	return &fleetPartition{blocked: make(map[[2]string]bool)}
}

func (p *fleetPartition) set(from, to string, blocked bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked[[2]string{from, to}] = blocked
}

// isolate cuts (or heals) both directions between url and every other
// fleet member.
func (p *fleetPartition) isolate(url string, members []string, blocked bool) {
	for _, m := range members {
		if m == url {
			continue
		}
		p.set(url, m, blocked)
		p.set(m, url, blocked)
	}
}

func (p *fleetPartition) isBlocked(from, to string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[[2]string{from, to}]
}

// partitionTransport is one replica's outbound HTTP transport; requests
// crossing a cut link fail with a transport error, like a real partition.
type partitionTransport struct {
	from string
	part *fleetPartition
}

func (tr *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := req.URL.Scheme + "://" + req.URL.Host
	if tr.part.isBlocked(tr.from, to) {
		return nil, fmt.Errorf("partition: %s cannot reach %s", tr.from, to)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// fleetNode is one in-process replica: a serve.Server on a real listener.
type fleetNode struct {
	url string
	srv *serve.Server
	ts  *httptest.Server
}

// kill stops the replica's HTTP server; peers see connection refusals.
func (n *fleetNode) kill() { n.ts.Close() }

// newFleet boots n replicas that know each other via a static peer list.
func newFleet(t *testing.T, n int, mutate func(i int, cfg *serve.Config)) ([]*fleetNode, *fleetPartition) {
	t.Helper()
	// Listeners are bound before any server is constructed so every
	// replica's config can carry the full peer URL list.
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	part := newFleetPartition()
	nodes := make([]*fleetNode, n)
	for i := range lns {
		cfg := serve.Config{
			WarmModels: []string{},
			Cluster: serve.ClusterConfig{
				Advertise: urls[i],
				Peers:     append([]string(nil), urls...),
				Client: &http.Client{
					Transport: &partitionTransport{from: urls[i], part: part},
					Timeout:   5 * time.Second,
				},
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: srv}}
		ts.Start()
		t.Cleanup(ts.Close) // idempotent; killed nodes are already closed
		nodes[i] = &fleetNode{url: urls[i], srv: srv, ts: ts}
	}
	return nodes, part
}

// fleetGraph builds a small chain graph whose parameters vary with seed,
// so every seed yields a distinct fingerprint, plus its wire form.
func fleetGraph(t *testing.T, seed int) (*graph.Graph, []byte) {
	t.Helper()
	g := graph.New(fmt.Sprintf("fleet-%d", seed))
	for i := 0; i < 6; i++ {
		g.AddNode(graph.Node{
			Name:       fmt.Sprintf("n%d", i),
			ParamBytes: int64(1000 + 37*seed + i),
			OutBytes:   int64(8 + i),
		})
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

// fleetSchedule POSTs one inline-graph schedule request to a replica.
func fleetSchedule(t *testing.T, base string, raw []byte) (*http.Response, serve.ScheduleResponse) {
	t.Helper()
	body, err := json.Marshal(serve.ScheduleRequest{Graph: raw, Stages: 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out serve.ScheduleResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
	}
	return resp, out
}

// TestFleetShardingAndForwarding checks the steady-state fleet contract on
// three replicas: every replica agrees on each fingerprint's home shard,
// requests entering through a non-owner are relayed to the owner (and say
// so), and the shard concentration pays off — a repeat request through a
// different non-owner hits the owner's cache.
func TestFleetShardingAndForwarding(t *testing.T) {
	nodes, _ := newFleet(t, 3, nil)

	const trace = 12
	for seed := 0; seed < trace; seed++ {
		g, raw := fleetGraph(t, seed)
		fp := g.Fingerprint()
		owner, _ := nodes[0].srv.Cluster().Owner(fp)
		for _, n := range nodes[1:] {
			if o, _ := n.srv.Cluster().Owner(fp); o != owner {
				t.Fatalf("owner disagreement for %016x: %q vs %q", fp, owner, o)
			}
		}
		var sender *fleetNode
		for _, n := range nodes {
			if n.url != owner {
				sender = n
				break
			}
		}
		resp, out := fleetSchedule(t, sender.url, raw)
		if resp.StatusCode != http.StatusOK || len(out.Stage) == 0 {
			t.Fatalf("seed %d: status %d with %d-stage schedule", seed, resp.StatusCode, len(out.Stage))
		}
		if got := resp.Header.Get(serve.ForwardedToHeader); got != owner {
			t.Fatalf("seed %d: forwarded to %q, want owner %q", seed, got, owner)
		}
	}
	var relayed uint64
	for _, n := range nodes {
		relayed += n.srv.ClusterStats().ForwardsRelayed
	}
	if relayed != trace {
		t.Fatalf("relay counters: %d, want %d (one per request)", relayed, trace)
	}

	// Re-request seed 0 through every non-owner: the owner solved it once,
	// so both relays must come back as cache hits.
	g, raw := fleetGraph(t, 0)
	owner, _ := nodes[0].srv.Cluster().Owner(g.Fingerprint())
	for _, n := range nodes {
		if n.url == owner {
			continue
		}
		resp, out := fleetSchedule(t, n.url, raw)
		if resp.StatusCode != http.StatusOK || !out.CacheHit {
			t.Fatalf("repeat via %s: status %d cache_hit=%v, want a relayed owner-cache hit",
				n.url, resp.StatusCode, out.CacheHit)
		}
	}
}

// TestFleetChaosKillZeroLoss kills a replica mid-replay on a four-node
// fleet and asserts the three chaos invariants: (a) zero lost admitted
// requests — every request returns a valid schedule throughout, forwards
// to the dead owner falling back to local solves; (b) membership
// converges — after the probe threshold the victim is dead on every
// survivor and owns nothing; (c) stale owners stop being consulted — the
// post-convergence replay adds no forward errors.
func TestFleetChaosKillZeroLoss(t *testing.T) {
	nodes, _ := newFleet(t, 4, nil)
	ctx := context.Background()

	type traceReq struct {
		g   *graph.Graph
		raw []byte
	}
	var reqs []traceReq
	for seed := 0; seed < 36; seed++ {
		g, raw := fleetGraph(t, seed)
		reqs = append(reqs, traceReq{g, raw})
	}
	victim, survivors := nodes[3], nodes[:3]

	// Phase 1: healthy replay across the whole fleet.
	for k, rq := range reqs[:12] {
		resp, out := fleetSchedule(t, nodes[k%len(nodes)].url, rq.raw)
		if resp.StatusCode != http.StatusOK || len(out.Stage) == 0 {
			t.Fatalf("pre-kill request %d lost: status %d", k, resp.StatusCode)
		}
	}

	// Phase 2: kill mid-replay; survivors must lose nothing.
	victim.kill()
	for k, rq := range reqs[12:24] {
		resp, out := fleetSchedule(t, survivors[k%len(survivors)].url, rq.raw)
		if resp.StatusCode != http.StatusOK || len(out.Stage) == 0 {
			t.Fatalf("post-kill request %d lost: status %d", k, resp.StatusCode)
		}
	}

	// Phase 3: convergence. Three failed probe rounds (the DeadAfter
	// default) take the victim out of every survivor's ring.
	for round := 0; round < 3; round++ {
		for _, n := range survivors {
			n.srv.Cluster().ProbeOnce(ctx)
		}
	}
	for _, n := range survivors {
		if st, ok := n.srv.Cluster().PeerState(victim.url); !ok || st != cluster.StateDead {
			t.Fatalf("%s sees victim as %v, want dead", n.url, st)
		}
		if n.srv.Cluster().Rebalances() == 0 {
			t.Fatalf("%s never rebalanced after the kill", n.url)
		}
		for _, rq := range reqs {
			if owner, _ := n.srv.Cluster().Owner(rq.g.Fingerprint()); owner == victim.url {
				t.Fatalf("converged ring on %s still routes %s to the dead replica", n.url, rq.g.Name)
			}
		}
	}

	// Phase 4: the dead owner is never consulted again.
	before := make([]uint64, len(survivors))
	for i, n := range survivors {
		before[i] = n.srv.ClusterStats().ForwardErrors
	}
	for k, rq := range reqs[24:] {
		resp, out := fleetSchedule(t, survivors[k%len(survivors)].url, rq.raw)
		if resp.StatusCode != http.StatusOK || len(out.Stage) == 0 {
			t.Fatalf("post-convergence request %d lost: status %d", k, resp.StatusCode)
		}
	}
	for i, n := range survivors {
		if got := n.srv.ClusterStats().ForwardErrors; got != before[i] {
			t.Fatalf("%s consulted the dead owner after convergence: forward errors %d -> %d",
				n.url, before[i], got)
		}
	}
}

// TestFleetPartitionSuspectFallback partitions an owner away on a
// three-node fleet: the first forward fails over to a local solve, one
// failed probe demotes the owner to suspect (kept in the ring, no longer
// consulted), and healing the partition restores forwarding.
func TestFleetPartitionSuspectFallback(t *testing.T) {
	nodes, part := newFleet(t, 3, nil)
	ctx := context.Background()
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	owner := nodes[2]

	var g *graph.Graph
	var raw []byte
	for seed := 0; g == nil; seed++ {
		cand, candRaw := fleetGraph(t, seed)
		if o, _ := nodes[0].srv.Cluster().Owner(cand.Fingerprint()); o == owner.url {
			g, raw = cand, candRaw
		}
	}
	sender := nodes[0]

	// Cut the owner off: the forward fails, the local fallback serves.
	part.isolate(owner.url, urls, true)
	resp, out := fleetSchedule(t, sender.url, raw)
	if resp.StatusCode != http.StatusOK || len(out.Stage) == 0 {
		t.Fatalf("partitioned request lost: status %d", resp.StatusCode)
	}
	if resp.Header.Get(serve.ForwardedToHeader) != "" {
		t.Fatal("partitioned owner cannot have answered")
	}
	if sender.srv.ClusterStats().ForwardErrors == 0 {
		t.Fatal("failed forward not recorded")
	}

	// One failed probe: suspect. Still the ring owner, no longer consulted.
	sender.srv.Cluster().ProbeOnce(ctx)
	if st, _ := sender.srv.Cluster().PeerState(owner.url); st != cluster.StateSuspect {
		t.Fatalf("owner state %v after one failed probe, want suspect", st)
	}
	if o, _ := sender.srv.Cluster().Owner(g.Fingerprint()); o != owner.url {
		t.Fatal("suspect member must keep ring ownership (no rebalance churn)")
	}
	errsBefore := sender.srv.ClusterStats().ForwardErrors
	resp, out = fleetSchedule(t, sender.url, raw)
	if resp.StatusCode != http.StatusOK || len(out.Stage) == 0 {
		t.Fatalf("suspect-owner request lost: status %d", resp.StatusCode)
	}
	cs := sender.srv.ClusterStats()
	if cs.ForwardErrors != errsBefore {
		t.Fatal("suspect owner was still consulted")
	}
	if cs.ForwardsLocalUnhealthy == 0 {
		t.Fatal("local-unhealthy fallback not recorded")
	}

	// Heal: one successful probe restores alive and forwarding resumes.
	part.isolate(owner.url, urls, false)
	sender.srv.Cluster().ProbeOnce(ctx)
	if st, _ := sender.srv.Cluster().PeerState(owner.url); st != cluster.StateAlive {
		t.Fatalf("owner state %v after heal, want alive", st)
	}
	resp, _ = fleetSchedule(t, sender.url, raw)
	if got := resp.Header.Get(serve.ForwardedToHeader); got != owner.url {
		t.Fatalf("forwarding did not resume after heal (forwarded-to %q)", got)
	}
}

// TestFleetGossipSpeedsWarmRecovery runs the same kill scenario twice —
// popularity gossip on, then off — and compares first-pass cache hits on
// the reassigned hot set. With gossip the survivors pre-warmed the
// victim's hot instances, so recovery starts from hits; without it the
// first pass is all misses.
func TestFleetGossipSpeedsWarmRecovery(t *testing.T) {
	firstPassHits := func(gossip bool) (hits, total int) {
		nodes, _ := newFleet(t, 3, func(i int, cfg *serve.Config) {
			cfg.Speculation = serve.SpeculationConfig{Enabled: true, Budget: 16, TopK: 16}
			cfg.Cluster.DisableGossip = !gossip
		})
		ctx := context.Background()
		victim, survivors := nodes[2], nodes[:2]

		// The hot set: graphs whose home shard is the victim.
		type hot struct {
			g   *graph.Graph
			raw []byte
		}
		var hotset []hot
		for seed := 100; len(hotset) < 4; seed++ {
			g, raw := fleetGraph(t, seed)
			if o, _ := nodes[0].srv.Cluster().Owner(g.Fingerprint()); o == victim.url {
				hotset = append(hotset, hot{g, raw})
			}
		}
		// Hot traffic lands on the owner (as the proxy layer routes it).
		for _, h := range hotset {
			for i := 0; i < 3; i++ {
				resp, _ := fleetSchedule(t, victim.url, h.raw)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("hot traffic failed: status %d", resp.StatusCode)
				}
			}
		}
		// One gossip round, then a speculation pass on the survivors.
		victim.srv.Cluster().GossipOnce(ctx)
		for _, n := range survivors {
			n.srv.SpeculateOnce(ctx)
		}

		// Kill the victim and converge membership on the survivors.
		victim.kill()
		for round := 0; round < 3; round++ {
			for _, n := range survivors {
				n.srv.Cluster().ProbeOnce(ctx)
			}
		}

		// First post-kill pass over the hot set via the new owners.
		for _, h := range hotset {
			owner, _ := survivors[0].srv.Cluster().Owner(h.g.Fingerprint())
			var target *fleetNode
			for _, n := range survivors {
				if n.url == owner {
					target = n
				}
			}
			if target == nil {
				t.Fatalf("hot graph %s has no surviving owner (owner %q)", h.g.Name, owner)
			}
			resp, out := fleetSchedule(t, target.url, h.raw)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-kill hot request failed: status %d", resp.StatusCode)
			}
			if out.CacheHit {
				hits++
			}
		}
		return hits, len(hotset)
	}

	withGossip, total := firstPassHits(true)
	withoutGossip, _ := firstPassHits(false)
	if withoutGossip != 0 {
		t.Fatalf("without gossip the survivors cannot have pre-warmed the hot set: %d/%d hits",
			withoutGossip, total)
	}
	if withGossip <= withoutGossip {
		t.Fatalf("gossip must speed warm recovery: %d/%d first-pass hits with gossip, %d/%d without",
			withGossip, total, withoutGossip, total)
	}
}
