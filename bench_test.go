// Benchmarks regenerating the paper's tables and figures. One target per
// artifact (see DESIGN.md's per-experiment index):
//
//	Table I  -> BenchmarkTableIGraphConstruction
//	Figure 3 -> BenchmarkFig3SolveRL / SolveCompiler / SolveExactBB /
//	            SolveExactILP (training-scale instance)
//	Figure 4 -> BenchmarkFig4Inference
//	Figure 5 -> BenchmarkFig5GapToOptimal
//	§III-B   -> BenchmarkTrainingStep (+ BenchmarkAblation*)
//	Figure 2 -> BenchmarkPipelineSimulator
//
// The full numeric reproduction (all models × stage counts with reporting)
// lives in cmd/respect-bench; these benchmarks time one representative
// configuration each so `go test -bench=.` exercises every experimental
// code path.
package respect

import (
	"sync"
	"testing"
	"time"

	"respect/internal/compiler"
	"respect/internal/embed"
	"respect/internal/exact"
	"respect/internal/ilp"
	"respect/internal/models"
	"respect/internal/perf"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/sched"
	"respect/internal/synth"
	"respect/internal/tpu"
)

var (
	benchOnce  sync.Once
	benchAgent *ptrnet.Model
)

// benchModel lazily trains a small agent shared across benchmarks.
func benchModel(b *testing.B) *ptrnet.Model {
	b.Helper()
	benchOnce.Do(func() {
		tr, err := rl.NewTrainer(rl.Config{
			Hidden: 32, NumNodes: 20, Degrees: []int{2, 3}, Stages: 4,
			Iterations: 40, BatchSize: 8, LR: 2e-3, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		if err := tr.Train(nil); err != nil {
			panic(err)
		}
		benchAgent = tr.Model
	})
	return benchAgent
}

func BenchmarkTableIGraphConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range models.TableINames() {
			g := models.MustLoad(name)
			if g.Stats() != models.TableI[name] {
				b.Fatalf("%s: stats drifted", name)
			}
		}
	}
}

func BenchmarkFig3SolveRL(b *testing.B) {
	m := benchModel(b)
	for _, name := range []string{"Xception", "ResNet152"} {
		g := models.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rl.Schedule(m, embed.Default(), g, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig3SolveCompiler(b *testing.B) {
	for _, name := range []string{"Xception", "ResNet152"} {
		g := models.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(g, 6, compiler.Options{Effort: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig3SolveExactBB(b *testing.B) {
	for _, name := range []string{"Xception", "ResNet152"} {
		g := models.MustLoad(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := exact.Solve(g, 6, exact.Options{
					TieBreakCross: true, Timeout: 60 * time.Second, MaxStates: 200_000_000,
				})
				if !res.Optimal {
					b.Fatal("exact truncated")
				}
			}
		})
	}
}

// BenchmarkFig3SolveExactILP times the generic MILP (the CPLEX stand-in)
// on a paper-training-scale 30-node instance with a node budget; at full
// model scale the MILP needs minutes per solve (see EXPERIMENTS.md).
func BenchmarkFig3SolveExactILP(b *testing.B) {
	s, err := synth.NewSampler(synth.DefaultConfig(3), 1)
	if err != nil {
		b.Fatal(err)
	}
	g := s.Sample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SolveILP(g, 4, ilp.Options{MaxNodes: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Inference(b *testing.B) {
	m := benchModel(b)
	g := models.MustLoad("ResNet152")
	hw := tpu.Coral()
	schedules := map[string]sched.Schedule{}
	schedules["compiler"] = ScheduleCompiler(g, 6)
	ex, _, _ := ScheduleExact(g, 6, 30*time.Second)
	schedules["exact"] = sched.PostProcess(g, ex)
	rlS, err := rl.Schedule(m, embed.Default(), g, 6)
	if err != nil {
		b.Fatal(err)
	}
	schedules["respect"] = rlS
	for name, s := range schedules {
		s := s
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tpu.RunBenchmark(g, s, hw, 10, 1000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5GapToOptimal(b *testing.B) {
	m := benchModel(b)
	g := models.MustLoad("DenseNet121")
	for i := 0; i < b.N; i++ {
		opt := exact.Solve(g, 5, exact.Options{Timeout: 30 * time.Second, MaxStates: 100_000_000})
		s, err := rl.Schedule(m, embed.Default(), g, 5)
		if err != nil {
			b.Fatal(err)
		}
		if s.Evaluate(g).PeakParamBytes < opt.Cost.PeakParamBytes {
			b.Fatal("RL beat the proven optimum")
		}
	}
}

func BenchmarkTrainingStep(b *testing.B) {
	tr, err := rl.NewTrainer(rl.Config{
		Hidden: 48, NumNodes: 30, Stages: 4, Iterations: 1, BatchSize: 16, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(i)
	}
}

func BenchmarkPipelineSimulator(b *testing.B) {
	g := models.MustLoad("InceptionResNetv2")
	s := sched.PostProcess(g, ScheduleCompiler(g, 6))
	hw := tpu.Coral()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpu.Simulate(g, s, hw); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: the design choices DESIGN.md calls out, timed as
// single training steps so their relative cost is visible.
func BenchmarkAblationTrainingStep(b *testing.B) {
	variants := map[string]rl.Config{
		"cosine_rollout": {},
		"direct_reward":  {Reward: rl.RewardDirectObjective},
		"ema_baseline":   {Baseline: rl.BaselineEMA},
		"no_baseline":    {Baseline: rl.BaselineNone},
		"supervised":     {Supervised: true},
	}
	for name, cfg := range variants {
		cfg.Hidden = 32
		cfg.NumNodes = 20
		cfg.Stages = 4
		cfg.Iterations = 1
		cfg.BatchSize = 8
		cfg.Seed = 3
		cfg.Degrees = []int{2, 3}
		b.Run(name, func(b *testing.B) {
			tr, err := rl.NewTrainer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Step(i)
			}
		})
	}
}

func BenchmarkPostProcessRepair(b *testing.B) {
	g := models.MustLoad("InceptionResNetv2")
	raw := sched.NewSchedule(g.NumNodes(), 6)
	for v := range raw.Stage {
		raw.Stage[v] = v * 6 / g.NumNodes()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.PostProcess(g, raw)
	}
}

// Allocation benchmarks for the tracked solver hot paths. Each mounts the
// identical probe body that cmd/respect-perf's MeasureAllocs runs under
// testing.Benchmark, so `go test -bench=Allocs` and the checked-in
// BENCH_*.json trajectory can never disagree on methodology. The probes
// call b.ReportAllocs() themselves.
func benchAllocProbe(b *testing.B, name string) {
	b.Helper()
	if !perf.AllocProbe(name, b) {
		b.Fatalf("unknown alloc probe %q (tracked: %v)", name, perf.AllocProbeNames())
	}
}

func BenchmarkAllocsExactSolve(b *testing.B)       { benchAllocProbe(b, "exact.SolveCtx") }
func BenchmarkAllocsHeurDPBudget(b *testing.B)     { benchAllocProbe(b, "heur.DPBudget") }
func BenchmarkAllocsSchedEvaluate(b *testing.B)    { benchAllocProbe(b, "sched.Evaluate") }
func BenchmarkAllocsGraphFingerprint(b *testing.B) { benchAllocProbe(b, "graph.Fingerprint") }

func BenchmarkEmbedding(b *testing.B) {
	g := models.MustLoad("InceptionResNetv2")
	cfg := embed.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embed.Graph(g, cfg)
	}
}
