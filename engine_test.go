package respect

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBackendsRegistry(t *testing.T) {
	names := Backends()
	if len(names) == 0 {
		t.Fatal("no backends registered")
	}
	for _, want := range []string{"exact", "heur", "compiler", "ilp"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q missing (have %v)", want, names)
		}
	}
	if _, err := LookupBackend("definitely-not-a-backend"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestSchedulePortfolioAcceptance is the tentpole acceptance check:
// SchedulePortfolio over {rl, heur, exact} on a model-zoo graph returns a
// schedule at least as cheap as every individual backend, within the
// given deadline.
func TestSchedulePortfolioAcceptance(t *testing.T) {
	a := quickAgent(t)
	if err := a.RegisterBackends(); err != nil {
		t.Fatal(err)
	}
	g, err := LoadModel("ResNet50")
	if err != nil {
		t.Fatal(err)
	}

	deadline := 30 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res, err := SchedulePortfolio(ctx, g, 4, "rl", "heur", "exact")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > deadline+2*time.Second {
		t.Fatalf("portfolio overran the deadline: %v", elapsed)
	}
	if err := res.Schedule.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	// The portfolio's pick must be <= every member's own result.
	for _, name := range []string{"rl", "heur", "exact"} {
		b, err := LookupBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := b.Schedule(ctx, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c := s.Evaluate(g); c.Less(res.Cost) {
			t.Fatalf("portfolio (%v via %s) worse than %s alone (%v)", res.Cost, res.Backend, name, c)
		}
	}
}

func TestScheduleBatchFacade(t *testing.T) {
	ResetScheduleCache()
	g1, _ := LoadModel("Xception")
	g2, _ := LoadModel("ResNet50")
	graphs := []*Graph{g1, g2, g1, g2, g1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := ScheduleBatch(ctx, graphs, 4, "heur", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(graphs) {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Graph != graphs[i] {
			t.Fatalf("item %d out of order", i)
		}
		if err := r.Schedule.Validate(graphs[i]); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	// Graphs repeat, so the fingerprint cache must have hits.
	hits, misses := ScheduleCacheStats("heur")
	if misses == 0 || hits == 0 {
		t.Fatalf("cache stats = %d hits / %d misses; want both nonzero for repeated graphs", hits, misses)
	}
	// Identical graphs must get identical schedules.
	for v := range results[0].Schedule.Stage {
		if results[0].Schedule.Stage[v] != results[2].Schedule.Stage[v] {
			t.Fatal("cache returned a different schedule for an identical graph")
		}
	}
}

func TestScheduleWithUnknownBackend(t *testing.T) {
	g, _ := LoadModel("Xception")
	if _, err := ScheduleWith(context.Background(), "nope", g, 4); err == nil {
		t.Fatal("unknown backend accepted")
	}
	s, err := ScheduleWith(context.Background(), "compiler", g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestCustomBackendRegistration(t *testing.T) {
	custom := NewBackend("custom-test-backend", func(ctx context.Context, g *Graph, numStages int) (Schedule, error) {
		return ScheduleCompiler(g, numStages), nil
	})
	if err := RegisterBackend(custom); err != nil {
		t.Fatal(err)
	}
	if err := RegisterBackend(custom); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	g, _ := LoadModel("Xception")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := SchedulePortfolio(ctx, g, 4, "custom-test-backend", "heur")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestNewServerFacade(t *testing.T) {
	srv, err := NewServer(ServeConfig{Stages: 4, WarmModels: []string{"MobileNet"}})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := srv.WarmUp(context.Background()); err != nil || n < 1 {
		t.Fatalf("warm-up: n=%d err=%v", n, err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json",
		strings.NewReader(`{"model":"MobileNet","class":"interactive"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		CacheHit bool  `json:"cache_hit"`
		Stage    []int `json:"stage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !out.CacheHit || len(out.Stage) == 0 {
		t.Fatalf("status=%d cache_hit=%v stages=%d", resp.StatusCode, out.CacheHit, len(out.Stage))
	}
	if st := srv.Stats(); st.WarmedSchedules < 1 {
		t.Fatalf("stats warmed = %d", st.WarmedSchedules)
	}
}
