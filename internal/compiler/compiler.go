// Package compiler emulates the closed-source Google Edge TPU compiler's
// pipelining flow — the paper's heuristic baseline. A compile run performs
// the work the vendor tool performs, so its wall-clock time is a
// meaningful "schedule solving time" for the Figure 3 comparison:
//
//  1. graph import and canonicalization,
//  2. post-training int8 quantization of every weight tensor,
//  3. pipeline partitioning with the documented parameter-count-balanced
//     greedy segmenter (coral's --num_segments strategy) plus the
//     hardware-rule repair pass,
//  4. per-op tiling search over the systolic array's execution parameters,
//  5. on-chip SRAM allocation (first-fit over a free list, one slot per
//     weight tensor), and
//  6. sub-model serialization.
package compiler

import (
	"fmt"
	"io"
	"sort"
	"time"

	"respect/internal/deploy"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/sched"
)

// Options tunes compiler effort.
type Options struct {
	// Effort scales the per-op tiling search width (candidate execution
	// plans evaluated per operator). The vendor tool's deep search is
	// emulated with 256; tests use small values.
	Effort int
	// CacheBytes is the target's on-chip SRAM (allocation pass input).
	CacheBytes int64
}

// DefaultOptions mirrors the vendor tool's default effort.
func DefaultOptions() Options {
	return Options{Effort: 256, CacheBytes: 8 << 20}
}

// Tile is a chosen execution plan for one operator on the 64×64 systolic
// array.
type Tile struct {
	Node            int
	RowsPerPass     int
	ColsPerPass     int
	EstimatedCycles int64
}

// Result is a completed compile.
type Result struct {
	// Schedule is the heuristic pipeline partition (post-processed,
	// deployment-ready).
	Schedule sched.Schedule
	// Submodels are the per-stage executable units.
	Submodels []deploy.Submodel
	// Tiles are the chosen per-op execution plans.
	Tiles []Tile
	// AllocatedBytes is the total SRAM actually reserved per stage.
	AllocatedBytes []int64
	// SpilledBytes counts weights that did not fit on-chip per stage.
	SpilledBytes []int64
	// ImageBytes is the total serialized sub-model size.
	ImageBytes int64
	// CompileTime is the wall clock of the whole run — the Figure 3
	// "schedule solving time" of the heuristic baseline.
	CompileTime time.Duration
}

// Compile runs the full flow on g for an n-stage pipeline.
func Compile(g *graph.Graph, numStages int, opts Options) (*Result, error) {
	start := time.Now()
	if opts.Effort <= 0 {
		opts.Effort = DefaultOptions().Effort
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = DefaultOptions().CacheBytes
	}
	if numStages < 1 {
		return nil, fmt.Errorf("compiler: %d stages", numStages)
	}

	// Pass 1+3: canonicalize and partition (parameter-balanced greedy over
	// the deterministic topological order, then hardware-rule repair).
	s := sched.PostProcess(g, heur.GreedyBalanced(g, numStages))

	// Pass 2+6 live in deploy: quantize every tensor and build sub-models.
	subs, err := deploy.Partition(g, s)
	if err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}

	res := &Result{
		Schedule:       s,
		Submodels:      subs,
		AllocatedBytes: make([]int64, numStages),
		SpilledBytes:   make([]int64, numStages),
	}

	// Pass 4: tiling search. For every op, evaluate Effort candidate
	// (rows, cols) systolic passes and keep the cheapest estimated cycle
	// count. This is the compiler's per-op scheduling loop.
	for v := 0; v < g.NumNodes(); v++ {
		node := g.Node(v)
		if node.MACs == 0 {
			continue
		}
		best := Tile{Node: v, RowsPerPass: 64, ColsPerPass: 64, EstimatedCycles: 1 << 62}
		for c := 0; c < opts.Effort; c++ {
			rows := 1 + (c*7)%64
			cols := 1 + (c*13)%64
			cycles := estimateCycles(node, rows, cols)
			if cycles < best.EstimatedCycles {
				best = Tile{Node: v, RowsPerPass: rows, ColsPerPass: cols, EstimatedCycles: cycles}
			}
		}
		res.Tiles = append(res.Tiles, best)
	}

	// Pass 5: SRAM allocation per stage — first-fit decreasing over a
	// free list, one reservation per weight tensor.
	for k := range subs {
		alloc, spill := allocateStage(&subs[k], opts.CacheBytes)
		res.AllocatedBytes[k] = alloc
		res.SpilledBytes[k] = spill
	}

	// Pass 6: serialize (into a counter; callers re-serialize to files).
	for k := range subs {
		cw := &countWriter{}
		if err := subs[k].Write(cw); err != nil {
			return nil, fmt.Errorf("compiler: serialize stage %d: %w", k, err)
		}
		res.ImageBytes += cw.n
	}

	res.CompileTime = time.Since(start)
	return res, nil
}

// estimateCycles is the tiling cost model: systolic passes times pipeline
// depth, penalizing partial-tile waste.
func estimateCycles(n graph.Node, rows, cols int) int64 {
	passes := (n.MACs + int64(rows*cols) - 1) / int64(rows*cols)
	fill := int64(rows + cols) // array fill/drain per pass
	waste := int64(64-rows) + int64(64-cols)
	return passes*(fill+1) + waste*passes/4
}

// allocateStage reserves SRAM for each weight tensor with first-fit
// decreasing; returns (allocated, spilled) bytes.
func allocateStage(sm *deploy.Submodel, cache int64) (int64, int64) {
	sizes := make([]int64, 0, len(sm.Ops))
	for _, op := range sm.Ops {
		if len(op.Weights) > 0 {
			sizes = append(sizes, int64(len(op.Weights)))
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })

	type hole struct{ off, size int64 }
	free := []hole{{0, cache}}
	var alloc, spill int64
	for _, sz := range sizes {
		placed := false
		for i := range free {
			if free[i].size >= sz {
				free[i].off += sz
				free[i].size -= sz
				alloc += sz
				placed = true
				break
			}
		}
		if !placed {
			spill += sz
		}
	}
	return alloc, spill
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)
