package compiler

import (
	"testing"

	"respect/internal/models"
)

func TestCompileProducesDeployableSchedule(t *testing.T) {
	for _, name := range []string{"Xception", "ResNet50"} {
		g := models.MustLoad(name)
		for _, ns := range []int{4, 5, 6} {
			res, err := Compile(g, ns, Options{Effort: 8})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, ns, err)
			}
			if err := res.Schedule.Validate(g); err != nil {
				t.Errorf("%s/%d: %v", name, ns, err)
			}
			if !res.Schedule.SameStageChildrenOK(g) {
				t.Errorf("%s/%d: children rule violated", name, ns)
			}
			if len(res.Submodels) != ns {
				t.Errorf("%s/%d: %d submodels", name, ns, len(res.Submodels))
			}
			if res.CompileTime <= 0 {
				t.Error("compile time not measured")
			}
		}
	}
}

func TestCompileAccountsAllParams(t *testing.T) {
	g := models.MustLoad("ResNet50")
	res, err := Compile(g, 4, Options{Effort: 4})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for k := range res.AllocatedBytes {
		total += res.AllocatedBytes[k] + res.SpilledBytes[k]
	}
	if total != g.TotalParamBytes() {
		t.Fatalf("allocated+spilled %d != params %d", total, g.TotalParamBytes())
	}
	if res.ImageBytes <= g.TotalParamBytes() {
		t.Fatalf("image %d not larger than raw weights %d", res.ImageBytes, g.TotalParamBytes())
	}
}

func TestSpillOnlyWhenOverCache(t *testing.T) {
	g := models.MustLoad("DenseNet121") // ~8 MiB total, tiny per stage
	res, err := Compile(g, 4, Options{Effort: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k, sp := range res.SpilledBytes {
		if sp != 0 {
			t.Errorf("stage %d spilled %d bytes below cache size", k, sp)
		}
	}
	g2 := models.MustLoad("ResNet152") // ~60 MiB: stages exceed 8 MiB at 4 stages
	res2, err := Compile(g2, 4, Options{Effort: 4})
	if err != nil {
		t.Fatal(err)
	}
	spilled := false
	for _, sp := range res2.SpilledBytes {
		if sp > 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Error("ResNet152/4 fits nowhere yet nothing spilled")
	}
}

func TestTilesCoverComputeOps(t *testing.T) {
	g := models.MustLoad("Xception")
	res, err := Compile(g, 4, Options{Effort: 16})
	if err != nil {
		t.Fatal(err)
	}
	compute := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.Node(v).MACs > 0 {
			compute++
		}
	}
	if len(res.Tiles) != compute {
		t.Fatalf("%d tiles for %d compute ops", len(res.Tiles), compute)
	}
	for _, tile := range res.Tiles {
		if tile.RowsPerPass < 1 || tile.RowsPerPass > 64 ||
			tile.ColsPerPass < 1 || tile.ColsPerPass > 64 {
			t.Fatalf("tile out of systolic bounds: %+v", tile)
		}
		if tile.EstimatedCycles <= 0 {
			t.Fatalf("tile with non-positive cycles: %+v", tile)
		}
	}
}

func TestEffortMonotoneQuality(t *testing.T) {
	// More effort can only find cheaper-or-equal tiling plans.
	g := models.MustLoad("Xception")
	lo, err := Compile(g, 2, Options{Effort: 2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Compile(g, 2, Options{Effort: 64})
	if err != nil {
		t.Fatal(err)
	}
	var cLo, cHi int64
	for i := range lo.Tiles {
		cLo += lo.Tiles[i].EstimatedCycles
		cHi += hi.Tiles[i].EstimatedCycles
	}
	if cHi > cLo {
		t.Fatalf("effort 64 worse than 2: %d > %d", cHi, cLo)
	}
}

func TestBadStageCount(t *testing.T) {
	g := models.MustLoad("Xception")
	if _, err := Compile(g, 0, Options{}); err == nil {
		t.Fatal("0 stages accepted")
	}
}
