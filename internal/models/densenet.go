package models

import (
	"fmt"

	"respect/internal/graph"
)

// denseNetBlocks maps depth to the number of conv blocks per dense block.
var denseNetBlocks = map[int][4]int{
	121: {6, 12, 24, 16},
	169: {6, 12, 32, 32},
	201: {6, 12, 48, 32},
}

// denseNet builds DenseNet-121/169/201. Every conv block concatenates its
// growth-rate output back onto the running feature map, which makes the
// whole graph one long topological chain — the reason Table I reports
// depth = |V| − 1 for the DenseNets.
func denseNet(name string, depth int) (*graph.Graph, error) {
	const growth = 32
	blocks := denseNetBlocks[depth]
	b := newBuilder(name)

	x := b.input(224, 224, 3)
	x = b.pad("zero_padding2d", x, 3)
	x = b.conv("conv1/conv", x, 7, 7, 2, 64, false, false)
	x = b.bn("conv1/bn", x)
	x = b.relu("conv1/relu", x)
	x = b.pad("zero_padding2d_1", x, 1)
	x = b.maxPool("pool1", x, 3, 2, false)

	channels := 64
	for d := 0; d < 4; d++ {
		for blk := 0; blk < blocks[d]; blk++ {
			x = denseConvBlock(b, fmt.Sprintf("conv%d_block%d", d+2, blk+1), x, growth)
			channels += growth
		}
		if d < 3 {
			channels /= 2 // compression θ = 0.5
			x = denseTransition(b, fmt.Sprintf("pool%d", d+2), x, channels)
		}
	}

	x = b.bn("bn", x)
	x = b.relu("relu", x)
	x = b.gap("avg_pool", x)
	b.dense("predictions", x, 1000)
	return b.finish()
}

// denseConvBlock is Keras' conv_block: bottleneck 1×1 to 4×growth channels
// followed by a 3×3 producing growth channels, concatenated onto the input.
func denseConvBlock(b *builder, name string, x, growth int) int {
	y := b.bn(name+"_0_bn", x)
	y = b.relu(name+"_0_relu", y)
	y = b.conv(name+"_1_conv", y, 1, 1, 1, 4*growth, true, false)
	y = b.bn(name+"_1_bn", y)
	y = b.relu(name+"_1_relu", y)
	y = b.conv(name+"_2_conv", y, 3, 3, 1, growth, true, false)
	return b.concat(name+"_concat", x, y)
}

// denseTransition is Keras' transition_block: 1×1 compression conv plus
// 2×2 average pooling.
func denseTransition(b *builder, name string, x, outC int) int {
	y := b.bn(name+"_bn", x)
	y = b.relu(name+"_relu", y)
	y = b.conv(name+"_conv", y, 1, 1, 1, outC, true, false)
	return b.avgPool(name+"_pool", y, 2, 2, false)
}
