package models

import (
	"fmt"

	"respect/internal/graph"
)

// The models in this file are extensions beyond the paper's evaluation set
// (they appear in neither Table I nor Figure 5): additional architectures
// a downstream user of the scheduler is likely to deploy on Edge TPUs.

// vgg16 builds VGG-16 at Keras layer granularity: a pure chain of
// convolution blocks with enormous fully-connected layers — the classic
// stress test for parameter-memory-aware scheduling (≈138 MiB of int8
// weights, dominated by fc1).
func vgg16() (*graph.Graph, error) {
	b := newBuilder("VGG16")
	x := b.input(224, 224, 3)
	blocks := []struct {
		convs, filters int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for bi, blk := range blocks {
		for c := 1; c <= blk.convs; c++ {
			x = b.conv(fmt.Sprintf("block%d_conv%d", bi+1, c), x, 3, 3, 1, blk.filters, true, true)
		}
		x = b.maxPool(fmt.Sprintf("block%d_pool", bi+1), x, 2, 2, false)
	}
	// Flatten is a real Keras layer; model it as a zero-cost reshape node.
	in := b.shape(x)
	x = b.add(graph.Node{Name: "flatten", Kind: graph.OpOther}, Shape{1, 1, in.Elems2D()}, x)
	x = b.dense("fc1", x, 4096)
	x = b.dense("fc2", x, 4096)
	b.dense("predictions", x, 1000)
	return b.finish()
}

// mobileNetV1 builds MobileNetV1 (α = 1.0, 224×224): depthwise-separable
// chain with explicit zero-padding before each strided depthwise conv, at
// Keras layer granularity.
func mobileNetV1() (*graph.Graph, error) {
	b := newBuilder("MobileNet")
	x := b.input(224, 224, 3)
	x = b.pad("conv1_pad", x, 1)
	x = b.conv("conv1", x, 3, 3, 2, 32, false, false)
	x = b.bn("conv1_bn", x)
	x = b.relu("conv1_relu", x)

	type blk struct {
		filters int
		stride  int
	}
	blocks := []blk{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, bb := range blocks {
		name := fmt.Sprintf("conv_dw_%d", i+1)
		if bb.stride == 2 {
			x = b.pad(fmt.Sprintf("conv_pad_%d", i+1), x, 1)
			x = b.dwConv(name, x, 3, 2, false)
		} else {
			x = b.dwConv(name, x, 3, 1, true)
		}
		x = b.bn(name+"_bn", x)
		x = b.relu(name+"_relu", x)
		pw := fmt.Sprintf("conv_pw_%d", i+1)
		x = b.conv(pw, x, 1, 1, 1, bb.filters, true, false)
		x = b.bn(pw+"_bn", x)
		x = b.relu(pw+"_relu", x)
	}

	x = b.gap("global_average_pooling2d", x)
	// Keras MobileNet finishes with reshape → dropout → 1×1 conv_preds →
	// reshape → softmax; the two reshapes and dropout are real layers.
	in := b.shape(x)
	x = b.add(graph.Node{Name: "reshape_1", Kind: graph.OpOther}, in, x)
	x = b.add(graph.Node{Name: "dropout", Kind: graph.OpOther}, in, x)
	x = b.conv("conv_preds", x, 1, 1, 1, 1000, true, true)
	x = b.add(graph.Node{Name: "reshape_2", Kind: graph.OpOther}, Shape{1, 1, 1000}, x)
	b.add(graph.Node{Name: "act_softmax", Kind: graph.OpSoftmax, MACs: 1000}, Shape{1, 1, 1000}, x)
	return b.finish()
}

// Elems2D flattens a shape to a channel count for dense layers.
func (s Shape) Elems2D() int { return s.H * s.W * s.C }
