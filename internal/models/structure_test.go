package models

import (
	"strings"
	"testing"

	"respect/internal/graph"
)

// TestDenseNetsAreHamiltonianChains: the concat chain makes every DenseNet
// a single topological path (Table I shows depth = |V| − 1).
func TestDenseNetsAreHamiltonianChains(t *testing.T) {
	for _, name := range []string{"DenseNet121", "DenseNet169", "DenseNet201"} {
		g := MustLoad(name)
		if g.Depth() != g.NumNodes()-1 {
			t.Errorf("%s: depth %d != |V|-1 = %d", name, g.Depth(), g.NumNodes()-1)
		}
	}
}

// TestResNetShortcutCount: v1 ResNets carry exactly four projection
// shortcuts (one per stack), visible as the |V| − depth − 1 off-path nodes.
func TestResNetShortcutCount(t *testing.T) {
	for _, name := range []string{"ResNet50", "ResNet101", "ResNet152"} {
		g := MustLoad(name)
		offPath := g.NumNodes() - g.Depth() - 1
		if offPath != 8 { // 4 stacks × (conv + bn)
			t.Errorf("%s: %d off-path nodes, want 8", name, offPath)
		}
	}
	for _, name := range []string{"ResNet50v2", "ResNet101v2", "ResNet152v2"} {
		g := MustLoad(name)
		offPath := g.NumNodes() - g.Depth() - 1
		if offPath != 7 { // 4 conv shortcuts + 3 max-pool shortcuts
			t.Errorf("%s: %d off-path nodes, want 7", name, offPath)
		}
	}
}

// TestAddNodesHaveTwoParents: every residual add must join exactly two
// tensors; every concat at least two.
func TestAddNodesHaveTwoParents(t *testing.T) {
	for _, name := range TableINames() {
		g := MustLoad(name)
		for v := 0; v < g.NumNodes(); v++ {
			switch g.Node(v).Kind {
			case graph.OpAdd, graph.OpMul:
				if len(g.Pred(v)) != 2 {
					t.Errorf("%s node %s: %d parents", name, g.Node(v).Name, len(g.Pred(v)))
				}
			case graph.OpConcat:
				if len(g.Pred(v)) < 2 {
					t.Errorf("%s node %s: concat with %d parents", name, g.Node(v).Name, len(g.Pred(v)))
				}
			}
		}
	}
}

// TestInceptionResNetFourWayConcats: deg(V) = 4 comes from exactly the two
// documented mixed blocks.
func TestInceptionResNetFourWayConcats(t *testing.T) {
	g := MustLoad("InceptionResNetv2")
	fourWay := []string{}
	for v := 0; v < g.NumNodes(); v++ {
		if len(g.Pred(v)) == 4 {
			fourWay = append(fourWay, g.Node(v).Name)
		}
	}
	if len(fourWay) != 2 {
		t.Fatalf("four-way joins: %v", fourWay)
	}
	for _, n := range fourWay {
		if n != "mixed_5b" && n != "mixed_7a" {
			t.Errorf("unexpected four-way join %q", n)
		}
	}
}

// TestConvParamsDominate: in every CNN the conv/dense weights must hold
// nearly all parameter bytes (bn is per-channel only).
func TestConvParamsDominate(t *testing.T) {
	for _, name := range Names() {
		g := MustLoad(name)
		var conv, other int64
		for v := 0; v < g.NumNodes(); v++ {
			n := g.Node(v)
			switch n.Kind {
			case graph.OpConv, graph.OpDepthwiseConv, graph.OpDense:
				conv += n.ParamBytes
			default:
				other += n.ParamBytes
			}
		}
		if conv < 20*other {
			t.Errorf("%s: conv params %d vs other %d", name, conv, other)
		}
	}
}

// TestSpatialDimsShrinkMonotonically: feature maps never grow along the
// main path except through explicit padding.
func TestActivationsBounded(t *testing.T) {
	for _, name := range Names() {
		g := MustLoad(name)
		input := g.Node(0).OutBytes
		for v := 1; v < g.NumNodes(); v++ {
			n := g.Node(v)
			// No intermediate tensor should exceed ~22x the input image
			// (generous: VGG16 block1 is 21.3x the input).
			if n.OutBytes > 22*input {
				t.Errorf("%s node %s: activation %d vs input %d", name, n.Name, n.OutBytes, input)
			}
		}
	}
}

// TestNamesFollowKerasConvention spot-checks that generated names stay
// close to the reference implementations (useful for debugging dumps).
func TestNamesFollowKerasConvention(t *testing.T) {
	g := MustLoad("ResNet50")
	wantPrefixes := []string{"conv1_pad", "conv1_conv", "conv2_block1", "conv5_block3", "avg_pool", "predictions"}
	names := map[string]bool{}
	for v := 0; v < g.NumNodes(); v++ {
		names[g.Node(v).Name] = true
	}
	joined := strings.Join(keys(names), " ")
	for _, p := range wantPrefixes {
		if !strings.Contains(joined, p) {
			t.Errorf("missing Keras-style name %q", p)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
