package models

import (
	"fmt"
	"sort"

	"respect/internal/graph"
)

// generators maps canonical model names to their graph constructors. Names
// follow the paper's spelling in Table I and Figure 5.
var generators = map[string]func() (*graph.Graph, error){
	"Xception":          xception,
	"ResNet50":          func() (*graph.Graph, error) { return resNetV1("ResNet50", 50) },
	"ResNet101":         func() (*graph.Graph, error) { return resNetV1("ResNet101", 101) },
	"ResNet152":         func() (*graph.Graph, error) { return resNetV1("ResNet152", 152) },
	"ResNet50v2":        func() (*graph.Graph, error) { return resNetV2("ResNet50v2", 50) },
	"ResNet101v2":       func() (*graph.Graph, error) { return resNetV2("ResNet101v2", 101) },
	"ResNet152v2":       func() (*graph.Graph, error) { return resNetV2("ResNet152v2", 152) },
	"DenseNet121":       func() (*graph.Graph, error) { return denseNet("DenseNet121", 121) },
	"DenseNet169":       func() (*graph.Graph, error) { return denseNet("DenseNet169", 169) },
	"DenseNet201":       func() (*graph.Graph, error) { return denseNet("DenseNet201", 201) },
	"Inception_v3":      inceptionV3,
	"InceptionResNetv2": inceptionResNetV2,
	// Extension models beyond the paper's evaluation set.
	"VGG16":     vgg16,
	"MobileNet": mobileNetV1,
}

// TableI holds the paper's Table I statistics for the ten inference-runtime
// benchmark models; construction tests assert these exactly.
var TableI = map[string]graph.Stats{
	"Xception":          {V: 134, Deg: 2, Depth: 125},
	"ResNet50":          {V: 177, Deg: 2, Depth: 168},
	"ResNet101":         {V: 347, Deg: 2, Depth: 338},
	"ResNet152":         {V: 517, Deg: 2, Depth: 508},
	"DenseNet121":       {V: 429, Deg: 2, Depth: 428},
	"ResNet101v2":       {V: 379, Deg: 2, Depth: 371},
	"ResNet152v2":       {V: 566, Deg: 2, Depth: 558},
	"DenseNet169":       {V: 597, Deg: 2, Depth: 596},
	"DenseNet201":       {V: 709, Deg: 2, Depth: 708},
	"InceptionResNetv2": {V: 782, Deg: 4, Depth: 571},
}

// Names returns all available model names, sorted.
func Names() []string {
	out := make([]string, 0, len(generators))
	for name := range generators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TableINames returns the ten Table I benchmark models in the paper's
// row order.
func TableINames() []string {
	return []string{
		"Xception", "ResNet50", "ResNet101", "ResNet152",
		"DenseNet121", "ResNet101v2", "ResNet152v2", "DenseNet169",
		"DenseNet201", "InceptionResNetv2",
	}
}

// Figure5Names returns the twelve models of the gap-to-optimal study in
// the paper's plotting order.
func Figure5Names() []string {
	return []string{
		"DenseNet121", "DenseNet169", "DenseNet201",
		"ResNet50", "ResNet101", "ResNet152",
		"ResNet50v2", "ResNet101v2", "InceptionResNetv2",
		"ResNet152v2", "Inception_v3", "Xception",
	}
}

// LoadMany constructs several zoo graphs, failing on the first unknown
// name. Callers that need the whole zoo pass Names() expanded.
func LoadMany(names ...string) ([]*graph.Graph, error) {
	out := make([]*graph.Graph, len(names))
	for i, name := range names {
		g, err := Load(name)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

// Load constructs the named model's computational graph.
func Load(name string) (*graph.Graph, error) {
	gen, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return gen()
}

// MustLoad is Load that panics on error; generators are covered by tests.
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}
