package models

import (
	"fmt"

	"respect/internal/graph"
)

// xception builds the Xception architecture: an entry flow of three
// strided separable-conv residual blocks, eight middle-flow blocks and an
// exit flow, with separable convolutions kept as single nodes (Keras layer
// granularity). Four projection shortcuts (conv+bn) sit off the critical
// path, giving |V| − depth − 1 = 8.
func xception() (*graph.Graph, error) {
	b := newBuilder("Xception")

	x := b.input(299, 299, 3)
	x = b.conv("block1_conv1", x, 3, 3, 2, 32, false, false)
	x = b.bn("block1_conv1_bn", x)
	x = b.relu("block1_conv1_act", x)
	x = b.conv("block1_conv2", x, 3, 3, 1, 64, false, false)
	x = b.bn("block1_conv2_bn", x)
	x = b.relu("block1_conv2_act", x)

	for i, filters := range []int{128, 256, 728} {
		name := fmt.Sprintf("block%d", i+2)
		sc := b.conv(name+"_shortcut_conv", x, 1, 1, 2, filters, true, false)
		sc = b.bn(name+"_shortcut_bn", sc)
		y := x
		if i > 0 {
			y = b.relu(name+"_sepconv1_act_pre", y)
		}
		y = b.sepConv(name+"_sepconv1", y, 3, 1, filters, true)
		y = b.bn(name+"_sepconv1_bn", y)
		y = b.relu(name+"_sepconv2_act", y)
		y = b.sepConv(name+"_sepconv2", y, 3, 1, filters, true)
		y = b.bn(name+"_sepconv2_bn", y)
		y = b.maxPool(name+"_pool", y, 3, 2, true)
		x = b.addOp(name+"_add", sc, y)
	}

	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("block%d", i+5)
		y := x
		for j := 1; j <= 3; j++ {
			y = b.relu(fmt.Sprintf("%s_sepconv%d_act", name, j), y)
			y = b.sepConv(fmt.Sprintf("%s_sepconv%d", name, j), y, 3, 1, 728, true)
			y = b.bn(fmt.Sprintf("%s_sepconv%d_bn", name, j), y)
		}
		x = b.addOp(name+"_add", x, y)
	}

	sc := b.conv("block13_shortcut_conv", x, 1, 1, 2, 1024, true, false)
	sc = b.bn("block13_shortcut_bn", sc)
	y := b.relu("block13_sepconv1_act", x)
	y = b.sepConv("block13_sepconv1", y, 3, 1, 728, true)
	y = b.bn("block13_sepconv1_bn", y)
	y = b.relu("block13_sepconv2_act", y)
	y = b.sepConv("block13_sepconv2", y, 3, 1, 1024, true)
	y = b.bn("block13_sepconv2_bn", y)
	y = b.maxPool("block13_pool", y, 3, 2, true)
	x = b.addOp("block13_add", sc, y)

	x = b.sepConv("block14_sepconv1", x, 3, 1, 1536, true)
	x = b.bn("block14_sepconv1_bn", x)
	x = b.relu("block14_sepconv1_act", x)
	x = b.sepConv("block14_sepconv2", x, 3, 1, 2048, true)
	x = b.bn("block14_sepconv2_bn", x)
	x = b.relu("block14_sepconv2_act", x)

	x = b.gap("avg_pool", x)
	b.dense("predictions", x, 1000)
	return b.finish()
}
