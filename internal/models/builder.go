// Package models generates the computational graphs of the twelve ImageNet
// architectures evaluated in the paper (Table I and Figures 3-5):
// Xception, ResNet50/101/152, ResNet50V2/101V2/152V2, DenseNet121/169/201,
// InceptionV3 and InceptionResNetV2.
//
// Graphs are produced at the same granularity as the paper's DAG
// extraction (one node per Keras layer: separate conv / batch-norm /
// activation nodes, a fused classification head), so the Table I
// statistics — |V|, deg(V) and depth — are reproduced exactly; tests
// assert them. Shape inference runs alongside construction, giving every
// node a realistic int8 parameter footprint, output-activation size and
// MAC count, which is what the schedulers and the Edge TPU simulator
// consume.
package models

import (
	"fmt"

	"respect/internal/graph"
)

// Shape is a feature-map shape in HWC layout.
type Shape struct {
	H, W, C int
}

// Elems returns H*W*C.
func (s Shape) Elems() int64 { return int64(s.H) * int64(s.W) * int64(s.C) }

// builder constructs a graph while propagating tensor shapes, so memory
// attributes come out of real layer arithmetic rather than guesses.
type builder struct {
	g      *graph.Graph
	shapes []Shape
}

func newBuilder(name string) *builder {
	return &builder{g: graph.New(name)}
}

func (b *builder) add(n graph.Node, out Shape, parents ...int) int {
	n.OutBytes = out.Elems() // int8 activations: one byte per element
	id := b.g.AddNode(n)
	b.shapes = append(b.shapes, out)
	for _, p := range parents {
		b.g.AddEdge(p, id)
	}
	return id
}

func (b *builder) shape(id int) Shape { return b.shapes[id] }

// input adds the graph's input placeholder.
func (b *builder) input(h, w, c int) int {
	return b.add(graph.Node{Name: "input", Kind: graph.OpInput}, Shape{h, w, c})
}

// convOut computes an output spatial dim under SAME/VALID padding.
func convOut(in, k, stride int, same bool) int {
	if same {
		return (in + stride - 1) / stride
	}
	return (in-k)/stride + 1
}

// conv adds a single Conv2D node. bias selects whether a bias vector is
// counted (Keras conv layers inside conv+bn pairs use use_bias=false).
func (b *builder) conv(name string, parent int, kh, kw, stride, outC int, same, bias bool) int {
	in := b.shape(parent)
	out := Shape{convOut(in.H, kh, stride, same), convOut(in.W, kw, stride, same), outC}
	weights := int64(kh) * int64(kw) * int64(in.C) * int64(outC)
	params := weights // int8: 1 byte per weight
	if bias {
		params += int64(outC) * 4 // int32 bias
	}
	macs := weights * out.Elems() / int64(outC)
	return b.add(graph.Node{Name: name, Kind: graph.OpConv, ParamBytes: params, MACs: macs}, out, parent)
}

// dwConv adds a depthwise convolution (one filter per input channel).
func (b *builder) dwConv(name string, parent int, k, stride int, same bool) int {
	in := b.shape(parent)
	out := Shape{convOut(in.H, k, stride, same), convOut(in.W, k, stride, same), in.C}
	weights := int64(k) * int64(k) * int64(in.C)
	macs := weights * int64(out.H) * int64(out.W)
	return b.add(graph.Node{Name: name, Kind: graph.OpDepthwiseConv, ParamBytes: weights, MACs: macs}, out, parent)
}

// sepConv adds a SeparableConv2D as a single node (matching Keras layer
// granularity): depthwise k×k followed by pointwise 1×1.
func (b *builder) sepConv(name string, parent int, k, stride, outC int, same bool) int {
	in := b.shape(parent)
	out := Shape{convOut(in.H, k, stride, same), convOut(in.W, k, stride, same), outC}
	dw := int64(k) * int64(k) * int64(in.C)
	pw := int64(in.C) * int64(outC)
	macs := dw*int64(out.H)*int64(out.W) + pw*int64(out.H)*int64(out.W)
	return b.add(graph.Node{Name: name, Kind: graph.OpDepthwiseConv, ParamBytes: dw + pw, MACs: macs}, out, parent)
}

// bn adds a batch-normalization node; per-channel scale and shift survive
// TFLite conversion as int16 pairs (4 bytes per channel total).
func (b *builder) bn(name string, parent int) int {
	in := b.shape(parent)
	return b.add(graph.Node{
		Name: name, Kind: graph.OpBatchNorm,
		ParamBytes: int64(in.C) * 4, MACs: in.Elems(),
	}, in, parent)
}

// relu adds an activation node.
func (b *builder) relu(name string, parent int) int {
	in := b.shape(parent)
	return b.add(graph.Node{Name: name, Kind: graph.OpRelu, MACs: in.Elems()}, in, parent)
}

// convBN is the conv → bn → relu triple used throughout the Inception and
// ResNet families; returns the relu's node ID.
func (b *builder) convBN(name string, parent int, kh, kw, stride, outC int, same bool) int {
	c := b.conv(name+"_conv", parent, kh, kw, stride, outC, same, false)
	n := b.bn(name+"_bn", c)
	return b.relu(name+"_relu", n)
}

// pad adds explicit zero padding of p pixels on each side.
func (b *builder) pad(name string, parent, p int) int {
	in := b.shape(parent)
	out := Shape{in.H + 2*p, in.W + 2*p, in.C}
	return b.add(graph.Node{Name: name, Kind: graph.OpPad}, out, parent)
}

// maxPool adds a max-pooling node.
func (b *builder) maxPool(name string, parent, k, stride int, same bool) int {
	in := b.shape(parent)
	out := Shape{convOut(in.H, k, stride, same), convOut(in.W, k, stride, same), in.C}
	return b.add(graph.Node{Name: name, Kind: graph.OpMaxPool, MACs: out.Elems() * int64(k*k)}, out, parent)
}

// avgPool adds an average-pooling node.
func (b *builder) avgPool(name string, parent, k, stride int, same bool) int {
	in := b.shape(parent)
	out := Shape{convOut(in.H, k, stride, same), convOut(in.W, k, stride, same), in.C}
	return b.add(graph.Node{Name: name, Kind: graph.OpAvgPool, MACs: out.Elems() * int64(k*k)}, out, parent)
}

// gap adds global average pooling down to 1×1×C.
func (b *builder) gap(name string, parent int) int {
	in := b.shape(parent)
	return b.add(graph.Node{Name: name, Kind: graph.OpGlobalPool, MACs: in.Elems()}, Shape{1, 1, in.C}, parent)
}

// dense adds the fused fully-connected classification head (matmul + bias
// + softmax as one node, matching the paper's node granularity).
func (b *builder) dense(name string, parent, units int) int {
	in := b.shape(parent)
	weights := in.Elems() * int64(units)
	params := weights + int64(units)*4
	return b.add(graph.Node{Name: name, Kind: graph.OpDense, ParamBytes: params, MACs: weights}, Shape{1, 1, units}, parent)
}

// addOp adds an elementwise residual addition of two tensors.
func (b *builder) addOp(name string, x, y int) int {
	in := b.shape(x)
	return b.add(graph.Node{Name: name, Kind: graph.OpAdd, MACs: in.Elems()}, in, x, y)
}

// scaleAdd adds the Inception-ResNet residual-scaling lambda
// (x + scale * up) as a single two-input node.
func (b *builder) scaleAdd(name string, x, up int) int {
	in := b.shape(x)
	return b.add(graph.Node{Name: name, Kind: graph.OpMul, MACs: 2 * in.Elems()}, in, x, up)
}

// concat concatenates along channels.
func (b *builder) concat(name string, parents ...int) int {
	out := b.shape(parents[0])
	out.C = 0
	for _, p := range parents {
		out.C += b.shape(p).C
	}
	return b.add(graph.Node{Name: name, Kind: graph.OpConcat}, out, parents...)
}

// finish validates and returns the built graph.
func (b *builder) finish() (*graph.Graph, error) {
	if err := b.g.Build(); err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	return b.g, nil
}
