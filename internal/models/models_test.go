package models

import (
	"testing"

	"respect/internal/graph"
)

// TestTableI asserts that every benchmark graph reproduces the paper's
// Table I statistics exactly.
func TestTableI(t *testing.T) {
	for name, want := range TableI {
		g, err := Load(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got := g.Stats(); got != want {
			t.Errorf("%s: stats = %+v, want %+v", name, got, want)
		}
	}
}

// TestExtraModels covers the two Figure 5-only architectures; expected
// values are the Keras layer counts of the reference implementations.
func TestExtraModels(t *testing.T) {
	want := map[string]graph.Stats{
		"ResNet50v2":   {V: 192, Deg: 2, Depth: 184},
		"Inception_v3": {V: 313, Deg: 4, Depth: 158},
	}
	for name, w := range want {
		g, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := g.Stats(); got != w {
			t.Errorf("%s: stats = %+v, want %+v", name, got, w)
		}
	}
}

func TestParamTotalsRealistic(t *testing.T) {
	// Int8 parameter totals should be within a factor-two band of the
	// published parameter counts (weights dominate; epsilon for bn/bias).
	wantMB := map[string]float64{
		"ResNet50":          25.6,
		"ResNet101":         44.7,
		"ResNet152":         60.4,
		"DenseNet121":       8.1,
		"DenseNet169":       14.3,
		"DenseNet201":       20.2,
		"Xception":          22.9,
		"Inception_v3":      23.9,
		"InceptionResNetv2": 55.9,
	}
	for name, want := range wantMB {
		g := MustLoad(name)
		got := float64(g.TotalParamBytes()) / (1 << 20)
		if got < want*0.5 || got > want*2.0 {
			t.Errorf("%s: %.1f MiB params, expected near %.1f MiB", name, got, want)
		}
	}
}

func TestAllModelsWellFormed(t *testing.T) {
	for _, name := range Names() {
		g := MustLoad(name)
		if srcs := g.Sources(); len(srcs) != 1 {
			t.Errorf("%s: %d sources, want 1", name, len(srcs))
		}
		if sinks := g.Sinks(); len(sinks) != 1 {
			t.Errorf("%s: %d sinks, want 1", name, len(sinks))
		}
		if g.Node(0).Kind != graph.OpInput {
			t.Errorf("%s: node 0 is %v, want input", name, g.Node(0).Kind)
		}
		for v := 0; v < g.NumNodes(); v++ {
			n := g.Node(v)
			if n.ParamBytes < 0 || n.OutBytes <= 0 || n.MACs < 0 {
				t.Errorf("%s node %d (%s): bad attributes %+v", name, v, n.Name, n)
			}
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("NoSuchNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad did not panic")
		}
	}()
	MustLoad("NoSuchNet")
}

func TestNamesSortedComplete(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("have %d models, want 14: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted at %d", i)
		}
	}
	if len(TableINames()) != 10 || len(Figure5Names()) != 12 {
		t.Error("benchmark name lists wrong length")
	}
	for _, n := range Figure5Names() {
		if _, err := Load(n); err != nil {
			t.Errorf("Figure5 model %s: %v", n, err)
		}
	}
}

func TestShapeInference(t *testing.T) {
	// Spot-check conv arithmetic through the ResNet50 stem.
	g := MustLoad("ResNet50")
	// Node 2 is conv1_conv: 7x7 s2 on 230x230 padded input -> 112x112x64.
	n := g.Node(2)
	if n.Name != "conv1_conv" {
		t.Fatalf("node 2 = %s", n.Name)
	}
	if n.OutBytes != 112*112*64 {
		t.Errorf("conv1_conv out bytes = %d, want %d", n.OutBytes, 112*112*64)
	}
	wantParams := int64(7*7*3*64 + 64*4)
	if n.ParamBytes != wantParams {
		t.Errorf("conv1_conv params = %d, want %d", n.ParamBytes, wantParams)
	}
}

func TestConvOut(t *testing.T) {
	cases := []struct {
		in, k, s int
		same     bool
		want     int
	}{
		{224, 7, 2, true, 112},
		{230, 7, 2, false, 112},
		{112, 3, 2, true, 56},
		{299, 3, 2, false, 149},
		{5, 3, 1, false, 3},
	}
	for _, c := range cases {
		if got := convOut(c.in, c.k, c.s, c.same); got != c.want {
			t.Errorf("convOut(%d,%d,%d,%v) = %d, want %d", c.in, c.k, c.s, c.same, got, c.want)
		}
	}
}
