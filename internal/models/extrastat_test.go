package models

import (
	"testing"

	"respect/internal/graph"
)

// TestExtensionModels pins the structure of the extension architectures
// (not part of the paper's evaluation set). VGG16's 23 nodes match the
// Keras layer count; parameter totals match the published sizes (VGG16
// ~138M params, MobileNetV1 ~4.2M).
func TestExtensionModels(t *testing.T) {
	want := map[string]graph.Stats{
		"VGG16":     {V: 23, Deg: 1, Depth: 22},
		"MobileNet": {V: 93, Deg: 1, Depth: 92},
	}
	wantMB := map[string]float64{"VGG16": 132.0, "MobileNet": 4.1}
	for name, w := range want {
		g := MustLoad(name)
		if got := g.Stats(); got != w {
			t.Errorf("%s stats = %+v, want %+v", name, got, w)
		}
		mb := float64(g.TotalParamBytes()) / (1 << 20)
		if mb < wantMB[name]*0.9 || mb > wantMB[name]*1.1 {
			t.Errorf("%s params %.1f MiB, want ~%.1f", name, mb, wantMB[name])
		}
	}
}
