package models

import (
	"fmt"

	"respect/internal/graph"
)

// inceptionV3 builds InceptionV3: factorized-convolution inception modules
// over a 299×299 input. Appears in the paper's Figure 5 gap-to-optimal
// study.
func inceptionV3() (*graph.Graph, error) {
	b := newBuilder("Inception_v3")

	x := b.input(299, 299, 3)
	x = b.convBN("conv2d_1", x, 3, 3, 2, 32, false)
	x = b.convBN("conv2d_2", x, 3, 3, 1, 32, false)
	x = b.convBN("conv2d_3", x, 3, 3, 1, 64, true)
	x = b.maxPool("max_pooling2d_1", x, 3, 2, false)
	x = b.convBN("conv2d_4", x, 1, 1, 1, 80, false)
	x = b.convBN("conv2d_5", x, 3, 3, 1, 192, false)
	x = b.maxPool("max_pooling2d_2", x, 3, 2, false)

	// mixed 0..2: 35×35 modules with 5×5 branch.
	for i, poolC := range []int{32, 64, 64} {
		name := fmt.Sprintf("mixed%d", i)
		b0 := b.convBN(name+"_b0", x, 1, 1, 1, 64, true)
		b1 := b.convBN(name+"_b1_1", x, 1, 1, 1, 48, true)
		b1 = b.convBN(name+"_b1_2", b1, 5, 5, 1, 64, true)
		b2 := b.convBN(name+"_b2_1", x, 1, 1, 1, 64, true)
		b2 = b.convBN(name+"_b2_2", b2, 3, 3, 1, 96, true)
		b2 = b.convBN(name+"_b2_3", b2, 3, 3, 1, 96, true)
		bp := b.avgPool(name+"_pool", x, 3, 1, true)
		bp = b.convBN(name+"_bp", bp, 1, 1, 1, poolC, true)
		x = b.concat(name, b0, b1, b2, bp)
	}

	// mixed 3: grid reduction to 17×17.
	{
		b0 := b.convBN("mixed3_b0", x, 3, 3, 2, 384, false)
		b1 := b.convBN("mixed3_b1_1", x, 1, 1, 1, 64, true)
		b1 = b.convBN("mixed3_b1_2", b1, 3, 3, 1, 96, true)
		b1 = b.convBN("mixed3_b1_3", b1, 3, 3, 2, 96, false)
		bp := b.maxPool("mixed3_pool", x, 3, 2, false)
		x = b.concat("mixed3", b0, b1, bp)
	}

	// mixed 4..7: 17×17 modules with factorized 7×7 branches.
	for i, c7 := range []int{128, 160, 160, 192} {
		name := fmt.Sprintf("mixed%d", i+4)
		b0 := b.convBN(name+"_b0", x, 1, 1, 1, 192, true)
		b1 := b.convBN(name+"_b1_1", x, 1, 1, 1, c7, true)
		b1 = b.convBN(name+"_b1_2", b1, 1, 7, 1, c7, true)
		b1 = b.convBN(name+"_b1_3", b1, 7, 1, 1, 192, true)
		b2 := b.convBN(name+"_b2_1", x, 1, 1, 1, c7, true)
		b2 = b.convBN(name+"_b2_2", b2, 7, 1, 1, c7, true)
		b2 = b.convBN(name+"_b2_3", b2, 1, 7, 1, c7, true)
		b2 = b.convBN(name+"_b2_4", b2, 7, 1, 1, c7, true)
		b2 = b.convBN(name+"_b2_5", b2, 1, 7, 1, 192, true)
		bp := b.avgPool(name+"_pool", x, 3, 1, true)
		bp = b.convBN(name+"_bp", bp, 1, 1, 1, 192, true)
		x = b.concat(name, b0, b1, b2, bp)
	}

	// mixed 8: grid reduction to 8×8.
	{
		b0 := b.convBN("mixed8_b0_1", x, 1, 1, 1, 192, true)
		b0 = b.convBN("mixed8_b0_2", b0, 3, 3, 2, 320, false)
		b1 := b.convBN("mixed8_b1_1", x, 1, 1, 1, 192, true)
		b1 = b.convBN("mixed8_b1_2", b1, 1, 7, 1, 192, true)
		b1 = b.convBN("mixed8_b1_3", b1, 7, 1, 1, 192, true)
		b1 = b.convBN("mixed8_b1_4", b1, 3, 3, 2, 192, false)
		bp := b.maxPool("mixed8_pool", x, 3, 2, false)
		x = b.concat("mixed8", b0, b1, bp)
	}

	// mixed 9..10: 8×8 modules with split 1×3 / 3×1 branches.
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("mixed%d", i+9)
		b0 := b.convBN(name+"_b0", x, 1, 1, 1, 320, true)
		b1 := b.convBN(name+"_b1_1", x, 1, 1, 1, 384, true)
		b1a := b.convBN(name+"_b1_2a", b1, 1, 3, 1, 384, true)
		b1b := b.convBN(name+"_b1_2b", b1, 3, 1, 1, 384, true)
		b1c := b.concat(name+"_b1_concat", b1a, b1b)
		b2 := b.convBN(name+"_b2_1", x, 1, 1, 1, 448, true)
		b2 = b.convBN(name+"_b2_2", b2, 3, 3, 1, 384, true)
		b2a := b.convBN(name+"_b2_3a", b2, 1, 3, 1, 384, true)
		b2b := b.convBN(name+"_b2_3b", b2, 3, 1, 1, 384, true)
		b2c := b.concat(name+"_b2_concat", b2a, b2b)
		bp := b.avgPool(name+"_pool", x, 3, 1, true)
		bp = b.convBN(name+"_bp", bp, 1, 1, 1, 192, true)
		x = b.concat(name, b0, b1c, b2c, bp)
	}

	x = b.gap("avg_pool", x)
	b.dense("predictions", x, 1000)
	return b.finish()
}

// inceptionResNetV2 builds Inception-ResNet-v2: the largest evaluated
// graph (|V| = 782, deg(V) = 4 via the four-way mixed_5b and mixed_7a
// concatenations). Residual scaling lambdas are single two-input nodes,
// matching the paper's DAG extraction.
func inceptionResNetV2() (*graph.Graph, error) {
	b := newBuilder("InceptionResNetv2")

	x := b.input(299, 299, 3)
	x = b.convBN("conv2d_1", x, 3, 3, 2, 32, false)
	x = b.convBN("conv2d_2", x, 3, 3, 1, 32, false)
	x = b.convBN("conv2d_3", x, 3, 3, 1, 64, true)
	x = b.maxPool("max_pooling2d_1", x, 3, 2, false)
	x = b.convBN("conv2d_4", x, 1, 1, 1, 80, false)
	x = b.convBN("conv2d_5", x, 3, 3, 1, 192, false)
	x = b.maxPool("max_pooling2d_2", x, 3, 2, false)

	// mixed_5b (Inception-A): the four-way concat that sets deg(V) = 4.
	{
		b0 := b.convBN("mixed_5b_b0", x, 1, 1, 1, 96, true)
		b1 := b.convBN("mixed_5b_b1_1", x, 1, 1, 1, 48, true)
		b1 = b.convBN("mixed_5b_b1_2", b1, 5, 5, 1, 64, true)
		b2 := b.convBN("mixed_5b_b2_1", x, 1, 1, 1, 64, true)
		b2 = b.convBN("mixed_5b_b2_2", b2, 3, 3, 1, 96, true)
		b2 = b.convBN("mixed_5b_b2_3", b2, 3, 3, 1, 96, true)
		bp := b.avgPool("mixed_5b_pool", x, 3, 1, true)
		bp = b.convBN("mixed_5b_bp", bp, 1, 1, 1, 64, true)
		x = b.concat("mixed_5b", b0, b1, b2, bp)
	}

	// 10 × block35 (Inception-ResNet-A).
	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("block35_%d", i)
		b0 := b.convBN(name+"_b0", x, 1, 1, 1, 32, true)
		b1 := b.convBN(name+"_b1_1", x, 1, 1, 1, 32, true)
		b1 = b.convBN(name+"_b1_2", b1, 3, 3, 1, 32, true)
		b2 := b.convBN(name+"_b2_1", x, 1, 1, 1, 32, true)
		b2 = b.convBN(name+"_b2_2", b2, 3, 3, 1, 48, true)
		b2 = b.convBN(name+"_b2_3", b2, 3, 3, 1, 64, true)
		mix := b.concat(name+"_mixed", b0, b1, b2)
		up := b.conv(name+"_conv", mix, 1, 1, 1, 320, true, true)
		x = b.scaleAdd(name, x, up)
		x = b.relu(name+"_ac", x)
	}

	// mixed_6a (Reduction-A).
	{
		b0 := b.convBN("mixed_6a_b0", x, 3, 3, 2, 384, false)
		b1 := b.convBN("mixed_6a_b1_1", x, 1, 1, 1, 256, true)
		b1 = b.convBN("mixed_6a_b1_2", b1, 3, 3, 1, 256, true)
		b1 = b.convBN("mixed_6a_b1_3", b1, 3, 3, 2, 384, false)
		bp := b.maxPool("mixed_6a_pool", x, 3, 2, false)
		x = b.concat("mixed_6a", b0, b1, bp)
	}

	// 20 × block17 (Inception-ResNet-B).
	for i := 1; i <= 20; i++ {
		name := fmt.Sprintf("block17_%d", i)
		b0 := b.convBN(name+"_b0", x, 1, 1, 1, 192, true)
		b1 := b.convBN(name+"_b1_1", x, 1, 1, 1, 128, true)
		b1 = b.convBN(name+"_b1_2", b1, 1, 7, 1, 160, true)
		b1 = b.convBN(name+"_b1_3", b1, 7, 1, 1, 192, true)
		mix := b.concat(name+"_mixed", b0, b1)
		up := b.conv(name+"_conv", mix, 1, 1, 1, 1088, true, true)
		x = b.scaleAdd(name, x, up)
		x = b.relu(name+"_ac", x)
	}

	// mixed_7a (Reduction-B): the second four-way concat.
	{
		b0 := b.convBN("mixed_7a_b0_1", x, 1, 1, 1, 256, true)
		b0 = b.convBN("mixed_7a_b0_2", b0, 3, 3, 2, 384, false)
		b1 := b.convBN("mixed_7a_b1_1", x, 1, 1, 1, 256, true)
		b1 = b.convBN("mixed_7a_b1_2", b1, 3, 3, 2, 288, false)
		b2 := b.convBN("mixed_7a_b2_1", x, 1, 1, 1, 256, true)
		b2 = b.convBN("mixed_7a_b2_2", b2, 3, 3, 1, 288, true)
		b2 = b.convBN("mixed_7a_b2_3", b2, 3, 3, 2, 320, false)
		bp := b.maxPool("mixed_7a_pool", x, 3, 2, false)
		x = b.concat("mixed_7a", b0, b1, b2, bp)
	}

	// 9 × block8 with relu, plus the final scale-1.0 block without.
	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("block8_%d", i)
		b0 := b.convBN(name+"_b0", x, 1, 1, 1, 192, true)
		b1 := b.convBN(name+"_b1_1", x, 1, 1, 1, 192, true)
		b1 = b.convBN(name+"_b1_2", b1, 1, 3, 1, 224, true)
		b1 = b.convBN(name+"_b1_3", b1, 3, 1, 1, 256, true)
		mix := b.concat(name+"_mixed", b0, b1)
		up := b.conv(name+"_conv", mix, 1, 1, 1, 2080, true, true)
		x = b.scaleAdd(name, x, up)
		if i < 10 {
			x = b.relu(name+"_ac", x)
		}
	}

	x = b.convBN("conv_7b", x, 1, 1, 1, 1536, true)
	x = b.gap("avg_pool", x)
	b.dense("predictions", x, 1000)
	return b.finish()
}
