package models

import (
	"fmt"

	"respect/internal/graph"
)

// resNetBlocks maps depth to the per-stack block counts of the ResNet
// family.
var resNetBlocks = map[int][4]int{
	50:  {3, 4, 6, 3},
	101: {3, 4, 23, 3},
	152: {3, 8, 36, 3},
}

// resNetV1 builds ResNet-50/101/152 (post-activation residual networks) at
// Keras layer granularity.
func resNetV1(name string, depth int) (*graph.Graph, error) {
	blocks := resNetBlocks[depth]
	b := newBuilder(name)

	x := b.input(224, 224, 3)
	x = b.pad("conv1_pad", x, 3)
	x = b.conv("conv1_conv", x, 7, 7, 2, 64, false, true)
	x = b.bn("conv1_bn", x)
	x = b.relu("conv1_relu", x)
	x = b.pad("pool1_pad", x, 1)
	x = b.maxPool("pool1_pool", x, 3, 2, false)

	filters := [4]int{64, 128, 256, 512}
	for s := 0; s < 4; s++ {
		stride := 2
		if s == 0 {
			stride = 1
		}
		for blk := 0; blk < blocks[s]; blk++ {
			st := 1
			convShortcut := false
			if blk == 0 {
				st = stride
				convShortcut = true
			}
			x = resV1Block(b, blockName(s, blk), x, filters[s], st, convShortcut)
		}
	}

	x = b.gap("avg_pool", x)
	b.dense("predictions", x, 1000)
	return b.finish()
}

// resV1Block is Keras' block1: bottleneck conv stack with post-activation
// and an optional projection shortcut.
func resV1Block(b *builder, name string, x, filters, stride int, convShortcut bool) int {
	shortcut := x
	if convShortcut {
		sc := b.conv(name+"_0_conv", x, 1, 1, stride, 4*filters, true, true)
		shortcut = b.bn(name+"_0_bn", sc)
	}
	y := b.conv(name+"_1_conv", x, 1, 1, stride, filters, true, true)
	y = b.bn(name+"_1_bn", y)
	y = b.relu(name+"_1_relu", y)
	y = b.conv(name+"_2_conv", y, 3, 3, 1, filters, true, true)
	y = b.bn(name+"_2_bn", y)
	y = b.relu(name+"_2_relu", y)
	y = b.conv(name+"_3_conv", y, 1, 1, 1, 4*filters, true, true)
	y = b.bn(name+"_3_bn", y)
	y = b.addOp(name+"_add", shortcut, y)
	return b.relu(name+"_out", y)
}

// resNetV2 builds ResNet-50V2/101V2/152V2 (pre-activation residual
// networks). Differences from v1 that matter for the graph shape: a
// bn-free stem, pre-activation bn+relu in every block, an explicit zero-pad
// before the strided 3×3, stride applied in the *last* block of each of
// the first three stacks (with a max-pool shortcut), and a bn+relu head.
func resNetV2(name string, depth int) (*graph.Graph, error) {
	blocks := resNetBlocks[depth]
	b := newBuilder(name)

	x := b.input(224, 224, 3)
	x = b.pad("conv1_pad", x, 3)
	x = b.conv("conv1_conv", x, 7, 7, 2, 64, false, true)
	x = b.pad("pool1_pad", x, 1)
	x = b.maxPool("pool1_pool", x, 3, 2, false)

	filters := [4]int{64, 128, 256, 512}
	for s := 0; s < 4; s++ {
		for blk := 0; blk < blocks[s]; blk++ {
			stride := 1
			if blk == blocks[s]-1 && s < 3 {
				stride = 2 // Keras stack2: stride1 on the final block
			}
			x = resV2Block(b, blockName(s, blk), x, filters[s], stride, blk == 0)
		}
	}

	x = b.bn("post_bn", x)
	x = b.relu("post_relu", x)
	x = b.gap("avg_pool", x)
	b.dense("predictions", x, 1000)
	return b.finish()
}

// resV2Block is Keras' block2: pre-activation bottleneck.
func resV2Block(b *builder, name string, x, filters, stride int, convShortcut bool) int {
	preact := b.bn(name+"_preact_bn", x)
	preact = b.relu(name+"_preact_relu", preact)

	shortcut := x
	switch {
	case convShortcut:
		shortcut = b.conv(name+"_0_conv", preact, 1, 1, stride, 4*filters, true, true)
	case stride > 1:
		shortcut = b.maxPool(name+"_0_pool", x, 1, stride, true)
	}

	y := b.conv(name+"_1_conv", preact, 1, 1, 1, filters, true, false)
	y = b.bn(name+"_1_bn", y)
	y = b.relu(name+"_1_relu", y)
	y = b.pad(name+"_2_pad", y, 1)
	y = b.conv(name+"_2_conv", y, 3, 3, stride, filters, false, false)
	y = b.bn(name+"_2_bn", y)
	y = b.relu(name+"_2_relu", y)
	y = b.conv(name+"_3_conv", y, 1, 1, 1, 4*filters, true, true)
	return b.addOp(name+"_out", shortcut, y)
}

func blockName(stack, block int) string {
	return fmt.Sprintf("conv%d_block%d", stack+2, block+1)
}
