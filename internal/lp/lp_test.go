package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimple2D(t *testing.T) {
	// min -x - y s.t. x + y <= 4, x <= 2, y <= 3  -> x=2 (or 1), y ...
	// optimum: x + y = 4 with x <= 2, y <= 3: objective -4.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 2},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -4) {
		t.Fatalf("got %+v", s)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 3, x >= 1 -> x=3,y=0? x+2y minimized with
	// y=0, x=3: objective 3.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 3},
			{Coeffs: []float64{1, 0}, Sense: GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 3) || !approx(s.X[0], 3) {
		t.Fatalf("got %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("got %+v", s)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("got %+v", s)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 means y >= x + 1; min y s.t. that and x >= 0: y = 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{0, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Sense: LE, RHS: -1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 1) {
		t.Fatalf("got %+v", s)
	}
}

func TestMalformed(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("zero vars accepted")
	}
	p := &Problem{NumVars: 2, Objective: []float64{1, 1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("ragged constraint accepted")
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows exercise artificial-variable cleanup.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{1, 0}, Sense: GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 2) {
		t.Fatalf("got %+v", s)
	}
}

// TestQuickAgainstVertexEnumeration cross-checks the simplex against brute
// force over basic feasible points for random small box-constrained LPs.
func TestQuickAgainstVertexEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2-3 vars
		// Box constraints x_j <= u_j plus one coupling row.
		ub := make([]float64, n)
		for j := range ub {
			ub[j] = 1 + float64(rng.Intn(5))
		}
		coup := make([]float64, n)
		for j := range coup {
			coup[j] = float64(rng.Intn(3))
		}
		rhs := 1 + float64(rng.Intn(8))
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(11) - 5)
		}

		p := &Problem{NumVars: n, Objective: obj}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: LE, RHS: ub[j]})
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: coup, Sense: LE, RHS: rhs})

		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}

		// Brute force on a fine grid (coarse but sufficient: optimum of an
		// LP over this polytope is attained at a vertex whose coordinates
		// here are rational with small denominators; grid step 0.25).
		best := math.Inf(1)
		var rec func(j int, x []float64)
		rec = func(j int, x []float64) {
			if j == n {
				dot := 0.0
				for k := 0; k < n; k++ {
					dot += coup[k] * x[k]
				}
				if dot > rhs+1e-9 {
					return
				}
				o := 0.0
				for k := 0; k < n; k++ {
					o += obj[k] * x[k]
				}
				if o < best {
					best = o
				}
				return
			}
			for v := 0.0; v <= ub[j]+1e-9; v += 0.25 {
				x[j] = v
				rec(j+1, x)
			}
		}
		rec(0, make([]float64, n))
		return s.Objective <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 2 // non-negative rows keep it bounded-ish
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: LE, RHS: rng.Float64() * 10})
		}
		// Bound every variable so the LP is bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: LE, RHS: 5})
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return true // infeasible/unbounded classification not checked here
		}
		for _, c := range p.Constraints {
			dot := 0.0
			for j := range c.Coeffs {
				dot += c.Coeffs[j] * s.X[j]
			}
			switch c.Sense {
			case LE:
				if dot > c.RHS+1e-6 {
					return false
				}
			case GE:
				if dot < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(dot-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		for _, v := range s.X {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}

func TestDeadlineAborts(t *testing.T) {
	// A moderately sized random LP with an immediate deadline must return
	// ErrDeadline rather than running to optimality.
	rng := rand.New(rand.NewSource(1))
	n, m := 60, 60
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = rng.Float64() - 0.5
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: LE, RHS: 10})
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: LE, RHS: 1})
	}
	_, err := SolveOpt(p, Opts{MaxIters: 3})
	if err != ErrDeadline {
		t.Fatalf("MaxIters: got %v, want ErrDeadline", err)
	}
	_, err = SolveOpt(p, Opts{Deadline: time.Now().Add(-time.Second)})
	if err != ErrDeadline {
		t.Fatalf("Deadline: got %v, want ErrDeadline", err)
	}
	// Without bounds the same problem solves.
	s, err := Solve(p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("unbounded-budget solve: %v %v", s.Status, err)
	}
}
