// Package lp implements a dense two-phase primal simplex solver for linear
// programs in inequality form. It is the foundation of the branch-and-bound
// MILP solver (package ilp) that stands in for IBM ILOG CPLEX, the exact
// baseline of the paper.
//
// Problems are stated as
//
//	minimize cᵀx  subject to  A x (≤,=,≥) b,  x ≥ 0
//
// and solved with Bland's anti-cycling rule.
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Sense is a constraint relation.
type Sense int8

// Constraint relations.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

// Constraint is one row aᵀx (sense) b.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program in the package's canonical form.
type Problem struct {
	// NumVars is the dimension of x; all variables are non-negative.
	NumVars int
	// Objective holds the minimization coefficients c (length NumVars).
	Objective []float64
	// Constraints are the rows of A with senses and right-hand sides.
	Constraints []Constraint
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", int8(s))
}

// Solution is an LP solve result.
type Solution struct {
	Status Status
	// X is the optimal point (valid when Status == Optimal).
	X []float64
	// Objective is cᵀX.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// ErrBadProblem reports a malformed problem definition.
var ErrBadProblem = errors.New("lp: malformed problem")

// ErrDeadline reports that the solve was cut off by its deadline before
// reaching a conclusive status.
var ErrDeadline = errors.New("lp: deadline exceeded")

// Opts bounds a solve.
type Opts struct {
	// Deadline aborts the solve when passed (zero value disables).
	Deadline time.Time
	// Cancel aborts the solve when closed (nil disables). Callers pass
	// ctx.Done() so an explicitly cancelled context stops a pivot loop even
	// when it carries no deadline.
	Cancel <-chan struct{}
	// MaxIters caps total simplex pivots (0 uses the defensive default).
	MaxIters int
}

const eps = 1e-9

// Solve runs two-phase simplex on p without a deadline.
func Solve(p *Problem) (Solution, error) {
	return SolveOpt(p, Opts{})
}

// SolveOpt runs two-phase simplex on p under the given bounds.
func SolveOpt(p *Problem, opts Opts) (Solution, error) {
	if p.NumVars <= 0 || len(p.Objective) != p.NumVars {
		return Solution{}, fmt.Errorf("%w: %d vars, %d objective coefficients", ErrBadProblem, p.NumVars, len(p.Objective))
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return Solution{}, fmt.Errorf("%w: constraint %d has %d coefficients", ErrBadProblem, i, len(c.Coeffs))
		}
	}

	t := newTableau(p)
	t.deadline = opts.Deadline
	t.cancel = opts.Cancel
	t.maxIters = opts.MaxIters
	if t.maxIters <= 0 {
		t.maxIters = 200000
	}
	it1, feasible := t.phase1()
	if t.aborted {
		return Solution{Iterations: it1}, ErrDeadline
	}
	if !feasible {
		return Solution{Status: Infeasible, Iterations: it1}, nil
	}
	it2, bounded := t.phase2()
	if t.aborted {
		return Solution{Iterations: it1 + it2}, ErrDeadline
	}
	if !bounded {
		return Solution{Status: Unbounded, Iterations: it1 + it2}, nil
	}
	x := t.extract()
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj, Iterations: it1 + it2}, nil
}

// tableau is the dense simplex tableau: rows = constraints, columns =
// structural vars | slack/surplus vars | artificial vars | RHS.
type tableau struct {
	m, n    int // constraints, structural variables
	nSlack  int
	nArt    int
	cols    int // total variable columns
	a       [][]float64
	basis   []int
	cost    []float64 // phase-2 objective over all columns
	artBase int       // first artificial column

	deadline time.Time
	cancel   <-chan struct{}
	maxIters int
	iters    int
	aborted  bool
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	n := p.NumVars
	nSlack := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			nSlack++
		}
	}
	nArt := m // upper bound; one artificial per row as needed
	cols := n + nSlack + nArt
	t := &tableau{m: m, n: n, nSlack: nSlack, nArt: 0, cols: cols, artBase: n + nSlack}
	t.a = make([][]float64, m)
	t.basis = make([]int, m)
	t.cost = make([]float64, cols)
	copy(t.cost, p.Objective)

	slack := 0
	for i, c := range p.Constraints {
		row := make([]float64, cols+1)
		copy(row, c.Coeffs)
		rhs := c.RHS
		sign := 1.0
		if rhs < 0 {
			// Normalize to non-negative RHS, flipping the sense.
			sign = -1
			rhs = -rhs
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
		}
		sense := c.Sense
		if sign < 0 {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		row[cols] = rhs
		switch sense {
		case LE:
			row[n+slack] = 1
			t.basis[i] = n + slack
			slack++
		case GE:
			row[n+slack] = -1
			slack++
			art := t.artBase + t.nArt
			t.nArt++
			row[art] = 1
			t.basis[i] = art
		case EQ:
			art := t.artBase + t.nArt
			t.nArt++
			row[art] = 1
			t.basis[i] = art
		}
		t.a[i] = row
	}
	return t
}

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[row] = col
}

// simplex minimizes the reduced costs in z over the allowed columns,
// returning (iterations, bounded).
func (t *tableau) simplex(z []float64, allowed int) (int, bool) {
	iters := 0
	// Reduced-cost row maintained explicitly: zRow = z - z_B B⁻¹ A.
	zRow := make([]float64, t.cols+1)
	copy(zRow, z)
	for i, b := range t.basis {
		f := zRow[b]
		if f == 0 {
			continue
		}
		for j := range zRow {
			zRow[j] -= f * t.a[i][j]
		}
	}
	for {
		// Bland's rule: entering column = smallest index with negative
		// reduced cost.
		col := -1
		for j := 0; j < allowed; j++ {
			if zRow[j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return iters, true
		}
		// Ratio test, Bland ties by smallest basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				r := t.a[i][t.cols] / t.a[i][col]
				if r < best-eps || (r < best+eps && (row < 0 || t.basis[i] < t.basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row < 0 {
			return iters, false
		}
		t.pivot(row, col)
		f := zRow[col]
		pr := t.a[row]
		for j := range zRow {
			zRow[j] -= f * pr[j]
		}
		iters++
		t.iters++
		if t.iters >= t.maxIters {
			// Bland's rule precludes cycling, so hitting the cap means a
			// numerically stuck or deliberately budget-bound instance.
			t.aborted = true
			return iters, true
		}
		if iters&0x3f == 0 {
			if !t.deadline.IsZero() && time.Now().After(t.deadline) {
				t.aborted = true
				return iters, true
			}
			if t.cancel != nil {
				select {
				case <-t.cancel:
					t.aborted = true
					return iters, true
				default:
				}
			}
		}
	}
}

// phase1 drives artificial variables to zero.
func (t *tableau) phase1() (int, bool) {
	if t.nArt == 0 {
		return 0, true
	}
	z := make([]float64, t.cols+1)
	for j := t.artBase; j < t.artBase+t.nArt; j++ {
		z[j] = 1
	}
	iters, _ := t.simplex(z, t.cols)
	// Feasible iff the artificial objective is zero.
	sum := 0.0
	for i, b := range t.basis {
		if b >= t.artBase {
			sum += t.a[i][t.cols]
		}
	}
	if sum > 1e-7 {
		return iters, false
	}
	// Pivot any degenerate artificial variables out of the basis.
	for i, b := range t.basis {
		if b < t.artBase {
			continue
		}
		done := false
		for j := 0; j < t.artBase && !done; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				done = true
			}
		}
		// A row with no structural pivot is redundant; leave the
		// artificial basic at zero.
	}
	return iters, true
}

// phase2 optimizes the real objective over structural and slack columns.
func (t *tableau) phase2() (int, bool) {
	z := make([]float64, t.cols+1)
	copy(z, t.cost)
	return t.simplex(z, t.artBase)
}

// extract reads the structural solution out of the basis.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.a[i][t.cols]
		}
	}
	return x
}
