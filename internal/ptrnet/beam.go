package ptrnet

import (
	"math"
	"sort"
)

// InferBeam is forward-only beam-search decoding with the given width:
// at each step every live beam expands to its `width` most probable next
// nodes and the `width` highest log-probability partial sequences survive.
// Width 1 reduces to greedy Infer. Beam search trades width× compute for
// sequences of higher model likelihood — the third standard pointer-
// network inference mode beside greedy and sampling (Bello et al.).
func (m *Model) InferBeam(emb [][]float64, width int) []int {
	n := len(emb)
	if width < 2 {
		return m.Infer(emb)
	}
	if width > n {
		width = n
	}
	h := m.Cfg.Hidden
	f := newFwd(m)

	// Shared encoder pass.
	encH := make([]float64, h)
	encC := make([]float64, h)
	contexts := make([]float64, n*h)
	for i := 0; i < n; i++ {
		f.lstmStep(m.Enc, emb[i], encH, encC)
		copy(contexts[i*h:(i+1)*h], encH)
	}
	w1g := f.matMulNM(contexts, n, m.Glimpse.W1)
	w1p := f.matMulNM(contexts, n, m.Pointer.W1)

	type beam struct {
		decH, decC []float64
		mask       []bool
		seq        []int
		logp       float64
		d          []float64 // next decoder input
	}
	start := &beam{
		decH: append([]float64(nil), encH...),
		decC: append([]float64(nil), encC...),
		mask: make([]bool, n),
		d:    append([]float64(nil), m.Dec0.Data...),
	}
	for i := range start.mask {
		start.mask[i] = true
	}
	beams := []*beam{start}

	probs := make([]float64, n)
	g := make([]float64, h)
	type cand struct {
		parent *beam
		node   int
		logp   float64
	}
	for step := 0; step < n; step++ {
		cands := make([]cand, 0, len(beams)*width)
		for _, b := range beams {
			// Advance the decoder one step for this beam.
			f.lstmStep(m.Dec, b.d, b.decH, b.decC)
			f.attScores(m.Glimpse, w1g, b.decH, probs, n)
			softmaxMasked(probs, b.mask)
			for j := 0; j < h; j++ {
				g[j] = 0
			}
			for i := 0; i < n; i++ {
				if probs[i] == 0 {
					continue
				}
				row := contexts[i*h : (i+1)*h]
				pv := probs[i]
				for j := 0; j < h; j++ {
					g[j] += pv * row[j]
				}
			}
			f.attScores(m.Pointer, w1p, g, probs, n)
			softmaxMasked(probs, b.mask)

			// Top `width` expansions of this beam.
			type nv struct {
				node int
				p    float64
			}
			local := make([]nv, 0, n)
			for i := 0; i < n; i++ {
				if b.mask[i] && probs[i] > 0 {
					local = append(local, nv{i, probs[i]})
				}
			}
			sort.Slice(local, func(a, c int) bool { return local[a].p > local[c].p })
			if len(local) > width {
				local = local[:width]
			}
			for _, l := range local {
				cands = append(cands, cand{parent: b, node: l.node, logp: b.logp + math.Log(l.p)})
			}
		}
		sort.Slice(cands, func(a, c int) bool { return cands[a].logp > cands[c].logp })
		if len(cands) > width {
			cands = cands[:width]
		}
		next := make([]*beam, 0, len(cands))
		for _, c := range cands {
			nb := &beam{
				decH: append([]float64(nil), c.parent.decH...),
				decC: append([]float64(nil), c.parent.decC...),
				mask: append([]bool(nil), c.parent.mask...),
				seq:  append(append([]int(nil), c.parent.seq...), c.node),
				logp: c.logp,
				d:    append([]float64(nil), emb[c.node]...),
			}
			nb.mask[c.node] = false
			next = append(next, nb)
		}
		beams = next
	}
	best := beams[0]
	for _, b := range beams[1:] {
		if b.logp > best.logp {
			best = b
		}
	}
	return best.seq
}

// ScoreSeq returns the forward-only log-probability of emitting seq — the
// deployment-time counterpart of DecodeForced, without a tape.
func (m *Model) ScoreSeq(emb [][]float64, seq []int) float64 {
	n := len(emb)
	h := m.Cfg.Hidden
	f := newFwd(m)

	encH := make([]float64, h)
	encC := make([]float64, h)
	contexts := make([]float64, n*h)
	for i := 0; i < n; i++ {
		f.lstmStep(m.Enc, emb[i], encH, encC)
		copy(contexts[i*h:(i+1)*h], encH)
	}
	w1g := f.matMulNM(contexts, n, m.Glimpse.W1)
	w1p := f.matMulNM(contexts, n, m.Pointer.W1)

	decH := append([]float64(nil), encH...)
	decC := append([]float64(nil), encC...)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	d := append([]float64(nil), m.Dec0.Data...)
	probs := make([]float64, n)
	g := make([]float64, h)
	logp := 0.0
	for step := 0; step < n; step++ {
		f.lstmStep(m.Dec, d, decH, decC)
		f.attScores(m.Glimpse, w1g, decH, probs, n)
		softmaxMasked(probs, mask)
		for j := 0; j < h; j++ {
			g[j] = 0
		}
		for i := 0; i < n; i++ {
			if probs[i] == 0 {
				continue
			}
			row := contexts[i*h : (i+1)*h]
			pv := probs[i]
			for j := 0; j < h; j++ {
				g[j] += pv * row[j]
			}
		}
		f.attScores(m.Pointer, w1p, g, probs, n)
		softmaxMasked(probs, mask)
		v := seq[step]
		p := probs[v]
		if p < 1e-300 {
			p = 1e-300
		}
		logp += math.Log(p)
		mask[v] = false
		d = append(d[:0], emb[v]...)
	}
	return logp
}
