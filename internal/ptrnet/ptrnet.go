// Package ptrnet implements the paper's RL agent: an encoder/decoder
// LSTM pointer network with glimpse and pointer attention (Figure 1b,
// Algorithm 1). The encoder digests the embedded node queue q into a
// context matrix; the decoder emits a permutation of the nodes by pointing
// at one unscheduled node per step, with visited nodes masked to −∞.
//
// Two execution paths are provided: Decode builds the computation on an
// autodiff tape (training, REINFORCE log-probabilities) and Infer is an
// allocation-lean forward-only pass (deployment; the path timed in the
// paper's scheduling-runtime comparisons).
package ptrnet

import (
	"fmt"
	"math"
	"math/rand"

	ad "respect/internal/autodiff"
	"respect/internal/nn"
	"respect/internal/tensor"
)

// Config shapes the network.
type Config struct {
	// InputDim is the node-embedding width (embed.Config.Dim()).
	InputDim int
	// Hidden is the LSTM/attention width; the paper uses 256 cells.
	Hidden int
	// Seed drives weight initialization.
	Seed int64
}

// Model is the LSTM-PtrNet agent.
type Model struct {
	Cfg     Config
	Enc     *nn.LSTMCell
	Dec     *nn.LSTMCell
	Glimpse *nn.Attention
	Pointer *nn.Attention
	// Dec0 is the trainable input to the first decoding step (Alg. 1).
	Dec0 *tensor.Mat
}

// New initializes a model.
func New(cfg Config) *Model {
	if cfg.InputDim < 1 || cfg.Hidden < 1 {
		panic(fmt.Sprintf("ptrnet: bad config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Model{
		Cfg:     cfg,
		Enc:     nn.NewLSTMCell(cfg.InputDim, cfg.Hidden, rng),
		Dec:     nn.NewLSTMCell(cfg.InputDim, cfg.Hidden, rng),
		Glimpse: nn.NewAttention(cfg.Hidden, rng),
		Pointer: nn.NewAttention(cfg.Hidden, rng),
		Dec0:    tensor.Xavier(1, cfg.InputDim, rng),
	}
}

// Params returns all trainable matrices.
func (m *Model) Params() []*tensor.Mat {
	var ps []*tensor.Mat
	ps = append(ps, m.Enc.Params()...)
	ps = append(ps, m.Dec.Params()...)
	ps = append(ps, m.Glimpse.Params()...)
	ps = append(ps, m.Pointer.Params()...)
	ps = append(ps, m.Dec0)
	return ps
}

// Clone deep-copies the model (for the rollout baseline snapshot).
func (m *Model) Clone() *Model {
	c := New(m.Cfg)
	src, dst := m.Params(), c.Params()
	for i := range src {
		copy(dst[i].Data, src[i].Data)
	}
	return c
}

// DecodeResult is a tape-backed decode outcome.
type DecodeResult struct {
	// Seq is the emitted node permutation π.
	Seq []int
	// LogProb is Σᵢ log p(π(i) | π(<i), G) as a 1×1 tape value — the
	// REINFORCE surrogate.
	LogProb ad.Value
	// AvgEntropy is the mean per-step selection entropy (diagnostic).
	AvgEntropy float64
}

// Decode runs the full encoder/decoder on the tape. When sample is true
// nodes are drawn from the pointer distribution (training exploration);
// otherwise argmax (greedy) selection is used.
func (m *Model) Decode(t *ad.Tape, emb [][]float64, sample bool, rng *rand.Rand) DecodeResult {
	return m.decode(t, emb, sample, rng, nil)
}

// DecodeForced teacher-forces the given permutation, returning its
// log-probability under the model — used by the supervised-imitation
// ablation and by gradient checks (forced selection keeps the loss smooth
// under parameter perturbation).
func (m *Model) DecodeForced(t *ad.Tape, emb [][]float64, forced []int) DecodeResult {
	if len(forced) != len(emb) {
		panic(fmt.Sprintf("ptrnet: forced sequence length %d, want %d", len(forced), len(emb)))
	}
	return m.decode(t, emb, false, nil, forced)
}

func (m *Model) decode(t *ad.Tape, emb [][]float64, sample bool, rng *rand.Rand, forced []int) DecodeResult {
	n := len(emb)
	if n == 0 {
		panic("ptrnet: empty embedding")
	}
	if len(emb[0]) != m.Cfg.InputDim {
		panic(fmt.Sprintf("ptrnet: embedding width %d, model expects %d", len(emb[0]), m.Cfg.InputDim))
	}

	// Encoder: contexts Ctext_i and final latent state.
	s := m.Enc.ZeroState(t)
	rows := make([]ad.Value, n)
	for i := 0; i < n; i++ {
		s = m.Enc.Step(t, t.InputVec(emb[i]), s)
		rows[i] = s.H
	}
	contexts := ad.StackRows(rows)
	w1g := m.Glimpse.Precompute(t, contexts)
	w1p := m.Pointer.Precompute(t, contexts)

	dec := nn.State{H: s.H, C: s.C}
	d := t.Param(m.Dec0)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}

	seq := make([]int, 0, n)
	var logp ad.Value
	first := true
	entropy := 0.0
	for step := 0; step < n; step++ {
		dec = m.Dec.Step(t, d, dec)
		g := m.Glimpse.Glimpse(t, contexts, w1g, dec.H, mask)
		scores := m.Pointer.Scores(t, w1p, g)
		p := ad.SoftmaxMasked(scores, mask)

		probs := p.Data()
		idx := -1
		if forced != nil {
			idx = forced[step]
			if !mask[idx] {
				panic(fmt.Sprintf("ptrnet: forced sequence repeats node %d", idx))
			}
		} else if sample {
			r := rng.Float64()
			acc := 0.0
			for i, pv := range probs {
				if !mask[i] {
					continue
				}
				acc += pv
				if r <= acc {
					idx = i
					break
				}
			}
		}
		if idx < 0 { // greedy, or numerical remainder in sampling
			best := math.Inf(-1)
			for i, pv := range probs {
				if mask[i] && pv > best {
					best = pv
					idx = i
				}
			}
		}
		for _, pv := range probs {
			if pv > 0 {
				entropy -= pv * math.Log(pv)
			}
		}

		lp := ad.LogPick(p, idx)
		if first {
			logp = lp
			first = false
		} else {
			logp = ad.Add(logp, lp)
		}
		seq = append(seq, idx)
		mask[idx] = false
		d = t.InputVec(emb[idx])
	}
	return DecodeResult{Seq: seq, LogProb: logp, AvgEntropy: entropy / float64(n)}
}

// GreedySeq is Decode with greedy selection on a throwaway tape, returning
// only the permutation (used for the rollout baseline).
func (m *Model) GreedySeq(emb [][]float64) []int {
	return m.Infer(emb)
}

// Infer is the forward-only deployment path: identical math to greedy
// Decode without tape bookkeeping. This is what the solve-time experiments
// measure.
func (m *Model) Infer(emb [][]float64) []int {
	return m.infer(emb, nil)
}

// InferSample is forward-only stochastic decoding: nodes are drawn from
// the pointer distribution instead of argmax. Used by best-of-K sampled
// inference, where the tape-based Decode would be needlessly heavy.
func (m *Model) InferSample(emb [][]float64, rng *rand.Rand) []int {
	return m.infer(emb, rng)
}

func (m *Model) infer(emb [][]float64, rng *rand.Rand) []int {
	n := len(emb)
	h := m.Cfg.Hidden
	f := newFwd(m)

	// Encoder.
	encH := make([]float64, h)
	encC := make([]float64, h)
	contexts := make([]float64, n*h)
	for i := 0; i < n; i++ {
		f.lstmStep(m.Enc, emb[i], encH, encC)
		copy(contexts[i*h:(i+1)*h], encH)
	}
	// Precompute W1·E for both heads.
	w1g := f.matMulNM(contexts, n, m.Glimpse.W1)
	w1p := f.matMulNM(contexts, n, m.Pointer.W1)

	decH := append([]float64(nil), encH...)
	decC := append([]float64(nil), encC...)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	d := append([]float64(nil), m.Dec0.Data...)

	seq := make([]int, 0, n)
	probs := make([]float64, n)
	g := make([]float64, h)
	for step := 0; step < n; step++ {
		f.lstmStep(m.Dec, d, decH, decC)
		// Glimpse.
		f.attScores(m.Glimpse, w1g, decH, probs, n)
		softmaxMasked(probs, mask)
		for j := 0; j < h; j++ {
			g[j] = 0
		}
		for i := 0; i < n; i++ {
			if probs[i] == 0 {
				continue
			}
			row := contexts[i*h : (i+1)*h]
			pv := probs[i]
			for j := 0; j < h; j++ {
				g[j] += pv * row[j]
			}
		}
		// Pointer.
		f.attScores(m.Pointer, w1p, g, probs, n)
		softmaxMasked(probs, mask)
		best := -1
		if rng != nil {
			r := rng.Float64()
			acc := 0.0
			for i := 0; i < n; i++ {
				if !mask[i] {
					continue
				}
				acc += probs[i]
				if r <= acc {
					best = i
					break
				}
			}
		}
		if best < 0 {
			bestP := math.Inf(-1)
			for i := 0; i < n; i++ {
				if mask[i] && probs[i] > bestP {
					bestP = probs[i]
					best = i
				}
			}
		}
		seq = append(seq, best)
		mask[best] = false
		d = append(d[:0], emb[best]...)
	}
	return seq
}

// fwd holds scratch buffers for the forward-only path.
type fwd struct {
	hidden int
	z      []float64 // 4h gate preactivations
	q      []float64 // h query projection
}

func newFwd(m *Model) *fwd {
	return &fwd{hidden: m.Cfg.Hidden, z: make([]float64, 4*m.Cfg.Hidden), q: make([]float64, m.Cfg.Hidden)}
}

// lstmStep advances (h, c) in place.
func (f *fwd) lstmStep(cell *nn.LSTMCell, x, h, c []float64) {
	hd := f.hidden
	z := f.z
	copy(z, cell.B.Data)
	for k, xv := range x {
		if xv == 0 {
			continue
		}
		row := cell.Wx.Data[k*4*hd : (k+1)*4*hd]
		for j, wv := range row {
			z[j] += xv * wv
		}
	}
	for k, hv := range h {
		if hv == 0 {
			continue
		}
		row := cell.Wh.Data[k*4*hd : (k+1)*4*hd]
		for j, wv := range row {
			z[j] += hv * wv
		}
	}
	for j := 0; j < hd; j++ {
		i := sigmoid(z[j])
		fg := sigmoid(z[hd+j])
		gg := math.Tanh(z[2*hd+j])
		o := sigmoid(z[3*hd+j])
		c[j] = fg*c[j] + i*gg
		h[j] = o * math.Tanh(c[j])
	}
}

// matMulNM computes E (n×h) · W (h×h) into a fresh n×h buffer.
func (f *fwd) matMulNM(e []float64, n int, w *tensor.Mat) []float64 {
	h := f.hidden
	out := make([]float64, n*h)
	for i := 0; i < n; i++ {
		er := e[i*h : (i+1)*h]
		or := out[i*h : (i+1)*h]
		for k, ev := range er {
			if ev == 0 {
				continue
			}
			wr := w.Data[k*h : (k+1)*h]
			for j, wv := range wr {
				or[j] += ev * wv
			}
		}
	}
	return out
}

// attScores fills scores[i] = vᵀ tanh(w1e_i + W2·q).
func (f *fwd) attScores(att *nn.Attention, w1e, query, scores []float64, n int) {
	h := f.hidden
	q := f.q
	for j := 0; j < h; j++ {
		q[j] = 0
	}
	for k, qv := range query {
		if qv == 0 {
			continue
		}
		row := att.W2.Data[k*h : (k+1)*h]
		for j, wv := range row {
			q[j] += qv * wv
		}
	}
	v := att.V.Data
	for i := 0; i < n; i++ {
		row := w1e[i*h : (i+1)*h]
		var s float64
		for j := 0; j < h; j++ {
			s += v[j] * math.Tanh(row[j]+q[j])
		}
		scores[i] = s
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// softmaxMasked normalizes scores in place over allowed entries, zeroing
// the rest.
func softmaxMasked(scores []float64, mask []bool) {
	maxv := math.Inf(-1)
	for i, s := range scores {
		if mask[i] && s > maxv {
			maxv = s
		}
	}
	var sum float64
	for i := range scores {
		if mask[i] {
			scores[i] = math.Exp(scores[i] - maxv)
			sum += scores[i]
		} else {
			scores[i] = 0
		}
	}
	for i := range scores {
		scores[i] /= sum
	}
}
