package ptrnet

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the gob wire format for a serialized model.
type snapshot struct {
	Cfg     Config
	Weights [][]float64
	Shapes  [][2]int
}

// Write serializes the model weights.
func (m *Model) Write(w io.Writer) error {
	snap := snapshot{Cfg: m.Cfg}
	for _, p := range m.Params() {
		snap.Weights = append(snap.Weights, append([]float64(nil), p.Data...))
		snap.Shapes = append(snap.Shapes, [2]int{p.Rows, p.Cols})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// ReadFrom deserializes a model previously written with Write.
func ReadFrom(r io.Reader) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ptrnet: decode: %w", err)
	}
	m := New(snap.Cfg)
	ps := m.Params()
	if len(ps) != len(snap.Weights) {
		return nil, fmt.Errorf("ptrnet: snapshot has %d tensors, model has %d", len(snap.Weights), len(ps))
	}
	for i, p := range ps {
		if snap.Shapes[i] != [2]int{p.Rows, p.Cols} {
			return nil, fmt.Errorf("ptrnet: tensor %d shape %v, want %dx%d", i, snap.Shapes[i], p.Rows, p.Cols)
		}
		copy(p.Data, snap.Weights[i])
	}
	return m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
