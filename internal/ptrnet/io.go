package ptrnet

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// weightsMagic opens every versioned weights file. The byte after it is
// the schema version. Files written before the header existed start
// directly with a gob stream, which never begins with these bytes, so
// the two formats are distinguishable from the first read.
var weightsMagic = []byte("RSPTWTS\n")

// WeightsVersion is the weights-file schema version this build writes
// and accepts. ReadWeights rejects any other version outright — a hot
// reload must never interpret a stale-format file silently.
const WeightsVersion = 1

// maxWeightsDim bounds Config dimensions accepted from a weights file.
// It is far above anything the paper uses (hidden 256) and keeps a
// corrupted or adversarial header from driving New into a huge
// allocation or a panic.
const maxWeightsDim = 4096

// snapshot is the gob wire format for a serialized model.
type snapshot struct {
	Cfg     Config
	Weights [][]float64
	Shapes  [][2]int
}

// WriteWeights serializes the model in the versioned wire format:
// an 8-byte magic, a version byte, then the gob-encoded snapshot.
func WriteWeights(w io.Writer, m *Model) error {
	if _, err := w.Write(weightsMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{WeightsVersion}); err != nil {
		return err
	}
	snap := snapshot{Cfg: m.Cfg}
	for _, p := range m.Params() {
		snap.Weights = append(snap.Weights, append([]float64(nil), p.Data...))
		snap.Shapes = append(snap.Shapes, [2]int{p.Rows, p.Cols})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// ReadWeights deserializes a model written with WriteWeights. Files
// from before the header existed (a bare gob stream) are still
// accepted; a file that carries the magic but a different version is
// rejected. Corrupted or truncated input yields an error, never a
// panic — the online promotion path feeds this from untrusted disk
// state.
func ReadWeights(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(weightsMagic))
	if err == nil && string(head) == string(weightsMagic) {
		if _, err := br.Discard(len(weightsMagic)); err != nil {
			return nil, err
		}
		ver, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("ptrnet: truncated weights header: %w", err)
		}
		if ver != WeightsVersion {
			return nil, fmt.Errorf("ptrnet: weights schema version %d, this build reads %d", ver, WeightsVersion)
		}
	} else if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	// No magic: legacy pre-header file; the gob stream starts at the
	// current read position either way.
	var snap snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ptrnet: decode: %w", err)
	}
	return modelFromSnapshot(snap)
}

// modelFromSnapshot validates a decoded snapshot before materializing
// it; every field is attacker-controlled from ReadWeights' view.
func modelFromSnapshot(snap snapshot) (*Model, error) {
	cfg := snap.Cfg
	if cfg.InputDim < 1 || cfg.InputDim > maxWeightsDim || cfg.Hidden < 1 || cfg.Hidden > maxWeightsDim {
		return nil, fmt.Errorf("ptrnet: snapshot config %+v out of range [1,%d]", cfg, maxWeightsDim)
	}
	if len(snap.Weights) != len(snap.Shapes) {
		return nil, fmt.Errorf("ptrnet: snapshot has %d tensors but %d shapes", len(snap.Weights), len(snap.Shapes))
	}
	m := New(cfg)
	ps := m.Params()
	if len(ps) != len(snap.Weights) {
		return nil, fmt.Errorf("ptrnet: snapshot has %d tensors, model has %d", len(snap.Weights), len(ps))
	}
	for i, p := range ps {
		if snap.Shapes[i] != [2]int{p.Rows, p.Cols} {
			return nil, fmt.Errorf("ptrnet: tensor %d shape %v, want %dx%d", i, snap.Shapes[i], p.Rows, p.Cols)
		}
		if len(snap.Weights[i]) != p.Rows*p.Cols {
			return nil, fmt.Errorf("ptrnet: tensor %d has %d values, want %d", i, len(snap.Weights[i]), p.Rows*p.Cols)
		}
		copy(p.Data, snap.Weights[i])
	}
	return m, nil
}

// Write serializes the model weights in the versioned format
// (see WriteWeights).
func (m *Model) Write(w io.Writer) error {
	return WriteWeights(w, m)
}

// ReadFrom deserializes a model previously written with Write or
// WriteWeights, accepting legacy headerless files (see ReadWeights).
func ReadFrom(r io.Reader) (*Model, error) {
	return ReadWeights(r)
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
