package ptrnet

import (
	"math/rand"
	"testing"

	ad "respect/internal/autodiff"
)

func TestBeamWidthOneIsGreedy(t *testing.T) {
	m := testModel(21)
	emb := testEmb(t, 15, 22)
	greedy := m.Infer(emb)
	beam := m.InferBeam(emb, 1)
	for i := range greedy {
		if greedy[i] != beam[i] {
			t.Fatalf("beam(1) %v != greedy %v", beam, greedy)
		}
	}
}

func TestBeamIsPermutation(t *testing.T) {
	m := testModel(23)
	for _, w := range []int{2, 4, 8} {
		emb := testEmb(t, 12, int64(w))
		seq := m.InferBeam(emb, w)
		seen := map[int]bool{}
		for _, v := range seq {
			if v < 0 || v >= 12 || seen[v] {
				t.Fatalf("width %d: bad permutation %v", w, seq)
			}
			seen[v] = true
		}
	}
}

func TestBeamLikelihoodAtLeastGreedy(t *testing.T) {
	m := testModel(25)
	for seed := int64(0); seed < 6; seed++ {
		emb := testEmb(t, 14, 100+seed)
		greedy := m.Infer(emb)
		beam := m.InferBeam(emb, 6)
		lg := m.ScoreSeq(emb, greedy)
		lb := m.ScoreSeq(emb, beam)
		if lb < lg-1e-9 {
			t.Fatalf("seed %d: beam logp %.6f < greedy %.6f", seed, lb, lg)
		}
	}
}

func TestScoreSeqMatchesDecodeForced(t *testing.T) {
	m := testModel(27)
	emb := testEmb(t, 10, 28)
	rng := rand.New(rand.NewSource(29))
	seq := m.InferSample(emb, rng)
	fwd := m.ScoreSeq(emb, seq)
	tape := m.DecodeForced(ad.NewTape(), emb, seq)
	diff := fwd - tape.LogProb.Data()[0]
	if diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ScoreSeq %.12f != DecodeForced %.12f", fwd, tape.LogProb.Data()[0])
	}
}

func TestBeamWidthClamped(t *testing.T) {
	m := testModel(31)
	emb := testEmb(t, 5, 32)
	seq := m.InferBeam(emb, 50) // wider than the graph
	if len(seq) != 5 {
		t.Fatalf("len %d", len(seq))
	}
}
