package ptrnet

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	ad "respect/internal/autodiff"
)

// TestWeightsHeaderVersioned checks the wire format leads with the
// magic and version byte and round-trips through ReadWeights.
func TestWeightsHeaderVersioned(t *testing.T) {
	m := testModel(41)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, weightsMagic) {
		t.Fatalf("file does not start with magic: % x", raw[:12])
	}
	if raw[len(weightsMagic)] != WeightsVersion {
		t.Fatalf("version byte %d, want %d", raw[len(weightsMagic)], WeightsVersion)
	}
	m2, err := ReadWeights(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	emb := testEmb(t, 10, 42)
	want, got := m.Infer(emb), m2.Infer(emb)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("round trip changed behaviour: %v vs %v", want, got)
		}
	}
}

// legacyBytes serializes m in the pre-header format: a bare gob stream.
func legacyBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	snap := snapshot{Cfg: m.Cfg}
	for _, p := range m.Params() {
		snap.Weights = append(snap.Weights, append([]float64(nil), p.Data...))
		snap.Shapes = append(snap.Shapes, [2]int{p.Rows, p.Cols})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLegacyWeightsFallback loads a headerless pre-versioning file.
func TestLegacyWeightsFallback(t *testing.T) {
	m := testModel(43)
	m2, err := ReadWeights(bytes.NewReader(legacyBytes(t, m)))
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	emb := testEmb(t, 8, 44)
	want, got := m.Infer(emb), m2.Infer(emb)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("legacy round trip changed behaviour")
		}
	}
}

// TestWeightsVersionMismatchRejected: right magic, wrong version byte.
func TestWeightsVersionMismatchRejected(t *testing.T) {
	m := testModel(45)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(weightsMagic)] = 99
	_, err := ReadWeights(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version 99 accepted or wrong error: %v", err)
	}
}

// TestWeightsTruncatedRejected: every proper prefix must error cleanly.
func TestWeightsTruncatedRejected(t *testing.T) {
	m := testModel(46)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, len(weightsMagic), len(weightsMagic) + 1, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadWeights(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("prefix of %d bytes accepted", n)
		}
	}
}

// TestWeightsCorruptedSnapshotRejected feeds snapshots with hostile
// fields: decode must error, never panic or allocate wildly.
func TestWeightsCorruptedSnapshotRejected(t *testing.T) {
	encode := func(snap snapshot) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string]snapshot{
		"zero config":     {},
		"huge hidden":     {Cfg: Config{InputDim: 4, Hidden: 1 << 20}},
		"negative dims":   {Cfg: Config{InputDim: -3, Hidden: -7}},
		"shape mismatch":  {Cfg: Config{InputDim: 4, Hidden: 2}, Weights: [][]float64{{1}}, Shapes: [][2]int{{2, 2}}},
		"uneven lengths":  {Cfg: Config{InputDim: 4, Hidden: 2}, Weights: [][]float64{{1}, {2}}, Shapes: [][2]int{{1, 1}}},
		"too few tensors": {Cfg: Config{InputDim: 4, Hidden: 2}, Weights: [][]float64{{1}}, Shapes: [][2]int{{1, 1}}},
	}
	for name, snap := range cases {
		if _, err := ReadWeights(bytes.NewReader(encode(snap))); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		}
	}
}

// TestSingleNodeGraph covers the n=1 degenerate case across every
// inference mode: the only legal output is the one-element sequence.
func TestSingleNodeGraph(t *testing.T) {
	m := testModel(47)
	emb := testEmb(t, 6, 48)[:1]
	if got := m.Infer(emb); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Infer: %v", got)
	}
	for _, w := range []int{1, 2, 5} {
		if got := m.InferBeam(emb, w); len(got) != 1 || got[0] != 0 {
			t.Fatalf("InferBeam(%d): %v", w, got)
		}
	}
	rng := rand.New(rand.NewSource(49))
	if got := m.InferSample(emb, rng); len(got) != 1 || got[0] != 0 {
		t.Fatalf("InferSample: %v", got)
	}
	res := m.Decode(ad.NewTape(), emb, true, rng)
	if len(res.Seq) != 1 || res.Seq[0] != 0 {
		t.Fatalf("Decode: %v", res.Seq)
	}
}

// FuzzReadWeights throws corrupted, truncated and mutated weight files
// at the reader. The invariant the online promotion path depends on:
// ReadWeights either returns a usable model or an error — it never
// panics, and a returned model survives a decode.
func FuzzReadWeights(f *testing.F) {
	m := New(Config{InputDim: 5, Hidden: 4, Seed: 50})
	var versioned bytes.Buffer
	if err := WriteWeights(&versioned, m); err != nil {
		f.Fatal(err)
	}
	var legacy bytes.Buffer
	snap := snapshot{Cfg: m.Cfg}
	for _, p := range m.Params() {
		snap.Weights = append(snap.Weights, append([]float64(nil), p.Data...))
		snap.Shapes = append(snap.Shapes, [2]int{p.Rows, p.Cols})
	}
	if err := gob.NewEncoder(&legacy).Encode(snap); err != nil {
		f.Fatal(err)
	}
	f.Add(versioned.Bytes())
	f.Add(legacy.Bytes())
	f.Add(versioned.Bytes()[:len(versioned.Bytes())/2])
	f.Add(append(append([]byte(nil), weightsMagic...), 7))
	f.Add([]byte("not a model at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadWeights(bytes.NewReader(data))
		if err != nil {
			return
		}
		emb := [][]float64{make([]float64, m.Cfg.InputDim)}
		if got := m.Infer(emb); len(got) != 1 {
			t.Fatalf("accepted model emitted %v for a single node", got)
		}
	})
}
