package ptrnet

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	ad "respect/internal/autodiff"
	"respect/internal/embed"
	"respect/internal/synth"
)

func testEmb(t testing.TB, n int, seed int64) [][]float64 {
	t.Helper()
	cfg := synth.DefaultConfig(3)
	cfg.NumNodes = n
	s, err := synth.NewSampler(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return embed.Graph(s.Sample(), embed.Default())
}

func testModel(seed int64) *Model {
	return New(Config{InputDim: embed.Default().Dim(), Hidden: 12, Seed: seed})
}

func TestDecodeIsPermutation(t *testing.T) {
	m := testModel(1)
	emb := testEmb(t, 14, 2)
	rng := rand.New(rand.NewSource(3))
	for _, sample := range []bool{false, true} {
		tp := ad.NewTape()
		res := m.Decode(tp, emb, sample, rng)
		if len(res.Seq) != 14 {
			t.Fatalf("seq len %d", len(res.Seq))
		}
		seen := map[int]bool{}
		for _, v := range res.Seq {
			if v < 0 || v >= 14 || seen[v] {
				t.Fatalf("bad permutation %v", res.Seq)
			}
			seen[v] = true
		}
		if lp := res.LogProb.Data()[0]; lp > 0 {
			t.Fatalf("log prob %v > 0", lp)
		}
		if res.AvgEntropy < 0 {
			t.Fatalf("entropy %v < 0", res.AvgEntropy)
		}
	}
}

func TestInferMatchesGreedyDecode(t *testing.T) {
	m := testModel(4)
	for _, n := range []int{5, 17, 30} {
		emb := testEmb(t, n, int64(n))
		tp := ad.NewTape()
		dec := m.Decode(tp, emb, false, nil)
		inf := m.Infer(emb)
		for i := range dec.Seq {
			if dec.Seq[i] != inf[i] {
				t.Fatalf("n=%d: decode %v != infer %v", n, dec.Seq, inf)
			}
		}
	}
}

func TestDecodeForcedLogProb(t *testing.T) {
	m := testModel(5)
	emb := testEmb(t, 8, 6)
	tp := ad.NewTape()
	greedy := m.Decode(tp, emb, false, nil)
	tp2 := ad.NewTape()
	forced := m.DecodeForced(tp2, emb, greedy.Seq)
	a, b := greedy.LogProb.Data()[0], forced.LogProb.Data()[0]
	if diff := a - b; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("forced logprob %v != greedy %v", b, a)
	}
	// Any other permutation must be no more likely than greedy's first
	// step... (weak sanity: forced reversed differs).
	rev := make([]int, len(greedy.Seq))
	for i, v := range greedy.Seq {
		rev[len(rev)-1-i] = v
	}
	tp3 := ad.NewTape()
	other := m.DecodeForced(tp3, emb, rev)
	if other.LogProb.Data()[0] > a+1e-9 {
		t.Fatalf("reversed sequence more likely than greedy argmax chain")
	}
}

func TestDecodeForcedRejectsRepeats(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m := testModel(6)
	emb := testEmb(t, 5, 7)
	m.DecodeForced(ad.NewTape(), emb, []int{0, 0, 1, 2, 3})
}

func TestGradCheckThroughForcedDecode(t *testing.T) {
	m := New(Config{InputDim: embed.Default().Dim(), Hidden: 5, Seed: 8})
	emb := testEmb(t, 5, 9)
	forced := []int{2, 0, 4, 1, 3}
	worst, err := ad.GradCheck(m.Params(), func(tp *ad.Tape) ad.Value {
		return m.DecodeForced(tp, emb, forced).LogProb
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestSamplingStochasticButSeeded(t *testing.T) {
	m := testModel(10)
	emb := testEmb(t, 12, 11)
	seqA := m.Decode(ad.NewTape(), emb, true, rand.New(rand.NewSource(1))).Seq
	seqB := m.Decode(ad.NewTape(), emb, true, rand.New(rand.NewSource(1))).Seq
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatal("same seed gave different samples")
		}
	}
	diff := false
	for trial := int64(2); trial < 12 && !diff; trial++ {
		seqC := m.Decode(ad.NewTape(), emb, true, rand.New(rand.NewSource(trial))).Seq
		for i := range seqA {
			if seqA[i] != seqC[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("sampling is deterministic across seeds")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := testModel(12)
	c := m.Clone()
	emb := testEmb(t, 10, 13)
	before := m.Infer(emb)
	// Mutate the clone heavily; original must be unaffected.
	for _, p := range c.Params() {
		for i := range p.Data {
			p.Data[i] = 9
		}
	}
	after := m.Infer(emb)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("clone shares storage with original")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := testModel(14)
	emb := testEmb(t, 16, 15)
	want := m.Infer(emb)

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Infer(emb)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("round trip changed behaviour: %v vs %v", want, got)
		}
	}

	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m3, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got3 := m3.Infer(emb)
	for i := range want {
		if want[i] != got3[i] {
			t.Fatal("file round trip changed behaviour")
		}
	}
}

func TestLoadCorruptFails(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{InputDim: 0, Hidden: 4})
}

func BenchmarkInfer30(b *testing.B) {
	m := New(Config{InputDim: embed.Default().Dim(), Hidden: 64, Seed: 1})
	emb := testEmb(b, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Infer(emb)
	}
}
