package speculate

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/synth"
)

// testGraph builds a small distinct DAG; i varies the node parameters so
// every index yields a distinct fingerprint.
func testGraph(t testing.TB, i int) *graph.Graph {
	t.Helper()
	g := graph.New(fmt.Sprintf("tg-%d", i))
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.OpInput, ParamBytes: int64(100 + i)})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.OpConv, ParamBytes: 1 << 10, OutBytes: 64})
	c := g.AddNode(graph.Node{Name: "c", Kind: graph.OpDense, ParamBytes: 2 << 10, OutBytes: 32})
	d := g.AddNode(graph.Node{Name: "d", Kind: graph.OpSoftmax, OutBytes: 16})
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	return g
}

// fakeTarget is an in-memory Target with togglable truncation.
type fakeTarget struct {
	mu       sync.Mutex
	stored   map[Key]bool
	truncate bool // when set, Warm behaves like a budget-cut solve: nothing stored
	warms    int
}

func newFakeTarget() *fakeTarget { return &fakeTarget{stored: make(map[Key]bool)} }

func (f *fakeTarget) key(g *graph.Graph, n int) Key { return Key{FP: g.Fingerprint(), Stages: n} }

func (f *fakeTarget) Contains(g *graph.Graph, n int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stored[f.key(g, n)]
}

func (f *fakeTarget) Warm(ctx context.Context, g *graph.Graph, n int) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.warms++
	if f.truncate {
		return false, nil
	}
	f.stored[f.key(g, n)] = true
	return true, nil
}

func (f *fakeTarget) evict(g *graph.Graph, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.stored, f.key(g, n))
}

func TestTrackerDecayHalves(t *testing.T) {
	now := time.Unix(0, 0)
	tr := NewTracker(time.Minute, 16)
	tr.now = func() time.Time { return now }

	g := testGraph(t, 1)
	key := Key{FP: g.Fingerprint(), Stages: 4}
	for i := 0; i < 8; i++ {
		tr.Observe(g, 4)
	}
	if got := tr.Score(key); got != 8 {
		t.Fatalf("score after 8 observations = %v, want 8", got)
	}
	now = now.Add(time.Minute)
	if got := tr.Score(key); got < 3.99 || got > 4.01 {
		t.Fatalf("score after one half-life = %v, want ~4", got)
	}
	now = now.Add(2 * time.Minute)
	if got := tr.Score(key); got < 0.99 || got > 1.01 {
		t.Fatalf("score after three half-lives = %v, want ~1", got)
	}
}

func TestTrackerCapacityDropsColdest(t *testing.T) {
	now := time.Unix(0, 0)
	tr := NewTracker(time.Minute, 2)
	tr.now = func() time.Time { return now }

	hot, warm, fresh := testGraph(t, 1), testGraph(t, 2), testGraph(t, 3)
	tr.Observe(hot, 4)
	tr.Observe(hot, 4)
	tr.Observe(hot, 4)
	tr.Observe(warm, 4)
	tr.Observe(fresh, 4) // over capacity: warm (score 1 < 3) is dropped
	if tr.Len() != 2 {
		t.Fatalf("tracker len = %d, want 2", tr.Len())
	}
	if tr.Score(Key{FP: warm.Fingerprint(), Stages: 4}) != 0 {
		t.Fatal("coldest key survived the capacity eviction")
	}
	if tr.Score(Key{FP: hot.Fingerprint(), Stages: 4}) != 3 {
		t.Fatal("hottest key was dropped")
	}
}

// TestTrackerGraphRetention: graphs (client-sized memory) are retained
// only once a key's score reaches retainScore, and the node budget sheds
// the coldest graphs while keeping their scores.
func TestTrackerGraphRetention(t *testing.T) {
	tr := NewTracker(time.Minute, 16)
	tr.retainScore = 1.5

	g := testGraph(t, 1)
	key := Key{FP: g.Fingerprint(), Stages: 4}
	tr.Observe(g, 4)
	if tr.Graph(key) != nil {
		t.Fatal("graph retained below retainScore")
	}
	tr.Observe(g, 4)
	if tr.Graph(key) == nil {
		t.Fatal("graph not retained once hot")
	}

	// Node budget: room for exactly one 4-node graph; retaining a second,
	// hotter graph sheds the colder one's graph but keeps its score.
	now := time.Unix(0, 0)
	tb := NewTracker(time.Minute, 16)
	tb.maxNodes = 4
	tb.now = func() time.Time { return now }
	a, b := testGraph(t, 1), testGraph(t, 2)
	keyA := Key{FP: a.Fingerprint(), Stages: 4}
	tb.Observe(a, 4)           // a: score 1, graph retained (at budget)
	now = now.Add(time.Minute) // a decays to 0.5
	tb.Observe(b, 4)           // b: score 1 > a's 0.5 — a's graph is shed
	if tb.Graph(keyA) != nil {
		t.Fatal("node budget kept the colder graph")
	}
	if tb.Graph(Key{FP: b.Fingerprint(), Stages: 4}) == nil {
		t.Fatal("node budget shed the hotter graph")
	}
	if tb.Score(keyA) == 0 {
		t.Fatal("shedding a graph dropped its score")
	}
}

// TestTrackerConcurrentDecay exercises Observe/Score/Hot races under
// -race: decayed counters must stay consistent with concurrent access.
func TestTrackerConcurrentDecay(t *testing.T) {
	tr := NewTracker(time.Minute, 64)
	graphs := make([]*graph.Graph, 8)
	for i := range graphs {
		graphs[i] = testGraph(t, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe(graphs[(w+i)%len(graphs)], 1+i%4)
				if i%10 == 0 {
					tr.Hot(4)
					tr.Score(Key{FP: graphs[w].Fingerprint(), Stages: 1})
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, e := range tr.Hot(tr.Len()) {
		total += e.Score
	}
	// 8 workers x 200 observations, halved at most negligibly (test runs
	// far inside one half-life).
	if total < 1500 || total > 1600 {
		t.Fatalf("total decayed mass = %v, want ~1600", total)
	}
}

func TestMutationsStageNeighborsAndPrune(t *testing.T) {
	g := testGraph(t, 1) // 4 nodes, linear
	muts := Mutations(g, 3, 64)
	var stages []int
	pruned := false
	for _, m := range muts {
		if m.Graph == g {
			stages = append(stages, m.Stages)
		}
		if m.Graph.Name == g.Name+"~pruned" {
			pruned = true
			if m.Graph.NumNodes() != g.NumNodes()-1 {
				t.Fatalf("pruned variant has %d nodes, want %d", m.Graph.NumNodes(), g.NumNodes()-1)
			}
			if m.Graph.Fingerprint() == g.Fingerprint() {
				t.Fatal("pruned variant shares the source fingerprint")
			}
		}
	}
	if len(stages) != 2 || stages[0] != 2 || stages[1] != 4 {
		t.Fatalf("stage neighbors = %v, want [2 4]", stages)
	}
	if !pruned {
		t.Fatal("no pruned structural variant generated")
	}
	// Stage growth respects |V|: at stages == |V| only the shrink
	// neighbor survives for the source graph.
	for _, m := range Mutations(g, 4, 64) {
		if m.Graph == g && m.Stages > 4 {
			t.Fatalf("mutation grew stages to %d beyond |V|=4", m.Stages)
		}
	}
}

func TestMutationsZooFamily(t *testing.T) {
	s, err := synth.NewSampler(synth.DefaultConfig(3), 7)
	if err != nil {
		t.Fatal(err)
	}
	syn := s.Sample()
	for _, m := range Mutations(syn, 4, 64) {
		if m.Graph != syn && m.Graph.Name != syn.Name+"~pruned" {
			t.Fatalf("synthetic graph fanned out to unexpected variant %q", m.Graph.Name)
		}
	}

	if got := familyOf("ResNet152v2"); got != "ResNet" {
		t.Fatalf("familyOf(ResNet152v2) = %q", got)
	}
	if got := familyOf("Inception_v3"); got != "Inception" {
		t.Fatalf("familyOf(Inception_v3) = %q", got)
	}
	members := familyMembers("ResNet50")
	if len(members) == 0 || len(members) > maxFamilyVariants {
		t.Fatalf("familyMembers(ResNet50) returned %d graphs", len(members))
	}
	for _, m := range members {
		if m.Name == "ResNet50" || familyOf(m.Name) != "ResNet" {
			t.Fatalf("unexpected family member %q", m.Name)
		}
	}
}

// speculator builds a Speculator over tgt with a controllable occupancy
// probe and no family fan-out noise (synthetic graphs have no family).
func speculator(t *testing.T, tgt Target, occ *float64) *Speculator {
	t.Helper()
	var mu sync.Mutex
	sp, err := New(Config{
		Target: tgt,
		Occupancy: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return *occ
		},
		Watermark: 0.5,
		Budget:    16,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestSpeculatorWarmsPopularAndMutations(t *testing.T) {
	tgt := newFakeTarget()
	occ := 0.0
	sp := speculator(t, tgt, &occ)

	g := testGraph(t, 1)
	sp.ObserveRequest(g, 3)
	sp.ObserveRequest(g, 3)

	stored := sp.RunOnce(context.Background())
	if stored == 0 {
		t.Fatal("pass stored nothing for a hot key")
	}
	if !tgt.Contains(g, 3) {
		t.Fatal("popular key not warmed")
	}
	if !sp.WasSpeculative(g.Fingerprint(), 3) {
		t.Fatal("warmed key not marked speculative")
	}
	// Stage neighbors were speculated too.
	if !tgt.Contains(g, 2) || !tgt.Contains(g, 4) {
		t.Fatal("stage-neighbor mutations not warmed")
	}
	st := sp.Stats()
	if st.WarmsPopular == 0 || st.WarmsMutation == 0 {
		t.Fatalf("stats = %+v, want popular and mutation warms", st)
	}
	if st.SkippedWatermark != 0 {
		t.Fatalf("idle pass skipped %d candidates", st.SkippedWatermark)
	}

	// A second pass finds everything cached and does nothing.
	warmsBefore := tgt.warms
	if n := sp.RunOnce(context.Background()); n != 0 {
		t.Fatalf("second pass stored %d, want 0", n)
	}
	if tgt.warms != warmsBefore {
		t.Fatal("second pass re-solved cached candidates")
	}
}

func TestSpeculatorReAdmitsEvictedHotKeys(t *testing.T) {
	tgt := newFakeTarget()
	occ := 0.0
	sp := speculator(t, tgt, &occ)

	g := testGraph(t, 1)
	sp.ObserveRequest(g, 3)
	sp.ObserveRequest(g, 3)
	sp.RunOnce(context.Background())
	if !tgt.Contains(g, 3) {
		t.Fatal("setup: key not warmed")
	}

	tgt.evict(g, 3)
	sp.ObserveEviction(g.Fingerprint(), 3)
	if sp.WasSpeculative(g.Fingerprint(), 3) {
		t.Fatal("eviction did not clear the speculative mark")
	}
	sp.RunOnce(context.Background())
	if !tgt.Contains(g, 3) {
		t.Fatal("evicted hot key not re-admitted")
	}
	if sp.Stats().WarmsEvicted == 0 {
		t.Fatal("re-admission not counted under reason=evicted")
	}
}

func TestSpeculatorIgnoresColdEvictions(t *testing.T) {
	tgt := newFakeTarget()
	occ := 0.0
	sp := speculator(t, tgt, &occ)

	g := testGraph(t, 1)
	sp.ObserveRequest(g, 3) // score 1 < MinScore 1.5: not hot
	sp.ObserveEviction(g.Fingerprint(), 3)
	sp.RunOnce(context.Background())
	if tgt.Contains(g, 3) {
		t.Fatal("cold evicted key was re-admitted")
	}
	if sp.Stats().WarmsEvicted != 0 {
		t.Fatal("cold eviction counted as a warm")
	}
}

// TestSpeculatorYieldsAtWatermark is the backpressure contract: at or
// above the watermark a pass warms nothing at all, and the dropped
// candidates are visible in the skipped counter.
func TestSpeculatorYieldsAtWatermark(t *testing.T) {
	tgt := newFakeTarget()
	occ := 1.0
	sp := speculator(t, tgt, &occ)

	g := testGraph(t, 1)
	sp.ObserveRequest(g, 3)
	sp.ObserveRequest(g, 3)
	if n := sp.RunOnce(context.Background()); n != 0 {
		t.Fatalf("saturated pass stored %d, want 0", n)
	}
	if tgt.warms != 0 {
		t.Fatal("saturated pass ran solves")
	}
	st := sp.Stats()
	if st.SkippedWatermark == 0 {
		t.Fatal("yielded candidates not counted as skipped")
	}
	if st.Attempts != 0 {
		t.Fatalf("attempts = %d under saturation, want 0", st.Attempts)
	}

	// Occupancy drops below the watermark: the next pass proceeds.
	occ = 0.2
	if n := sp.RunOnce(context.Background()); n == 0 {
		t.Fatal("pass below the watermark stored nothing")
	}
}

// TestSpeculatorTruncatedSolvesNotMarked: a Target reporting
// budget-truncated solves (stored == false) must leave no speculative
// marks and no warm counts — mirroring the cache honesty contract that
// truncated results are never written.
func TestSpeculatorTruncatedSolvesNotMarked(t *testing.T) {
	tgt := newFakeTarget()
	tgt.truncate = true
	occ := 0.0
	sp := speculator(t, tgt, &occ)

	g := testGraph(t, 1)
	sp.ObserveRequest(g, 3)
	sp.ObserveRequest(g, 3)
	if n := sp.RunOnce(context.Background()); n != 0 {
		t.Fatalf("truncated pass reported %d stored", n)
	}
	if sp.WasSpeculative(g.Fingerprint(), 3) {
		t.Fatal("truncated solve marked speculative")
	}
	st := sp.Stats()
	if st.WarmsEvicted+st.WarmsPopular+st.WarmsMutation != 0 {
		t.Fatalf("truncated solves counted as warms: %+v", st)
	}
	if st.Attempts == 0 {
		t.Fatal("truncated solves not counted as attempts")
	}
}

func TestSpeculatorHitAttribution(t *testing.T) {
	tgt := newFakeTarget()
	occ := 0.0
	sp := speculator(t, tgt, &occ)

	g := testGraph(t, 1)
	sp.ObserveRequest(g, 3)
	sp.ObserveRequest(g, 3)
	sp.RunOnce(context.Background())

	if !sp.AttributeHit(g.Fingerprint(), 3) {
		t.Fatal("hit on speculative key not attributed")
	}
	if sp.AttributeHit(g.Fingerprint(), 2) && !sp.WasSpeculative(g.Fingerprint(), 2) {
		t.Fatal("attribution disagrees with the speculative set")
	}
	if sp.AttributeHit(testGraph(t, 9).Fingerprint(), 3) {
		t.Fatal("hit on never-speculated key attributed")
	}
	if sp.Stats().Hits < 1 {
		t.Fatal("attributed hits not counted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil Target accepted")
	}
	if _, err := New(Config{Target: newFakeTarget(), Watermark: 1.5}); err == nil {
		t.Fatal("watermark > 1 accepted")
	}
	if _, err := New(Config{Target: newFakeTarget(), Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	sp, err := New(Config{Target: newFakeTarget()})
	if err != nil {
		t.Fatal(err)
	}
	if sp.cfg.Watermark != defaultWatermark || sp.cfg.Budget != defaultBudget ||
		sp.cfg.TopK != defaultTopK || sp.cfg.SolveBudget != defaultSolveBudget {
		t.Fatalf("defaults not applied: %+v", sp.cfg)
	}
}

// TestWatermarkUnsetDisabledDistinct pins the unset/disabled split: zero
// still means "unset, take the default", the WatermarkAlwaysYield
// sentinel is legal and mutes warms at any occupancy, and other negative
// values are rejected with a message that states the actual legal
// values rather than claiming 0 is outside (0,1] while silently
// accepting it.
func TestWatermarkUnsetDisabledDistinct(t *testing.T) {
	// Rejected negatives name the sentinel and the default, so the legal
	// surface is discoverable from the error alone.
	_, err := New(Config{Target: newFakeTarget(), Watermark: -0.5})
	if err == nil {
		t.Fatal("negative non-sentinel watermark accepted")
	}
	for _, want := range []string{"(0,1]", "WatermarkAlwaysYield", "-1", "0.5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	// The sentinel: passes yield even on a fully idle controller.
	tgt := newFakeTarget()
	occ := 0.0
	var mu sync.Mutex
	sp, err := New(Config{
		Target:    tgt,
		Occupancy: func() float64 { mu.Lock(); defer mu.Unlock(); return occ },
		Watermark: WatermarkAlwaysYield,
		Budget:    16,
	})
	if err != nil {
		t.Fatalf("WatermarkAlwaysYield rejected: %v", err)
	}
	g := testGraph(t, 41)
	sp.ObserveRequest(g, 3)
	sp.ObserveRequest(g, 3)
	if n := sp.RunOnce(context.Background()); n != 0 {
		t.Fatalf("always-yield pass stored %d, want 0", n)
	}
	if tgt.warms != 0 {
		t.Fatal("always-yield pass ran solves")
	}
	st := sp.Stats()
	if st.SkippedWatermark == 0 || st.Attempts != 0 {
		t.Fatalf("always-yield accounting wrong: %+v", st)
	}

	// Demand tracking stays live behind the mute: the hot key is still
	// attributable state, it just never got warmed.
	if sp.WasSpeculative(g.Fingerprint(), 3) {
		t.Fatal("muted speculator marked a key speculative")
	}
}

// TestTrackerBoostMaxMerge: gossip merging is max-merge — idempotent
// under repeated delivery, never additive, and respectful of local decay.
func TestTrackerBoostMaxMerge(t *testing.T) {
	now := time.Unix(0, 0)
	tr := NewTracker(time.Minute, 16)
	tr.now = func() time.Time { return now }

	g := testGraph(t, 1)
	key := Key{FP: g.Fingerprint(), Stages: 4}

	if !tr.Boost(g, 4, 5) {
		t.Fatal("first boost of an untracked key did not raise")
	}
	if got := tr.Score(key); got != 5 {
		t.Fatalf("score after boost = %v, want 5", got)
	}
	// Redelivery of the same snapshot is a no-op, not a doubling.
	if tr.Boost(g, 4, 5) {
		t.Fatal("redelivered boost reported a raise")
	}
	if got := tr.Score(key); got != 5 {
		t.Fatalf("score after redelivery = %v, want 5 (max-merge, not add)", got)
	}
	// A lower remote score never drags a hotter local key down.
	tr.Boost(g, 4, 2)
	if got := tr.Score(key); got != 5 {
		t.Fatalf("score after lower boost = %v, want 5", got)
	}
	// Local observations keep accumulating on top of the merged score.
	tr.Observe(g, 4)
	if got := tr.Score(key); got != 6 {
		t.Fatalf("score after observe = %v, want 6", got)
	}
	// Decay applies to merged scores like any other.
	now = now.Add(time.Minute)
	if got := tr.Score(key); got < 2.99 || got > 3.01 {
		t.Fatalf("score after one half-life = %v, want ~3", got)
	}
	// Nonsense scores are ignored.
	if tr.Boost(g, 4, 0) || tr.Boost(g, 4, -3) || tr.Boost(nil, 4, 1) {
		t.Fatal("non-positive or nil-graph boost reported a raise")
	}
}

// TestTrackerBoostRetainsGraph: a boost past retainScore retains the
// graph so the local speculator can act without a client round trip,
// including filling in a graph on a non-raising merge.
func TestTrackerBoostRetainsGraph(t *testing.T) {
	tr := NewTracker(time.Minute, 16)
	tr.retainScore = 1.5

	g := testGraph(t, 1)
	key := Key{FP: g.Fingerprint(), Stages: 4}
	tr.Boost(g, 4, 1) // below retainScore: score only
	if tr.Graph(key) != nil {
		t.Fatal("graph retained below retainScore")
	}
	if !tr.Boost(g, 4, 1.4) {
		t.Fatal("1.4 > current 1 should raise")
	}
	if tr.Graph(key) != nil {
		t.Fatal("graph retained at 1.4 < retainScore 1.5")
	}
	tr.Boost(g, 4, 2)
	if tr.Graph(key) == nil {
		t.Fatal("graph not retained at score 2 >= retainScore 1.5")
	}

	// Non-raising merge still fills a missing graph: simulate a key made
	// hot by Observe while the graph was never retained (fresh tracker
	// with a higher bar, then bar crossed by boost).
	tr2 := NewTracker(time.Minute, 16)
	tr2.retainScore = 3
	for i := 0; i < 4; i++ {
		tr2.Observe(g, 4)
	}
	if tr2.Graph(key) == nil {
		t.Fatal("setup: observe should have retained at 4 >= 3")
	}
}

// TestSpeculatorHotEntriesAndMergeRemote: the gossip source yields only
// actionable entries, and merged remote demand drives the next pass's
// warms exactly like local demand.
func TestSpeculatorHotEntriesAndMergeRemote(t *testing.T) {
	target := newFakeTarget()
	s, err := New(Config{Target: target, Budget: 8, TopK: 8, MinScore: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := testGraph(t, 1), testGraph(t, 2)
	for i := 0; i < 3; i++ {
		s.ObserveRequest(hot, 4)
	}
	s.ObserveRequest(cold, 4) // score 1 < MinScore: not gossip-worthy

	entries := s.HotEntries(8)
	if len(entries) != 1 {
		t.Fatalf("HotEntries = %d entries, want 1 (cold keys and graph-less keys excluded)", len(entries))
	}
	if entries[0].Key.FP != hot.Fingerprint() || entries[0].Graph == nil {
		t.Fatalf("HotEntries[0] = %+v", entries[0])
	}

	// A receiving replica merges the entry and its next pass warms it.
	peerTarget := newFakeTarget()
	peer, err := New(Config{Target: peerTarget, Budget: 8, TopK: 8, MinScore: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !peer.MergeRemote(entries[0].Graph, entries[0].Key.Stages, entries[0].Score) {
		t.Fatal("MergeRemote of a fresh key did not raise")
	}
	// The pass warms the merged key itself plus whatever mutations the
	// generator derives from it — at least one store, key included.
	if n := peer.RunOnce(context.Background()); n < 1 {
		t.Fatalf("pass after merge warmed %d, want >= 1", n)
	}
	if !peerTarget.Contains(hot, 4) {
		t.Fatal("merged key not warmed into the peer's cache")
	}
}
