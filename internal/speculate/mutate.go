package speculate

import (
	"strings"

	"respect/internal/graph"
	"respect/internal/models"
)

// Candidate is one speculative scheduling instance: a graph plus a
// pipeline length worth warming ahead of demand.
type Candidate struct {
	Graph  *graph.Graph
	Stages int
}

// maxFamilyVariants bounds how many same-family zoo models one popular
// model fans out to; the speculation budget caps total work anyway, this
// just keeps a single hot ResNet from monopolizing the candidate list.
const maxFamilyVariants = 3

// Mutations generates likely near-future variants of a popular instance,
// in priority order:
//
//   - stage-count neighbors (numStages ± 1): clients tuning a deployment
//     sweep adjacent pipeline lengths of the same graph;
//   - zoo family members: demand for ResNet50 predicts demand for the
//     other ResNets (same graph family, the skew regime of edge serving);
//   - a structural variant with the last sink pruned: clients iterating
//     on a model (head swaps, layer pruning) re-submit near-identical
//     graphs.
//
// maxStages clamps the grown stage count; every candidate respects the
// invariant stages <= |V|. The source instance itself is never returned.
func Mutations(g *graph.Graph, numStages, maxStages int) []Candidate {
	var out []Candidate
	if numStages-1 >= 1 {
		out = append(out, Candidate{Graph: g, Stages: numStages - 1})
	}
	if numStages+1 <= maxStages && numStages+1 <= g.NumNodes() {
		out = append(out, Candidate{Graph: g, Stages: numStages + 1})
	}
	for _, fg := range familyMembers(g.Name) {
		stages := numStages
		if stages > fg.NumNodes() {
			stages = fg.NumNodes()
		}
		out = append(out, Candidate{Graph: fg, Stages: stages})
	}
	if pg := pruneSink(g); pg != nil && numStages <= pg.NumNodes() {
		out = append(out, Candidate{Graph: pg, Stages: numStages})
	}
	return out
}

// familyOf strips the size/version suffix from a zoo model name:
// "ResNet152v2" -> "ResNet", "DenseNet121" -> "DenseNet",
// "Inception_v3" -> "Inception". Non-zoo names collapse the same way;
// they simply match no other zoo member.
func familyOf(name string) string {
	s := strings.TrimRight(name, "0123456789")
	if strings.HasSuffix(s, "v") || strings.HasSuffix(s, "V") {
		s = s[:len(s)-1]
	}
	s = strings.TrimRight(s, "0123456789")
	return strings.TrimRight(s, "_-")
}

// familyMembers loads up to maxFamilyVariants zoo models that share the
// popular graph's family, excluding the graph itself. Names() is sorted,
// so the fan-out is deterministic.
func familyMembers(name string) []*graph.Graph {
	family := familyOf(name)
	if family == "" {
		return nil
	}
	var out []*graph.Graph
	for _, candidate := range models.Names() {
		if candidate == name || familyOf(candidate) != family {
			continue
		}
		g, err := models.Load(candidate)
		if err != nil {
			continue // zoo generators are tested; defensive only
		}
		out = append(out, g)
		if len(out) == maxFamilyVariants {
			break
		}
	}
	return out
}

// pruneSink rebuilds g without its highest-numbered sink node — the
// head-swap / layer-pruning mutation. Returns nil when the graph is too
// small to prune or the rebuild fails (it cannot for a built DAG, but the
// speculator treats mutation generation as best-effort).
func pruneSink(g *graph.Graph) *graph.Graph {
	if g.NumNodes() < 3 {
		return nil
	}
	sinks := g.Sinks()
	if len(sinks) == 0 {
		return nil
	}
	drop := sinks[len(sinks)-1]

	ng := graph.New(g.Name + "~pruned")
	remap := make([]int, g.NumNodes())
	for _, n := range g.Nodes() {
		if n.ID == drop {
			remap[n.ID] = -1
			continue
		}
		remap[n.ID] = ng.AddNode(n)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if remap[u] < 0 {
			continue
		}
		for _, v := range g.Succ(u) {
			if remap[v] < 0 {
				continue
			}
			ng.AddEdge(remap[u], remap[v])
		}
	}
	if err := ng.Build(); err != nil {
		return nil
	}
	return ng
}
