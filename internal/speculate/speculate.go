// Package speculate closes the loop from serving observability back into
// scheduling decisions: it watches serving traffic, tracks per-instance
// popularity with decayed counters, listens to schedule-cache eviction
// signals, and keeps the warm caches hot ahead of demand.
//
// Edge inference traffic is heavily skewed toward a small set of popular
// models (Castellano et al. 2023), which is exactly the regime where
// predictive warming converts tail-latency cache misses into hits. The
// speculator exploits three signals:
//
//   - eviction: a hot key pushed out of the LRU by cold churn is
//     re-admitted before the next request pays a full solver race;
//   - popularity: hot keys missing from the cache (cold start, earlier
//     truncated solves) are warmed;
//   - mutation: likely variants of popular graphs — stage-count
//     neighbors, zoo family members, structurally pruned graphs — are
//     scheduled before any client asks.
//
// Speculative work never competes with admitted requests: the budgeted
// worker pool runs a pass only while admission occupancy stays below a
// configurable watermark, and yields entirely the moment it rises.
package speculate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"respect/internal/graph"
)

// Target is the cache a Speculator keeps warm. The serving layer adapts
// its per-class memoized portfolio engines to this interface.
type Target interface {
	// Contains reports whether a full-effort result for (g, numStages) is
	// already cached.
	Contains(g *graph.Graph, numStages int) bool
	// Warm solves (g, numStages) and reports whether a full-effort result
	// was stored. Budget-truncated solves must not be stored — stored is
	// false for them — matching the honesty contract of the solver caches.
	Warm(ctx context.Context, g *graph.Graph, numStages int) (stored bool, err error)
}

// Reason labels what triggered one speculative warm; these are the values
// of the reason label on respect_speculative_warms_total.
const (
	// ReasonEvicted marks re-admission of a hot key the LRU pushed out.
	ReasonEvicted = "evicted"
	// ReasonPopular marks warming of a hot key that was not cached.
	ReasonPopular = "popular"
	// ReasonMutation marks warming of a generated variant of a hot key.
	ReasonMutation = "mutation"
)

// Config tunes a Speculator. Zero values select the documented defaults.
type Config struct {
	// Target is the cache to keep warm. Required.
	Target Target
	// Occupancy reports current admission occupancy in [0, ∞): admitted
	// plus queued work over the concurrency limit. nil means always idle.
	Occupancy func() float64
	// Watermark is the occupancy at or above which speculation yields.
	// Zero means unset and selects the 0.5 default; legal explicit values
	// are (0, 1], plus WatermarkAlwaysYield to yield at any occupancy —
	// muting warms entirely while demand tracking stays live, an
	// operating point the zero value cannot express because it is taken
	// by "unset".
	Watermark float64
	// Budget bounds speculative solves per pass (default 4).
	Budget int
	// Workers sizes the warming pool within one pass (default 1).
	Workers int
	// Interval is the period of the background Run loop (default 500ms).
	Interval time.Duration
	// HalfLife is the popularity counters' decay half-life (default 1m).
	HalfLife time.Duration
	// TopK bounds how many hot keys each pass considers for popularity
	// and mutation warming (default 8).
	TopK int
	// MinScore is the decayed score a key needs before the speculator
	// acts on it (default 1.5 — more than one recent request; a single
	// request is not popularity).
	MinScore float64
	// SolveBudget bounds one speculative solve (default 1s). Truncated
	// solves are not stored, so this also bounds wasted work.
	SolveBudget time.Duration
	// MaxStages clamps grown stage counts in mutations (default 64,
	// matching the serving layer's request validation).
	MaxStages int
	// Logf, when set, receives speculation log lines.
	Logf func(format string, args ...any)
}

// WatermarkAlwaysYield is the Config.Watermark sentinel for "yield at
// any occupancy, including an idle controller": every pass counts its
// candidates as watermark-skips and warms nothing, which mutes
// speculative solving while keeping the demand tracking and stats live.
// The zero value cannot express this — it means "unset" and selects the
// default watermark.
const WatermarkAlwaysYield = -1.0

// Config defaults, applied by New for unset fields.
const (
	defaultWatermark   = 0.5
	defaultBudget      = 4
	defaultWorkers     = 1
	defaultInterval    = 500 * time.Millisecond
	defaultTopK        = 8
	defaultMinScore    = 1.5
	defaultSolveBudget = time.Second
	defaultMaxStages   = 64
)

// Speculator drives speculative warming for one Target. Create with New,
// feed it demand (ObserveRequest) and eviction signals (ObserveEviction),
// and either call Run for the background loop or RunOnce per pass.
type Speculator struct {
	cfg     Config
	tracker *Tracker

	mu             sync.Mutex
	pendingEvicted map[Key]bool // hot keys evicted since the last pass
	speculative    map[Key]bool // keys currently cached because of us

	mutMu    sync.Mutex
	mutCache map[Key][]Candidate // memoized Mutations per source key

	passes           atomic.Uint64
	attempts         atomic.Uint64
	skippedWatermark atomic.Uint64
	warmsEvicted     atomic.Uint64
	warmsPopular     atomic.Uint64
	warmsMutation    atomic.Uint64
	hits             atomic.Uint64
}

// New validates cfg, applies defaults and returns a ready Speculator.
func New(cfg Config) (*Speculator, error) {
	if cfg.Target == nil {
		return nil, errors.New("speculate: Config.Target is required")
	}
	switch {
	case cfg.Watermark == 0:
		cfg.Watermark = defaultWatermark
	case cfg.Watermark == WatermarkAlwaysYield:
		// Occupancy is never negative and the pass yields on
		// occupancy >= watermark, so an effective watermark of 0 yields
		// unconditionally.
		cfg.Watermark = 0
	case cfg.Watermark < 0 || cfg.Watermark > 1:
		return nil, fmt.Errorf("speculate: watermark %v invalid: want (0,1], 0 for the %v default, or WatermarkAlwaysYield (%v)",
			cfg.Watermark, defaultWatermark, WatermarkAlwaysYield)
	}
	if cfg.Budget == 0 {
		cfg.Budget = defaultBudget
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("speculate: budget %d must not be negative", cfg.Budget)
	}
	if cfg.Workers < 1 {
		cfg.Workers = defaultWorkers
	}
	if cfg.Interval <= 0 {
		cfg.Interval = defaultInterval
	}
	if cfg.TopK < 1 {
		cfg.TopK = defaultTopK
	}
	if cfg.MinScore <= 0 {
		cfg.MinScore = defaultMinScore
	}
	if cfg.SolveBudget <= 0 {
		cfg.SolveBudget = defaultSolveBudget
	}
	if cfg.MaxStages < 1 {
		cfg.MaxStages = defaultMaxStages
	}
	tracker := NewTracker(cfg.HalfLife, 0)
	// Cold keys need only their score; the graph payload (client-sized,
	// so client-controlled memory) is retained only once a key is hot
	// enough to act on.
	tracker.retainScore = cfg.MinScore
	return &Speculator{
		cfg:            cfg,
		tracker:        tracker,
		pendingEvicted: make(map[Key]bool),
		speculative:    make(map[Key]bool),
		mutCache:       make(map[Key][]Candidate),
	}, nil
}

// ObserveRequest is the per-request popularity tap: the serving layer
// calls it for every class-resolved request.
func (s *Speculator) ObserveRequest(g *graph.Graph, numStages int) {
	s.tracker.Observe(g, numStages)
}

// ObserveEviction is the cache eviction tap, wired to the solver LRU's
// eviction hook. A hot key (decayed score at or above MinScore) becomes a
// re-admission candidate for the next pass; any key loses its
// speculatively-warmed mark, since the entry it marked is gone. The hook
// may run under the LRU's lock, so this only touches speculator state.
func (s *Speculator) ObserveEviction(fp uint64, numStages int) {
	key := Key{FP: fp, Stages: numStages}
	hot := s.tracker.Score(key) >= s.cfg.MinScore
	s.mu.Lock()
	delete(s.speculative, key)
	if hot {
		s.pendingEvicted[key] = true
	}
	s.mu.Unlock()
}

// AttributeHit reports whether a cache hit on (fp, numStages) was served
// by a speculatively-warmed entry, counting it when so. The serving layer
// calls it once per cache hit to drive the hit-attribution counter.
func (s *Speculator) AttributeHit(fp uint64, numStages int) bool {
	s.mu.Lock()
	spec := s.speculative[Key{FP: fp, Stages: numStages}]
	s.mu.Unlock()
	if spec {
		s.hits.Add(1)
	}
	return spec
}

// WasSpeculative reports whether (fp, numStages) is currently cached
// because of speculative warming, without counting an attribution.
func (s *Speculator) WasSpeculative(fp uint64, numStages int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.speculative[Key{FP: fp, Stages: numStages}]
}

// HotEntries returns up to max actionable hot instances — decayed score
// at or above MinScore and graph retained — hottest first. It is the
// fleet-gossip source: entries a peer could not act on are omitted.
func (s *Speculator) HotEntries(max int) []Entry {
	hot := s.tracker.Hot(s.tracker.Len())
	out := make([]Entry, 0, max)
	for _, e := range hot {
		if len(out) >= max {
			break
		}
		if e.Score < s.cfg.MinScore || e.Graph == nil {
			continue
		}
		out = append(out, e)
	}
	return out
}

// MergeRemote folds one peer-observed hot instance into local popularity
// tracking (max-merge via Tracker.Boost) and reports whether it raised
// the local score. The next speculation pass treats merged keys exactly
// like locally observed demand, so a fleet warms a hot instance once and
// gossips the warmth instead of N replicas discovering it independently.
func (s *Speculator) MergeRemote(g *graph.Graph, numStages int, score float64) bool {
	return s.tracker.Boost(g, numStages, score)
}

// PopularityScore returns the key's decayed popularity score. It backs
// the solver cache's popularity-aware eviction ordering and is safe to
// call from the LRU's locked victim-selection path (the tracker lock is a
// leaf).
func (s *Speculator) PopularityScore(fp uint64, numStages int) float64 {
	return s.tracker.Score(Key{FP: fp, Stages: numStages})
}

// candidate is one unit of speculative work within a pass.
type candidate struct {
	key    Key
	g      *graph.Graph
	stages int
	reason string
}

// gather assembles one pass's deduplicated candidate list in priority
// order (evicted, popular, mutation), bounded by Budget. It drains the
// pending-eviction set; keys it cannot act on (tracker no longer holds
// the graph) are dropped rather than retried forever.
func (s *Speculator) gather() []candidate {
	s.mu.Lock()
	evicted := s.pendingEvicted
	s.pendingEvicted = make(map[Key]bool)
	s.mu.Unlock()

	budget := s.cfg.Budget
	seen := make(map[Key]bool)
	var out []candidate
	add := func(c candidate) bool {
		if len(out) >= budget || seen[c.key] || s.cfg.Target.Contains(c.g, c.stages) {
			seen[c.key] = true
			return len(out) < budget
		}
		seen[c.key] = true
		out = append(out, c)
		return true
	}

	// Evicted hot keys first: these were serving hits until cold churn
	// pushed them out. Iterate hottest-first for determinism.
	for _, e := range s.tracker.Hot(s.tracker.Len()) {
		if !evicted[e.Key] || e.Graph == nil {
			continue
		}
		if !add(candidate{key: e.Key, g: e.Graph, stages: e.Key.Stages, reason: ReasonEvicted}) {
			return out
		}
	}

	hot := s.tracker.Hot(s.cfg.TopK)
	for _, e := range hot {
		if e.Score < s.cfg.MinScore || e.Graph == nil {
			continue
		}
		if !add(candidate{key: e.Key, g: e.Graph, stages: e.Key.Stages, reason: ReasonPopular}) {
			return out
		}
	}
	for _, e := range hot {
		if e.Score < s.cfg.MinScore || e.Graph == nil {
			continue
		}
		for _, m := range s.mutationsFor(e) {
			key := Key{FP: m.Graph.Fingerprint(), Stages: m.Stages}
			if !add(candidate{key: key, g: m.Graph, stages: m.Stages, reason: ReasonMutation}) {
				return out
			}
		}
	}
	return out
}

// mutCacheCap bounds the mutation memo; the hot set it serves is TopK
// keys, so overflow means churn and a wholesale reset is fine.
const mutCacheCap = 64

// mutationsFor memoizes Mutations per source key. Candidates are a pure
// function of the source graph (fingerprints are structural), and
// regenerating them every pass — including constructing zoo model graphs
// for family members — would be steady throwaway work on an idle server.
func (s *Speculator) mutationsFor(e Entry) []Candidate {
	s.mutMu.Lock()
	muts, ok := s.mutCache[e.Key]
	s.mutMu.Unlock()
	if ok {
		return muts
	}
	muts = Mutations(e.Graph, e.Key.Stages, s.cfg.MaxStages)
	s.mutMu.Lock()
	if len(s.mutCache) >= mutCacheCap {
		s.mutCache = make(map[Key][]Candidate)
	}
	s.mutCache[e.Key] = muts
	s.mutMu.Unlock()
	return muts
}

// RunOnce executes one speculation pass synchronously: gather candidates,
// then warm them through the worker pool while occupancy stays below the
// watermark. It returns the number of cache entries stored. The moment
// occupancy reaches the watermark the pass yields: remaining candidates
// are dropped (and counted as skipped), not queued — the next pass
// re-derives demand from fresher signals.
func (s *Speculator) RunOnce(ctx context.Context) int {
	s.passes.Add(1)
	cands := s.gather()
	if len(cands) == 0 {
		return 0
	}

	var (
		stored  atomic.Int64
		skipped atomic.Int64
		yielded atomic.Bool
		wg      sync.WaitGroup
	)
	work := make(chan candidate)
	workers := s.cfg.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				if ctx.Err() != nil {
					continue // shutdown, not watermark pressure: drop silently
				}
				if yielded.Load() || s.occupancy() >= s.cfg.Watermark {
					yielded.Store(true)
					skipped.Add(1)
					continue // drain the channel; every candidate is accounted for
				}
				if s.warmOne(ctx, c) {
					stored.Add(1)
				}
			}
		}()
	}
	for _, c := range cands {
		work <- c
	}
	close(work)
	wg.Wait()
	s.skippedWatermark.Add(uint64(skipped.Load()))
	if n := stored.Load(); n > 0 {
		s.logf("speculate: pass warmed %d/%d candidates", n, len(cands))
	}
	return int(stored.Load())
}

// warmOne runs one speculative solve under the per-solve budget and does
// the bookkeeping: a stored full-effort result marks the key speculative
// and counts under its trigger reason; truncated or failed solves store
// nothing and count nothing.
func (s *Speculator) warmOne(ctx context.Context, c candidate) bool {
	s.attempts.Add(1)
	sctx, cancel := context.WithTimeout(ctx, s.cfg.SolveBudget)
	defer cancel()
	stored, err := s.cfg.Target.Warm(sctx, c.g, c.stages)
	if err != nil {
		s.logf("speculate: warm %s (%s, %d stages): %v", c.reason, c.g.Name, c.stages, err)
		return false
	}
	if !stored {
		return false
	}
	// Mark first, then re-check membership: an eviction racing this mark
	// either lands after it (ObserveEviction clears the mark) or landed
	// before it (the re-check sees the entry gone and we clear it
	// ourselves). Marking after the check would leave a stale mark that
	// misattributes every later organic hit on this key to speculation.
	s.mu.Lock()
	s.speculative[c.key] = true
	s.mu.Unlock()
	if !s.cfg.Target.Contains(c.g, c.stages) {
		s.mu.Lock()
		delete(s.speculative, c.key)
		s.mu.Unlock()
		return false
	}
	switch c.reason {
	case ReasonEvicted:
		s.warmsEvicted.Add(1)
	case ReasonPopular:
		s.warmsPopular.Add(1)
	default:
		s.warmsMutation.Add(1)
	}
	return true
}

// occupancy reads the configured occupancy probe (0 when unset).
func (s *Speculator) occupancy() float64 {
	if s.cfg.Occupancy == nil {
		return 0
	}
	return s.cfg.Occupancy()
}

// Run executes passes every Interval until ctx is cancelled. It is the
// background loop the serving layer starts alongside zoo warm-up.
func (s *Speculator) Run(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.RunOnce(ctx)
		}
	}
}

// logf forwards to the configured logger, if any.
func (s *Speculator) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Stats is a point-in-time snapshot of one Speculator's counters.
type Stats struct {
	// TrackedKeys is the number of instances with live popularity state.
	TrackedKeys int `json:"tracked_keys"`
	// Passes counts RunOnce invocations.
	Passes uint64 `json:"passes"`
	// Attempts counts speculative solves started.
	Attempts uint64 `json:"attempts"`
	// WarmsEvicted / WarmsPopular / WarmsMutation count stored warms by
	// trigger reason.
	WarmsEvicted  uint64 `json:"warms_evicted"`
	WarmsPopular  uint64 `json:"warms_popular"`
	WarmsMutation uint64 `json:"warms_mutation"`
	// SkippedWatermark counts candidates dropped because admission
	// occupancy was at or above the watermark.
	SkippedWatermark uint64 `json:"skipped_watermark"`
	// SpeculativeEntries is the number of currently cached entries that
	// were stored by speculation.
	SpeculativeEntries int `json:"speculative_entries"`
	// Hits counts requests served by a speculatively-warmed entry.
	Hits uint64 `json:"hits"`
}

// WarmCount returns the stored-warm counter for one Reason with a single
// atomic read — the metrics exposition reads these at scrape time without
// taking any speculator lock.
func (s *Speculator) WarmCount(reason string) uint64 {
	switch reason {
	case ReasonEvicted:
		return s.warmsEvicted.Load()
	case ReasonPopular:
		return s.warmsPopular.Load()
	default:
		return s.warmsMutation.Load()
	}
}

// HitCount returns the attributed-hit counter (lock-free).
func (s *Speculator) HitCount() uint64 { return s.hits.Load() }

// SkippedCount returns the watermark-skip counter (lock-free).
func (s *Speculator) SkippedCount() uint64 { return s.skippedWatermark.Load() }

// Stats snapshots the speculator's counters.
func (s *Speculator) Stats() Stats {
	s.mu.Lock()
	entries := len(s.speculative)
	s.mu.Unlock()
	return Stats{
		TrackedKeys:        s.tracker.Len(),
		Passes:             s.passes.Load(),
		Attempts:           s.attempts.Load(),
		WarmsEvicted:       s.warmsEvicted.Load(),
		WarmsPopular:       s.warmsPopular.Load(),
		WarmsMutation:      s.warmsMutation.Load(),
		SkippedWatermark:   s.skippedWatermark.Load(),
		SpeculativeEntries: entries,
		Hits:               s.hits.Load(),
	}
}
