package speculate

import (
	"math"
	"sort"
	"sync"
	"time"

	"respect/internal/graph"
)

// Key identifies one scheduling instance the way the solver caches do: the
// graph's structural fingerprint plus the pipeline length.
type Key struct {
	// FP is graph.Fingerprint() of the requested graph.
	FP uint64
	// Stages is the requested pipeline length.
	Stages int
}

// Entry is one tracked instance together with its current (decayed)
// popularity score and the most recently observed graph for the key.
type Entry struct {
	Key   Key
	Graph *graph.Graph
	Score float64
}

// trackerEntry is the mutable per-key state: the last observed graph (kept
// so eviction victims can be re-solved without a client round trip), the
// decayed request count and its last-decay timestamp.
type trackerEntry struct {
	g     *graph.Graph
	score float64
	last  time.Time
}

// Tracker maintains exponentially decayed per-instance request counters:
// each observation adds 1 to the key's score, and scores halve every
// half-life of silence. It is the demand signal behind speculative
// warming — hot keys are worth re-admitting after eviction and worth
// mutating ahead of demand, cold keys are not. Safe for concurrent use.
type Tracker struct {
	halfLife time.Duration
	cap      int
	now      func() time.Time // injectable clock for deterministic tests

	// retainScore gates graph retention: a key's graph — client-sized
	// memory, unlike the fixed-size score — is kept only once its score
	// reaches retainScore. Zero retains every observed graph.
	retainScore float64
	// maxNodes budgets the total node count of retained graphs; beyond
	// it the coldest keys' graphs are shed (scores are kept).
	maxNodes int

	mu       sync.Mutex
	m        map[Key]*trackerEntry
	curNodes int // total nodes across retained graphs
}

// defaults for Tracker construction; NewTracker normalizes non-positive
// arguments to these.
const (
	defaultHalfLife   = time.Minute
	defaultTrackerCap = 1024
	// defaultMaxRetainedNodes bounds retained-graph memory: ~256k nodes
	// covers hundreds of zoo-sized hot graphs while keeping the worst
	// case of adversarially large inline graphs to tens of megabytes.
	defaultMaxRetainedNodes = 1 << 18
)

// NewTracker builds a tracker whose scores halve every halfLife
// (non-positive defaults to one minute) and which retains at most capacity
// keys (non-positive defaults to 1024), dropping the coldest key when full.
func NewTracker(halfLife time.Duration, capacity int) *Tracker {
	if halfLife <= 0 {
		halfLife = defaultHalfLife
	}
	if capacity < 1 {
		capacity = defaultTrackerCap
	}
	return &Tracker{
		halfLife: halfLife,
		cap:      capacity,
		now:      time.Now,
		maxNodes: defaultMaxRetainedNodes,
		m:        make(map[Key]*trackerEntry),
	}
}

// decayTo folds the elapsed time since e.last into e.score. Called with
// t.mu held.
func (t *Tracker) decayTo(e *trackerEntry, now time.Time) {
	if dt := now.Sub(e.last); dt > 0 {
		e.score *= math.Exp2(-float64(dt) / float64(t.halfLife))
		e.last = now
	}
}

// Observe records one request for (g, numStages), bumping the key's
// decayed score by 1 and retaining g as the key's representative graph.
func (t *Tracker) Observe(g *graph.Graph, numStages int) {
	key := Key{FP: g.Fingerprint(), Stages: numStages}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[key]
	if !ok {
		if len(t.m) >= t.cap {
			t.dropColdest(now)
		}
		e = &trackerEntry{last: now}
		t.m[key] = e
	}
	t.decayTo(e, now)
	e.score++
	if e.score >= t.retainScore {
		if e.g == nil {
			t.curNodes += g.NumNodes()
		}
		e.g = g // same key ⇒ same structure, so the node count is stable
		t.enforceNodeBudget(now)
	}
}

// dropColdest removes the coldest eighth of the keys (at least one) to
// make room. Called with t.mu held. Evicting a batch per scan amortizes
// the O(n) decayed sweep: under sustained novel traffic — every request
// a fresh key — a full tracker pays one sweep per cap/8 inserts instead
// of one per insert, which matters because Observe sits on the
// synchronous request path.
func (t *Tracker) dropColdest(now time.Time) {
	drop := t.cap / 8
	if drop < 1 {
		drop = 1
	}
	type keyScore struct {
		k Key
		s float64
	}
	all := make([]keyScore, 0, len(t.m))
	for k, e := range t.m {
		t.decayTo(e, now)
		all = append(all, keyScore{k, e.score})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	if drop > len(all) {
		drop = len(all)
	}
	for _, v := range all[:drop] {
		if e := t.m[v.k]; e.g != nil {
			t.curNodes -= e.g.NumNodes()
		}
		delete(t.m, v.k)
	}
}

// enforceNodeBudget sheds the coldest retained graphs (keeping their
// scores) until total retained nodes fit the budget. Called with t.mu
// held; the O(n) scan runs only when the budget is exceeded.
func (t *Tracker) enforceNodeBudget(now time.Time) {
	for t.curNodes > t.maxNodes {
		var coldest *trackerEntry
		coldestScore := math.Inf(1)
		for _, e := range t.m {
			if e.g == nil {
				continue
			}
			t.decayTo(e, now)
			if e.score < coldestScore {
				coldest, coldestScore = e, e.score
			}
		}
		if coldest == nil {
			return
		}
		t.curNodes -= coldest.g.NumNodes()
		coldest.g = nil
	}
}

// Boost folds a remotely observed score into the tracker: the key's
// score becomes the maximum of its current decayed local score and the
// remote score, and the graph is retained if the key is hot enough. It
// returns whether the remote score raised the local one. Max-merge (not
// add) keeps gossip idempotent — repeated deliveries of the same remote
// snapshot change nothing, and two replicas gossiping the same key back
// and forth cannot inflate it into a feedback loop.
func (t *Tracker) Boost(g *graph.Graph, numStages int, score float64) bool {
	if score <= 0 || g == nil {
		return false
	}
	key := Key{FP: g.Fingerprint(), Stages: numStages}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[key]
	if !ok {
		if len(t.m) >= t.cap {
			t.dropColdest(now)
		}
		e = &trackerEntry{last: now}
		t.m[key] = e
	}
	t.decayTo(e, now)
	raised := score > e.score
	if raised {
		e.score = score
	}
	// Retain the graph even on a non-raising merge: a remote copy can
	// fill in a graph the node budget shed locally (same key ⇒ same
	// structure).
	if e.score >= t.retainScore && e.g == nil {
		t.curNodes += g.NumNodes()
		e.g = g
		t.enforceNodeBudget(now)
	}
	return raised
}

// Score returns the key's current decayed score (zero for untracked keys).
func (t *Tracker) Score(key Key) float64 {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[key]
	if !ok {
		return 0
	}
	t.decayTo(e, now)
	return e.score
}

// Graph returns the most recently retained graph for key, or nil when
// the key is untracked, not yet hot enough for graph retention
// (retainScore), or had its graph shed by the node budget.
func (t *Tracker) Graph(key Key) *graph.Graph {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[key]; ok {
		return e.g
	}
	return nil
}

// Hot returns up to n tracked instances ordered by descending decayed
// score (ties broken by fingerprint for determinism).
func (t *Tracker) Hot(n int) []Entry {
	now := t.now()
	t.mu.Lock()
	out := make([]Entry, 0, len(t.m))
	for k, e := range t.m {
		t.decayTo(e, now)
		out = append(out, Entry{Key: k, Graph: e.g, Score: e.score})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Key.FP != out[j].Key.FP {
			return out[i].Key.FP < out[j].Key.FP
		}
		return out[i].Key.Stages < out[j].Key.Stages
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of tracked keys.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
