// Package deploy reproduces the paper's deployment flow (Figure 1a,
// step 4): post-training int8 quantization of each operator's weights
// (the TFLite/TOCO role), extraction of one sub-model per pipeline stage,
// and a binary serialization format with a loader — the artifacts that
// would be flashed onto each Edge TPU in the physical system.
package deploy

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"

	"respect/internal/graph"
	"respect/internal/sched"
)

// QuantParams is an asymmetric int8 affine quantization: real ≈
// Scale·(q − ZeroPoint).
type QuantParams struct {
	Scale     float64
	ZeroPoint int8
}

// Quantize maps float32 weights onto int8 with per-tensor affine
// parameters chosen from the observed min/max (TFLite post-training
// quantization).
func Quantize(w []float32) ([]int8, QuantParams) {
	if len(w) == 0 {
		return nil, QuantParams{Scale: 1}
	}
	lo, hi := float64(w[0]), float64(w[0])
	for _, v := range w {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	// The representable range must include zero for zero-padding to be
	// exact (TFLite requirement).
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	scale := (hi - lo) / 255
	if scale == 0 {
		scale = 1
	}
	zp := int8(math.Round(-128 - lo/scale))
	q := make([]int8, len(w))
	for i, v := range w {
		x := math.Round(float64(v)/scale) + float64(zp)
		if x > 127 {
			x = 127
		}
		if x < -128 {
			x = -128
		}
		q[i] = int8(x)
	}
	return q, QuantParams{Scale: scale, ZeroPoint: zp}
}

// Dequantize inverts Quantize up to rounding error.
func Dequantize(q []int8, p QuantParams) []float32 {
	out := make([]float32, len(q))
	for i, v := range q {
		out[i] = float32(p.Scale * float64(int(v)-int(p.ZeroPoint)))
	}
	return out
}

// SyntheticWeights deterministically generates the float32 weight tensor
// of a node (the repo has no proprietary checkpoints; scheduling and
// deployment only need tensors of the right size, see DESIGN.md).
func SyntheticWeights(g *graph.Graph, v int) []float32 {
	n := g.Node(v)
	count := int(n.ParamBytes) // one int8 weight per byte post-quantization
	rng := rand.New(rand.NewSource(int64(v)*1_000_003 + int64(g.NumNodes())))
	w := make([]float32, count)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.05)
	}
	return w
}

// TensorRef names an activation tensor by its producing node.
type TensorRef struct {
	Node  int
	Bytes int64
}

// Op is one operator inside a sub-model.
type Op struct {
	Node    int
	Kind    graph.OpKind
	Name    string
	Weights []int8
	Quant   QuantParams
	MACs    int64
}

// Submodel is the per-stage executable unit.
type Submodel struct {
	ModelName string
	Stage     int
	NumStages int
	Ops       []Op
	// Inputs are tensors produced by earlier stages, Outputs tensors
	// consumed by later stages (or the pipeline output).
	Inputs  []TensorRef
	Outputs []TensorRef
}

// ParamBytes returns the total quantized weight bytes of the sub-model.
func (sm *Submodel) ParamBytes() int64 {
	var t int64
	for _, op := range sm.Ops {
		t += int64(len(op.Weights))
	}
	return t
}

// Partition splits g under schedule s into one sub-model per stage,
// quantizing each node's (synthetic) weights. The schedule must be valid.
func Partition(g *graph.Graph, s sched.Schedule) ([]Submodel, error) {
	if err := s.Validate(g); err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	subs := make([]Submodel, s.NumStages)
	for k := range subs {
		subs[k] = Submodel{ModelName: g.Name, Stage: k, NumStages: s.NumStages}
	}
	for _, v := range g.Topo() {
		k := s.Stage[v]
		node := g.Node(v)
		w := SyntheticWeights(g, v)
		q, qp := Quantize(w)
		subs[k].Ops = append(subs[k].Ops, Op{
			Node: v, Kind: node.Kind, Name: node.Name,
			Weights: q, Quant: qp, MACs: node.MACs,
		})
		crossesOut := false
		for _, w := range g.Succ(v) {
			if s.Stage[w] != k {
				crossesOut = true
				subs[s.Stage[w]].addInput(TensorRef{Node: v, Bytes: node.OutBytes})
			}
		}
		if crossesOut || len(g.Succ(v)) == 0 {
			subs[k].Outputs = append(subs[k].Outputs, TensorRef{Node: v, Bytes: node.OutBytes})
		}
	}
	return subs, nil
}

func (sm *Submodel) addInput(ref TensorRef) {
	for _, in := range sm.Inputs {
		if in.Node == ref.Node {
			return
		}
	}
	sm.Inputs = append(sm.Inputs, ref)
}

// Binary format: magic, version, header fields, op table with weight
// blobs, tensor tables, trailing CRC32 of everything before it.
const (
	magic   = 0x52535054 // "RSPT"
	version = 1
)

// ErrCorrupt reports a malformed or damaged sub-model image.
var ErrCorrupt = errors.New("deploy: corrupt submodel image")

// Write serializes the sub-model.
func (sm *Submodel) Write(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		bw.WriteString(s)
	}

	writeU32(magic)
	writeU32(version)
	writeStr(sm.ModelName)
	writeU32(uint32(sm.Stage))
	writeU32(uint32(sm.NumStages))
	writeU32(uint32(len(sm.Ops)))
	for _, op := range sm.Ops {
		writeU32(uint32(op.Node))
		writeU32(uint32(op.Kind))
		writeStr(op.Name)
		writeU64(uint64(op.MACs))
		binary.Write(bw, binary.LittleEndian, op.Quant.Scale)
		bw.WriteByte(byte(op.Quant.ZeroPoint))
		writeU32(uint32(len(op.Weights)))
		for _, q := range op.Weights {
			bw.WriteByte(byte(q))
		}
	}
	writeRefs := func(refs []TensorRef) {
		writeU32(uint32(len(refs)))
		for _, r := range refs {
			writeU32(uint32(r.Node))
			writeU64(uint64(r.Bytes))
		}
	}
	writeRefs(sm.Inputs)
	writeRefs(sm.Outputs)
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Read parses a sub-model image, verifying structure and checksum.
func Read(r io.Reader) (*Submodel, error) {
	img, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(img) < 12 {
		return nil, fmt.Errorf("%w: image too short", ErrCorrupt)
	}
	payload, tail := img[:len(img)-4], img[len(img)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	br := bufio.NewReader(bytes.NewReader(payload))

	var firstErr error
	readU32 := func() uint32 {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	readU64 := func() uint64 {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	readStr := func() string {
		n := readU32()
		if firstErr != nil || n > 1<<20 {
			if firstErr == nil {
				firstErr = ErrCorrupt
			}
			return ""
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil && firstErr == nil {
			firstErr = err
		}
		return string(buf)
	}

	if readU32() != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := readU32(); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	sm := &Submodel{}
	sm.ModelName = readStr()
	sm.Stage = int(readU32())
	sm.NumStages = int(readU32())
	nOps := readU32()
	if firstErr != nil || nOps > 1<<20 {
		return nil, fmt.Errorf("%w: implausible op count", ErrCorrupt)
	}
	for i := uint32(0); i < nOps; i++ {
		var op Op
		op.Node = int(readU32())
		op.Kind = graph.OpKind(readU32())
		op.Name = readStr()
		op.MACs = int64(readU64())
		if err := binary.Read(br, binary.LittleEndian, &op.Quant.Scale); err != nil && firstErr == nil {
			firstErr = err
		}
		zb, err := br.ReadByte()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		op.Quant.ZeroPoint = int8(zb)
		wn := readU32()
		if firstErr != nil || wn > 1<<28 {
			return nil, fmt.Errorf("%w: implausible weight size", ErrCorrupt)
		}
		raw := make([]byte, wn)
		if _, err := io.ReadFull(br, raw); err != nil && firstErr == nil {
			firstErr = err
		}
		op.Weights = make([]int8, wn)
		for j, b := range raw {
			op.Weights[j] = int8(b)
		}
		sm.Ops = append(sm.Ops, op)
		if firstErr != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, firstErr)
		}
	}
	readRefs := func() []TensorRef {
		n := readU32()
		if firstErr != nil || n > 1<<20 {
			if firstErr == nil {
				firstErr = ErrCorrupt
			}
			return nil
		}
		refs := make([]TensorRef, n)
		for i := range refs {
			refs[i].Node = int(readU32())
			refs[i].Bytes = int64(readU64())
		}
		return refs
	}
	sm.Inputs = readRefs()
	sm.Outputs = readRefs()
	if firstErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, firstErr)
	}
	return sm, nil
}
