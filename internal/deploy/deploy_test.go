package deploy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"respect/internal/heur"
	"respect/internal/models"
	"respect/internal/sched"
)

func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float32, 4096)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	q, p := Quantize(w)
	d := Dequantize(q, p)
	for i := range w {
		if err := math.Abs(float64(w[i] - d[i])); err > p.Scale/2+1e-9 {
			t.Fatalf("weight %d: |%v - %v| > scale/2 (%v)", i, w[i], d[i], p.Scale/2)
		}
	}
}

func TestQuantizeZeroExact(t *testing.T) {
	// Zero must quantize exactly (padding correctness).
	w := []float32{0, 1.5, -0.3, 0}
	q, p := Quantize(w)
	d := Dequantize(q, p)
	if d[0] != 0 || d[3] != 0 {
		t.Fatalf("zero not exactly representable: %v", d)
	}
}

func TestQuantizeEdgeCases(t *testing.T) {
	if q, p := Quantize(nil); q != nil || p.Scale != 1 {
		t.Fatal("nil weights mishandled")
	}
	q, p := Quantize([]float32{0, 0, 0})
	d := Dequantize(q, p)
	for _, v := range d {
		if v != 0 {
			t.Fatal("constant-zero tensor mangled")
		}
	}
	// All-positive tensor: range extended to include zero.
	q2, p2 := Quantize([]float32{3, 4, 5})
	d2 := Dequantize(q2, p2)
	for i, want := range []float32{3, 4, 5} {
		if math.Abs(float64(d2[i]-want)) > p2.Scale/2+1e-9 {
			t.Fatalf("positive tensor off: %v vs %v", d2[i], want)
		}
	}
}

func TestQuickQuantizeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float32, 1+rng.Intn(100))
		for i := range w {
			w[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2)))
		}
		q, p := Quantize(w)
		d := Dequantize(q, p)
		for i := range w {
			if math.Abs(float64(w[i]-d[i])) > p.Scale/2+1e-6*p.Scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionStructure(t *testing.T) {
	g := models.MustLoad("Xception")
	s := sched.PostProcess(g, heur.GreedyBalanced(g, 4))
	subs, err := Partition(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("%d submodels", len(subs))
	}
	totalOps := 0
	var totalParams int64
	for k, sm := range subs {
		if sm.Stage != k || sm.NumStages != 4 || sm.ModelName != "Xception" {
			t.Fatalf("submodel %d header wrong: %+v", k, sm)
		}
		totalOps += len(sm.Ops)
		totalParams += sm.ParamBytes()
	}
	if totalOps != g.NumNodes() {
		t.Fatalf("ops %d != |V| %d", totalOps, g.NumNodes())
	}
	if totalParams != g.TotalParamBytes() {
		t.Fatalf("params %d != graph %d", totalParams, g.TotalParamBytes())
	}
	// Every stage boundary consumer matches a producer's output.
	for k := 1; k < 4; k++ {
		for _, in := range subs[k].Inputs {
			found := false
			for _, out := range subs[s.Stage[in.Node]].Outputs {
				if out.Node == in.Node {
					found = true
				}
			}
			if !found {
				t.Fatalf("stage %d input %d has no producing output", k, in.Node)
			}
		}
	}
}

func TestPartitionRejectsInvalid(t *testing.T) {
	g := models.MustLoad("ResNet50")
	s := sched.NewSchedule(g.NumNodes(), 2)
	s.Stage[0] = 1 // input after its consumers
	if _, err := Partition(g, s); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := models.MustLoad("ResNet50")
	s := sched.PostProcess(g, heur.GreedyBalanced(g, 3))
	subs, err := Partition(g, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range subs {
		var buf bytes.Buffer
		if err := sm.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.ModelName != sm.ModelName || got.Stage != sm.Stage ||
			len(got.Ops) != len(sm.Ops) ||
			len(got.Inputs) != len(sm.Inputs) || len(got.Outputs) != len(sm.Outputs) {
			t.Fatalf("round trip structure mismatch")
		}
		for i := range sm.Ops {
			a, b := sm.Ops[i], got.Ops[i]
			if a.Node != b.Node || a.Kind != b.Kind || a.Name != b.Name ||
				a.MACs != b.MACs || a.Quant != b.Quant || len(a.Weights) != len(b.Weights) {
				t.Fatalf("op %d mismatch", i)
			}
			for j := range a.Weights {
				if a.Weights[j] != b.Weights[j] {
					t.Fatalf("op %d weight %d mismatch", i, j)
				}
			}
		}
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	g := models.MustLoad("Xception")
	s := sched.PostProcess(g, heur.GreedyBalanced(g, 2))
	subs, _ := Partition(g, s)
	var buf bytes.Buffer
	if err := subs[0].Write(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Flip a byte in the middle: checksum must catch it.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bit flip undetected")
	}
	// Truncation.
	if _, err := Read(bytes.NewReader(img[:len(img)/3])); err == nil {
		t.Fatal("truncation undetected")
	}
	// Garbage magic.
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("bad magic undetected")
	}
}

func TestSyntheticWeightsDeterministic(t *testing.T) {
	g := models.MustLoad("Xception")
	a := SyntheticWeights(g, 1)
	b := SyntheticWeights(g, 1)
	if len(a) != int(g.Node(1).ParamBytes) {
		t.Fatalf("weight count %d != param bytes %d", len(a), g.Node(1).ParamBytes)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic weights")
		}
	}
}
