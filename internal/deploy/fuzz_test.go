package deploy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"respect/internal/graph"
	"respect/internal/sched"
)

// smallGraph builds a random small DAG with weights for corruption tests.
func smallGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(8)
	g := graph.New("fuzz")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{
			Name: "op", Kind: graph.OpConv,
			ParamBytes: int64(rng.Intn(200)), OutBytes: 1 + int64(rng.Intn(100)),
			MACs: int64(rng.Intn(1000)),
		})
	}
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	return g.MustBuild()
}

// TestQuickCorruptionAlwaysDetectedOrEquivalent flips random bytes in
// serialized images: Read must either reject the image or — never —
// silently return different content with a passing checksum.
func TestQuickCorruptionAlwaysDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := smallGraph(seed)
		s := sched.NewSchedule(g.NumNodes(), 2)
		for v := range s.Stage {
			s.Stage[v] = 0
		}
		subs, err := Partition(g, s)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := subs[0].Write(&buf); err != nil {
			return false
		}
		img := buf.Bytes()
		// Flip 1-3 random bytes.
		bad := append([]byte(nil), img...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			i := rng.Intn(len(bad))
			bad[i] ^= byte(1 + rng.Intn(255))
		}
		if bytes.Equal(bad, img) {
			return true // flips cancelled; nothing to detect
		}
		_, err = Read(bytes.NewReader(bad))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruncationAlwaysDetected drops random suffixes.
func TestQuickTruncationAlwaysDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := smallGraph(seed)
		s := sched.NewSchedule(g.NumNodes(), 1)
		subs, err := Partition(g, s)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := subs[0].Write(&buf); err != nil {
			return false
		}
		img := buf.Bytes()
		cut := rng.Intn(len(img)) // strictly shorter
		_, err = Read(bytes.NewReader(img[:cut]))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripRandomGraphs serializes every stage of random
// partitions and verifies lossless reload.
func TestQuickRoundTripRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := smallGraph(seed)
		ns := 1 + rng.Intn(3)
		// Monotone random schedule via sorted stages along topo order.
		s := sched.NewSchedule(g.NumNodes(), ns)
		st := 0
		for _, v := range g.Topo() {
			if rng.Intn(3) == 0 && st < ns-1 {
				st++
			}
			s.Stage[v] = st
		}
		subs, err := Partition(g, s)
		if err != nil {
			return false
		}
		for _, sm := range subs {
			var buf bytes.Buffer
			if err := sm.Write(&buf); err != nil {
				return false
			}
			got, err := Read(&buf)
			if err != nil {
				return false
			}
			if got.ParamBytes() != sm.ParamBytes() || len(got.Ops) != len(sm.Ops) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
