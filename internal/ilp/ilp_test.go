package ilp

import (
	"math"
	"testing"
	"time"

	"respect/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 5a + 4b + 3c (min negated) s.t. 2a + 3b + c <= 5, binary.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-5, -4, -3},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2, 3, 1}, Sense: lp.LE, RHS: 5},
				{Coeffs: []float64{1, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 1, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 1}, Sense: lp.LE, RHS: 1},
			},
		},
		Integer: []bool{true, true, true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Best: a=1, c=1 (weight 3, value 8)? or a=1,b=1 (weight 5, value 9).
	if s.Status != Optimal || math.Abs(s.Objective-(-9)) > 1e-6 {
		t.Fatalf("got %+v", s)
	}
}

func TestIntegralityForcesWorseObjective(t *testing.T) {
	// LP relaxation gives x = 1.5; integral optimum is 1.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{-1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2}, Sense: lp.LE, RHS: 3},
			},
		},
		Integer: []bool{true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.X[0]-1) > 1e-6 {
		t.Fatalf("got %+v", s)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10y, x continuous <= 2.5, y binary, x + y <= 3.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -10},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 2.5},
				{Coeffs: []float64{0, 1}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 3},
			},
		},
		Integer: []bool{false, true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// y = 1 forces x <= 2: objective -1*2 - 10*1 = -12.
	if s.Status != Optimal || math.Abs(s.Objective-(-12)) > 1e-6 {
		t.Fatalf("got %+v", s)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 0.4},
				{Coeffs: []float64{1}, Sense: lp.LE, RHS: 0.6},
			},
		},
		Integer: []bool{true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("got %+v", s)
	}
}

func TestUnboundedRelaxation(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{-1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 0},
			},
		},
		Integer: []bool{true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("got %+v", s)
	}
}

func TestNodeBudget(t *testing.T) {
	// A 12-variable equality-partition instance that needs branching.
	n := 12
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	half := 26.0
	rows := []lp.Constraint{{Coeffs: vals, Sense: lp.EQ, RHS: half}}
	for j := 0; j < n; j++ {
		r := make([]float64, n)
		r[j] = 1
		rows = append(rows, lp.Constraint{Coeffs: r, Sense: lp.LE, RHS: 1})
	}
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = -1
	}
	p := &Problem{
		LP:      lp.Problem{NumVars: n, Objective: obj, Constraints: rows},
		Integer: make([]bool, n),
	}
	for j := range p.Integer {
		p.Integer[j] = true
	}
	s, err := Solve(p, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal && s.Nodes > 2 {
		t.Fatalf("optimal claimed past budget: %+v", s)
	}
}

func TestTimeout(t *testing.T) {
	// Same instance with an immediate deadline: must not claim optimal
	// unless it truly finished within the first node check.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 2}, Sense: lp.LE, RHS: 3.5},
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 1}, Sense: lp.LE, RHS: 1},
			},
		},
		Integer: []bool{true, true},
	}
	s, err := Solve(p, Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal {
		t.Fatalf("optimal under nanosecond deadline: %+v", s)
	}
}
