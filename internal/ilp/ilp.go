// Package ilp implements a branch-and-bound mixed-integer linear program
// solver over LP relaxations (package lp). Together with the scheduling
// formulation in package exact it reproduces the paper's "exact method
// conducted on constraint solving scheduling using ILP solver" — the role
// IBM ILOG CPLEX plays in the original evaluation.
package ilp

import (
	"context"
	"math"
	"time"

	"respect/internal/lp"
)

// Problem is an LP with integrality flags.
type Problem struct {
	LP lp.Problem
	// Integer marks which variables must take integral values.
	Integer []bool
}

// Options bounds solver effort. Wall-clock limits are expressed through
// the context passed to SolveCtx; Timeout remains as a convenience that is
// intersected with the context deadline.
type Options struct {
	// Timeout caps wall-clock time; zero means unlimited. The effective
	// deadline is the earlier of start+Timeout and the context deadline.
	Timeout time.Duration
	// MaxNodes caps branch-and-bound nodes; zero means unlimited.
	MaxNodes int
}

// Status reports the MILP outcome.
type Status int8

// MILP outcomes.
const (
	Optimal    Status = iota // proven optimal integral solution
	Feasible                 // integral incumbent, optimality unproven (budget)
	Infeasible               // no integral solution exists
	Unbounded                // LP relaxation unbounded
	Unknown                  // budget exhausted with no incumbent
)

// Solution is the MILP solve result.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Nodes counts branch-and-bound nodes explored.
	Nodes int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

const intTol = 1e-6

type bbSolver struct {
	base     lp.Problem
	integer  []bool
	opts     Options
	ctx      context.Context
	start    time.Time
	deadline time.Time

	bestX   []float64
	bestObj float64
	hasBest bool
	nodes   int
	stopped bool
}

// Solve runs depth-first branch and bound on p.
func Solve(p *Problem, opts Options) (Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve under a context: the search stops at the earlier of the
// context deadline and opts.Timeout, and an explicit cancellation aborts the
// current LP relaxation mid-pivot. A solve cut off with an integral
// incumbent reports Feasible; with none, Unknown.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (Solution, error) {
	s := &bbSolver{
		base:    p.LP,
		integer: p.Integer,
		opts:    opts,
		ctx:     ctx,
		start:   time.Now(),
		bestObj: math.Inf(1),
	}
	if opts.Timeout > 0 {
		s.deadline = s.start.Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (s.deadline.IsZero() || d.Before(s.deadline)) {
		s.deadline = d
	}
	status, err := s.branch(nil)
	if err != nil {
		return Solution{}, err
	}
	sol := Solution{Nodes: s.nodes, Elapsed: time.Since(s.start)}
	switch {
	case status == lp.Unbounded:
		sol.Status = Unbounded
	case s.hasBest && !s.stopped:
		sol.Status = Optimal
		sol.X = s.bestX
		sol.Objective = s.bestObj
	case s.hasBest:
		sol.Status = Feasible
		sol.X = s.bestX
		sol.Objective = s.bestObj
	case s.stopped:
		sol.Status = Unknown
	default:
		sol.Status = Infeasible
	}
	return sol, nil
}

func (s *bbSolver) outOfBudget() bool {
	if s.stopped {
		return true
	}
	if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
		s.stopped = true
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.stopped = true
		return true
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		s.stopped = true
		return true
	}
	return false
}

// branch solves the relaxation with the extra bound constraints and
// recurses on a fractional integer variable. It returns the top-level LP
// status (used to classify unboundedness).
func (s *bbSolver) branch(extra []lp.Constraint) (lp.Status, error) {
	if s.outOfBudget() {
		return lp.Infeasible, nil
	}
	s.nodes++

	prob := lp.Problem{
		NumVars:     s.base.NumVars,
		Objective:   s.base.Objective,
		Constraints: append(append([]lp.Constraint{}, s.base.Constraints...), extra...),
	}
	lpOpts := lp.Opts{Deadline: s.deadline}
	if s.ctx != nil {
		lpOpts.Cancel = s.ctx.Done()
	}
	rel, err := lp.SolveOpt(&prob, lpOpts)
	if err == lp.ErrDeadline {
		s.stopped = true
		return lp.Infeasible, nil
	}
	if err != nil {
		return lp.Infeasible, err
	}
	switch rel.Status {
	case lp.Infeasible:
		return lp.Infeasible, nil
	case lp.Unbounded:
		return lp.Unbounded, nil
	}
	// Bound: the relaxation under-estimates every completion.
	if s.hasBest && rel.Objective >= s.bestObj-1e-9 {
		return lp.Optimal, nil
	}

	// Most-fractional branching variable.
	branchVar, frac := -1, 0.0
	for j, isInt := range s.integer {
		if !isInt {
			continue
		}
		f := rel.X[j] - math.Floor(rel.X[j])
		d := math.Min(f, 1-f)
		if d > intTol && d > frac {
			frac = d
			branchVar = j
		}
	}
	if branchVar < 0 {
		// Integral: new incumbent.
		obj := rel.Objective
		if !s.hasBest || obj < s.bestObj {
			s.hasBest = true
			s.bestObj = obj
			s.bestX = append([]float64(nil), rel.X...)
			// Snap near-integral entries exactly.
			for j, isInt := range s.integer {
				if isInt {
					s.bestX[j] = math.Round(s.bestX[j])
				}
			}
		}
		return lp.Optimal, nil
	}

	floorV := math.Floor(rel.X[branchVar])
	down := make([]float64, s.base.NumVars)
	down[branchVar] = 1
	up := make([]float64, s.base.NumVars)
	up[branchVar] = 1

	// Explore the branch nearer the fractional value first.
	first := lp.Constraint{Coeffs: down, Sense: lp.LE, RHS: floorV}
	second := lp.Constraint{Coeffs: up, Sense: lp.GE, RHS: floorV + 1}
	if rel.X[branchVar]-floorV > 0.5 {
		first, second = second, first
	}
	if _, err := s.branch(append(extra, first)); err != nil {
		return lp.Optimal, err
	}
	if _, err := s.branch(append(extra, second)); err != nil {
		return lp.Optimal, err
	}
	return lp.Optimal, nil
}
