package ilp

import (
	"context"
	"testing"
	"time"

	"respect/internal/lp"
)

// knapsackProblem builds a small maximization-style MILP with a known
// optimum (phrased as minimization of the negated value).
func knapsackProblem() *Problem {
	// min -3x0 -4x1 -2x2  s.t.  2x0+3x1+x2 <= 4,  x binary.
	nv := 3
	p := &Problem{
		LP:      lp.Problem{NumVars: nv, Objective: []float64{-3, -4, -2}},
		Integer: []bool{true, true, true},
	}
	p.LP.Constraints = append(p.LP.Constraints,
		lp.Constraint{Coeffs: []float64{2, 3, 1}, Sense: lp.LE, RHS: 4},
		lp.Constraint{Coeffs: []float64{1, 0, 0}, Sense: lp.LE, RHS: 1},
		lp.Constraint{Coeffs: []float64{0, 1, 0}, Sense: lp.LE, RHS: 1},
		lp.Constraint{Coeffs: []float64{0, 0, 1}, Sense: lp.LE, RHS: 1},
	)
	return p
}

func TestSolveCtxMatchesSolve(t *testing.T) {
	want, err := Solve(knapsackProblem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveCtx(context.Background(), knapsackProblem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Objective != want.Objective {
		t.Fatalf("SolveCtx = (%v, %v), Solve = (%v, %v)", got.Status, got.Objective, want.Status, want.Objective)
	}
	if got.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", got.Status)
	}
}

func TestSolveCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sol, err := SolveCtx(ctx, knapsackProblem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-cancelled context did not stop the solve promptly")
	}
	if sol.Status != Unknown {
		t.Fatalf("status = %v, want Unknown for a solve cancelled before any incumbent", sol.Status)
	}
}

func TestSolveCtxDeadlineBoundsElapsed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// A loose Options.Timeout must not override the tighter ctx deadline.
	start := time.Now()
	if _, err := SolveCtx(ctx, knapsackProblem(), Options{Timeout: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("ctx deadline ignored")
	}
}
