// Package serve is RESPECT's network scheduling service: an HTTP/JSON
// front end over the internal/solver engine layer that turns
// millisecond-scale schedule inference into a serving primitive.
//
// Requests carry a class (interactive, batch, best-effort) that maps to a
// per-class latency budget and a backend portfolio: interactive traffic
// races cached fast backends under a tight deadline, batch traffic is
// allowed to include the exact solvers under a budget of seconds. An
// admission controller enforces per-class concurrency limits and queue
// depth, rejecting over-capacity work with 429 + Retry-After instead of
// letting every request degrade. Schedules are memoized per class by graph
// fingerprint, and the cache can be warmed from the model zoo so the first
// request for a zoo model is already a hit.
//
// The service is fully observable: every request feeds a Prometheus-style
// metrics registry (per-class latency histograms labeled by outcome,
// admission counters and occupancy gauges, per-backend solve histograms,
// cache and portfolio counters) exposed at GET /metrics, and a request
// can opt into a structured per-request trace (queue wait, cache consult,
// per-backend timeline) with "trace": true. Traces and metrics are
// derived from the same measurements, so they can never disagree; the
// admission counters and gauges are function-backed on the same atomics
// as GET /v1/stats for the same reason.
//
// Endpoints:
//
//	POST /v1/schedule   one graph (zoo name or inline JSON) -> schedule
//	POST /v1/batch      many graphs through one backend -> schedules
//	POST /v1/periodic   register a periodic (period, deadline) stream
//	GET  /v1/periodic   periodic stream set + deadline-miss counters
//	DELETE /v1/periodic/{name}  unregister a periodic stream
//	GET  /v1/backends   registered backends, zoo models, class policies
//	GET  /v1/stats      admission / cache / uptime counters
//	GET  /v1/cluster    fleet membership + forwarding counters
//	GET  /v1/cluster/heartbeat  peer liveness probe
//	POST /v1/cluster/gossip     peer popularity push
//	GET  /metrics       Prometheus text exposition (v0.0.4)
//	GET  /healthz       liveness probe
//
// The periodic endpoints are mounted only when Config.RT.Enabled is set:
// the service then also runs a real-time dispatcher (internal/rt) that
// releases one scheduling job per stream per period into a pluggable
// FIFO/RM/EDF queue discipline, with schedulability-test admission and
// deadline-miss/tardiness metrics.
//
// The cluster endpoints are mounted only when Config.Cluster.Peers is
// set: the server then shards the graph-fingerprint space across the
// fleet by consistent hashing, proxies requests to their home shard
// (falling back to a local solve when the owner is unhealthy), and
// gossips speculation popularity so the fleet warms hot instances once.
package serve

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"respect/internal/metrics"
	"respect/internal/models"
	"respect/internal/online"
	"respect/internal/rt"
	"respect/internal/solver"
	"respect/internal/speculate"
)

// Class names a request service class; it selects the latency budget,
// backend portfolio and admission limits applied to a request.
type Class string

// The built-in request classes.
const (
	// ClassInteractive is latency-sensitive traffic: fast cached backends
	// under a tens-of-milliseconds budget.
	ClassInteractive Class = "interactive"
	// ClassBatch is throughput traffic: a portfolio including the exact
	// solvers under a budget of seconds.
	ClassBatch Class = "batch"
	// ClassBestEffort is background work: the strongest solvers, few
	// concurrent slots, a generous budget.
	ClassBestEffort Class = "best-effort"
)

// ClassPolicy is the serving policy of one request class.
type ClassPolicy struct {
	// Budget bounds one request's scheduling time (context deadline).
	// Anytime backends return budget-cut incumbents at expiry, flagged
	// truncated in the response.
	Budget time.Duration
	// Patience bounds how long a request keeps waiting for slower
	// portfolio members once the first valid schedule is in: after it
	// elapses the stragglers are cancelled (anytime solvers hand back
	// incumbents) and the request returns. Zero waits out the full
	// Budget, which maximizes quality but holds an admission slot for
	// the worst-case member on every cache miss.
	Patience time.Duration
	// Backends is the portfolio raced for this class (registry names).
	Backends []string
	// MaxConcurrent bounds simultaneously admitted requests.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for admission beyond MaxConcurrent;
	// arrivals past the queue are rejected with 429.
	MaxQueue int
	// Warm marks the class's schedule cache for zoo warm-up.
	Warm bool
}

// DefaultClasses returns the built-in class table: interactive (50 ms,
// fast heuristics, warmed), batch (5 s, portfolio including exact) and
// best-effort (30 s, strongest solvers, two slots).
func DefaultClasses() map[Class]ClassPolicy {
	return map[Class]ClassPolicy{
		ClassInteractive: {
			Budget:        50 * time.Millisecond,
			Backends:      []string{"heur", "compiler"},
			MaxConcurrent: 32,
			MaxQueue:      64,
			Warm:          true,
		},
		ClassBatch: {
			Budget:        5 * time.Second,
			Patience:      2 * time.Second,
			Backends:      []string{"heur", "exact", "compiler"},
			MaxConcurrent: 4,
			MaxQueue:      16,
		},
		ClassBestEffort: {
			Budget:        30 * time.Second,
			Patience:      10 * time.Second,
			Backends:      []string{"exact-ilp-grade", "anneal"},
			MaxConcurrent: 2,
			MaxQueue:      8,
		},
	}
}

// Config configures a scheduling service.
type Config struct {
	// Stages is the pipeline length used when a request omits stages
	// (default 4).
	Stages int
	// CacheSize caps each per-class (and per-backend batch) schedule
	// cache (default 512 entries).
	CacheSize int
	// Classes overrides the class table; nil uses DefaultClasses.
	Classes map[Class]ClassPolicy
	// WarmModels lists the zoo models pre-scheduled by WarmUp. nil warms
	// the whole zoo; an empty non-nil slice disables warm-up.
	WarmModels []string
	// LatencyBuckets overrides the latency histogram bucket upper bounds
	// (seconds); nil uses metrics.DefBuckets (5 ms .. 10 s).
	LatencyBuckets []float64
	// DisableMetrics leaves GET /metrics unmounted. Collection itself is
	// a few lock-free atomics per request and stays on.
	DisableMetrics bool
	// MaxBodyBytes caps request body size; oversized bodies are rejected
	// with 413 Request Entity Too Large (default 16 MiB).
	MaxBodyBytes int64
	// Speculation tunes speculative warm-cache scheduling for the
	// warm-marked classes; the zero value leaves it off.
	Speculation SpeculationConfig
	// RT enables the periodic-task mode (/v1/periodic streams dispatched
	// by deadline-aware queue disciplines); the zero value leaves it off.
	RT RTConfig
	// Cluster enables fleet mode: consistent-hash sharding over the peer
	// set with request forwarding and popularity gossip. The zero value
	// (no peers) leaves the server standalone.
	Cluster ClusterConfig
	// Online enables the learning loop: solved requests feed a replay
	// buffer, background training rounds produce candidate agents, and
	// shadow-evaluated winners hot-reload into the class portfolios. The
	// zero value leaves it off.
	Online OnlineConfig
	// Logf, when set, receives service log lines (warm-up, shutdown).
	Logf func(format string, args ...any)
}

// maxStages bounds requested pipeline lengths; real Coral deployments
// pipeline a handful of Edge TPUs, so anything beyond this is a client
// error rather than a capacity problem.
const maxStages = 64

// classState is one request class's runtime: its policy, admission
// controller, memoizing portfolio engine and (when enabled for a
// warm-marked class) its speculative warmer.
type classState struct {
	policy ClassPolicy
	adm    *admission
	engine *solver.CachedPortfolio
	spec   *speculate.Speculator // nil unless speculation is on for this class
}

// Server is the scheduling service. It implements http.Handler; construct
// with New and mount anywhere (an http.Server, a test mux).
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	classes map[Class]*classState
	start   time.Time

	requests atomic.Uint64
	warmed   atomic.Int64

	batchCaches *solver.CacheSet
	speculators []*speculate.Speculator // the warm-marked classes' warmers

	// Observability: one registry per server, holding the serve-layer
	// families below plus the solver-layer Instruments. Admission counters
	// and occupancy gauges are function-backed on the admission atomics,
	// so /metrics and /v1/stats always reconcile.
	reg            *metrics.Registry
	ins            *solver.Instruments
	reqSeconds     *metrics.HistogramVec // class, outcome
	queueSeconds   *metrics.HistogramVec // class
	admissionTotal *metrics.CounterVec   // class, result (func-backed)

	// Fleet mode (nil unless Config.Cluster.Peers is set): membership,
	// sharding and the forwarding counters.
	cluster *clusterState

	// Learning loop (nil unless Config.Online.Enabled): the replay
	// buffer + trainer + promotion manager, and the parking lot joining
	// periodic solves with their deadline outcomes.
	onlineMgr *online.Manager
	rtSolves  rtSolves

	// Periodic-task mode (nil/zero unless Config.RT.Enabled): the
	// dispatcher, the rt metric families and the cost-estimate quantile.
	rtDisp      *rt.Dispatcher
	rtQuantile  float64
	rtTardiness *metrics.Histogram
	rtMisses    *metrics.CounterVec // stream, policy (func-backed)
	rtReleases  *metrics.CounterVec // stream (func-backed)
	rtUtil      *metrics.GaugeVec   // stream (func-backed)
}

// New validates cfg (unknown backend names in class policies are rejected
// eagerly) and returns a ready-to-mount service. Backends are resolved
// dynamically per request, so registering an RL agent after New takes
// effect immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Stages == 0 {
		cfg.Stages = 4
	}
	if cfg.Stages < 1 || cfg.Stages > maxStages {
		return nil, fmt.Errorf("serve: default stages %d outside [1,%d]", cfg.Stages, maxStages)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 512
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.MaxBodyBytes < 1 {
		return nil, fmt.Errorf("serve: MaxBodyBytes %d must be positive", cfg.MaxBodyBytes)
	}
	for _, b := range cfg.LatencyBuckets {
		if b <= 0 || math.IsNaN(b) {
			return nil, fmt.Errorf("serve: latency bucket %v must be positive", b)
		}
	}
	if cfg.Classes == nil {
		cfg.Classes = DefaultClasses()
	}
	// The learning loop comes up before class policies are validated: it
	// registers the rl-online-<class> backends and appends them to each
	// class's portfolio, so the class loop below sees resolvable names.
	var onlineMgr *online.Manager
	if cfg.Online.Enabled {
		mgr, classes, err := newOnlineManager(cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: online: %w", err)
		}
		onlineMgr, cfg.Classes = mgr, classes
	}
	if len(cfg.WarmModels) > 0 {
		known := make(map[string]bool)
		for _, name := range models.Names() {
			known[name] = true
		}
		for _, name := range cfg.WarmModels {
			if !known[name] {
				return nil, fmt.Errorf("serve: warm-up set: unknown model %q (have %v)", name, models.Names())
			}
		}
	}

	s := &Server{
		cfg:         cfg,
		classes:     make(map[Class]*classState, len(cfg.Classes)),
		start:       time.Now(),
		batchCaches: solver.NewCacheSet(solver.Default(), cfg.CacheSize),
		onlineMgr:   onlineMgr,
	}
	for class, policy := range cfg.Classes {
		if class == "" {
			return nil, fmt.Errorf("serve: empty class name")
		}
		if policy.Budget <= 0 {
			return nil, fmt.Errorf("serve: class %q: budget %v must be positive", class, policy.Budget)
		}
		if len(policy.Backends) == 0 {
			return nil, fmt.Errorf("serve: class %q: no backends", class)
		}
		if policy.MaxConcurrent < 1 {
			return nil, fmt.Errorf("serve: class %q: MaxConcurrent %d must be at least 1", class, policy.MaxConcurrent)
		}
		if policy.MaxQueue < 0 {
			return nil, fmt.Errorf("serve: class %q: MaxQueue %d must not be negative", class, policy.MaxQueue)
		}
		backends := make([]solver.Scheduler, len(policy.Backends))
		for i, name := range policy.Backends {
			if _, err := solver.Lookup(name); err != nil {
				return nil, fmt.Errorf("serve: class %q: %w", class, err)
			}
			backends[i] = solver.Dynamic(solver.Default(), name)
		}
		if policy.Patience < 0 {
			return nil, fmt.Errorf("serve: class %q: Patience %v must not be negative", class, policy.Patience)
		}
		s.classes[class] = &classState{
			policy: policy,
			adm:    newAdmission(policy.MaxConcurrent, policy.MaxQueue),
			engine: solver.NewCachedPortfolio(backends, cfg.CacheSize, solver.PortfolioOptions{Patience: policy.Patience}),
		}
	}
	s.initMetrics()
	s.initOnlineMetrics()
	if err := s.initSpeculation(); err != nil {
		return nil, err
	}
	if err := s.initRT(); err != nil {
		return nil, err
	}
	if err := s.initCluster(); err != nil {
		return nil, err
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/backends", s.handleBackends)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if s.rtDisp != nil {
		s.mux.HandleFunc("/v1/periodic", s.handlePeriodic)
		s.mux.HandleFunc("/v1/periodic/", s.handlePeriodicItem)
	}
	if s.cluster != nil {
		s.mux.HandleFunc("/v1/cluster", s.handleClusterStats)
		s.mux.HandleFunc("/v1/cluster/heartbeat", s.handleClusterHeartbeat)
		s.mux.HandleFunc("/v1/cluster/gossip", s.handleClusterGossip)
	}
	if !cfg.DisableMetrics {
		s.mux.Handle("/metrics", s.reg.Handler())
	}
	return s, nil
}

// initMetrics registers the serve-layer metric families and wires every
// class engine, admission controller and batch cache into the server's
// registry. Counters that mirror /v1/stats are function-backed on the
// same atomics, so the two views always agree.
func (s *Server) initMetrics() {
	s.reg = metrics.NewRegistry()
	s.ins = solver.NewInstruments(s.reg, s.cfg.LatencyBuckets)
	s.reqSeconds = s.reg.HistogramVec("respect_request_duration_seconds",
		"End-to-end request latency (including admission queue wait) by class and outcome.",
		s.cfg.LatencyBuckets, "class", "outcome")
	s.queueSeconds = s.reg.HistogramVec("respect_admission_wait_seconds",
		"Time a request spent waiting for admission (queue wait), per class.",
		s.cfg.LatencyBuckets, "class")
	s.admissionTotal = s.reg.CounterVec("respect_admission_requests_total",
		"Admission decisions per class (result is admitted, rejected_capacity or rejected_timeout).",
		"class", "result")
	activeGauge := s.reg.GaugeVec("respect_active_requests",
		"Currently admitted in-flight requests, per class.", "class")
	queuedGauge := s.reg.GaugeVec("respect_queued_requests",
		"Requests waiting for admission, per class.", "class")
	s.reg.CounterFunc("respect_http_requests_total",
		"HTTP requests received on any endpoint.",
		func() float64 { return float64(s.requests.Load()) })
	s.reg.GaugeFunc("respect_warmed_schedules",
		"Schedules memoized by the model-zoo warm-up.",
		func() float64 { return float64(s.warmed.Load()) })
	s.reg.GaugeFunc("respect_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })

	for class, st := range s.classes {
		st.engine.Instrument(s.ins, string(class))
		adm := st.adm
		s.admissionTotal.Func(func() float64 { return float64(adm.admitted.Load()) },
			string(class), "admitted")
		s.admissionTotal.Func(func() float64 { return float64(adm.rejectedCapacity.Load()) },
			string(class), "rejected_capacity")
		s.admissionTotal.Func(func() float64 { return float64(adm.rejectedTimeout.Load()) },
			string(class), "rejected_timeout")
		activeGauge.Func(func() float64 { return float64(adm.active()) }, string(class))
		queuedGauge.Func(func() float64 { return float64(adm.queued()) }, string(class))
	}
	s.batchCaches.Instrument(s.ins, "batch/")
}

// Metrics returns the server's metrics registry, for embedding servers
// that want to add their own families or mount the handler elsewhere.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// class resolves a request's class string ("" defaults to fallback).
func (s *Server) class(name string, fallback Class) (Class, *classState, error) {
	c := Class(name)
	if name == "" {
		c = fallback
	}
	st, ok := s.classes[c]
	if !ok {
		have := make([]string, 0, len(s.classes))
		for k := range s.classes {
			have = append(have, string(k))
		}
		if name == "" {
			return c, nil, fmt.Errorf("no class given and the default class %q is not configured (have %v)", c, have)
		}
		return c, nil, fmt.Errorf("unknown class %q (have %v)", name, have)
	}
	return c, st, nil
}

// batchCache returns the server-owned fingerprint cache wrapping one named
// backend; the set's handles are dynamic, so agent re-registration takes
// effect without invalidating unrelated backends.
func (s *Server) batchCache(name string) (*solver.Cached, error) {
	return s.batchCaches.For(name)
}

// WarmUp pre-schedules the configured zoo models (Config.WarmModels; the
// whole zoo when nil) into every warm-marked class's cache, fanning solves
// out concurrently. Solves run without per-request budgets so only
// full-effort schedules are stored; bound the total with ctx. It returns
// the number of memoized schedules and the first warm error, and is safe
// to run while the server handles traffic.
func (s *Server) WarmUp(ctx context.Context) (int, error) {
	names := s.cfg.WarmModels
	if names == nil {
		names = models.Names()
	}
	anyWarm := false
	for _, st := range s.classes {
		anyWarm = anyWarm || st.policy.Warm
	}
	if len(names) == 0 || !anyWarm {
		return 0, nil
	}
	graphs, err := models.LoadMany(names...)
	if err != nil {
		return 0, err
	}
	total := 0
	var firstErr error
	for class, st := range s.classes {
		if !st.policy.Warm {
			continue
		}
		start := time.Now()
		stored, err := st.engine.Warm(ctx, graphs, s.cfg.Stages, 0)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: warm-up class %q: %w", class, err)
		}
		total += stored
		s.logf("warm-up: class %s: %d/%d schedules cached in %v", class, stored, len(graphs), time.Since(start).Round(time.Millisecond))
	}
	s.warmed.Store(int64(total))
	return total, firstErr
}

// Run serves s on ln until ctx is cancelled, then shuts down gracefully:
// in-flight requests drain (bounded by a 10 s grace period) and the
// concurrent model-zoo warm-up and the speculative warmers are stopped
// and awaited before Run returns, so no background solve outlives the
// service. Run owns ln. This is the shared lifecycle behind respect.Serve
// and cmd/respect-serve.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	warmCtx, warmCancel := context.WithCancel(ctx)
	defer warmCancel()
	warmDone := make(chan struct{})
	go func() {
		defer close(warmDone)
		if n, err := s.WarmUp(warmCtx); err != nil {
			s.logf("warm-up: %v (after %d schedules)", err, n)
		}
	}()
	stopSpec := s.runSpeculators(ctx)
	defer stopSpec()
	stopOnline := s.runOnline(ctx)
	defer stopOnline()
	stopRT, err := s.runRT(ctx)
	if err != nil {
		return err
	}
	defer stopRT()
	clusterDone := make(chan struct{})
	if s.cluster != nil {
		go func() {
			defer close(clusterDone)
			s.cluster.node.Run(ctx)
		}()
	} else {
		close(clusterDone)
	}

	httpSrv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.logf("shutting down")
	warmCancel()
	<-warmDone
	stopSpec()
	stopOnline()
	stopRT()
	<-clusterDone // ctx is done, so the membership loops have exited
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	<-errc // Serve returned http.ErrServerClosed
	return nil
}

// ClassStats is one class's admission and cache telemetry.
type ClassStats struct {
	Admitted             uint64 `json:"admitted"`
	RejectedCapacity     uint64 `json:"rejected_capacity"`
	RejectedQueueTimeout uint64 `json:"rejected_queue_timeout"`
	Active               int    `json:"active"`
	Queued               int    `json:"queued"`
	CacheHits            uint64 `json:"cache_hits"`
	CacheMisses          uint64 `json:"cache_misses"`
	CacheEvictions       uint64 `json:"cache_evictions"`
	CacheLen             int    `json:"cache_len"`
}

// Stats is a point-in-time service telemetry snapshot.
type Stats struct {
	UptimeMS        float64               `json:"uptime_ms"`
	Requests        uint64                `json:"requests"`
	WarmedSchedules int64                 `json:"warmed_schedules"`
	Classes         map[string]ClassStats `json:"classes"`
	// Speculation aggregates the class speculators' counters; absent when
	// speculative warming is disabled.
	Speculation *speculate.Stats `json:"speculation,omitempty"`
	// RT is the periodic-task dispatcher snapshot; absent when the mode
	// is disabled.
	RT *rt.Stats `json:"rt,omitempty"`
	// Cluster is the fleet membership/forwarding snapshot; absent when
	// clustering is disabled.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Online is the learning-loop snapshot (buffer fills, promotions,
	// shadow gaps); absent when the loop is disabled.
	Online *online.Stats `json:"online,omitempty"`
}

// Stats snapshots admission, cache and request counters.
func (s *Server) Stats() Stats {
	out := Stats{
		UptimeMS:        float64(time.Since(s.start)) / float64(time.Millisecond),
		Requests:        s.requests.Load(),
		WarmedSchedules: s.warmed.Load(),
		Classes:         make(map[string]ClassStats, len(s.classes)),
	}
	if len(s.speculators) > 0 {
		agg := s.SpeculationStats()
		out.Speculation = &agg
	}
	if s.rtDisp != nil {
		rts := s.rtDisp.Stats()
		out.RT = &rts
	}
	if s.onlineMgr != nil {
		ost := s.onlineMgr.Stats()
		out.Online = &ost
	}
	out.Cluster = s.ClusterStats()
	for class, st := range s.classes {
		hits, misses := st.engine.Stats()
		out.Classes[string(class)] = ClassStats{
			Admitted:             st.adm.admitted.Load(),
			RejectedCapacity:     st.adm.rejectedCapacity.Load(),
			RejectedQueueTimeout: st.adm.rejectedTimeout.Load(),
			Active:               st.adm.active(),
			Queued:               st.adm.queued(),
			CacheHits:            hits,
			CacheMisses:          misses,
			CacheEvictions:       st.engine.Evictions(),
			CacheLen:             st.engine.Len(),
		}
	}
	return out
}
