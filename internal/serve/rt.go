package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"respect/internal/graph"
	"respect/internal/rt"
)

// RTConfig enables and tunes the periodic-task (real-time) mode: clients
// register (model, period, deadline, class) streams on POST /v1/periodic
// and a dispatcher releases one scheduling job per stream per period into
// a pluggable queue discipline ahead of the class admission controller.
// Admission of a stream is a schedulability test — utilization bound plus
// response-time analysis — fed by observed per-solve latency percentiles
// from the serving histograms (see internal/rt).
type RTConfig struct {
	// Enabled mounts the /v1/periodic endpoints and starts the dispatcher
	// with Run. Off, the serving path carries no periodic-mode cost.
	Enabled bool
	// Policy is the queue discipline: "fifo", "rm" or "edf" (default edf).
	Policy string
	// UtilBound overrides the admission utilization bound. Zero keeps the
	// policy default (EDF 1.0, RM/FIFO the Liu & Layland bound) plus the
	// response-time analysis; setting it is an operator override that
	// admits exactly up to the bound, overload included.
	UtilBound float64
	// Workers sizes the periodic executor pool (default 1). Each worker
	// still passes through the stream class's admission controller, so
	// periodic work cannot crowd out more than the class allows.
	Workers int
	// CostQuantile picks the per-solve latency quantile used as a
	// stream's cost estimate when the registration does not pin cost_ms
	// (default 0.95). Must be in (0, 1].
	CostQuantile float64
}

// rtPayload is the opaque stream payload carried through internal/rt: the
// resolved graph and the serving class the stream's jobs run under.
type rtPayload struct {
	g      *graph.Graph
	stages int
	class  Class
	st     *classState
}

// initRT validates cfg.RT, builds the dispatcher and registers the rt
// metric families. Called by New after initMetrics (the cost estimator
// reads the request-latency histograms); a no-op when the mode is off.
func (s *Server) initRT() error {
	rc := s.cfg.RT
	if !rc.Enabled {
		return nil
	}
	if rc.CostQuantile == 0 {
		rc.CostQuantile = 0.95
	}
	if rc.CostQuantile <= 0 || rc.CostQuantile > 1 {
		return fmt.Errorf("serve: RT.CostQuantile %v outside (0,1]", rc.CostQuantile)
	}
	s.rtQuantile = rc.CostQuantile

	s.rtTardiness = s.reg.Histogram("respect_rt_tardiness_seconds",
		"Periodic job tardiness (seconds past the absolute deadline; 0 for on-time jobs), all streams.",
		s.cfg.LatencyBuckets)
	s.rtMisses = s.reg.CounterVec("respect_rt_deadline_misses_total",
		"Periodic jobs that missed their deadline (finished late, superseded, or shed), per stream and policy.",
		"stream", "policy")
	s.rtReleases = s.reg.CounterVec("respect_rt_releases_total",
		"Periodic jobs released, per stream.", "stream")
	s.rtUtil = s.reg.GaugeVec("respect_rt_stream_utilization",
		"Admitted utilization (cost estimate / period) per stream.", "stream")

	d, err := rt.New(rt.Config{
		Policy:    rt.Policy(rc.Policy),
		UtilBound: rc.UtilBound,
		Workers:   rc.Workers,
		Run:       s.runRTJob,
		Estimate:  s.rtEstimate,
		OnComplete: func(res rt.JobResult) {
			s.rtTardiness.Observe(res.Tardiness.Seconds())
			s.recordRTOutcome(res)
		},
		Logf: s.logf,
	})
	if err != nil {
		return err
	}
	s.rtDisp = d
	s.reg.GaugeFunc("respect_rt_queued_jobs",
		"Periodic jobs released but not yet started.",
		func() float64 { return float64(s.rtDisp.Queued()) })
	return nil
}

// runRT starts the periodic dispatcher under ctx; the returned stop is
// idempotent and a no-op when the mode is off.
func (s *Server) runRT(ctx context.Context) (stop func(), err error) {
	if s.rtDisp == nil {
		return func() {}, nil
	}
	return s.rtDisp.Start(ctx)
}

// runRTJob executes one released periodic job: acquire the stream class's
// admission slot (so periodic work obeys the same concurrency limits as
// one-shot traffic), then race the class portfolio under the class
// budget. Cache hits make steady-state periodic jobs nearly free.
func (s *Server) runRTJob(ctx context.Context, j rt.Job) error {
	p := j.Stream.Payload.(*rtPayload)
	admCtx, admCancel := context.WithTimeout(ctx, p.st.policy.Budget)
	release, err := p.st.adm.acquire(admCtx)
	admCancel()
	if err != nil {
		return err
	}
	defer release()
	runCtx, cancel := context.WithTimeout(ctx, p.st.policy.Budget)
	defer cancel()
	solveStart := time.Now()
	res, hit, err := p.st.engine.Run(runCtx, p.g, p.stages)
	if err == nil && s.onlineMgr != nil {
		// Park the solve; the dispatcher's OnComplete joins it with the
		// deadline outcome and records the replay sample.
		s.rtSolves.put(j.Seq, rtSolve{
			class:    p.class,
			graph:    p.g,
			stages:   p.stages,
			backend:  res.Backend,
			schedule: res.Schedule,
			cost:     res.Cost,
			latency:  time.Since(solveStart),
			cacheHit: hit,
		})
	}
	return err
}

// rtEstimate feeds the schedulability test: the configured quantile of
// the stream class's observed ok-request latency, falling back to the
// class budget (the worst admissible case) before any traffic has been
// observed. Registrations that pin cost_ms never reach here.
func (s *Server) rtEstimate(stream *rt.Stream) time.Duration {
	p := stream.Payload.(*rtPayload)
	if secs := s.reqSeconds.With(string(p.class), outcomeOK).Quantile(s.rtQuantile); secs > 0 {
		return time.Duration(secs * float64(time.Second))
	}
	return p.st.policy.Budget
}

// PeriodicRequest is the POST /v1/periodic body: one periodic stream
// registration. Exactly one of Model and Graph names the work, exactly as
// on /v1/schedule; PeriodMS is required; DeadlineMS defaults to the
// period; CostMS pins the schedulability cost estimate (otherwise the
// observed class latency quantile is used).
type PeriodicRequest struct {
	Name       string          `json:"name"`
	Model      string          `json:"model,omitempty"`
	Graph      json.RawMessage `json:"graph,omitempty"`
	Stages     int             `json:"stages,omitempty"`
	Class      string          `json:"class,omitempty"`
	PeriodMS   float64         `json:"period_ms"`
	DeadlineMS float64         `json:"deadline_ms,omitempty"`
	CostMS     float64         `json:"cost_ms,omitempty"`
}

// PeriodicResponse is the POST /v1/periodic result: the admitted stream
// snapshot plus the dispatcher's policy and post-admission utilization.
type PeriodicResponse struct {
	Stream      rt.StreamStats `json:"stream"`
	Class       string         `json:"class"`
	Policy      rt.Policy      `json:"policy"`
	Utilization float64        `json:"utilization"`
	UtilBound   float64        `json:"util_bound"`
}

// handlePeriodic serves GET (list) and POST (register) on /v1/periodic.
func (s *Server) handlePeriodic(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.rtDisp.Stats())
	case http.MethodPost:
		s.handlePeriodicRegister(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handlePeriodicRegister admits one periodic stream: resolve the graph
// and class like /v1/schedule, then run the schedulability test. A
// schedulability rejection (including duplicates) is 409 Conflict — the
// request is well-formed, the current stream set just cannot absorb it.
func (s *Server) handlePeriodicRegister(w http.ResponseWriter, r *http.Request) {
	var req PeriodicRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	class, st, err := s.class(req.Class, ClassInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	numStages, err := s.stages(req.Stages)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	g, code, err := resolveGraph(req.Model, req.Graph)
	if err != nil {
		writeError(w, code, "%s", err.Error())
		return
	}
	if err := validateStagesForGraph(numStages, g); err != nil {
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	if req.PeriodMS <= 0 {
		writeError(w, http.StatusBadRequest, "period_ms %v must be positive", req.PeriodMS)
		return
	}
	spec := rt.StreamSpec{
		Name:     req.Name,
		Period:   time.Duration(req.PeriodMS * float64(time.Millisecond)),
		Deadline: time.Duration(req.DeadlineMS * float64(time.Millisecond)),
		Cost:     time.Duration(req.CostMS * float64(time.Millisecond)),
		Payload:  &rtPayload{g: g, stages: numStages, class: class, st: st},
	}
	stream, err := s.rtDisp.Register(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, rt.ErrNotSchedulable) || errors.Is(err, rt.ErrStreamExists) {
			code = http.StatusConflict
		}
		writeError(w, code, "%s", err.Error())
		return
	}
	// Per-stream series are function-backed on the stream's own atomics,
	// so /metrics and /v1/stats can never disagree. Re-registering a name
	// (delete, then register) rebinds the series to the new stream.
	policy := string(s.rtDisp.Policy())
	s.rtMisses.Func(func() float64 { return float64(stream.Misses()) }, stream.Name, policy)
	s.rtReleases.Func(func() float64 { return float64(stream.Releases()) }, stream.Name)
	s.rtUtil.Func(stream.Utilization, stream.Name)

	stats := s.rtDisp.Stats()
	resp := PeriodicResponse{
		Class:       string(class),
		Policy:      stats.Policy,
		Utilization: stats.Utilization,
		UtilBound:   stats.UtilBound,
	}
	for _, ss := range stats.Streams {
		if ss.Name == stream.Name {
			resp.Stream = ss
		}
	}
	writeJSON(w, http.StatusCreated, resp)
}

// handlePeriodicItem serves DELETE /v1/periodic/{name}: unregister one
// stream and cancel its pending release.
func (s *Server) handlePeriodicItem(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/periodic/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusBadRequest, "stream name required: DELETE /v1/periodic/{name}")
		return
	}
	if !s.rtDisp.Remove(name) {
		writeError(w, http.StatusNotFound, "unknown stream %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}
