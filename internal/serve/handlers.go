package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/sched"
	"respect/internal/solver"
)

// defaultMaxBodyBytes bounds request bodies when Config.MaxBodyBytes is
// unset; the largest zoo graph serializes to well under a megabyte, so
// 16 MiB leaves ample headroom for batches.
const defaultMaxBodyBytes = 16 << 20

// Request outcome labels on the respect_request_duration_seconds
// histogram. Every request that resolved to a class is observed exactly
// once under one of these.
const (
	outcomeOK               = "ok"                // 200 with a schedule
	outcomeInvalid          = "invalid"           // 4xx request validation after class resolution
	outcomeError            = "error"             // 422: every backend failed
	outcomeTimeout          = "timeout"           // 504: budget expired with no schedule at all
	outcomeRejectedCapacity = "rejected_capacity" // 429: admission queue full
	outcomeRejectedTimeout  = "rejected_timeout"  // 429: budget spent waiting in the queue
)

// ScheduleRequest is the POST /v1/schedule body. Exactly one of Model
// (a zoo name) and Graph (inline graph JSON, the WriteJSON wire format)
// must be set. Trace opts into a per-request timeline in the response.
type ScheduleRequest struct {
	Model    string          `json:"model,omitempty"`
	Graph    json.RawMessage `json:"graph,omitempty"`
	Stages   int             `json:"stages,omitempty"`
	Class    string          `json:"class,omitempty"`
	Backends []string        `json:"backends,omitempty"`
	Trace    bool            `json:"trace,omitempty"`
}

// CostJSON is a schedule objective on the wire.
type CostJSON struct {
	PeakParamBytes int64 `json:"peak_param_bytes"`
	CrossBytes     int64 `json:"cross_bytes"`
}

func costJSON(c sched.Cost) CostJSON {
	return CostJSON{PeakParamBytes: c.PeakParamBytes, CrossBytes: c.CrossBytes}
}

// OutcomeJSON is per-backend portfolio telemetry on the wire.
type OutcomeJSON struct {
	Backend   string    `json:"backend"`
	Cost      *CostJSON `json:"cost,omitempty"`
	Error     string    `json:"error,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
	Optimal   bool      `json:"optimal,omitempty"`
	Winner    bool      `json:"winner,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

func outcomesJSON(outs []solver.Outcome) []OutcomeJSON {
	res := make([]OutcomeJSON, len(outs))
	for i, o := range outs {
		res[i] = OutcomeJSON{
			Backend:   o.Backend,
			Truncated: o.Info.Truncated,
			Optimal:   o.Info.OptimalityProven,
			Winner:    o.Winner,
			ElapsedMS: durMS(o.Elapsed),
		}
		if o.Err != nil {
			res[i].Error = o.Err.Error()
		} else {
			c := costJSON(o.Cost)
			res[i].Cost = &c
		}
	}
	return res
}

// ScheduleResponse is the POST /v1/schedule result: a deployment-ready
// stage assignment plus solver telemetry. Truncated is the honesty flag —
// true means the budget expired mid-search and Stage is the best incumbent
// found, not a full-effort result. Trace is present only when the request
// set "trace": true.
type ScheduleResponse struct {
	Graph     string   `json:"graph"`
	Nodes     int      `json:"nodes"`
	Stages    int      `json:"stages"`
	Class     string   `json:"class"`
	Backend   string   `json:"backend"`
	Stage     []int    `json:"stage"`
	Cost      CostJSON `json:"cost"`
	Truncated bool     `json:"truncated"`
	CacheHit  bool     `json:"cache_hit"`
	// SpeculativeHit marks a cache hit served from an entry the
	// speculative warmer stored ahead of demand.
	SpeculativeHit bool          `json:"speculative_hit,omitempty"`
	ElapsedMS      float64       `json:"elapsed_ms"`
	Outcomes       []OutcomeJSON `json:"outcomes,omitempty"`
	Trace          *TraceJSON    `json:"trace,omitempty"`
}

// TraceJSON is one request's structured timeline: queue wait, the cache
// consult, the solve window, and each raced backend placed on it. The
// same measurements feed the latency histograms on /metrics, so a trace
// can never disagree with the aggregate view.
type TraceJSON struct {
	// QueueWaitMS is the time spent waiting for admission.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Cache is the per-class memo consult: "hit", "miss", or "bypass"
	// (the request overrode the portfolio, skipping the cache).
	Cache string `json:"cache"`
	// SolveMS is the solve window (cache lookup + race when it missed).
	SolveMS float64 `json:"solve_ms"`
	// TotalMS is the whole request, admission wait included; this exact
	// value is what the request-duration histogram observed.
	TotalMS float64 `json:"total_ms"`
	// Backends is the per-backend timeline of the race this request ran;
	// empty on cache hits (no race ran).
	Backends []TraceBackendJSON `json:"backends,omitempty"`
}

// TraceBackendJSON places one raced backend on the request timeline.
// Offsets are relative to the start of the solve window.
type TraceBackendJSON struct {
	Backend string `json:"backend"`
	// StartMS/FinishMS bound the backend's run within the solve window.
	StartMS  float64 `json:"start_ms"`
	FinishMS float64 `json:"finish_ms"`
	// Outcome is "winner", "ok" (valid schedule, lost), "cancelled"
	// (lost the race before finishing) or "error".
	Outcome string `json:"outcome"`
	// Truncated marks a budget-cut incumbent.
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// traceJSON assembles the response timeline from the same measurements
// the histograms observed.
func traceJSON(queueWait, solve, total time.Duration, cache string, hit bool, outs []solver.Outcome) *TraceJSON {
	tr := &TraceJSON{
		QueueWaitMS: durMS(queueWait),
		Cache:       cache,
		SolveMS:     durMS(solve),
		TotalMS:     durMS(total),
	}
	if hit {
		return tr // a hit runs no race; the timeline is just the lookup
	}
	for _, o := range outs {
		b := TraceBackendJSON{
			Backend:   o.Backend,
			StartMS:   durMS(o.Started),
			FinishMS:  durMS(o.Started + o.Elapsed),
			Truncated: o.Info.Truncated,
		}
		switch {
		case o.Winner:
			b.Outcome = "winner"
		case o.Err == nil:
			b.Outcome = "ok"
		case errors.Is(o.Err, context.Canceled), errors.Is(o.Err, context.DeadlineExceeded):
			b.Outcome = "cancelled"
		default:
			b.Outcome = "error"
			b.Error = o.Err.Error()
		}
		tr.Backends = append(tr.Backends, b)
	}
	return tr
}

// BatchRequest is the POST /v1/batch body: many graphs through one
// backend's fingerprint cache with a bounded worker pool.
type BatchRequest struct {
	Models  []string          `json:"models,omitempty"`
	Graphs  []json.RawMessage `json:"graphs,omitempty"`
	Stages  int               `json:"stages,omitempty"`
	Class   string            `json:"class,omitempty"`
	Backend string            `json:"backend,omitempty"`
	Jobs    int               `json:"jobs,omitempty"`
}

// BatchItemJSON is one graph's outcome within a batch response. Truncated
// is the same honesty flag as on /v1/schedule: the budget cut this item's
// solve and Stage is an incumbent.
type BatchItemJSON struct {
	Index     int       `json:"index"`
	Graph     string    `json:"graph"`
	Stage     []int     `json:"stage,omitempty"`
	Cost      *CostJSON `json:"cost,omitempty"`
	Error     string    `json:"error,omitempty"`
	CacheHit  bool      `json:"cache_hit"`
	Truncated bool      `json:"truncated,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
	// ForwardedTo names the fleet peer that solved this item when it was
	// proxied to its home shard; empty for locally solved items.
	ForwardedTo string `json:"forwarded_to,omitempty"`
}

// batchItemJSON converts one batch solve result to its wire form.
func batchItemJSON(index int, res solver.BatchResult) BatchItemJSON {
	item := BatchItemJSON{
		Index:     index,
		Graph:     res.Graph.Name,
		CacheHit:  res.CacheHit,
		Truncated: res.Truncated,
		ElapsedMS: durMS(res.Elapsed),
	}
	if res.Err != nil {
		item.Error = res.Err.Error()
	} else {
		item.Stage = res.Schedule.Stage
		c := costJSON(res.Cost)
		item.Cost = &c
	}
	return item
}

// BatchResponse is the POST /v1/batch result, items in input order.
type BatchResponse struct {
	Class     string          `json:"class"`
	Backend   string          `json:"backend"`
	Stages    int             `json:"stages"`
	Count     int             `json:"count"`
	Errors    int             `json:"errors"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Items     []BatchItemJSON `json:"items"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// BackendsResponse is the GET /v1/backends result.
type BackendsResponse struct {
	Backends []string                   `json:"backends"`
	Models   []string                   `json:"models"`
	Classes  map[string]ClassPolicyJSON `json:"classes"`
}

// ClassPolicyJSON is a class policy on the wire.
type ClassPolicyJSON struct {
	BudgetMS      float64  `json:"budget_ms"`
	PatienceMS    float64  `json:"patience_ms,omitempty"`
	Backends      []string `json:"backends"`
	MaxConcurrent int      `json:"max_concurrent"`
	MaxQueue      int      `json:"max_queue"`
	Warm          bool     `json:"warm"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// retryAfterBudgetCap bounds the Retry-After hint to this many class
// budgets regardless of queue depth.
const retryAfterBudgetCap = 4

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v) // the status line is out; nothing sane to do on error
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeRejected maps an admission failure to 429 with a Retry-After hint
// derived from the rejection cause and the queue state, not a flat class
// budget. One admission slot frees roughly every Budget/MaxConcurrent;
// a queue-full rejection must outwait the whole backlog plus its own
// slot, while a queue-timeout rejection already waited one full budget,
// so only the work still queued ahead of a fresh arrival bounds the next
// attempt. The two causes therefore advertise different hints (seconds,
// rounded up, floor 1 — the header's unit). The hint is capped at a few
// class budgets: the backlog estimate is a worst case that assumes every
// queued request burns its full budget, so on a deep queue the linear
// extrapolation quotes minutes that honest clients would actually sit
// out, long after the queue has really drained.
func writeRejected(w http.ResponseWriter, st *classState, err error) {
	policy := st.policy
	perSlot := policy.Budget.Seconds() / float64(policy.MaxConcurrent)
	backlog := float64(st.adm.queued())
	var wait float64
	if errors.Is(err, errQueueTimeout) {
		wait = perSlot * backlog
	} else {
		wait = perSlot * (backlog + 1)
	}
	if ceiling := retryAfterBudgetCap * policy.Budget.Seconds(); wait > ceiling {
		wait = ceiling
	}
	retry := int(math.Ceil(wait))
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "%s", err.Error())
}

// decodeBody decodes a size-capped JSON request body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeDecodeError maps a body-decode failure to its status: an oversized
// body (http.MaxBytesReader tripped) is 413 Request Entity Too Large,
// anything else is a plain 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds the %d-byte limit", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "decode request: %v", err)
}

// resolveGraph materializes a request's graph: a zoo model by name (404
// when unknown) or an inline graph document (400 when malformed).
func resolveGraph(model string, raw json.RawMessage) (*graph.Graph, int, error) {
	switch {
	case model != "" && len(raw) > 0:
		return nil, http.StatusBadRequest, errors.New("set model or graph, not both")
	case model != "":
		g, err := models.Load(model)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		return g, 0, nil
	case len(raw) > 0:
		g, err := graph.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if g.NumNodes() == 0 {
			return nil, http.StatusBadRequest, errors.New("graph has no nodes")
		}
		return g, 0, nil
	default:
		return nil, http.StatusBadRequest, errors.New("one of model or graph is required")
	}
}

// stages validates a requested stage count (0 means the server default).
func (s *Server) stages(requested int) (int, error) {
	if requested == 0 {
		return s.cfg.Stages, nil
	}
	if requested < 1 || requested > maxStages {
		return 0, fmt.Errorf("stages %d outside [1,%d]", requested, maxStages)
	}
	return requested, nil
}

// validateStagesForGraph rejects pipelines longer than the graph: a stage
// per Edge TPU with no node to run is a client error, and letting it
// through would hand backends a shape they never contract to handle.
func validateStagesForGraph(numStages int, g *graph.Graph) error {
	if numStages > g.NumNodes() {
		return fmt.Errorf("stages %d exceeds graph %q's %d nodes (a pipeline cannot have more stages than nodes)",
			numStages, g.Name, g.NumNodes())
	}
	return nil
}

// observeRequest records one class-resolved request on the duration
// histogram and returns the measured total, so the caller's trace reports
// the exact observed value.
func (s *Server) observeRequest(class Class, outcome string, arrival time.Time) time.Duration {
	total := time.Since(arrival)
	s.reqSeconds.With(string(class), outcome).Observe(total.Seconds())
	return total
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ScheduleRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	class, st, err := s.class(req.Class, ClassInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	numStages, err := s.stages(req.Stages)
	if err != nil {
		s.observeRequest(class, outcomeInvalid, arrival)
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	g, code, err := resolveGraph(req.Model, req.Graph)
	if err != nil {
		s.observeRequest(class, outcomeInvalid, arrival)
		writeError(w, code, "%s", err.Error())
		return
	}
	if err := validateStagesForGraph(numStages, g); err != nil {
		s.observeRequest(class, outcomeInvalid, arrival)
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	var override []solver.Scheduler
	if len(req.Backends) > 0 {
		if override, err = solver.Resolve(req.Backends...); err != nil {
			s.observeRequest(class, outcomeInvalid, arrival)
			writeError(w, http.StatusBadRequest, "%s", err.Error())
			return
		}
	}

	// Speculation's popularity tap: every class-resolved valid request is
	// demand, whether or not it ends up admitted.
	if st.spec != nil {
		st.spec.ObserveRequest(g, numStages)
	}

	// Fleet routing: a request whose graph hashes to another replica is
	// proxied to its home shard (so that shard's cache and speculation see
	// all of the key's traffic) before consuming local admission. Already-
	// forwarded requests always solve locally — one hop, no loops — as do
	// ad-hoc portfolio overrides (no shared cache to concentrate).
	if s.cluster != nil && override == nil && !isForwarded(r) {
		if _, self := s.cluster.node.Owner(g.Fingerprint()); !self {
			if target, ok := s.cluster.node.ForwardTarget(g.Fingerprint()); ok {
				if s.relaySchedule(w, r, target, &req, class, st.policy.Budget, arrival) {
					return
				}
				// Relay failed; fall through to the local solve.
			} else {
				s.cluster.localUnhealthy.Add(1)
			}
		}
	}

	// Admission: wait at most one class budget for a slot, then solve
	// under a fresh budget. The solve context is also bound to the client
	// connection, so abandoned requests cancel their backends. The wait is
	// measured once and feeds both the queue-wait histogram and the trace.
	admStart := time.Now()
	admCtx, admCancel := context.WithTimeout(r.Context(), st.policy.Budget)
	release, err := st.adm.acquire(admCtx)
	admCancel()
	queueWait := time.Since(admStart)
	s.queueSeconds.With(string(class)).Observe(queueWait.Seconds())
	if err != nil {
		outcome := outcomeRejectedCapacity
		if errors.Is(err, errQueueTimeout) {
			outcome = outcomeRejectedTimeout
		}
		s.observeRequest(class, outcome, arrival)
		writeRejected(w, st, err)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), st.policy.Budget)
	defer cancel()
	solveStart := time.Now()
	var (
		res solver.PortfolioResult
		hit bool
	)
	cacheConsult := "miss"
	if override != nil {
		cacheConsult = "bypass" // ad-hoc portfolios skip the class memo
		pres, perr := solver.PortfolioOpt(ctx, override, g, numStages,
			solver.PortfolioOptions{Patience: st.policy.Patience})
		s.ins.ObserveOutcomes(string(class), pres.Outcomes)
		res, err = pres, perr
	} else {
		res, hit, err = st.engine.Run(ctx, g, numStages)
		if hit {
			cacheConsult = "hit"
		}
	}
	solve := time.Since(solveStart)
	if err != nil {
		// A budget/disconnect cut with no schedule at all is a timeout,
		// not a client error: retrying (with a calmer class) can succeed.
		code, outcome := http.StatusUnprocessableEntity, outcomeError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code, outcome = http.StatusGatewayTimeout, outcomeTimeout
		}
		s.observeRequest(class, outcome, arrival)
		writeError(w, code, "no backend produced a schedule: %v", err)
		return
	}
	specHit := false
	if hit && st.spec != nil {
		specHit = st.spec.AttributeHit(g.Fingerprint(), numStages)
	}
	if override == nil {
		s.recordSolve(class, g, numStages, res, solve, hit)
	}
	total := s.observeRequest(class, outcomeOK, arrival)
	resp := ScheduleResponse{
		Graph:          g.Name,
		Nodes:          g.NumNodes(),
		Stages:         numStages,
		Class:          string(class),
		Backend:        res.Backend,
		Stage:          res.Schedule.Stage,
		Cost:           costJSON(res.Cost),
		Truncated:      res.Truncated,
		CacheHit:       hit,
		SpeculativeHit: specHit,
		ElapsedMS:      durMS(solve),
		Outcomes:       outcomesJSON(res.Outcomes),
	}
	if req.Trace {
		resp.Trace = traceJSON(queueWait, solve, total, cacheConsult, hit, res.Outcomes)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	class, st, err := s.class(req.Class, ClassBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	numStages, err := s.stages(req.Stages)
	if err != nil {
		s.observeRequest(class, outcomeInvalid, arrival)
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	if len(req.Models)+len(req.Graphs) == 0 {
		s.observeRequest(class, outcomeInvalid, arrival)
		writeError(w, http.StatusBadRequest, "empty batch: set models and/or graphs")
		return
	}
	graphs := make([]*graph.Graph, 0, len(req.Models)+len(req.Graphs))
	for _, name := range req.Models {
		g, code, err := resolveGraph(name, nil)
		if err == nil {
			err = validateStagesForGraph(numStages, g)
			code = http.StatusBadRequest
		}
		if err != nil {
			s.observeRequest(class, outcomeInvalid, arrival)
			writeError(w, code, "models[%q]: %s", name, err.Error())
			return
		}
		graphs = append(graphs, g)
	}
	for i, raw := range req.Graphs {
		g, code, err := resolveGraph("", raw)
		if err == nil {
			err = validateStagesForGraph(numStages, g)
			code = http.StatusBadRequest
		}
		if err != nil {
			s.observeRequest(class, outcomeInvalid, arrival)
			writeError(w, code, "graphs[%d]: %s", i, err.Error())
			return
		}
		graphs = append(graphs, g)
	}
	backendName := req.Backend
	if backendName == "" {
		backendName = "heur"
	}
	cache, err := s.batchCache(backendName)
	if err != nil {
		s.observeRequest(class, outcomeInvalid, arrival)
		writeError(w, http.StatusBadRequest, "%s", err.Error())
		return
	}
	jobs := req.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > 32 {
		jobs = 32
	}

	// One admission slot covers the whole batch; the class budget bounds
	// the end-to-end run.
	admStart := time.Now()
	admCtx, admCancel := context.WithTimeout(r.Context(), st.policy.Budget)
	release, err := st.adm.acquire(admCtx)
	admCancel()
	s.queueSeconds.With(string(class)).Observe(time.Since(admStart).Seconds())
	if err != nil {
		outcome := outcomeRejectedCapacity
		if errors.Is(err, errQueueTimeout) {
			outcome = outcomeRejectedTimeout
		}
		s.observeRequest(class, outcome, arrival)
		writeRejected(w, st, err)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), st.policy.Budget)
	defer cancel()
	start := time.Now()
	// Fleet routing: graphs owned by healthy remote shards are proxied to
	// their owners as sub-batches (concurrently with the local remainder)
	// so the owners' caches see the traffic; already-forwarded batches
	// solve entirely locally.
	var items []BatchItemJSON
	if s.cluster != nil && !isForwarded(r) {
		if groups := s.batchForwardGroups(graphs); len(groups) > 0 {
			items = s.runClusteredBatch(ctx, cache, graphs, numStages, class, backendName, jobs, groups)
		}
	}
	if items == nil {
		results, _ := solver.Batch(ctx, cache, graphs, numStages, jobs)
		items = make([]BatchItemJSON, len(results))
		for i, res := range results {
			items[i] = batchItemJSON(i, res)
		}
	}
	s.observeRequest(class, outcomeOK, arrival)

	resp := BatchResponse{
		Class:     string(class),
		Backend:   backendName,
		Stages:    numStages,
		Count:     len(items),
		ElapsedMS: durMS(time.Since(start)),
		Items:     items,
	}
	for _, item := range items {
		if item.Error != "" {
			resp.Errors++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := BackendsResponse{
		Backends: solver.Names(),
		Models:   models.Names(),
		Classes:  make(map[string]ClassPolicyJSON, len(s.classes)),
	}
	for class, st := range s.classes {
		resp.Classes[string(class)] = ClassPolicyJSON{
			BudgetMS:      durMS(st.policy.Budget),
			PatienceMS:    durMS(st.policy.Patience),
			Backends:      st.engine.Backends(),
			MaxConcurrent: st.policy.MaxConcurrent,
			MaxQueue:      st.policy.MaxQueue,
			Warm:          st.policy.Warm,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
