// End-to-end tests of the online learning loop through the HTTP
// surface: skewed replay traffic fills the per-class buffers with exact
// attribution, a driven training round promotes a candidate for the hot
// class, the promoted agent is served through its hot-reloaded backend
// with a measurably better schedule, and an unattainable margin rejects
// every candidate with the rejection metrics to show for it.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"respect/internal/graph"
	"respect/internal/serve"
)

// onlineGraphJSON builds one in-tree (binary-reduction) DAG and returns
// its wire form. In-trees keep deployed cost genuinely sensitive to the
// agent's emission order (dense synthetic DAGs collapse under the
// same-stage-children constraint), so training visibly moves the served
// schedule cost.
func onlineGraphJSON(t *testing.T, leaves int, seed int64) json.RawMessage {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(fmt.Sprintf("intree-%d-%d", leaves, seed))
	var cur []int
	for i := 0; i < leaves; i++ {
		cur = append(cur, g.AddNode(graph.Node{Name: "leaf", ParamBytes: int64(50 + rng.Intn(400)), OutBytes: int64(5 + rng.Intn(40))}))
	}
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			v := g.AddNode(graph.Node{Name: "merge", ParamBytes: int64(50 + rng.Intn(400)), OutBytes: int64(5 + rng.Intn(40))})
			g.AddEdge(cur[i], v)
			g.AddEdge(cur[i+1], v)
			next = append(next, v)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	var buf bytes.Buffer
	if err := g.MustBuild().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// onlineServeConfig is the shared e2e configuration: two learning
// classes on generous budgets with a deterministic, promotion-friendly
// loop. MinSamples is tuned so the skewed replay trains interactive and
// leaves batch below the floor.
func onlineServeConfig() serve.Config {
	return serve.Config{
		Stages:     4,
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			serve.ClassInteractive: {Budget: 5 * 1e9, Backends: []string{"heur"}, MaxConcurrent: 8, MaxQueue: 16},
			serve.ClassBatch:       {Budget: 5 * 1e9, Backends: []string{"heur"}, MaxConcurrent: 4, MaxQueue: 8},
		},
		Online: serve.OnlineConfig{
			Enabled:    true,
			Margin:     0.01,
			MinSamples: 24,
			BatchSize:  6,
			Steps:      40,
			Seed:       7,
			BufferCap:  256,
		},
	}
}

// replayOnlineTraffic drives the deterministic skewed workload (three
// graphs, 6:3:1) through POST /v1/schedule under the given class and
// returns the graphs' wire forms.
func replayOnlineTraffic(t *testing.T, url, class string, n int) []json.RawMessage {
	t.Helper()
	graphs := []json.RawMessage{
		onlineGraphJSON(t, 8, 11),
		onlineGraphJSON(t, 7, 12),
		onlineGraphJSON(t, 6, 13),
	}
	for i := 0; i < n; i++ {
		pick := 2
		switch {
		case i%10 < 6:
			pick = 0
		case i%10 < 9:
			pick = 1
		}
		resp, body := postJSON(t, url+"/v1/schedule", map[string]any{
			"graph": graphs[pick],
			"class": class,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	return graphs
}

// onlineAgentCost measures the online backend's weighted mean schedule
// cost over the replay graphs via portfolio-override requests, which
// bypass the class cache and are never recorded into the buffer.
func onlineAgentCost(t *testing.T, url, backend string, graphs []json.RawMessage) float64 {
	t.Helper()
	weights := []float64{6, 3, 1} // mirror the replay skew
	total, wsum := 0.0, 0.0
	for i, g := range graphs {
		resp, body := postJSON(t, url+"/v1/schedule", map[string]any{
			"graph":    g,
			"class":    "interactive",
			"backends": []string{backend},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("override solve: status %d: %s", resp.StatusCode, body)
		}
		var sr serve.ScheduleResponse
		decodeInto(t, body, &sr)
		if sr.Backend != backend {
			t.Fatalf("override served by %q, want %q", sr.Backend, backend)
		}
		total += weights[i] * (float64(sr.Cost.PeakParamBytes) + 1e-6*float64(sr.Cost.CrossBytes))
		wsum += weights[i]
	}
	return total / wsum
}

func TestOnlineE2EPromotionImprovesServedCost(t *testing.T) {
	srv, ts := newTestServer(t, onlineServeConfig())
	mgr := srv.Online()
	if mgr == nil {
		t.Fatal("online manager not constructed")
	}

	// Skewed replay: 48 interactive (trains), 12 batch (below the
	// MinSamples floor, so only interactive may promote this round).
	graphs := replayOnlineTraffic(t, ts.URL, "interactive", 48)
	replayOnlineTraffic(t, ts.URL, "batch", 12)

	// Attribution must be exact: every request recorded once, under its
	// own class, nothing dropped.
	if got := mgr.Samples("interactive"); got != 48 {
		t.Fatalf("interactive samples %d, want 48", got)
	}
	if got := mgr.Samples("batch"); got != 12 {
		t.Fatalf("batch samples %d, want 12", got)
	}
	if got := mgr.Dropped(); got != 0 {
		t.Fatalf("dropped samples %d, want 0", got)
	}

	backend := "rl-online-interactive"
	preCost := onlineAgentCost(t, ts.URL, backend, graphs)
	if got := mgr.Samples("interactive"); got != 48 {
		t.Fatalf("override requests were recorded: samples %d, want 48", got)
	}

	// Drive the training loop synchronously until the hot class
	// promotes; the loop is deterministic, so this converges identically
	// on every run.
	var promoted bool
	for round := 0; round < 6 && !promoted; round++ {
		for _, res := range mgr.Round(context.Background()) {
			if res.Class == "interactive" && res.Promoted {
				promoted = true
			}
			if res.Class == "batch" && res.Skipped == "" {
				t.Fatalf("batch class trained below MinSamples: %+v", res)
			}
		}
	}
	if !promoted {
		t.Fatalf("no interactive promotion within 6 rounds: %+v", mgr.Stats())
	}

	postCost := onlineAgentCost(t, ts.URL, backend, graphs)
	if postCost >= preCost {
		t.Fatalf("promoted agent served no improvement: %.1f -> %.1f", preCost, postCost)
	}

	// The metrics view must reconcile with what the manager reports.
	series, page := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, series, page, `respect_online_samples_total{class="interactive"}`); got != 48 {
		t.Errorf(`respect_online_samples_total{class="interactive"} = %v, want 48`, got)
	}
	if got := metricValue(t, series, page, `respect_online_samples_total{class="batch"}`); got != 12 {
		t.Errorf(`respect_online_samples_total{class="batch"} = %v, want 12`, got)
	}
	if got := metricValue(t, series, page, `respect_online_promotions_total{class="interactive",result="promoted"}`); got < 1 {
		t.Errorf("promoted counter %v, want >= 1", got)
	}
	if got := metricValue(t, series, page, "respect_online_train_rounds_total"); got < 1 {
		t.Errorf("train rounds %v, want >= 1", got)
	}
	if gap := metricValue(t, series, page, `respect_online_shadow_gap{class="interactive"}`); gap < 0.01 {
		t.Errorf("shadow gap %v below the promotion margin", gap)
	}

	// And so must /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Online == nil {
		t.Fatal("stats online block missing")
	}
	cs, ok := st.Online.Classes["interactive"]
	if !ok || cs.Promotions < 1 || cs.Samples != 48 || cs.Backend != backend {
		t.Fatalf("stats online interactive block: %+v", cs)
	}
}

func TestOnlineE2EAdversarialMarginRejects(t *testing.T) {
	cfg := onlineServeConfig()
	cfg.Online.Margin = 1e9 // unattainable: every candidate must lose
	srv, ts := newTestServer(t, cfg)
	mgr := srv.Online()

	replayOnlineTraffic(t, ts.URL, "interactive", 48)
	for _, res := range mgr.Round(context.Background()) {
		if res.Promoted {
			t.Fatalf("promotion under an unattainable margin: %+v", res)
		}
	}

	series, page := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, series, page, `respect_online_promotions_total{class="interactive",result="rejected"}`); got != 1 {
		t.Errorf("rejected counter %v, want 1", got)
	}
	if got := metricValue(t, series, page, `respect_online_promotions_total{class="interactive",result="promoted"}`); got != 0 {
		t.Errorf("promoted counter %v, want 0", got)
	}
	if got := mgr.Rejections("interactive"); got != 1 {
		t.Errorf("manager rejections %d, want 1", got)
	}
}
