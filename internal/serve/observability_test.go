// End-to-end tests of the observability subsystem: the Prometheus
// exposition on GET /metrics (and its reconciliation with /v1/stats),
// per-request traces, oversized-body handling, cause-derived Retry-After
// hints, and request-validation edge cases.
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"respect/internal/serve"
)

// scrapeMetrics GETs /metrics and parses the text exposition into a
// series -> value map (comment lines skipped), returning the raw page too
// for error output.
func scrapeMetrics(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type %q lacks the exposition version", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(data)
	out := make(map[string]float64)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, page
}

// metricValue asserts a series exists and returns its value.
func metricValue(t *testing.T, series map[string]float64, page, key string) float64 {
	t.Helper()
	v, ok := series[key]
	if !ok {
		t.Fatalf("series %q missing from exposition:\n%s", key, page)
	}
	return v
}

// TestMetricsReconcileWithStats is the acceptance test: drive known
// traffic, scrape /metrics, and check every advertised counter agrees
// with the /v1/stats JSON view of the same server.
func TestMetricsReconcileWithStats(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})

	// 4 interactive requests: ResNet50 miss + 2 hits, Xception miss.
	for _, model := range []string{"ResNet50", "ResNet50", "ResNet50", "Xception"} {
		resp, data := postJSON(t, ts.URL+"/v1/schedule",
			serve.ScheduleRequest{Model: model, Class: "interactive"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", model, resp.StatusCode, data)
		}
	}
	// 1 batch request over two distinct models (2 batch-cache misses).
	resp, data := postJSON(t, ts.URL+"/v1/batch", serve.BatchRequest{
		Models: []string{"ResNet50", "Xception"}, Backend: "heur", Jobs: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, data)
	}
	// 1 invalid interactive request (stages beyond the cap) for the
	// invalid outcome label.
	if resp, _ := postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50", Stages: -1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request: status %d, want 400", resp.StatusCode)
	}

	series, page := scrapeMetrics(t, ts.URL)

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st serve.Stats
	statsData, _ := io.ReadAll(statsResp.Body)
	decodeInto(t, statsData, &st)

	inter := st.Classes["interactive"]
	checks := []struct {
		series string
		want   float64
	}{
		{`respect_admission_requests_total{class="interactive",result="admitted"}`, float64(inter.Admitted)},
		{`respect_admission_requests_total{class="interactive",result="rejected_capacity"}`, float64(inter.RejectedCapacity)},
		{`respect_admission_requests_total{class="interactive",result="rejected_timeout"}`, float64(inter.RejectedQueueTimeout)},
		{`respect_schedule_cache_ops_total{cache="interactive",op="hit"}`, float64(inter.CacheHits)},
		{`respect_schedule_cache_ops_total{cache="interactive",op="miss"}`, float64(inter.CacheMisses)},
		{`respect_schedule_cache_ops_total{cache="interactive",op="evict"}`, float64(inter.CacheEvictions)},
		{`respect_active_requests{class="interactive"}`, float64(inter.Active)},
		{`respect_queued_requests{class="interactive"}`, float64(inter.Queued)},
		{`respect_request_duration_seconds_count{class="interactive",outcome="ok"}`, 4},
		{`respect_request_duration_seconds_count{class="interactive",outcome="invalid"}`, 1},
		{`respect_request_duration_seconds_count{class="batch",outcome="ok"}`, 1},
		{`respect_admission_requests_total{class="batch",result="admitted"}`, 1},
		{`respect_schedule_cache_ops_total{cache="batch/heur",op="miss"}`, 2},
		{`respect_schedule_cache_ops_total{cache="batch/heur",op="hit"}`, 0},
	}
	for _, c := range checks {
		if got := metricValue(t, series, page, c.series); got != c.want {
			t.Errorf("%s = %v, want %v", c.series, got, c.want)
		}
	}

	// Hard numbers for the driven traffic, independent of the stats view.
	if got := metricValue(t, series, page, `respect_admission_requests_total{class="interactive",result="admitted"}`); got != 4 {
		t.Errorf("interactive admitted = %v, want 4", got)
	}
	if hits := metricValue(t, series, page, `respect_schedule_cache_ops_total{cache="interactive",op="hit"}`); hits != 2 {
		t.Errorf("interactive cache hits = %v, want 2", hits)
	}

	// The scrape itself was a request: stats (fetched one request later)
	// must be exactly one ahead of the scraped total.
	if got := metricValue(t, series, page, "respect_http_requests_total"); float64(st.Requests) != got+1 {
		t.Errorf("respect_http_requests_total = %v, stats.Requests = %d, want stats = scrape+1", got, st.Requests)
	}

	// Two interactive misses ran two races: portfolio wins across the
	// interactive engine must sum to 2, and every raced backend reports a
	// latency histogram.
	winSum := 0.0
	for k, v := range series {
		if strings.HasPrefix(k, `respect_portfolio_wins_total{engine="interactive"`) {
			winSum += v
		}
	}
	if winSum != 2 {
		t.Errorf("interactive portfolio wins sum to %v, want 2\n%s", winSum, page)
	}
	for _, backend := range []string{"heur", "compiler"} {
		key := fmt.Sprintf(`respect_backend_schedule_duration_seconds_count{engine="interactive",backend=%q}`, backend)
		if got := metricValue(t, series, page, key); got != 2 {
			t.Errorf("%s = %v, want 2", key, got)
		}
	}

	// Histogram self-consistency: the +Inf bucket equals the count.
	inf := metricValue(t, series, page, `respect_request_duration_seconds_bucket{class="interactive",outcome="ok",le="+Inf"}`)
	cnt := metricValue(t, series, page, `respect_request_duration_seconds_count{class="interactive",outcome="ok"}`)
	if inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}
}

func TestMetricsEndpointCanBeDisabled(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}, DisableMetrics: true})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics: status %d, want 404", resp.StatusCode)
	}
}

func TestCustomLatencyBuckets(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		WarmModels:     []string{},
		LatencyBuckets: []float64{0.001, 1},
	})
	if resp, data := postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	series, page := scrapeMetrics(t, ts.URL)
	metricValue(t, series, page, `respect_request_duration_seconds_bucket{class="interactive",outcome="ok",le="0.001"}`)
	metricValue(t, series, page, `respect_request_duration_seconds_bucket{class="interactive",outcome="ok",le="1"}`)
	if _, ok := series[`respect_request_duration_seconds_bucket{class="interactive",outcome="ok",le="0.005"}`]; ok {
		t.Fatal("default bucket present despite LatencyBuckets override")
	}
}

// TestRequestTrace exercises the opt-in per-request timeline: a miss
// carries the full race (winner present, coherent offsets), a hit records
// the cache consult with no race, and requests that do not opt in get no
// trace at all.
func TestRequestTrace(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})

	// Miss: full timeline.
	resp, data := postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50", Class: "interactive", Trace: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out serve.ScheduleResponse
	decodeInto(t, data, &out)
	tr := out.Trace
	if tr == nil {
		t.Fatalf("trace requested but absent: %s", data)
	}
	if tr.Cache != "miss" || out.CacheHit {
		t.Fatalf("first request should be a traced miss: cache=%q hit=%v", tr.Cache, out.CacheHit)
	}
	if tr.QueueWaitMS < 0 || tr.SolveMS <= 0 || tr.TotalMS < tr.SolveMS {
		t.Fatalf("incoherent trace timings: %+v", tr)
	}
	if len(tr.Backends) == 0 {
		t.Fatalf("miss trace has no backend timeline: %+v", tr)
	}
	winners := 0
	for _, b := range tr.Backends {
		if b.StartMS < 0 || b.FinishMS < b.StartMS {
			t.Fatalf("backend %s: incoherent window [%v, %v]", b.Backend, b.StartMS, b.FinishMS)
		}
		switch b.Outcome {
		case "winner":
			winners++
		case "ok", "cancelled", "error":
		default:
			t.Fatalf("backend %s: unknown outcome %q", b.Backend, b.Outcome)
		}
	}
	if winners != 1 {
		t.Fatalf("trace has %d winners, want 1: %+v", winners, tr.Backends)
	}
	if b := tr.Backends[0]; b.Backend != out.Outcomes[0].Backend {
		t.Fatalf("trace order %q diverges from outcomes order %q", b.Backend, out.Outcomes[0].Backend)
	}

	// Hit: cache consult recorded, no race timeline.
	_, data = postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50", Class: "interactive", Trace: true})
	var hitOut serve.ScheduleResponse
	decodeInto(t, data, &hitOut)
	if hitOut.Trace == nil || hitOut.Trace.Cache != "hit" || !hitOut.CacheHit {
		t.Fatalf("second request should be a traced hit: %s", data)
	}
	if len(hitOut.Trace.Backends) != 0 {
		t.Fatalf("cache hit must not report a race timeline: %+v", hitOut.Trace)
	}

	// No opt-in, no trace.
	_, data = postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50", Class: "interactive"})
	var plain serve.ScheduleResponse
	decodeInto(t, data, &plain)
	if plain.Trace != nil {
		t.Fatalf("trace present without opt-in: %s", data)
	}

	// Backend override: the cache is bypassed and the trace says so.
	_, data = postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50", Backends: []string{"heur"}, Trace: true})
	var byp serve.ScheduleResponse
	decodeInto(t, data, &byp)
	if byp.Trace == nil || byp.Trace.Cache != "bypass" {
		t.Fatalf("override request should trace a cache bypass: %s", data)
	}
}

// TestOversizedBodyReturns413 posts bodies beyond the configured cap to
// both POST endpoints: the service must answer 413 Request Entity Too
// Large (not a generic 400 decode error) with a JSON error body.
func TestOversizedBodyReturns413(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}, MaxBodyBytes: 1024})
	huge := `{"model":"` + strings.Repeat("x", 4096) + `"}`
	for _, path := range []string{"/v1/schedule", "/v1/batch"} {
		resp, data := postJSON(t, ts.URL+path, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413 (%s)", path, resp.StatusCode, data)
		}
		var e serve.ErrorResponse
		decodeInto(t, data, &e)
		if !strings.Contains(e.Error, "1024") {
			t.Fatalf("%s: 413 body should name the limit: %s", path, data)
		}
	}

	// A body inside the cap still works.
	resp, data := postJSON(t, ts.URL+"/v1/schedule", serve.ScheduleRequest{Model: "ResNet50"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap request: status %d: %s", resp.StatusCode, data)
	}
}

// TestRetryAfterDiffersByCause drives one class into both rejection
// modes: a queue-full rejection must advertise a longer Retry-After than
// a queue-timeout rejection — the latter's client has already waited out
// a whole budget, so telling it to wait another full budget would be a
// lie about the queue it nearly cleared.
var raGate = &gate{}

func TestRetryAfterDiffersByCause(t *testing.T) {
	// The slot-holder must keep its slot past the queued request's whole
	// budget, or the queued request would be admitted instead of timing
	// out — hence a gated backend the test releases only at the end.
	registerBackend(t, gatedBackend{name: "e2e-gate-ra", g: raGate})
	started, release := raGate.arm()
	budget := 600 * time.Millisecond
	queuedc := make(chan struct{}, 4)
	_, ts := newTestServerWith(t, serve.Config{
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			"ra": {Budget: budget, Backends: []string{"e2e-gate-ra"}, MaxConcurrent: 1, MaxQueue: 1},
		},
	}, func(s *serve.Server) {
		s.SetQueuedHook("ra", func() { queuedc <- struct{}{} })
	})
	req := serve.ScheduleRequest{Model: "Xception", Class: "ra"}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, error) {
		return http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	}

	// Request 1 occupies the only slot until the gate opens.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if resp, err := post(); err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// Request 2 queues; it can never be admitted inside its budget, so it
	// will come back as a queue-timeout rejection.
	queuedResp := make(chan *http.Response, 1)
	go func() {
		if resp, err := post(); err == nil {
			resp.Body.Close()
			queuedResp <- resp
		} else {
			close(queuedResp)
		}
	}()
	<-queuedc

	// Request 3 finds the queue full: immediate capacity rejection whose
	// hint covers the backlog (1 queued + itself at one budget per slot).
	resp, err := post()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full request: status %d, want 429", resp.StatusCode)
	}
	capacityHint := retryAfterSeconds(t, resp)

	timeoutResp, ok := <-queuedResp
	if !ok {
		t.Fatal("queued request failed to complete")
	}
	if timeoutResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout request: status %d, want 429", timeoutResp.StatusCode)
	}
	timeoutHint := retryAfterSeconds(t, timeoutResp)
	close(release)
	<-firstDone

	if capacityHint <= timeoutHint {
		t.Fatalf("Retry-After must differ by cause: queue-full hint %ds <= queue-timeout hint %ds",
			capacityHint, timeoutHint)
	}
	// Concretely: 600ms budget, 1 slot, 1 queued ahead -> ceil(1.2s) = 2s
	// for the full queue, versus an empty backlog floor of 1s after a
	// timed-out wait.
	if capacityHint != 2 || timeoutHint != 1 {
		t.Fatalf("hints (capacity=%d, timeout=%d), want (2, 1)", capacityHint, timeoutHint)
	}
}

// TestRetryAfterClampedOnDeepQueue regression-tests the hint ceiling for
// both rejection causes: the per-slot backlog extrapolation is a worst
// case, so on a deep queue the uncapped math quoted minutes-long hints
// (perSlot * backlog grows linearly with MaxQueue) that honest clients
// would sit out long after the queue drained. The hint must never exceed
// a few class budgets no matter how deep the queue is.
var clampGate = &gate{}

func TestRetryAfterClampedOnDeepQueue(t *testing.T) {
	registerBackend(t, gatedBackend{name: "e2e-gate-clamp", g: clampGate})
	started, release := clampGate.arm()
	budget := 300 * time.Millisecond
	const depth = 20
	queuedc := make(chan struct{}, depth)
	_, ts := newTestServerWith(t, serve.Config{
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			"deep": {Budget: budget, Backends: []string{"e2e-gate-clamp"}, MaxConcurrent: 1, MaxQueue: depth},
		},
	}, func(s *serve.Server) {
		s.SetQueuedHook("deep", func() { queuedc <- struct{}{} })
	})
	body, err := json.Marshal(serve.ScheduleRequest{Model: "Xception", Class: "deep"})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, error) {
		return http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	}
	// With 1 slot at 300ms per budget, 4 budgets cap the hint at
	// ceil(1.2s) = 2s; the uncapped worst case over a full queue would be
	// ceil(0.3 * 21) = 7s.
	const capSeconds = 2

	// One request holds the only slot for the whole test.
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		if resp, err := post(); err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// Fill the queue; every one of these will come back as a
	// queue-timeout rejection after its budget expires. Each queued
	// waiter signals the hook, so depth signals mean the queue is full.
	queued := make(chan *http.Response, depth)
	for i := 0; i < depth; i++ {
		go func() {
			if resp, err := post(); err == nil {
				resp.Body.Close()
				queued <- resp
			} else {
				queued <- nil
			}
		}()
	}
	for i := 0; i < depth; i++ {
		<-queuedc
	}

	// Queue-full: the backlog is at its deepest, so this is where the old
	// math quoted 7s.
	resp, err := post()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full request: status %d, want 429", resp.StatusCode)
	}
	if hint := retryAfterSeconds(t, resp); hint != capSeconds {
		t.Fatalf("queue-full Retry-After = %ds, want the %ds cap", hint, capSeconds)
	}

	// Queue-timeout: whatever backlog each rejection still sees, no hint
	// may exceed the cap (the first few see nearly the full queue).
	for i := 0; i < depth; i++ {
		r := <-queued
		if r == nil {
			t.Fatal("queued request failed")
		}
		if r.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("queued request: status %d, want 429", r.StatusCode)
		}
		if hint := retryAfterSeconds(t, r); hint > capSeconds {
			t.Fatalf("queue-timeout Retry-After = %ds exceeds the %ds cap", hint, capSeconds)
		}
	}
	close(release)
	<-holderDone
}

func retryAfterSeconds(t *testing.T, resp *http.Response) int {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatal("429 without Retry-After")
	}
	v, err := strconv.Atoi(h)
	if err != nil || v < 1 {
		t.Fatalf("bad Retry-After %q", h)
	}
	return v
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		//lint:ignore nosleeptest deadline-bounded poll interval in the shared waitFor helper
		time.Sleep(time.Millisecond)
	}
}

// TestValidationEdgeCases is the table the issue demands: nonsensical
// stage counts, empty graphs and ambiguous inputs must all come back as
// client errors — never a 5xx and never a backend panic.
func TestValidationEdgeCases(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})

	tiny := `{"name":"tiny","nodes":[{"name":"a","param_bytes":10},{"name":"b","param_bytes":10},{"name":"c","param_bytes":10}],"edges":[[0,1],[1,2]]}`
	cases := []struct {
		name string
		path string
		body any
	}{
		{"stages below 1", "/v1/schedule", serve.ScheduleRequest{Model: "ResNet50", Stages: -2}},
		{"stages beyond the cap", "/v1/schedule", serve.ScheduleRequest{Model: "ResNet50", Stages: 100000}},
		{"stages exceed node count", "/v1/schedule", `{"graph":` + tiny + `,"stages":10}`},
		{"empty graph", "/v1/schedule", `{"graph":{"name":"g","nodes":[],"edges":[]}}`},
		{"model and graph both set", "/v1/schedule", `{"model":"ResNet50","graph":` + tiny + `}`},
		{"neither model nor graph", "/v1/schedule", serve.ScheduleRequest{}},
		{"batch stages exceed node count", "/v1/batch", `{"graphs":[` + tiny + `],"stages":10}`},
		{"batch stages below 1", "/v1/batch", serve.BatchRequest{Models: []string{"ResNet50"}, Stages: -1}},
		{"batch empty", "/v1/batch", serve.BatchRequest{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode < 400 || resp.StatusCode > 499 {
				t.Fatalf("status %d, want 4xx (%s)", resp.StatusCode, data)
			}
			var e serve.ErrorResponse
			decodeInto(t, data, &e)
			if e.Error == "" {
				t.Fatalf("error body missing: %s", data)
			}
		})
	}

	// The boundary itself is legal: exactly as many stages as nodes.
	resp, data := postJSON(t, ts.URL+"/v1/schedule", `{"graph":`+tiny+`,"stages":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stages == node count must be accepted: status %d: %s", resp.StatusCode, data)
	}
}
