// Fuzz targets for the serving API's request decoding: /v1/schedule and
// /v1/batch face arbitrary client bytes, so the decode-and-validate path
// must never panic and every outcome — success, validation rejection or
// decode failure — must be a well-formed JSON response with an HTTP
// status, mirroring the wire-message fuzzing in internal/cluster.
package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"respect/internal/serve"
)

// fuzzPost drives one endpoint with arbitrary bodies through the
// in-process handler (no network) and checks the response invariants.
func fuzzPost(f *testing.F, path string) {
	f.Helper()
	srv, err := serve.New(serve.Config{WarmModels: []string{}})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		resp := rec.Result()
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 599 {
			t.Fatalf("status %d outside the HTTP range", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("non-JSON content type %q (status %d)", ct, resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Fatalf("status %d with invalid JSON body: %q", resp.StatusCode, data)
		}
		// Rejections must say why — a bare status starves clients of the
		// validation detail every error path is supposed to carry.
		if resp.StatusCode >= 400 {
			var e serve.ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("status %d without a populated error body: %s", resp.StatusCode, data)
			}
		}
	})
}

func FuzzScheduleRequest(f *testing.F) {
	tiny := `{"name":"t","nodes":[{"name":"a","param_bytes":10},{"name":"b","param_bytes":10}],"edges":[[0,1]]}`
	f.Add([]byte(`{"model":"ResNet50","stages":4}`))
	f.Add([]byte(`{"graph":` + tiny + `,"stages":2}`))
	f.Add([]byte(`{"model":"ResNet50","graph":` + tiny + `}`))
	f.Add([]byte(`{"model":"ResNet50","class":"platinum"}`))
	f.Add([]byte(`{"model":"ResNet50","backends":["nope"]}`))
	f.Add([]byte(`{"model":"ResNet50","stages":100000}`))
	f.Add([]byte(`{"moodel":"ResNet50"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(strings.Repeat("[", 64)))
	f.Add([]byte(`{"graph":{"name":"g","nodes":[{"name":"a"},{"name":"b"}],"edges":[[0,1],[1,0]]}}`))
	f.Add([]byte(`{"graph":{"nodes":[{"name":"a"},{"name":"b"}],"edges":[[]]}}`))
	fuzzPost(f, "/v1/schedule")
}

func FuzzBatchRequest(f *testing.F) {
	tiny := `{"name":"t","nodes":[{"name":"a","param_bytes":10},{"name":"b","param_bytes":10}],"edges":[[0,1]]}`
	f.Add([]byte(`{"models":["ResNet50"],"stages":4}`))
	f.Add([]byte(`{"graphs":[` + tiny + `],"stages":2}`))
	f.Add([]byte(`{"models":["ResNet50"],"graphs":[` + tiny + `]}`))
	f.Add([]byte(`{"models":[],"graphs":[]}`))
	f.Add([]byte(`{"models":["ResNet50"],"stages":-1}`))
	f.Add([]byte(`{"graphs":[{"name":"g","nodes":[],"edges":[]}]}`))
	// Regression: an empty edge pair decodes as the self edge (0,0),
	// which once panicked graph.ReadJSON instead of erroring.
	f.Add([]byte(`{"graphs":[{"nodes":[{"name":"a"},{"name":"b"}],"edges":[[]]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(strings.Repeat("{", 64)))
	fuzzPost(f, "/v1/batch")
}
