// End-to-end tests of the periodic-task (rt) mode through the HTTP
// surface: registration and schedulability rejection on /v1/periodic,
// reconciliation of the rt metric families with the /v1/stats rt block,
// and dispatcher shutdown leaving no orphaned releases.
package serve_test

import (
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"respect/internal/serve"
)

// TestPeriodicRegistrationAndSchedulability drives the registration API
// without running the dispatcher: admission is a pure schedulability
// test, so accept/reject behavior is fully observable from POST alone.
func TestPeriodicRegistrationAndSchedulability(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		WarmModels: []string{},
		RT:         serve.RTConfig{Enabled: true},
	})

	// A comfortably schedulable stream is admitted with 201 Created.
	resp, data := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "cam", Model: "ResNet50", PeriodMS: 50, CostMS: 5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register cam: status %d: %s", resp.StatusCode, data)
	}
	var out serve.PeriodicResponse
	decodeInto(t, data, &out)
	if out.Policy != "edf" {
		t.Fatalf("default policy = %q, want edf", out.Policy)
	}
	if math.Abs(out.Utilization-0.1) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.1 (5ms / 50ms)", out.Utilization)
	}
	if out.Stream.Name != "cam" || out.Stream.Utilization != out.Utilization {
		t.Fatalf("stream snapshot missing or inconsistent: %+v", out)
	}

	// Re-using a live stream name is a conflict, not a replace.
	if resp, data := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "cam", Model: "ResNet50", PeriodMS: 100, CostMS: 1,
	}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate name: status %d, want 409: %s", resp.StatusCode, data)
	}

	// An over-utilized candidate set is refused: 0.95 on top of the
	// admitted 0.1 exceeds the EDF bound of 1.0. The registered set is
	// untouched.
	resp, data = postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "hog", Model: "ResNet50", PeriodMS: 10, CostMS: 9.5,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("over-utilized set: status %d, want 409: %s", resp.StatusCode, data)
	}
	var e serve.ErrorResponse
	decodeInto(t, data, &e)
	if !strings.Contains(e.Error, "schedulable") {
		t.Fatalf("schedulability rejection should say so: %s", data)
	}

	// Plain validation failures keep their usual codes.
	if resp, data := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "ghost", Model: "NoSuchModel", PeriodMS: 50, CostMS: 1,
	}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "zero", Model: "ResNet50", CostMS: 1,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing period: status %d, want 400: %s", resp.StatusCode, data)
	}

	// GET lists exactly the admitted stream; the rejected ones never
	// entered the set.
	listResp, listData := httpGet(t, ts.URL+"/v1/periodic")
	if listResp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d: %s", listResp.StatusCode, listData)
	}
	var stats serve.Stats
	var rtStats struct {
		Streams []struct {
			Name string `json:"name"`
		} `json:"streams"`
	}
	decodeInto(t, listData, &rtStats)
	if len(rtStats.Streams) != 1 || rtStats.Streams[0].Name != "cam" {
		t.Fatalf("list = %s, want exactly [cam]", listData)
	}

	// DELETE: unknown name is 404, the admitted one removes cleanly and
	// frees its name and utilization for re-registration.
	if resp, data := httpDelete(t, ts.URL+"/v1/periodic/hog"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: status %d, want 404: %s", resp.StatusCode, data)
	}
	if resp, data := httpDelete(t, ts.URL+"/v1/periodic/cam"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete cam: status %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "cam", Model: "ResNet50", PeriodMS: 50, CostMS: 5,
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-register after delete: status %d: %s", resp.StatusCode, data)
	}

	// The /v1/stats rt block mirrors the dispatcher snapshot.
	statsResp, statsData := httpGet(t, ts.URL+"/v1/stats")
	if statsResp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", statsResp.StatusCode)
	}
	decodeInto(t, statsData, &stats)
	if stats.RT == nil || len(stats.RT.Streams) != 1 || stats.RT.Streams[0].Name != "cam" {
		t.Fatalf("/v1/stats rt block missing the admitted stream: %s", statsData)
	}
}

// TestPeriodicEndpointsAbsentWhenDisabled keeps the default serving
// surface unchanged: without Config.RT.Enabled the periodic endpoints do
// not exist and /v1/stats carries no rt block.
func TestPeriodicEndpointsAbsentWhenDisabled(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})
	if resp, _ := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "cam", Model: "ResNet50", PeriodMS: 50,
	}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rt disabled: status %d, want 404", resp.StatusCode)
	}
	_, statsData := httpGet(t, ts.URL+"/v1/stats")
	var stats serve.Stats
	decodeInto(t, statsData, &stats)
	if stats.RT != nil {
		t.Fatalf("rt block present despite disabled mode: %s", statsData)
	}
}

// TestPeriodicMissMetricsReconcileAndShutdown runs the full dispatcher
// lifecycle under Server.Run: a stream whose backend deterministically
// overruns its deadline accumulates misses, the rt metric families must
// agree exactly with the /v1/stats rt block (both are function-backed on
// the same stream atomics), and cancelling Run stops the dispatcher with
// no orphaned releases afterwards.
func TestPeriodicMissMetricsReconcileAndShutdown(t *testing.T) {
	// A backend that sleeps 30ms guarantees every job finishes well past
	// the 10ms stream deadline below — misses are deterministic, not a
	// timing accident.
	registerBackend(t, sleepIgnoringCtx{name: "rt-e2e-sleep", d: 30 * time.Millisecond})
	srv, err := serve.New(serve.Config{
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			"rtc": {Budget: 500 * time.Millisecond, Backends: []string{"rt-e2e-sleep"},
				MaxConcurrent: 2, MaxQueue: 4},
		},
		RT: serve.RTConfig{Enabled: true, Policy: "rm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Run owns the dispatcher lifecycle; the httptest server above shares
	// the same handler so the API stays reachable after Run exits and the
	// counters have frozen.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(ctx, ln) }()

	resp, data := postJSON(t, ts.URL+"/v1/periodic", serve.PeriodicRequest{
		Name: "cam", Model: "ResNet50", Class: "rtc",
		PeriodMS: 60, DeadlineMS: 10, CostMS: 1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}

	// Let the stream run a few periods: at least two releases must have
	// completed late.
	waitFor(t, func() bool {
		st := srv.Stats()
		return st.RT != nil && st.RT.Misses >= 2 && st.RT.Completions >= 2
	})

	// Stop the service; once Run returns every counter is frozen.
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("Run: %v", err)
	}

	_, statsData := httpGet(t, ts.URL+"/v1/stats")
	var stats serve.Stats
	decodeInto(t, statsData, &stats)
	if stats.RT == nil || len(stats.RT.Streams) != 1 {
		t.Fatalf("rt block missing after shutdown: %s", statsData)
	}
	cam := stats.RT.Streams[0]
	series, page := scrapeMetrics(t, ts.URL)

	checks := []struct {
		series string
		want   float64
	}{
		{`respect_rt_releases_total{stream="cam"}`, float64(cam.Releases)},
		{`respect_rt_deadline_misses_total{stream="cam",policy="rm"}`, float64(cam.Misses)},
		{`respect_rt_queued_jobs`, float64(stats.RT.Queued)},
		// Every completion and drop observes the tardiness histogram.
		{`respect_rt_tardiness_seconds_count`, float64(cam.Completions + cam.Drops)},
	}
	for _, c := range checks {
		if got := metricValue(t, series, page, c.series); got != c.want {
			t.Errorf("%s = %v, want %v (stats: %+v)", c.series, got, c.want, cam)
		}
	}
	if got := metricValue(t, series, page, `respect_rt_stream_utilization{stream="cam"}`); math.Abs(got-cam.Utilization) > 1e-9 {
		t.Errorf("utilization gauge %v diverges from stats %v", got, cam.Utilization)
	}
	if cam.Misses < 2 || cam.Misses > cam.Releases {
		t.Errorf("implausible miss accounting: %+v", cam)
	}
	if stats.RT.Queued != 0 {
		t.Errorf("queue not drained by shutdown: %+v", stats.RT)
	}

	// No orphaned releases: Run has returned, which waits out every
	// dispatcher goroutine, so the release counter is provably frozen —
	// in stats and in the exposition.
	after := srv.Stats()
	if after.RT.Releases != stats.RT.Releases {
		t.Fatalf("releases moved after shutdown: %d -> %d", stats.RT.Releases, after.RT.Releases)
	}
	series2, page2 := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, series2, page2, `respect_rt_releases_total{stream="cam"}`); got != float64(stats.RT.Releases) {
		t.Fatalf("release series moved after shutdown: %v -> %v", stats.RT.Releases, got)
	}
}

// httpGet GETs url and returns the response plus its body.
func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// httpDelete issues DELETE url and returns the response plus its body.
func httpDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}
