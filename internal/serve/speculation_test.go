// In-process tests of speculative warm-cache scheduling: the e2e
// hit-rate-lift replay (skewed traffic against a small cache, strictly
// more hits with speculation on, zero 429s), mutation warming with hit
// attribution on /metrics and /v1/stats, watermark backpressure through a
// saturated admission controller, and the no-cache-write guarantee for
// truncated speculative solves.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
	"respect/internal/solver"
)

// specChain builds an 8-node chain whose parameters vary with i, so every
// index has a distinct fingerprint.
func specChain(t *testing.T, i int) *graph.Graph {
	t.Helper()
	g := graph.New(fmt.Sprintf("spec-%d", i))
	for n := 0; n < 8; n++ {
		g.AddNode(graph.Node{
			Name:       fmt.Sprintf("n%d", n),
			Kind:       graph.OpConv,
			ParamBytes: int64(1000 + 17*i + n),
			OutBytes:   64,
			MACs:       1000,
		})
		if n > 0 {
			g.AddEdge(n-1, n)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	return g
}

// graphJSON serializes g in the inline-graph wire format.
func graphJSON(t *testing.T, g *graph.Graph) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postSchedule sends one /v1/schedule request and decodes the response.
func postSchedule(t *testing.T, url string, body map[string]any) (ScheduleResponse, int) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ScheduleResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return out, resp.StatusCode
}

// specConfig is a one-class interactive server with a given cache size
// and speculation toggled; the hour-long interval keeps the background
// loop quiet so tests drive passes explicitly for determinism.
func specConfig(cacheSize int, specOn bool) Config {
	return Config{
		Stages:     4,
		CacheSize:  cacheSize,
		WarmModels: []string{},
		Classes: map[Class]ClassPolicy{
			ClassInteractive: {
				Budget:        2 * time.Second,
				Backends:      []string{"heur"},
				MaxConcurrent: 8,
				MaxQueue:      8,
				Warm:          true,
			},
		},
		Speculation: SpeculationConfig{
			Enabled:   specOn,
			Watermark: 0.99,
			Budget:    16,
			Interval:  time.Hour,
		},
	}
}

// TestSpeculationHitRateLift is the acceptance replay: skewed traffic (a
// hot graph hammered every round, unique cold graphs churning past) hits
// a two-entry cache. With speculation the hot instance survives the cold
// churn (popularity-aware eviction + re-admission passes); without it,
// plain LRU evicts the hot entry every round. The run with speculation
// must see strictly more cache hits, and neither run may reject anything
// with 429 — speculation never costs admitted capacity.
func TestSpeculationHitRateLift(t *testing.T) {
	const rounds = 8
	hot := specChain(t, 1000)

	replay := func(specOn bool) ClassStats {
		t.Helper()
		s, err := New(specConfig(2, specOn))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		defer ts.Close()

		hotJSON := graphJSON(t, hot)
		cold := 0
		for r := 0; r < rounds; r++ {
			for _, body := range []map[string]any{
				{"graph": hotJSON, "stages": 4},
				{"graph": hotJSON, "stages": 4},
				{"graph": graphJSON(t, specChain(t, cold)), "stages": 4},
				{"graph": graphJSON(t, specChain(t, cold+1)), "stages": 4},
			} {
				if _, code := postSchedule(t, ts.URL, body); code != http.StatusOK {
					t.Fatalf("replay request failed with %d", code)
				}
			}
			cold += 2
			if specOn {
				// Drive the pass the background loop would run: re-admit
				// any evicted hot key before the next round.
				s.classes[ClassInteractive].spec.RunOnce(context.Background())
			}
		}
		st := s.Stats().Classes[string(ClassInteractive)]
		if got := st.RejectedCapacity + st.RejectedQueueTimeout; got != 0 {
			t.Fatalf("speculation=%v: %d requests rejected with 429; speculation must not cost capacity", specOn, got)
		}
		return st
	}

	on := replay(true)
	off := replay(false)
	if on.CacheHits <= off.CacheHits {
		t.Fatalf("no hit-rate lift: %d hits with speculation, %d without", on.CacheHits, off.CacheHits)
	}
	t.Logf("cache hits: %d with speculation, %d without (lift %d)", on.CacheHits, off.CacheHits, on.CacheHits-off.CacheHits)
}

// TestSpeculationMutationWarmAndAttribution: a popular instance's
// stage-count mutations are warmed ahead of demand, the first request for
// a mutated instance is a cache hit attributed to speculation (response
// flag, /v1/stats and /metrics all agree).
func TestSpeculationMutationWarmAndAttribution(t *testing.T) {
	s, err := New(specConfig(64, true))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	g := specChain(t, 2000)
	raw := graphJSON(t, g)
	for i := 0; i < 3; i++ {
		if _, code := postSchedule(t, ts.URL, map[string]any{"graph": raw, "stages": 4}); code != http.StatusOK {
			t.Fatalf("request failed with %d", code)
		}
	}
	stored := s.classes[ClassInteractive].spec.RunOnce(context.Background())
	if stored == 0 {
		t.Fatal("speculation pass stored nothing for a hot instance")
	}

	// The client never asked for 5 stages — speculation did.
	resp, code := postSchedule(t, ts.URL, map[string]any{"graph": raw, "stages": 5})
	if code != http.StatusOK {
		t.Fatalf("mutated-instance request failed with %d", code)
	}
	if !resp.CacheHit || !resp.SpeculativeHit {
		t.Fatalf("mutated instance: cache_hit=%v speculative_hit=%v, want both true", resp.CacheHit, resp.SpeculativeHit)
	}

	stats := s.Stats()
	if stats.Speculation == nil {
		t.Fatal("stats.speculation absent with speculation enabled")
	}
	if stats.Speculation.WarmsMutation == 0 {
		t.Fatalf("no mutation warms counted: %+v", *stats.Speculation)
	}
	if stats.Speculation.Hits == 0 {
		t.Fatalf("speculative hit not counted: %+v", *stats.Speculation)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	page, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(page)
	for _, want := range []string{
		`respect_speculative_warms_total{reason="mutation"}`,
		`respect_speculative_warms_total{reason="popular"}`,
		`respect_speculative_warms_total{reason="evicted"}`,
		"respect_speculative_hits_total 1",
		"respect_speculative_skipped_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSpeculationYieldsUnderSaturatedAdmission: with every admission slot
// held by in-flight work, a speculation pass must warm nothing — the
// watermark gate fully yields capacity to admitted requests.
func TestSpeculationYieldsUnderSaturatedAdmission(t *testing.T) {
	s, err := New(specConfig(64, true))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	g := specChain(t, 3000)
	raw := graphJSON(t, g)
	for i := 0; i < 3; i++ {
		if _, code := postSchedule(t, ts.URL, map[string]any{"graph": raw, "stages": 4}); code != http.StatusOK {
			t.Fatalf("request failed with %d", code)
		}
	}

	// Saturate the class: hold every admission slot directly.
	st := s.classes[ClassInteractive]
	var releases []func()
	for i := 0; i < st.policy.MaxConcurrent; i++ {
		release, err := st.adm.acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	if n := st.spec.RunOnce(context.Background()); n != 0 {
		t.Fatalf("saturated pass stored %d entries, want 0", n)
	}
	specStats := st.spec.Stats()
	if specStats.SkippedWatermark == 0 {
		t.Fatal("saturated pass did not count skipped candidates")
	}
	for _, release := range releases {
		release()
	}
	// Capacity freed: the next pass proceeds.
	if n := st.spec.RunOnce(context.Background()); n == 0 {
		t.Fatal("post-saturation pass stored nothing")
	}
}

// truncatingBackend always reports its (valid) schedule as a budget-cut
// incumbent, like an anytime solver at deadline expiry.
type truncatingBackend struct{}

func (truncatingBackend) Name() string { return "spec-test-trunc" }

func (truncatingBackend) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, err := truncatingBackend{}.ScheduleInfo(ctx, g, numStages)
	return s, err
}

func (truncatingBackend) ScheduleInfo(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, solver.Info, error) {
	stage := make([]int, g.NumNodes())
	for i, v := range g.Topo() {
		stage[v] = i * numStages / g.NumNodes()
	}
	return sched.Schedule{NumStages: numStages, Stage: stage}, solver.Info{Truncated: true}, nil
}

// TestSpeculationTruncatedSolvesNeverCached: speculative solves that come
// back budget-truncated must leave no cache entry and no speculative
// mark — the cache honesty contract holds on the speculative path too.
func TestSpeculationTruncatedSolvesNeverCached(t *testing.T) {
	if err := solver.Replace(truncatingBackend{}); err != nil {
		t.Fatal(err)
	}
	cfg := specConfig(64, true)
	policy := cfg.Classes[ClassInteractive]
	policy.Backends = []string{"spec-test-trunc"}
	cfg.Classes[ClassInteractive] = policy
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	g := specChain(t, 4000)
	raw := graphJSON(t, g)
	for i := 0; i < 3; i++ {
		resp, code := postSchedule(t, ts.URL, map[string]any{"graph": raw, "stages": 4})
		if code != http.StatusOK {
			t.Fatalf("request failed with %d", code)
		}
		if !resp.Truncated {
			t.Fatal("truncating backend produced a non-truncated response")
		}
	}
	st := s.classes[ClassInteractive]
	if n := st.spec.RunOnce(context.Background()); n != 0 {
		t.Fatalf("truncated speculative solves stored %d cache entries, want 0", n)
	}
	if st.engine.Len() != 0 {
		t.Fatalf("cache holds %d entries after truncated solves, want 0", st.engine.Len())
	}
	if st.spec.WasSpeculative(g.Fingerprint(), 3) || st.spec.WasSpeculative(g.Fingerprint(), 5) {
		t.Fatal("truncated speculative solve left a speculative mark")
	}
	spec := st.spec.Stats()
	if spec.WarmsEvicted+spec.WarmsPopular+spec.WarmsMutation != 0 {
		t.Fatalf("truncated solves counted as warms: %+v", spec)
	}
	if spec.Attempts == 0 {
		t.Fatal("speculative attempts not counted")
	}
}
