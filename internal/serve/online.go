package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"respect/internal/graph"
	"respect/internal/online"
	"respect/internal/ptrnet"
	"respect/internal/rt"
	"respect/internal/sched"
	"respect/internal/solver"
)

// OnlineConfig enables and tunes the online learning loop: every solved
// request feeds a class-partitioned replay buffer, a background trainer
// runs policy-gradient rounds over it, and candidates that beat the
// serving incumbent by a margin on a held-out slice are hot-reloaded
// into the class portfolios under the rl-online-<class> backend names.
// Zero values select the online package defaults.
type OnlineConfig struct {
	// Enabled turns the loop on. Off, the serving path records nothing
	// and no online backends are registered.
	Enabled bool
	// Agent seeds every class's incumbent (nil: a fresh model per class).
	Agent *ptrnet.Model
	// Interval is the background training-round period (default 30s).
	Interval time.Duration
	// Margin is the relative held-out improvement a candidate must show
	// over the incumbent to be promoted (default 0.02).
	Margin float64
	// WinnerSlack bounds a promotable candidate's held-out cost as a
	// multiple of the recorded portfolio winners' (default 2.0).
	WinnerSlack float64
	// BufferCap is the per-class replay-ring capacity (default 4096).
	BufferCap int
	// MinSamples is the per-class floor below which a training round is
	// skipped (default 64).
	MinSamples int
	// BatchSize is the minibatch size per gradient step (default 8).
	BatchSize int
	// Steps is the number of gradient steps per round (default 40).
	Steps int
	// Seed drives every RNG in the loop, making rounds replayable.
	Seed int64
	// Clock injects the background loop's time source (nil: wall clock);
	// tests drive rounds with an rt.FakeClock.
	Clock rt.Clock
}

// newOnlineManager builds the learning-loop manager for cfg and returns
// the class table with each class's online backend appended to its
// portfolio. Called by New before class policies are validated: the
// manager registers the rl-online-<class> backends (via Replace) so the
// appended names resolve.
func newOnlineManager(cfg Config) (*online.Manager, map[Class]ClassPolicy, error) {
	oc := cfg.Online
	classNames := make([]string, 0, len(cfg.Classes))
	for class := range cfg.Classes {
		classNames = append(classNames, string(class))
	}
	sort.Strings(classNames)
	mgr, err := online.New(online.Config{
		Registry:    solver.Default(),
		Agent:       oc.Agent,
		Classes:     classNames,
		Interval:    oc.Interval,
		Margin:      oc.Margin,
		WinnerSlack: oc.WinnerSlack,
		BufferCap:   oc.BufferCap,
		MinSamples:  oc.MinSamples,
		BatchSize:   oc.BatchSize,
		Steps:       oc.Steps,
		Seed:        oc.Seed,
		Clock:       oc.Clock,
		Logf:        cfg.Logf,
	})
	if err != nil {
		return nil, nil, err
	}
	// Promoted agents serve demand traffic by racing in their class's
	// portfolio: the race keeps them honest (a worse schedule never wins)
	// while a better one takes the request.
	classes := make(map[Class]ClassPolicy, len(cfg.Classes))
	for class, policy := range cfg.Classes {
		policy.Backends = append(append([]string(nil), policy.Backends...), online.BackendName(string(class)))
		classes[class] = policy
	}
	return mgr, classes, nil
}

// initOnlineMetrics registers the learning-loop metric families,
// function-backed on the manager's counters so /metrics and /v1/stats
// always reconcile. Called by New after initMetrics; a no-op when the
// loop is off.
func (s *Server) initOnlineMetrics() {
	mgr := s.onlineMgr
	if mgr == nil {
		return
	}
	samples := s.reg.CounterVec("respect_online_samples_total",
		"Solved requests recorded into the online replay buffer, per class.", "class")
	promotions := s.reg.CounterVec("respect_online_promotions_total",
		"Shadow-evaluated candidate outcomes per class (result is promoted or rejected).",
		"class", "result")
	gap := s.reg.GaugeVec("respect_online_shadow_gap",
		"Last shadow-evaluation gap per class: (incumbent - candidate) / incumbent held-out cost.",
		"class")
	for _, class := range mgr.Classes() {
		class := class
		samples.Func(func() float64 { return float64(mgr.Samples(class)) }, class)
		promotions.Func(func() float64 { return float64(mgr.Promotions(class)) }, class, "promoted")
		promotions.Func(func() float64 { return float64(mgr.Rejections(class)) }, class, "rejected")
		gap.Func(func() float64 { return mgr.ShadowGap(class) }, class)
	}
	s.reg.CounterFunc("respect_online_train_rounds_total",
		"Completed online training rounds (at least one class trained).",
		func() float64 { return float64(mgr.TrainRounds()) })
}

// runOnline starts the background training loop and returns an
// idempotent stop that cancels and awaits it; Run calls it so no
// training round outlives the service.
func (s *Server) runOnline(ctx context.Context) (stop func()) {
	if s.onlineMgr == nil {
		return func() {}
	}
	octx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.onlineMgr.Run(octx)
	}()
	return func() {
		cancel()
		<-done
	}
}

// recordSolve taps one successful one-shot solve into the replay buffer.
// Requests that overrode the portfolio are never recorded: their winner
// is not the class portfolio's judgment, and recording the online
// agent's own output would make the loop imitate itself.
func (s *Server) recordSolve(class Class, g *graph.Graph, numStages int, res solver.PortfolioResult, latency time.Duration, hit bool) {
	if s.onlineMgr == nil {
		return
	}
	s.onlineMgr.Record(online.Sample{
		Class:    string(class),
		Graph:    g,
		Stages:   numStages,
		Backend:  res.Backend,
		Schedule: res.Schedule,
		Cost:     res.Cost,
		Latency:  latency,
		CacheHit: hit,
	})
}

// rtSolve is one periodic job's solve result parked between the
// executor (which knows the schedule) and the dispatcher's OnComplete
// (which knows the deadline outcome).
type rtSolve struct {
	class    Class
	graph    *graph.Graph
	stages   int
	backend  string
	schedule sched.Schedule
	cost     sched.Cost
	latency  time.Duration
	cacheHit bool
}

// rtSolves parks per-job solve results keyed by release sequence; the
// zero value is ready to use.
type rtSolves struct {
	mu sync.Mutex
	m  map[uint64]rtSolve
}

// put parks one job's solve result.
func (r *rtSolves) put(seq uint64, v rtSolve) {
	r.mu.Lock()
	if r.m == nil {
		r.m = make(map[uint64]rtSolve)
	}
	r.m[seq] = v
	r.mu.Unlock()
}

// take removes and returns the parked result for seq, if any.
func (r *rtSolves) take(seq uint64) (rtSolve, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[seq]
	if ok {
		delete(r.m, seq)
	}
	return v, ok
}

// recordRTOutcome joins a completed periodic job with its parked solve
// and records the sample with its deadline outcome. Dropped jobs never
// solved, so they have nothing parked and record nothing.
func (s *Server) recordRTOutcome(res rt.JobResult) {
	if s.onlineMgr == nil {
		return
	}
	v, ok := s.rtSolves.take(res.Seq)
	if !ok {
		return
	}
	s.onlineMgr.Record(online.Sample{
		Class:        string(v.class),
		Graph:        v.graph,
		Stages:       v.stages,
		Backend:      v.backend,
		Schedule:     v.schedule,
		Cost:         v.cost,
		Latency:      v.latency,
		CacheHit:     v.cacheHit,
		Periodic:     true,
		DeadlineMiss: res.Missed,
	})
}
