// Serve-layer fleet tests: batch sub-batch forwarding with per-group
// fallback, and forwarded-header loop prevention. The full chaos and
// partition suite lives in the repo root integration tests.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"respect/internal/graph"
	"respect/internal/serve"
)

// newPair boots two clustered replicas wired to each other and returns
// them with their base URLs.
func newPair(t *testing.T) (srvs [2]*serve.Server, urls [2]string, kill [2]func()) {
	t.Helper()
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		srv, err := serve.New(serve.Config{
			WarmModels: []string{},
			Cluster: serve.ClusterConfig{
				Advertise: urls[i],
				Peers:     urls[:],
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: srv}}
		ts.Start()
		t.Cleanup(ts.Close)
		srvs[i] = srv
		kill[i] = ts.Close
	}
	return srvs, urls, kill
}

// pairGraph builds a distinct buildable chain graph and its wire form.
func pairGraph(t *testing.T, seed int) (*graph.Graph, json.RawMessage) {
	t.Helper()
	g := graph.New(fmt.Sprintf("pair-%d", seed))
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{Name: fmt.Sprintf("n%d", i), ParamBytes: int64(500 + 91*seed + i), OutBytes: 4})
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return g, json.RawMessage(buf.Bytes())
}

// TestClusterBatchSplitsByOwner sends a mixed-ownership batch to one
// replica: remote-owned items come back annotated with the owner that
// solved them, local items do not, and order is preserved.
func TestClusterBatchSplitsByOwner(t *testing.T) {
	srvs, urls, _ := newPair(t)

	// Collect graphs until both shards are represented.
	var raws []json.RawMessage
	var owners []string
	haveLocal, haveRemote := false, false
	for seed := 0; !(haveLocal && haveRemote) || len(raws) < 6; seed++ {
		g, raw := pairGraph(t, seed)
		owner, self := srvs[0].Cluster().Owner(g.Fingerprint())
		raws = append(raws, raw)
		owners = append(owners, owner)
		if self {
			haveLocal = true
		} else {
			haveRemote = true
		}
		if seed > 100 {
			t.Fatal("could not find graphs for both shards")
		}
	}

	body, err := json.Marshal(serve.BatchRequest{Graphs: raws, Stages: 4, Class: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(urls[0]+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, data)
	}
	var out serve.BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	if len(out.Items) != len(raws) || out.Errors != 0 {
		t.Fatalf("batch returned %d items / %d errors, want %d / 0", len(out.Items), out.Errors, len(raws))
	}
	for i, item := range out.Items {
		if item.Index != i || len(item.Stage) == 0 {
			t.Fatalf("item %d: index %d with %d stages", i, item.Index, len(item.Stage))
		}
		wantForward := ""
		if owners[i] != srvs[0].Cluster().Self() {
			wantForward = owners[i]
		}
		if item.ForwardedTo != wantForward {
			t.Fatalf("item %d: forwarded_to %q, want %q", i, item.ForwardedTo, wantForward)
		}
	}
	if srvs[0].ClusterStats().ForwardsRelayed == 0 {
		t.Fatal("no batch sub-batch was relayed")
	}
}

// TestClusterBatchFallbackOnDeadOwner kills the peer and sends the same
// mixed batch: every item must still come back solved (locally), none
// annotated as forwarded.
func TestClusterBatchFallbackOnDeadOwner(t *testing.T) {
	srvs, urls, kill := newPair(t)
	var raws []json.RawMessage
	for seed := 0; seed < 6; seed++ {
		_, raw := pairGraph(t, seed)
		raws = append(raws, raw)
	}
	kill[1]()

	body, err := json.Marshal(serve.BatchRequest{Graphs: raws, Stages: 4, Class: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(urls[0]+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with dead peer: %d: %s", resp.StatusCode, data)
	}
	var out serve.BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	if len(out.Items) != len(raws) || out.Errors != 0 {
		t.Fatalf("items lost to the dead peer: %d items / %d errors, want %d / 0",
			len(out.Items), out.Errors, len(raws))
	}
	for i, item := range out.Items {
		if len(item.Stage) == 0 {
			t.Fatalf("item %d unsolved after fallback", i)
		}
		if item.ForwardedTo != "" {
			t.Fatalf("item %d claims the dead peer solved it", i)
		}
	}
	_ = srvs
}

// TestClusterForwardLoopPrevention marks a request as already forwarded:
// the receiving replica must solve locally even for a remote-owned
// fingerprint, bounding any membership disagreement to one hop.
func TestClusterForwardLoopPrevention(t *testing.T) {
	srvs, urls, _ := newPair(t)

	// A graph owned by replica 1, sent to replica 0 with the forwarded
	// marker already set.
	var raw json.RawMessage
	for seed := 0; raw == nil; seed++ {
		g, cand := pairGraph(t, seed)
		if _, self := srvs[0].Cluster().Owner(g.Fingerprint()); !self {
			raw = cand
		}
		if seed > 100 {
			t.Fatal("no remote-owned graph found")
		}
	}
	body, err := json.Marshal(serve.ScheduleRequest{Graph: raw, Stages: 4})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		urls[0]+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.ForwardedFromHeader, "http://somewhere.invalid:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(serve.ForwardedToHeader); got != "" {
		t.Fatalf("already-forwarded request was re-forwarded to %q", got)
	}
	if srvs[0].ClusterStats().ForwardsRelayed != 0 {
		t.Fatal("relay counter moved on an already-forwarded request")
	}
}
