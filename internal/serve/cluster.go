package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"respect/internal/cluster"
	"respect/internal/graph"
	"respect/internal/solver"
)

// ClusterConfig turns one server into a fleet replica: the graph
// fingerprint space is consistent-hash sharded across the peer set, each
// request is proxied to its home shard (with a local-solve fallback when
// the owner is unhealthy), and the speculation popularity counters are
// gossiped so the fleet warms a hot instance once, not once per replica.
// Clustering is enabled when Peers is non-empty.
type ClusterConfig struct {
	// Advertise is this replica's URL as its peers can reach it
	// (scheme://host:port). Required when Peers is set.
	Advertise string
	// Peers lists every replica's advertise URL; the list may include
	// Advertise (it is filtered out). Non-empty enables clustering.
	Peers []string
	// ProbeInterval paces the membership heartbeat loop (default 500ms).
	ProbeInterval time.Duration
	// GossipInterval paces the popularity gossip loop (default 2s).
	GossipInterval time.Duration
	// GossipTopK bounds hot entries pushed per gossip round (default 16).
	GossipTopK int
	// SuspectAfter / DeadAfter are the consecutive probe-failure counts
	// after which a peer is suspect (still an owner, not forwarded to)
	// and dead (leaves the ring). Defaults 1 and 3.
	SuspectAfter int
	DeadAfter    int
	// VirtualNodes is the consistent-hash ring points per member
	// (default 64).
	VirtualNodes int
	// DisableGossip keeps sharding and forwarding but turns off the
	// popularity gossip exchange.
	DisableGossip bool
	// Client overrides the HTTP client used for probing, forwarding and
	// gossip; tests inject partition-aware transports here. The default
	// client has a 2s timeout for probes/gossip (forwards run under the
	// request's own context deadline).
	Client *http.Client
}

// Forwarding headers. A proxied request carries ForwardedFromHeader so
// the owner never re-forwards (loop prevention even while membership
// views disagree); a relayed response carries ForwardedToHeader naming
// the shard that actually solved.
const (
	// ForwardedFromHeader marks a peer-forwarded request with the
	// sender's advertise URL.
	ForwardedFromHeader = "X-Respect-Forwarded-From"
	// ForwardedToHeader marks a relayed response with the owner that
	// served it.
	ForwardedToHeader = "X-Respect-Forwarded-To"
)

// outcomeForwarded is the request-duration outcome label for requests
// relayed to their home shard; "ok" keeps meaning locally solved.
const outcomeForwarded = "forwarded"

// clusterState is the server's fleet runtime: the membership node plus
// the forwarding counters backing both /v1/stats and /metrics.
type clusterState struct {
	node   *cluster.Node
	client *http.Client

	relayed        atomic.Uint64 // requests proxied to their home shard
	forwardErrors  atomic.Uint64 // proxy attempts that fell back to a local solve
	localUnhealthy atomic.Uint64 // owner suspect/dead at entry: solved locally
}

// fleetGossip adapts the per-class speculators to the cluster gossip
// source/sink interfaces, carrying the class name across the wire.
type fleetGossip struct{ s *Server }

// HotEntries implements cluster.GossipSource: the fleet-wide hot set is
// the union of every warm class's actionable hot entries, hottest first.
func (f fleetGossip) HotEntries(max int) []cluster.HotEntry {
	var out []cluster.HotEntry
	for class, st := range f.s.classes {
		if st.spec == nil {
			continue
		}
		for _, e := range st.spec.HotEntries(max) {
			out = append(out, cluster.HotEntry{
				Class:  string(class),
				Graph:  e.Graph,
				Stages: e.Key.Stages,
				Score:  e.Score,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Class < out[j].Class
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// MergeRemote implements cluster.GossipSink: entries fold into the named
// class's speculator (unknown or non-speculating classes are skipped —
// fleet members may run different class tables).
func (f fleetGossip) MergeRemote(from string, entries []cluster.HotEntry) int {
	merged := 0
	for _, e := range entries {
		st, ok := f.s.classes[Class(e.Class)]
		if !ok || st.spec == nil {
			continue
		}
		if st.spec.MergeRemote(e.Graph, e.Stages, e.Score) {
			merged++
		}
	}
	return merged
}

// initCluster builds the membership node and registers the cluster metric
// families. Called by New after initSpeculation (the gossip adapter needs
// the speculators wired); a no-op when Peers is empty.
func (s *Server) initCluster() error {
	cc := s.cfg.Cluster
	if len(cc.Peers) == 0 {
		if cc.Advertise != "" {
			return errors.New("serve: Cluster.Advertise set without Cluster.Peers")
		}
		return nil
	}
	if cc.Advertise == "" {
		return errors.New("serve: Cluster.Peers set without Cluster.Advertise")
	}
	var source cluster.GossipSource
	var sink cluster.GossipSink
	if !cc.DisableGossip && len(s.speculators) > 0 {
		source = fleetGossip{s}
		sink = fleetGossip{s}
	}
	node, err := cluster.New(cluster.Config{
		Self:           cc.Advertise,
		Peers:          cc.Peers,
		VirtualNodes:   cc.VirtualNodes,
		SuspectAfter:   cc.SuspectAfter,
		DeadAfter:      cc.DeadAfter,
		ProbeInterval:  cc.ProbeInterval,
		GossipInterval: cc.GossipInterval,
		GossipTopK:     cc.GossipTopK,
		MaxStages:      maxStages,
		Client:         cc.Client,
		Source:         source,
		Sink:           sink,
		Logf:           s.cfg.Logf,
	})
	if err != nil {
		return err
	}
	client := cc.Client
	if client == nil {
		client = http.DefaultClient
	}
	s.cluster = &clusterState{node: node, client: client}

	forwards := s.reg.CounterVec("respect_cluster_forwards_total",
		"Cross-shard request routing by result: relayed (proxied to the home shard), error_fallback (proxy failed, solved locally), local_unhealthy (owner suspect or dead, solved locally).",
		"result")
	forwards.Func(func() float64 { return float64(s.cluster.relayed.Load()) }, "relayed")
	forwards.Func(func() float64 { return float64(s.cluster.forwardErrors.Load()) }, "error_fallback")
	forwards.Func(func() float64 { return float64(s.cluster.localUnhealthy.Load()) }, "local_unhealthy")
	peerState := s.reg.GaugeVec("respect_cluster_peer_state",
		"Observed peer membership state: 0 alive, 1 suspect, 2 dead.", "peer")
	for _, url := range node.Peers() {
		url := url
		peerState.Func(func() float64 {
			st, _ := node.PeerState(url)
			return float64(st)
		}, url)
	}
	s.reg.CounterFunc("respect_cluster_rebalances_total",
		"Consistent-hash ring rebuilds caused by membership transitions.",
		func() float64 { return float64(node.Rebalances()) })
	s.reg.CounterFunc("respect_cluster_gossip_sent_total",
		"Successful outbound popularity-gossip pushes.",
		func() float64 { return float64(node.GossipSentCount()) })
	s.reg.CounterFunc("respect_cluster_gossip_send_errors_total",
		"Failed outbound popularity-gossip pushes.",
		func() float64 { return float64(node.GossipSendErrorCount()) })
	s.reg.CounterFunc("respect_cluster_gossip_received_total",
		"Inbound popularity-gossip messages accepted.",
		func() float64 { return float64(node.GossipReceivedCount()) })
	s.reg.CounterFunc("respect_cluster_gossip_merged_keys_total",
		"Hot keys folded into local popularity tracking from gossip.",
		func() float64 { return float64(node.GossipMergedCount()) })
	return nil
}

// Cluster returns the fleet membership node, or nil when clustering is
// disabled. The chaos harness drives ProbeOnce/GossipOnce through it.
func (s *Server) Cluster() *cluster.Node {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.node
}

// SpeculateOnce runs one synchronous speculation pass on every class
// speculator and returns the total entries warmed. It is the
// deterministic counterpart of the background loops, used by tests and
// operators to force a pass (e.g. right after a gossip merge).
func (s *Server) SpeculateOnce(ctx context.Context) int {
	total := 0
	for _, sp := range s.speculators {
		total += sp.RunOnce(ctx)
	}
	return total
}

// ClusterStats is the fleet block of /v1/stats and GET /v1/cluster:
// membership and gossip counters from the node plus the serving layer's
// forwarding counters.
type ClusterStats struct {
	cluster.Stats
	// ForwardsRelayed counts requests proxied to their home shard.
	ForwardsRelayed uint64 `json:"forwards_relayed"`
	// ForwardErrors counts proxy attempts that fell back to local solves.
	ForwardErrors uint64 `json:"forward_errors"`
	// ForwardsLocalUnhealthy counts requests solved locally because the
	// owner was suspect or dead at entry.
	ForwardsLocalUnhealthy uint64 `json:"forwards_local_unhealthy"`
}

// ClusterStats snapshots the fleet block, or nil when clustering is off.
func (s *Server) ClusterStats() *ClusterStats {
	if s.cluster == nil {
		return nil
	}
	return &ClusterStats{
		Stats:                  s.cluster.node.Stats(),
		ForwardsRelayed:        s.cluster.relayed.Load(),
		ForwardErrors:          s.cluster.forwardErrors.Load(),
		ForwardsLocalUnhealthy: s.cluster.localUnhealthy.Load(),
	}
}

// handleClusterStats serves GET /v1/cluster.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.ClusterStats())
}

// handleClusterHeartbeat serves GET /v1/cluster/heartbeat, the liveness
// probe peers poll; the response names this replica's advertise URL so a
// misconfigured peer list reads as unhealthy instead of joining the ring.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.node.Heartbeat())
}

// handleClusterGossip serves POST /v1/cluster/gossip: a peer's hot-set
// push, validated and folded into the local speculators.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	msg, err := cluster.DecodeGossip(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), maxStages)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	merged := s.cluster.node.ReceiveGossip(msg)
	writeJSON(w, http.StatusOK, map[string]int{"merged": merged})
}

// isForwarded reports whether r already hopped once; such requests are
// always solved locally, bounding any routing disagreement to one hop.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(ForwardedFromHeader) != ""
}

// relaySchedule proxies a schedule request to its home shard and relays
// the response verbatim (status, Retry-After, body) annotated with
// ForwardedToHeader. It returns false — and counts a forward error — when
// the proxy attempt itself failed (transport error or a 5xx from the
// owner), in which case the caller solves locally; owner-issued 4xx/429
// are real answers and are relayed, not retried.
func (s *Server) relaySchedule(w http.ResponseWriter, r *http.Request, target string, req *ScheduleRequest, class Class, budget time.Duration, arrival time.Time) bool {
	body, err := json.Marshal(req)
	if err != nil {
		s.cluster.forwardErrors.Add(1)
		return false
	}
	// The owner itself spends up to one budget queueing plus one solving,
	// so the proxy deadline is twice the class budget.
	ctx, cancel := context.WithTimeout(r.Context(), 2*budget)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		s.cluster.forwardErrors.Add(1)
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(ForwardedFromHeader, s.cluster.node.Self())
	resp, err := s.cluster.client.Do(preq)
	if err != nil {
		s.cluster.forwardErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil || resp.StatusCode >= http.StatusInternalServerError {
		s.cluster.forwardErrors.Add(1)
		return false
	}
	s.cluster.relayed.Add(1)
	s.observeRequest(class, outcomeForwarded, arrival)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(ForwardedToHeader, target)
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
	return true
}

// batchForwardGroups buckets a resolved batch by healthy remote owner;
// indices of self-owned graphs (or graphs whose owner is unhealthy) are
// not bucketed and solve locally.
func (s *Server) batchForwardGroups(graphs []*graph.Graph) map[string][]int {
	groups := make(map[string][]int)
	for i, g := range graphs {
		if target, ok := s.cluster.node.ForwardTarget(g.Fingerprint()); ok {
			groups[target] = append(groups[target], i)
		} else if _, self := s.cluster.node.Owner(g.Fingerprint()); !self {
			s.cluster.localUnhealthy.Add(1)
		}
	}
	return groups
}

// forwardBatchGroup proxies one owner's sub-batch and returns its items
// in the order of idx. Any failure (transport, non-200, short or
// malformed response) is an error; the caller solves the group locally.
func (s *Server) forwardBatchGroup(ctx context.Context, target string, graphs []*graph.Graph, idx []int, numStages int, class Class, backend string, jobs int) ([]BatchItemJSON, error) {
	sub := BatchRequest{
		Graphs:  make([]json.RawMessage, len(idx)),
		Stages:  numStages,
		Class:   string(class),
		Backend: backend,
		Jobs:    jobs,
	}
	for k, i := range idx {
		var buf bytes.Buffer
		if err := graphs[i].WriteJSON(&buf); err != nil {
			return nil, err
		}
		sub.Graphs[k] = json.RawMessage(buf.Bytes())
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(ForwardedFromHeader, s.cluster.node.Self())
	resp, err := s.cluster.client.Do(preq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
		return nil, fmt.Errorf("owner %s: status %d", target, resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes)).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Items) != len(idx) {
		return nil, fmt.Errorf("owner %s: %d items for %d graphs", target, len(br.Items), len(idx))
	}
	return br.Items, nil
}

// runClusteredBatch executes a batch whose graphs span shards: remote
// groups are proxied to their owners while the local remainder solves
// here, and any group whose proxy failed is re-solved locally (the
// fallback guarantee: an admitted batch never loses items to peer
// failures). Items return in input order.
func (s *Server) runClusteredBatch(ctx context.Context, cache solver.Scheduler, graphs []*graph.Graph, numStages int, class Class, backend string, jobs int, groups map[string][]int) []BatchItemJSON {
	items := make([]BatchItemJSON, len(graphs))
	remote := make(map[int]bool)
	for _, idx := range groups {
		for _, i := range idx {
			remote[i] = true
		}
	}

	var (
		mu       sync.Mutex
		fallback []int
		wg       sync.WaitGroup
	)
	for target, idx := range groups {
		wg.Add(1)
		go func(target string, idx []int) {
			defer wg.Done()
			sub, err := s.forwardBatchGroup(ctx, target, graphs, idx, numStages, class, backend, jobs)
			if err != nil {
				s.cluster.forwardErrors.Add(1)
				s.logf("cluster: batch group -> %s failed, solving %d items locally: %v", target, len(idx), err)
				mu.Lock()
				fallback = append(fallback, idx...)
				mu.Unlock()
				return
			}
			s.cluster.relayed.Add(1)
			mu.Lock()
			for k, i := range idx {
				items[i] = sub[k]
				items[i].Index = i
				items[i].ForwardedTo = target
			}
			mu.Unlock()
		}(target, idx)
	}

	var local []int
	for i := range graphs {
		if !remote[i] {
			local = append(local, i)
		}
	}
	s.solveBatchLocal(ctx, cache, graphs, local, numStages, jobs, items)
	wg.Wait()
	if len(fallback) > 0 {
		sort.Ints(fallback)
		s.solveBatchLocal(ctx, cache, graphs, fallback, numStages, jobs, items)
	}
	return items
}

// solveBatchLocal solves the given graph indices through the local batch
// cache and writes their items (in input positions) into items.
func (s *Server) solveBatchLocal(ctx context.Context, cache solver.Scheduler, graphs []*graph.Graph, idx []int, numStages, jobs int, items []BatchItemJSON) {
	if len(idx) == 0 {
		return
	}
	subset := make([]*graph.Graph, len(idx))
	for k, i := range idx {
		subset[k] = graphs[i]
	}
	results, _ := solver.Batch(ctx, cache, subset, numStages, jobs)
	for k, res := range results {
		items[idx[k]] = batchItemJSON(idx[k], res)
	}
}
