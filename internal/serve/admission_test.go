package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(2, 2)
	ctx := context.Background()
	r1, err := a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	r1()
	r2()
	if got := a.active(); got != 0 {
		t.Fatalf("active after release = %d, want 0", got)
	}
	if got := a.admitted.Load(); got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

func TestAdmissionQueueFullRejectsImmediately(t *testing.T) {
	a := newAdmission(1, 0)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := a.acquire(context.Background()); !errors.Is(err, errOverCapacity) {
		t.Fatalf("err = %v, want errOverCapacity", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("zero-queue rejection was not immediate")
	}
	if got := a.rejectedCapacity.Load(); got != 1 {
		t.Fatalf("rejectedCapacity = %d, want 1", got)
	}
}

func TestAdmissionQueueWaitAndHandoff(t *testing.T) {
	a := newAdmission(1, 1)
	queued := make(chan struct{})
	var once sync.Once
	a.queuedHook = func() { once.Do(func() { close(queued) }) }
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// The waiter parks in the queue, then acquires once the slot frees.
	<-queued
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire = %v, want success after release", err)
	}
	if a.queued() != 0 {
		t.Fatalf("queue gauge = %d after handoff, want 0", a.queued())
	}
}

func TestAdmissionQueueTimeoutError(t *testing.T) {
	a := newAdmission(1, 1)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, errQueueTimeout) {
		t.Fatalf("err = %v, want errQueueTimeout", err)
	}
	if got := a.rejectedTimeout.Load(); got != 1 {
		t.Fatalf("rejectedTimeout = %d, want 1", got)
	}
	// The queue token was returned: a later waiter can still queue.
	if a.queued() != 0 {
		t.Fatalf("queue gauge = %d, want 0", a.queued())
	}
}

// TestAdmissionConcurrentChurn hammers one controller from many
// goroutines; the race detector guards the internals and the invariants
// guard token conservation.
func TestAdmissionConcurrentChurn(t *testing.T) {
	a := newAdmission(4, 4)
	var wg sync.WaitGroup
	var admitted, rejected int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			release, err := a.acquire(ctx)
			mu.Lock()
			if err != nil {
				rejected++
			} else {
				admitted++
			}
			mu.Unlock()
			if err == nil {
				runtime.Gosched() // hold the slot across a scheduling point
				release()
			}
		}()
	}
	wg.Wait()
	if a.active() != 0 || a.queued() != 0 {
		t.Fatalf("gauges not drained: active=%d queued=%d", a.active(), a.queued())
	}
	if admitted == 0 {
		t.Fatal("nothing was admitted")
	}
	if total := a.admitted.Load() + a.rejectedCapacity.Load() + a.rejectedTimeout.Load(); total != 64 {
		t.Fatalf("counter conservation: %d accounted, want 64", total)
	}
}
