package serve

import "respect/internal/online"

// SetQueuedHook installs f as the named class's admission queuedHook: f
// runs on a waiter's goroutine right after it takes a queue token. The
// external test package uses it to observe the parked state without
// polling the queue gauge. Install before the server starts handling
// traffic — the field is read without synchronization.
func (s *Server) SetQueuedHook(class Class, f func()) {
	s.classes[class].adm.queuedHook = f
}

// Online exposes the learning-loop manager (nil when the loop is off):
// the external e2e tests drive training rounds synchronously instead of
// waiting on the background interval.
func (s *Server) Online() *online.Manager { return s.onlineMgr }
