package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// Admission rejection causes. Over-capacity work is refused up front — a
// full queue or an expired wait both produce 429 with Retry-After — so
// admitted requests keep their latency budget instead of every request
// degrading together.
var (
	// errOverCapacity reports the class's wait queue is full.
	errOverCapacity = errors.New("serve: class over capacity (queue full)")
	// errQueueTimeout reports the request waited its whole budget in the
	// queue without being admitted.
	errQueueTimeout = errors.New("serve: queue wait exceeded the class budget")
)

// admission is a per-class admission controller: a concurrency semaphore
// with a bounded wait queue. Both are token channels (pre-filled; acquire
// = receive, release = send), so the controller is lock-free on the fast
// path and gauges fall out of channel lengths.
type admission struct {
	sem   chan struct{} // concurrency tokens
	queue chan struct{} // wait-queue tokens

	admitted         atomic.Uint64
	rejectedCapacity atomic.Uint64
	rejectedTimeout  atomic.Uint64

	// queuedHook, when set, runs on the waiter's goroutine right after
	// it takes a queue token. Tests use it to observe the parked state
	// without polling; production leaves it nil.
	queuedHook func()
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	a := &admission{
		sem:   make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueue),
	}
	for i := 0; i < maxConcurrent; i++ {
		a.sem <- struct{}{}
	}
	for i := 0; i < maxQueue; i++ {
		a.queue <- struct{}{}
	}
	return a
}

// acquire admits the caller or rejects it. On success the returned release
// must be called exactly once when the work finishes. Rejections are
// immediate when the wait queue is full (errOverCapacity) and deferred
// when ctx expires while queued (errQueueTimeout).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	release = func() { a.sem <- struct{}{} }
	select {
	case <-a.sem:
		a.admitted.Add(1)
		return release, nil
	default:
	}
	select {
	case <-a.queue:
	default:
		a.rejectedCapacity.Add(1)
		return nil, errOverCapacity
	}
	defer func() { a.queue <- struct{}{} }()
	if a.queuedHook != nil {
		a.queuedHook()
	}
	select {
	case <-a.sem:
		a.admitted.Add(1)
		return release, nil
	case <-ctx.Done():
		a.rejectedTimeout.Add(1)
		return nil, errQueueTimeout
	}
}

// active gauges currently admitted requests.
func (a *admission) active() int { return cap(a.sem) - len(a.sem) }

// queued gauges requests waiting for admission.
func (a *admission) queued() int { return cap(a.queue) - len(a.queue) }
