// End-to-end tests of the scheduling service over real HTTP
// (net/http/httptest): zoo-name round trips, budget-expiry honesty,
// admission-control rejections, malformed-input status codes and cache
// warm-up behaviour.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/sched"
	"respect/internal/serve"
	"respect/internal/solver"
)

// newTestServer mounts a service on an httptest listener.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	return newTestServerWith(t, cfg, nil)
}

// newTestServerWith applies mutate to the constructed server before the
// httptest listener goroutine starts, so test-hook installs are ordered
// before every handler read of them.
func newTestServerWith(t *testing.T, cfg serve.Config, mutate func(*serve.Server)) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(srv)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON POSTs v (or raw string bytes) and returns the response with a
// decoded body.
func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	var body []byte
	switch x := v.(type) {
	case string:
		body = []byte(x)
	default:
		var err error
		if body, err = json.Marshal(v); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

func TestScheduleByZooNameRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})

	resp, data := postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "ResNet50", Stages: 4, Class: "interactive"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out serve.ScheduleResponse
	decodeInto(t, data, &out)
	if out.Graph != "ResNet50" || out.Stages != 4 || out.Class != "interactive" {
		t.Fatalf("echo fields wrong: %+v", out)
	}
	if out.Backend == "" || len(out.Outcomes) == 0 {
		t.Fatalf("missing solver telemetry: %+v", out)
	}
	if out.Truncated {
		t.Fatalf("fast heuristics on ResNet50 must not be truncated: %+v", out)
	}

	// The returned stage assignment must be deployment-ready on the real
	// zoo graph.
	g, err := models.Load("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	s := sched.Schedule{NumStages: out.Stages, Stage: out.Stage}
	if err := s.Validate(g); err != nil {
		t.Fatalf("served schedule invalid: %v", err)
	}
	if !s.SameStageChildrenOK(g) {
		t.Fatal("served schedule is not deployment-ready")
	}
	if got := s.Evaluate(g); got.PeakParamBytes != out.Cost.PeakParamBytes || got.CrossBytes != out.Cost.CrossBytes {
		t.Fatalf("reported cost %+v does not match re-evaluated %v", out.Cost, got)
	}
}

func TestScheduleInlineGraph(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})

	g := graph.New("wire")
	for i := 0; i < 6; i++ {
		g.AddNode(graph.Node{Name: fmt.Sprintf("n%d", i), ParamBytes: int64(100 * (i + 1)), OutBytes: 10})
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	g.MustBuild()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Graph: json.RawMessage(buf.Bytes()), Stages: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out serve.ScheduleResponse
	decodeInto(t, data, &out)
	if out.Nodes != 6 || len(out.Stage) != 6 {
		t.Fatalf("wrong shape: %+v", out)
	}
	if err := (sched.Schedule{NumStages: 3, Stage: out.Stage}).Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetExpiryReturnsTruncatedIncumbent drives the exact solver into a
// per-class budget it cannot meet (Inception_v3's wide DAG keeps the
// branch-and-bound search open for far longer than the budget): the
// service must answer within (about) the budget with a valid incumbent
// schedule and the honest truncated flag, never a fake full-effort result.
func TestBudgetExpiryReturnsTruncatedIncumbent(t *testing.T) {
	budget := 100 * time.Millisecond
	_, ts := newTestServer(t, serve.Config{
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			"exact-only": {Budget: budget, Backends: []string{"exact"}, MaxConcurrent: 2, MaxQueue: 2},
		},
	})

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "Inception_v3", Stages: 6, Class: "exact-only"})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if elapsed > budget+2*time.Second {
		t.Fatalf("request took %v, budget was %v: deadline not enforced", elapsed, budget)
	}
	var out serve.ScheduleResponse
	decodeInto(t, data, &out)
	if !out.Truncated {
		t.Fatalf("budget-cut exact solve must be flagged truncated: %+v", out.Outcomes)
	}
	g, _ := models.Load("Inception_v3")
	if err := (sched.Schedule{NumStages: 6, Stage: out.Stage}).Validate(g); err != nil {
		t.Fatalf("truncated incumbent still must be valid: %v", err)
	}

	// A truncated incumbent must not be cached: the same request misses
	// again (no cache_hit on either call).
	if out.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	_, data = postJSON(t, ts.URL+"/v1/schedule",
		serve.ScheduleRequest{Model: "Inception_v3", Stages: 6, Class: "exact-only"})
	var out2 serve.ScheduleResponse
	decodeInto(t, data, &out2)
	if out2.CacheHit {
		t.Fatal("truncated incumbent was cached and served as a hit")
	}
}

// registerBackend registers a test backend with the global solver
// registry, tolerating re-registration: -count>1 re-runs tests in one
// process, and the registry keeps the first (behaviorally identical)
// instance.
func registerBackend(t *testing.T, s solver.Scheduler) {
	t.Helper()
	if err := solver.Register(s); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

// gate coordinates a gated backend with the test driving it: Schedule
// signals started, then parks — ignoring cancellation — until the test
// closes the release channel. The registry keeps the first registered
// instance across -count>1 runs, so the backend reads its channels
// through the gate and each test re-arms fresh ones.
type gate struct {
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}

// arm installs and returns fresh channels for one test run.
func (g *gate) arm() (started <-chan struct{}, release chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.started = make(chan struct{}, 64)
	g.release = make(chan struct{})
	return g.started, g.release
}

func (g *gate) chans() (chan struct{}, chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started, g.release
}

// gatedBackend holds its admission slot deterministically: the portfolio
// waits for every backend even past its deadline, so the slot stays
// occupied exactly until the test opens the gate — no wall-clock sleeps
// and no guessing how long a slot-holder needs to linger.
type gatedBackend struct {
	name string
	g    *gate
}

func (b gatedBackend) Name() string { return b.name }
func (b gatedBackend) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	started, release := b.g.chans()
	select {
	case started <- struct{}{}:
	default:
	}
	<-release
	return sched.Schedule{}, context.DeadlineExceeded
}

var overloadGate = &gate{}

func TestAdmissionControlRejectsOverload(t *testing.T) {
	registerBackend(t, gatedBackend{name: "e2e-block", g: overloadGate})
	started, release := overloadGate.arm()
	budget := 400 * time.Millisecond
	srv, ts := newTestServer(t, serve.Config{
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			"tiny": {Budget: budget, Backends: []string{"e2e-block"}, MaxConcurrent: 1, MaxQueue: 0},
		},
	})

	// Occupy the only slot, then hit the class with more requests: with a
	// zero-depth queue every one of them must be rejected immediately with
	// 429 + Retry-After rather than queued into everyone's budget.
	// post is a goroutine-safe POST (no t.Fatal off the test goroutine).
	post := func(req serve.ScheduleRequest) (*http.Response, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, nil, err
		}
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}

	req := serve.ScheduleRequest{Model: "Xception", Class: "tiny"}
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		_, _, _ = post(req)
	}()
	// The backend signals once it runs — i.e. once the first request
	// holds the class's only slot.
	<-started

	var rejected int
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data, err := post(req)
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				var e serve.ErrorResponse
				if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "capacity") {
					t.Errorf("unexpected 429 body: %s", data)
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(release)
	<-firstDone
	if rejected == 0 {
		t.Fatal("no request was rejected under synthetic overload")
	}
	st := srv.Stats().Classes["tiny"]
	if st.RejectedCapacity == 0 {
		t.Fatalf("stats did not record capacity rejections: %+v", st)
	}
}

// sleepIgnoringCtx holds its admission slot for a fixed wall time
// regardless of cancellation, so a queued request's budget deterministically
// expires before the slot frees.
type sleepIgnoringCtx struct {
	name string
	d    time.Duration
}

func (b sleepIgnoringCtx) Name() string { return b.name }
func (b sleepIgnoringCtx) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	//lint:ignore nosleeptest the fixture deliberately ignores cancellation to hold its admission slot
	time.Sleep(b.d)
	return sched.Schedule{}, context.DeadlineExceeded
}

var queueGate = &gate{}

func TestAdmissionQueueTimeout(t *testing.T) {
	registerBackend(t, gatedBackend{name: "e2e-gate-q", g: queueGate})
	started, release := queueGate.arm()
	srv, ts := newTestServer(t, serve.Config{
		WarmModels: []string{},
		Classes: map[serve.Class]serve.ClassPolicy{
			"queued": {Budget: 250 * time.Millisecond, Backends: []string{"e2e-gate-q"}, MaxConcurrent: 1, MaxQueue: 4},
		},
	})
	req := serve.ScheduleRequest{Model: "Xception", Class: "queued"}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// The gate holds the slot until the test opens it, so the queued
	// request below can never be admitted inside its budget.
	<-started
	// The second request fits in the queue but can never be admitted
	// within its budget; it must come back 429 after about one budget.
	resp, _ := postJSON(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued-past-budget request: status %d, want 429", resp.StatusCode)
	}
	close(release)
	<-done
	if st := srv.Stats().Classes["queued"]; st.RejectedQueueTimeout == 0 {
		t.Fatalf("queue timeout not recorded: %+v", st)
	}
}

func TestMalformedAndUnknownInputs(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"syntactically broken JSON", `{"model": "ResNet50"`, http.StatusBadRequest},
		{"unknown top-level field", `{"moodel": "ResNet50"}`, http.StatusBadRequest},
		{"neither model nor graph", serve.ScheduleRequest{}, http.StatusBadRequest},
		{"both model and graph", `{"model":"ResNet50","graph":{"name":"g","nodes":[],"edges":[]}}`, http.StatusBadRequest},
		{"unknown model", serve.ScheduleRequest{Model: "NoSuchNet"}, http.StatusNotFound},
		{"unknown class", serve.ScheduleRequest{Model: "ResNet50", Class: "platinum"}, http.StatusBadRequest},
		{"unknown backend override", serve.ScheduleRequest{Model: "ResNet50", Backends: []string{"nope"}}, http.StatusBadRequest},
		{"stages out of range", serve.ScheduleRequest{Model: "ResNet50", Stages: -2}, http.StatusBadRequest},
		{"graph with out-of-range edge", `{"graph":{"name":"g","nodes":[{"name":"a","kind":"conv"}],"edges":[[0,7]]}}`, http.StatusBadRequest},
		{"graph with a cycle", `{"graph":{"name":"g","nodes":[{"name":"a"},{"name":"b"}],"edges":[[0,1],[1,0]]}}`, http.StatusBadRequest},
		{"empty graph", `{"graph":{"name":"g","nodes":[],"edges":[]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/schedule", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			var e serve.ErrorResponse
			decodeInto(t, data, &e)
			if e.Error == "" {
				t.Fatalf("error body missing: %s", data)
			}
		})
	}

	// Method discipline.
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedule: status %d, want 405", resp.StatusCode)
	}
}

func TestWarmUpYieldsHitsOnFirstZooRequest(t *testing.T) {
	warm := []string{"ResNet50", "Xception"}
	srv, ts := newTestServer(t, serve.Config{Stages: 4, WarmModels: warm})
	n, err := srv.WarmUp(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n < len(warm) {
		t.Fatalf("warm-up stored %d schedules, want at least %d", n, len(warm))
	}
	for _, model := range warm {
		resp, data := postJSON(t, ts.URL+"/v1/schedule",
			serve.ScheduleRequest{Model: model, Class: "interactive"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", model, resp.StatusCode, data)
		}
		var out serve.ScheduleResponse
		decodeInto(t, data, &out)
		if !out.CacheHit {
			t.Fatalf("%s: first request after warm-up should hit the cache: %+v", model, out)
		}
	}
	var st serve.Stats
	resp, data := func() (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	decodeInto(t, data, &st)
	if st.WarmedSchedules < int64(len(warm)) {
		t.Fatalf("stats warmed = %d, want >= %d", st.WarmedSchedules, len(warm))
	}
	if cs := st.Classes["interactive"]; cs.CacheHits < uint64(len(warm)) {
		t.Fatalf("interactive cache hits = %d, want >= %d", cs.CacheHits, len(warm))
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})
	resp, data := postJSON(t, ts.URL+"/v1/batch", serve.BatchRequest{
		Models: []string{"ResNet50", "ResNet50", "Xception"},
		Stages: 4, Backend: "heur", Jobs: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out serve.BatchResponse
	decodeInto(t, data, &out)
	if out.Count != 3 || out.Errors != 0 || len(out.Items) != 3 {
		t.Fatalf("batch shape wrong: %+v", out)
	}
	if out.Items[0].Graph != "ResNet50" || out.Items[2].Graph != "Xception" {
		t.Fatalf("items out of input order: %+v", out.Items)
	}
	if out.Items[0].CacheHit {
		t.Fatal("first ResNet50 solve cannot be a hit")
	}
	if !out.Items[1].CacheHit {
		t.Fatal("repeated ResNet50 should hit the fingerprint cache")
	}
	for _, item := range out.Items {
		g, _ := models.Load(item.Graph)
		if err := (sched.Schedule{NumStages: 4, Stage: item.Stage}).Validate(g); err != nil {
			t.Fatalf("%s: %v", item.Graph, err)
		}
	}

	// A budget-cut batch item carries the same honesty flag as
	// /v1/schedule: exact on Inception_v3 cannot finish inside the
	// interactive budget, so its incumbent must be marked truncated.
	resp, data = postJSON(t, ts.URL+"/v1/batch", serve.BatchRequest{
		Models: []string{"Inception_v3"}, Stages: 6,
		Backend: "exact", Class: "interactive", Jobs: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truncated batch: status %d: %s", resp.StatusCode, data)
	}
	var cut serve.BatchResponse
	decodeInto(t, data, &cut)
	if len(cut.Items) != 1 || cut.Items[0].Error != "" {
		t.Fatalf("truncated batch shape: %+v", cut)
	}
	if !cut.Items[0].Truncated {
		t.Fatalf("budget-cut batch item not flagged truncated: %+v", cut.Items[0])
	}

	// Malformed batch bodies.
	for _, body := range []any{
		serve.BatchRequest{},
		`{"models": ["ResNet50"], "backend": "nope"}`,
		`{"graphs": [ {"name":"g","nodes":[],"edges":[]} ]}`,
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %v: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestBackendsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})
	resp, err := http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out serve.BackendsResponse
	decodeInto(t, data, &out)
	if len(out.Backends) == 0 || len(out.Models) == 0 {
		t.Fatalf("empty listing: %+v", out)
	}
	found := false
	for _, b := range out.Backends {
		if b == "exact" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact missing from %v", out.Backends)
	}
	for _, class := range []string{"interactive", "batch", "best-effort"} {
		p, ok := out.Classes[class]
		if !ok || p.BudgetMS <= 0 || len(p.Backends) == 0 || p.MaxConcurrent < 1 {
			t.Fatalf("class %s policy malformed: %+v", class, p)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{WarmModels: []string{}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []serve.Config{
		{Classes: map[serve.Class]serve.ClassPolicy{"x": {Budget: time.Second, Backends: []string{"no-such"}, MaxConcurrent: 1}}},
		{Classes: map[serve.Class]serve.ClassPolicy{"x": {Budget: 0, Backends: []string{"heur"}, MaxConcurrent: 1}}},
		{Classes: map[serve.Class]serve.ClassPolicy{"x": {Budget: time.Second, Backends: nil, MaxConcurrent: 1}}},
		{Classes: map[serve.Class]serve.ClassPolicy{"x": {Budget: time.Second, Backends: []string{"heur"}, MaxConcurrent: 0}}},
		{Classes: map[serve.Class]serve.ClassPolicy{"x": {Budget: time.Second, Backends: []string{"heur"}, MaxConcurrent: 1, MaxQueue: -1}}},
		{WarmModels: []string{"NoSuchNet"}},
		{Stages: 1000},
		{MaxBodyBytes: -1},
		{LatencyBuckets: []float64{-0.5}},
		{LatencyBuckets: []float64{math.NaN()}}, // NaN fails every <= check; must error, not panic
	}
	for i, cfg := range cases {
		if _, err := serve.New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}
