package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"respect/internal/graph"
	"respect/internal/solver"
	"respect/internal/speculate"
)

// SpeculationConfig tunes speculative warm-cache scheduling: a background
// subsystem that tracks per-instance request popularity, listens to the
// schedule caches' eviction hooks, and pre-schedules hot instances and
// their likely mutations into every warm-marked class's cache while
// admission occupancy stays below a watermark. Zero values select the
// speculate package defaults.
type SpeculationConfig struct {
	// Enabled turns speculative warming on. Off, the serving path pays no
	// speculation cost at all.
	Enabled bool
	// Watermark is the admission occupancy — (active + queued) work over
	// the class concurrency limit — at or above which speculation yields
	// entirely (default 0.5). Must be in (0, 1] when set.
	Watermark float64
	// Budget bounds speculative solves per scan pass (default 4).
	Budget int
	// Workers sizes the speculative worker pool per class (default 1).
	Workers int
	// Interval is the scan period (default 500ms).
	Interval time.Duration
	// HalfLife is the popularity decay half-life (default 1m).
	HalfLife time.Duration
	// TopK bounds hot keys considered per pass (default 8).
	TopK int
}

// engineTarget adapts one class's memoized portfolio engine to the
// speculate.Target interface. Warm reports stored=false for truncated or
// failed races — the engine itself never caches those, so Contains after
// Run is the honest answer.
type engineTarget struct {
	eng *solver.CachedPortfolio
}

// Contains implements speculate.Target.
func (t engineTarget) Contains(g *graph.Graph, numStages int) bool {
	return t.eng.Contains(g, numStages)
}

// Warm implements speculate.Target. A race hit means the key was cached
// organically (demand traffic or zoo warm-up beat the speculator to it):
// stored is false then, so the key is never misattributed to speculation.
func (t engineTarget) Warm(ctx context.Context, g *graph.Graph, numStages int) (bool, error) {
	_, hit, err := t.eng.Run(ctx, g, numStages)
	if err != nil {
		return false, err
	}
	return !hit && t.eng.Contains(g, numStages), nil
}

// initSpeculation builds one Speculator per warm-marked class, wires the
// eviction hooks and popularity-aware eviction ordering into the class
// engines, and registers the speculation metric families. Called by New
// after initMetrics; a no-op when speculation is disabled.
func (s *Server) initSpeculation() error {
	sc := s.cfg.Speculation
	if !sc.Enabled {
		return nil
	}
	for class, st := range s.classes {
		if !st.policy.Warm {
			continue
		}
		adm, maxConc := st.adm, st.policy.MaxConcurrent
		sp, err := speculate.New(speculate.Config{
			Target: engineTarget{st.engine},
			Occupancy: func() float64 {
				return float64(adm.active()+adm.queued()) / float64(maxConc)
			},
			Watermark:   sc.Watermark,
			Budget:      sc.Budget,
			Workers:     sc.Workers,
			Interval:    sc.Interval,
			HalfLife:    sc.HalfLife,
			TopK:        sc.TopK,
			SolveBudget: st.policy.Budget,
			MaxStages:   maxStages,
			Logf:        s.logf,
		})
		if err != nil {
			return fmt.Errorf("serve: class %q: %w", class, err)
		}
		st.spec = sp
		// Evicted hot entries become re-admission candidates, and the
		// class cache prefers evicting unpopular entries over popular
		// ones — the loop from observability signals back into
		// scheduling decisions.
		st.engine.OnEvict(sp.ObserveEviction)
		st.engine.SetEvictionScorer(sp.PopularityScore)
		s.speculators = append(s.speculators, sp)
	}
	if len(s.speculators) == 0 {
		return fmt.Errorf("serve: speculation enabled but no class has Warm set")
	}

	// Scrape-time closures sum per-speculator atomics directly — no
	// speculator lock is taken on the exposition path.
	sum := func(read func(*speculate.Speculator) uint64) func() float64 {
		return func() float64 {
			var total uint64
			for _, sp := range s.speculators {
				total += read(sp)
			}
			return float64(total)
		}
	}
	warms := s.reg.CounterVec("respect_speculative_warms_total",
		"Cache entries warmed speculatively, by trigger reason (evicted, popular or mutation).",
		"reason")
	for _, reason := range []string{speculate.ReasonEvicted, speculate.ReasonPopular, speculate.ReasonMutation} {
		reason := reason
		warms.Func(sum(func(sp *speculate.Speculator) uint64 { return sp.WarmCount(reason) }), reason)
	}
	s.reg.CounterFunc("respect_speculative_hits_total",
		"Requests served from a cache entry that speculation warmed.",
		sum((*speculate.Speculator).HitCount))
	s.reg.CounterFunc("respect_speculative_skipped_total",
		"Speculative candidates dropped because admission occupancy was at or above the watermark.",
		sum((*speculate.Speculator).SkippedCount))
	return nil
}

// SpeculationStats aggregates every class speculator's counters; the zero
// value is returned when speculation is disabled.
func (s *Server) SpeculationStats() speculate.Stats {
	var out speculate.Stats
	for _, sp := range s.speculators {
		st := sp.Stats()
		out.TrackedKeys += st.TrackedKeys
		out.Passes += st.Passes
		out.Attempts += st.Attempts
		out.WarmsEvicted += st.WarmsEvicted
		out.WarmsPopular += st.WarmsPopular
		out.WarmsMutation += st.WarmsMutation
		out.SkippedWatermark += st.SkippedWatermark
		out.SpeculativeEntries += st.SpeculativeEntries
		out.Hits += st.Hits
	}
	return out
}

// runSpeculators starts every class speculator's background loop and
// returns a stop function that cancels and awaits them; Run calls it so
// no speculative solve outlives the service.
func (s *Server) runSpeculators(ctx context.Context) (stop func()) {
	if len(s.speculators) == 0 {
		return func() {}
	}
	specCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for _, sp := range s.speculators {
		wg.Add(1)
		go func(sp *speculate.Speculator) {
			defer wg.Done()
			sp.Run(specCtx)
		}(sp)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}
