package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// scrape renders the registry and returns the exposition page split into
// lines for assertion.
func scrape(t *testing.T, r *Registry) []string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
}

func mustContain(t *testing.T, lines []string, want string) {
	t.Helper()
	for _, l := range lines {
		if l == want {
			return
		}
	}
	t.Fatalf("exposition missing line %q in:\n%s", want, strings.Join(lines, "\n"))
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %v, want 3", c.Value())
	}
	g := r.Gauge("test_temperature", "Current temperature.")
	g.Set(20)
	g.Add(-2.5)
	if g.Value() != 17.5 {
		t.Fatalf("gauge = %v, want 17.5", g.Value())
	}

	lines := scrape(t, r)
	mustContain(t, lines, "# HELP test_requests_total Total requests.")
	mustContain(t, lines, "# TYPE test_requests_total counter")
	mustContain(t, lines, "test_requests_total 3")
	mustContain(t, lines, "# TYPE test_temperature gauge")
	mustContain(t, lines, "test_temperature 17.5")
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_ops_total", "Ops.", "class", "op")
	v.With("interactive", "hit").Add(4)
	v.With("interactive", "miss").Inc()
	if got := v.With("interactive", "hit").Value(); got != 4 {
		t.Fatalf("same labels must return the same counter, got %v", got)
	}
	lines := scrape(t, r)
	mustContain(t, lines, `test_ops_total{class="interactive",op="hit"} 4`)
	mustContain(t, lines, `test_ops_total{class="interactive",op="miss"} 1`)
}

func TestFuncBackedSeries(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.GaugeFunc("test_live", "Live value.", func() float64 { return n })
	v := r.CounterVec("test_admitted_total", "Admitted.", "class")
	v.Func(func() float64 { return n * 2 }, "batch")
	lines := scrape(t, r)
	mustContain(t, lines, "test_live 7")
	mustContain(t, lines, `test_admitted_total{class="batch"} 14`)

	n = 9 // scrape-time read: the next page reflects the new value
	lines = scrape(t, r)
	mustContain(t, lines, "test_live 9")
	mustContain(t, lines, `test_admitted_total{class="batch"} 18`)
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 2} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-2.45) > 1e-9 {
		t.Fatalf("sum = %v, want 2.45", h.Sum())
	}
	lines := scrape(t, r)
	// Buckets are cumulative; 0.1 lands in le="0.1" (le is inclusive).
	mustContain(t, lines, `test_latency_seconds_bucket{le="0.1"} 2`)
	mustContain(t, lines, `test_latency_seconds_bucket{le="0.5"} 3`)
	mustContain(t, lines, `test_latency_seconds_bucket{le="1"} 3`)
	mustContain(t, lines, `test_latency_seconds_bucket{le="+Inf"} 4`)
	mustContain(t, lines, `test_latency_seconds_count 4`)
}

func TestHistogramVecSharedBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_req_seconds", "Req.", []float64{1, 2}, "class")
	v.With("a").Observe(0.5)
	v.With("b").Observe(3)
	lines := scrape(t, r)
	mustContain(t, lines, `test_req_seconds_bucket{class="a",le="1"} 1`)
	mustContain(t, lines, `test_req_seconds_bucket{class="b",le="2"} 0`)
	mustContain(t, lines, `test_req_seconds_bucket{class="b",le="+Inf"} 1`)
}

func TestBucketNormalization(t *testing.T) {
	r := NewRegistry()
	// Unsorted, duplicated, with an explicit +Inf: all normalized.
	h := r.Histogram("test_norm", "n", []float64{2, 1, 2, math.Inf(1)})
	h.Observe(1.5)
	lines := scrape(t, r)
	mustContain(t, lines, `test_norm_bucket{le="1"} 0`)
	mustContain(t, lines, `test_norm_bucket{le="2"} 1`)
	mustContain(t, lines, `test_norm_bucket{le="+Inf"} 1`)

	// Empty buckets fall back to the defaults.
	h2 := NewRegistry().Histogram("test_def", "d", nil)
	if len(h2.upper) != len(DefBuckets()) {
		t.Fatalf("default buckets not applied: %v", h2.upper)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_esc_total", `Help with \ backslash`, "path")
	v.With(`a"b\c` + "\n").Inc()
	lines := scrape(t, r)
	mustContain(t, lines, `# HELP test_esc_total Help with \\ backslash`)
	mustContain(t, lines, `test_esc_total{path="a\"b\\c\n"} 1`)
}

func TestInvalidAndDuplicateNamesPanic(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	expectPanic("invalid metric name", func() { r.Counter("9bad", "") })
	expectPanic("invalid label name", func() { r.CounterVec("test_ok_total", "", "bad-label") })
	r.Counter("test_dup_total", "")
	expectPanic("duplicate name", func() { r.Counter("test_dup_total", "") })
	v := r.CounterVec("test_lv_total", "", "a", "b")
	expectPanic("wrong label count", func() { v.With("only-one") })
	expectPanic("counter decrease", func() { v.With("x", "y").Add(-1) })
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	h := r.HistogramVec("test_conc_seconds", "", []float64{0.5}, "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.With("shared").Observe(float64(i%2) * 0.7)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.With("shared").Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.With("shared").Count())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	post, err := srv.Client().Post(srv.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{0.1, 0.2, 0.4, 0.8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 10 samples spread evenly through (0, 0.1]: every quantile stays in
	// the first bucket and interpolates linearly from 0.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i) * 0.01)
	}
	if got := h.Quantile(0.5); got != 0.05 {
		t.Fatalf("p50 = %v, want 0.05", got)
	}
	if got := h.Quantile(1); got != 0.1 {
		t.Fatalf("p100 = %v, want 0.1", got)
	}
	// Push 10 more into the (0.2, 0.4] bucket: p50 is now the first
	// bucket's upper bound, p75 lands mid-way through the third bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.3)
	}
	if got := h.Quantile(0.5); got != 0.1 {
		t.Fatalf("p50 after shift = %v, want 0.1", got)
	}
	if got, want := h.Quantile(0.75), 0.3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p75 = %v, want %v", got, want)
	}
	// Samples beyond the last bound clamp to it.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.99); got != 0.8 {
		t.Fatalf("p99 with +Inf mass = %v, want clamp to 0.8", got)
	}
	if got := h.Quantile(-1); got != 0 {
		t.Fatalf("negative q = %v, want 0", got)
	}
}

// TestHistogramQuantileEdgeCases pins the contract corners the feedback
// loops rely on — the rt cost estimator calls Quantile with whatever its
// configuration says: degenerate q values never panic and never return
// garbage, a single-bucket histogram interpolates within its only bound,
// and a histogram whose every observation overflowed the finite buckets
// clamps to the largest finite bound at any q.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// Every q on an empty histogram reports 0, including NaN and ±∞.
	h := r.Histogram("edge_empty_seconds", "h", []float64{0.1, 1})
	for _, q := range []float64{math.NaN(), math.Inf(-1), -0.5, 0, 0.5, 1, 2, math.Inf(1)} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}

	// With data: q=0 and NaN still report 0 (no rank to find), while q>1
	// clamps to q=1 rather than extrapolating past the distribution.
	h.Observe(0.05)
	h.Observe(0.05)
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}
	p100 := h.Quantile(1)
	if got := h.Quantile(2); got != p100 {
		t.Fatalf("Quantile(2) = %v, want the q=1 clamp %v", got, p100)
	}
	if got := h.Quantile(math.Inf(1)); got != p100 {
		t.Fatalf("Quantile(+Inf) = %v, want the q=1 clamp %v", got, p100)
	}

	// A single finite bucket interpolates linearly through (0, bound].
	s := r.Histogram("edge_single_seconds", "h", []float64{1})
	for i := 0; i < 4; i++ {
		s.Observe(0.5)
	}
	if got := s.Quantile(0.5); got != 0.5 {
		t.Fatalf("single-bucket p50 = %v, want 0.5", got)
	}
	if got := s.Quantile(1); got != 1 {
		t.Fatalf("single-bucket p100 = %v, want the bucket bound 1", got)
	}

	// All mass in the +Inf overflow bucket: the buckets have no
	// resolution there, so every q clamps to the largest finite bound.
	o := r.Histogram("edge_overflow_seconds", "h", []float64{0.1, 0.25})
	for i := 0; i < 8; i++ {
		o.Observe(100)
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := o.Quantile(q); got != 0.25 {
			t.Fatalf("overflow-only Quantile(%v) = %v, want clamp to 0.25", q, got)
		}
	}
}
