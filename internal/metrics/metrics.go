// Package metrics is a zero-dependency, Prometheus-compatible metrics
// registry for the serving stack: counters, gauges and histograms (plain
// or labeled), exposed in the Prometheus text exposition format v0.0.4
// via Registry.WriteText / Registry.Handler.
//
// Two design points matter for correctness of the observability story:
//
//   - Series can be *function-backed* (CounterVec.Func, GaugeVec.Func,
//     Registry.GaugeFunc): the sample value is read from an existing
//     source of truth at scrape time. The serving layer backs its
//     admission counters and occupancy gauges with the very atomics that
//     feed GET /v1/stats, so the two views can never disagree.
//
//   - All mutating operations (Counter.Add, Gauge.Set, Histogram.Observe)
//     are lock-free atomics, cheap enough to sit on the request hot path.
//
// Metric and label names are validated eagerly; constructing a metric
// with an invalid or duplicate name panics, because that is a programming
// error (mirroring prometheus.MustRegister).
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefBuckets returns the default latency histogram bucket upper bounds in
// seconds (the Prometheus client defaults): 5 ms .. 10 s.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// kind discriminates metric families for TYPE lines and rendering.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as one exposition page.
// The zero value is not usable; construct with NewRegistry. All methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric family: a name, HELP text, TYPE, declared label
// keys, and the labeled series created so far.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled sample stream within a family. Exactly one of
// {counter, gauge, histogram, fn} is set.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	fn          func() float64
}

// value reads a scalar series' current sample.
func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return s.counter.Value()
	default:
		return s.gauge.Value()
	}
}

// validName reports whether name is a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabel reports whether name is a legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*; no colons).
func validLabel(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// newFamily registers a family, panicking on invalid or duplicate names —
// both are programming errors, caught by any test that constructs the
// instrumented component.
func (r *Registry) newFamily(name, help string, k kind, buckets []float64, labels ...string) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic("metrics: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic("metrics: duplicate metric name " + name)
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    k,
		labels:  labels,
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// seriesKey joins label values into a map key. 0x1f (unit separator)
// cannot be confused with printable label values in practice; collisions
// would only merge series, never corrupt them.
func seriesKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x1f"
		}
		key += v
	}
	return key
}

// with returns the series for the given label values, creating it with
// mk on first use. A wrong label-value count panics.
func (f *family) with(values []string, mk func() *series) *series {
	if len(values) != len(f.labels) {
		panic("metrics: " + f.name + ": wrong number of label values")
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labelValues = append([]string(nil), values...)
	f.series[key] = s
	return s
}

// setFunc installs (or replaces) a function-backed series.
func (f *family) setFunc(fn func() float64, values []string) {
	if len(values) != len(f.labels) {
		panic("metrics: " + f.name + ": wrong number of label values")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[seriesKey(values)] = &series{
		labelValues: append([]string(nil), values...),
		fn:          fn,
	}
}

// snapshot returns the family's series sorted by label values, for
// deterministic exposition output.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.Unlock()
	return out
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing sample. The zero value is ready
// to use, but a Counter only appears on the exposition page once created
// through a Registry.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must not be negative (counters are monotonic).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a sample that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative values decrease the gauge).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution sample: cumulative bucket
// counts over configured upper bounds plus an implicit +Inf bucket, a
// running sum, and a count. Observe is lock-free.
type Histogram struct {
	upper  []float64 // sorted bucket upper bounds, +Inf excluded
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; len(upper) is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly within the
// bucket holding the target rank — the same estimate Prometheus's
// histogram_quantile computes. Targets landing in the +Inf bucket clamp
// to the largest finite bound (the resolution limit of the buckets), and
// an empty histogram reports 0. The estimate is approximate by
// construction; it is meant for feedback loops (e.g. admission cost
// estimates), not billing.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			if i == len(h.upper) {
				break // +Inf bucket: clamp below
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			return lo + (h.upper[i]-lo)*(rank-cum)/c
		}
		cum += c
	}
	if len(h.upper) == 0 {
		return 0
	}
	return h.upper[len(h.upper)-1]
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// normBuckets sorts, deduplicates and validates histogram bucket bounds,
// dropping a trailing +Inf (it is implicit). Empty input defaults to
// DefBuckets.
func normBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		return DefBuckets()
	}
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsNaN(b) {
			panic("metrics: NaN histogram bucket")
		}
		if math.IsInf(b, +1) {
			continue // +Inf is implicit
		}
		out = append(out, b)
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	if len(dedup) == 0 {
		return DefBuckets()
	}
	return dedup
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.newFamily(name, help, counterKind, nil)
	return f.with(nil, func() *series { return &series{counter: &Counter{}} }).counter
}

// CounterFunc registers a function-backed counter: fn is read at scrape
// time and must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.newFamily(name, help, counterKind, nil).setFunc(fn, nil)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.newFamily(name, help, gaugeKind, nil)
	return f.with(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a function-backed gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.newFamily(name, help, gaugeKind, nil).setFunc(fn, nil)
}

// Histogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (nil/empty defaults to DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.newFamily(name, help, histogramKind, normBuckets(buckets))
	return f.with(nil, func() *series { return &series{histogram: newHistogram(f.buckets)} }).histogram
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.newFamily(name, help, counterKind, nil, labels...)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() *series { return &series{counter: &Counter{}} }).counter
}

// Func installs a function-backed series for the given label values; fn
// is read at scrape time and must be monotonically non-decreasing.
// Reinstalling replaces the previous series.
func (v *CounterVec) Func(fn func() float64, values ...string) { v.f.setFunc(fn, values) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label keys.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.newFamily(name, help, gaugeKind, nil, labels...)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// Func installs a function-backed gauge for the given label values.
func (v *GaugeVec) Func(fn func() float64, values ...string) { v.f.setFunc(fn, values) }

// HistogramVec is a labeled histogram family; every series shares the
// family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with the given buckets
// (nil/empty defaults to DefBuckets) and label keys.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.newFamily(name, help, histogramKind, normBuckets(buckets), labels...)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() *series { return &series{histogram: newHistogram(v.f.buckets)} }).histogram
}
