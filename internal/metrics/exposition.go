package metrics

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Content-Type of the Prometheus text exposition
// format v0.0.4, served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text
// exposition format v0.0.4: families sorted by name, each preceded by its
// HELP and TYPE lines, series sorted by label values, histograms expanded
// into cumulative _bucket/_sum/_count samples.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, s := range f.snapshot() {
			if f.kind == histogramKind {
				writeHistogram(bw, f, s.histogram, s.labelValues)
				continue
			}
			bw.WriteString(f.name + labelString(f.labels, s.labelValues, "", "") +
				" " + formatValue(s.value()) + "\n")
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative le-labeled
// buckets (ending with +Inf), then _sum and _count.
func writeHistogram(w *bufio.Writer, f *family, h *Histogram, values []string) {
	cum := uint64(0)
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		w.WriteString(f.name + "_bucket" + labelString(f.labels, values, "le", formatValue(upper)) +
			" " + strconv.FormatUint(cum, 10) + "\n")
	}
	cum += h.counts[len(h.upper)].Load()
	w.WriteString(f.name + "_bucket" + labelString(f.labels, values, "le", "+Inf") +
		" " + strconv.FormatUint(cum, 10) + "\n")
	w.WriteString(f.name + "_sum" + labelString(f.labels, values, "", "") +
		" " + formatValue(h.Sum()) + "\n")
	w.WriteString(f.name + "_count" + labelString(f.labels, values, "", "") +
		" " + strconv.FormatUint(h.count.Load(), 10) + "\n")
}

// labelString renders a {k="v",...} label block in declared label order,
// with an optional extra trailing label (the histogram le). Returns ""
// when there are no labels at all.
func labelString(labels, values []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b bytes.Buffer
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value; integral values come out without an
// exponent or decimal point, as Prometheus emits them.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	var b bytes.Buffer
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeLabel escapes backslashes, double quotes and newlines in label
// values.
func escapeLabel(s string) string {
	var b bytes.Buffer
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Handler returns an http.Handler serving the registry's exposition page
// (GET/HEAD; anything else is 405).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write(buf.Bytes())
	})
}
