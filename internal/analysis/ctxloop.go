package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxloopScope names the packages (by final import-path segment) whose
// loops must observe cancellation: the exact, ILP and LP search
// engines, the scheduling DP, and the online training loop (whose
// rounds run gradient steps between ctx checks). PR 1 plumbed
// deadline/cancel through the solver loops by hand; this pass keeps
// them honest.
var ctxloopScope = map[string]bool{"exact": true, "ilp": true, "lp": true, "online": true, "sched": true}

// ctxloopRun enforces the cancellation-reaches-every-search-loop
// invariant. In scope are functions that bear a cancellation signal: a
// context.Context parameter, or a receiver whose struct carries a
// context.Context or cancel-channel (<-chan struct{}) field, in the
// ctxloopScope packages. Every while-shaped loop in such a function —
// `for { ... }` or `for cond { ... }`, the shape of pivot, search and
// retry loops — must, somewhere in its body, check ctx.Err()/ctx.Done(),
// receive from a cancel channel, forward the context or cancel channel
// to a callee, or call a same-package function that (transitively)
// does one of those. Range loops and three-clause counted loops are
// bounded by their operand and exempt.
func ctxloopRun(u *Unit) []Diagnostic {
	if !ctxloopScope[lastSegment(u.Path)] {
		return nil
	}

	// Phase 1: which functions in this package observe cancellation,
	// directly or by calling something that does?
	checks := make(map[types.Object]bool)
	callees := make(map[types.Object][]types.Object)
	var decls []*ast.FuncDecl
	for _, f := range u.Files {
		if isTestFile(u, f) {
			continue // test helpers are nosleeptest's domain
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			obj := u.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if containsDirectCheck(u, fd.Body) {
				checks[obj] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeObj(u.Info, call); callee != nil && callee.Pkg() == u.Pkg {
					callees[obj] = append(callees[obj], callee)
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, cs := range callees {
			if checks[obj] {
				continue
			}
			for _, c := range cs {
				if checks[c] {
					checks[obj] = true
					changed = true
					break
				}
			}
		}
	}

	// Phase 2: flag non-compliant while-shaped loops in ctx-bearing
	// functions.
	var diags []Diagnostic
	for _, fd := range decls {
		if !ctxBearing(u, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Init != nil || loop.Post != nil {
				return true
			}
			if !loopObservesCancel(u, checks, loop.Body) {
				diags = append(diags, diag(u, loop.For, "ctxloop",
					"loop in cancellation-bearing %s can outlive its context: check ctx.Err()/ctx.Done() (or a cancel channel) in the loop, or call something that does",
					fd.Name.Name))
			}
			return true
		})
	}
	return diags
}

// ctxBearing reports whether fd carries a cancellation signal: a
// context.Context or cancel-channel parameter, or a receiver whose
// struct type has such a field.
func ctxBearing(u *Unit, fd *ast.FuncDecl) bool {
	obj, ok := u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isContextType(t) || isCancelChan(t) {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					t := st.Field(i).Type()
					if isContextType(t) || isCancelChan(t) {
						return true
					}
				}
			}
		}
	}
	return false
}

// containsDirectCheck reports whether node directly observes or
// forwards a cancellation signal: a .Err()/.Done() call on a context,
// a receive from a cancel channel, or a call that passes a context or
// cancel channel along.
func containsDirectCheck(u *Unit, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
				if tv, ok := u.Info.Types[sel.X]; ok && isContextType(tv.Type) {
					found = true
					return false
				}
			}
			for _, arg := range n.Args {
				if tv, ok := u.Info.Types[arg]; ok && (isContextType(tv.Type) || isCancelChan(tv.Type)) {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if tv, ok := u.Info.Types[n.X]; ok && isCancelChan(tv.Type) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// loopObservesCancel reports whether a loop body contains a direct
// cancellation check or a call to a same-package function known
// (transitively) to perform one.
func loopObservesCancel(u *Unit, checks map[types.Object]bool, body ast.Node) bool {
	if containsDirectCheck(u, body) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeObj(u.Info, call); callee != nil && checks[callee] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
