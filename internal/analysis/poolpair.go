package analysis

import (
	"go/ast"
	"go/types"
)

// poolpairRun enforces the two sync.Pool invariants PR 5's hot-path
// arenas rely on:
//
//  1. Pairing: every pool.Get() has a guaranteed Put back — in the
//     same function (directly, deferred, or through a same-package
//     release helper that Puts). A function may instead return the
//     pooled object (a provider like acquireScratch), in which case
//     the package must contain a Put on that pool somewhere; a Get
//     whose object neither escapes nor is Put leaks warm scratch and
//     silently degrades the pool to an allocator.
//
//  2. Reset: a pool whose New constructs a package-local scratch
//     struct must give that struct a reset/Reset method, and the
//     package must call it — pooled scratch reused without a reset is
//     how one solve's state leaks into the next (the PR 5 bug class).
func poolpairRun(u *Unit) []Diagnostic {
	type poolCall struct {
		call *ast.CallExpr
		pool types.Object
	}

	// Gather every Get/Put site and which pools each function Puts to.
	putsIn := make(map[types.Object]map[types.Object]bool) // func -> pools it Puts
	packagePuts := make(map[types.Object]bool)
	type fnInfo struct {
		decl *ast.FuncDecl
		obj  types.Object
		gets []poolCall
		puts map[types.Object]bool
	}
	var fns []*fnInfo
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &fnInfo{decl: fd, obj: u.Info.Defs[fd.Name], puts: make(map[types.Object]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				callee := calleeObj(u.Info, call)
				switch {
				case methodOn(callee, "sync", "Pool", "Get"):
					fi.gets = append(fi.gets, poolCall{call: call, pool: rootObj(u.Info, sel.X)})
				case methodOn(callee, "sync", "Pool", "Put"):
					pool := rootObj(u.Info, sel.X)
					fi.puts[pool] = true
					packagePuts[pool] = true
				}
				return true
			})
			if fi.obj != nil {
				putsIn[fi.obj] = fi.puts
			}
			fns = append(fns, fi)
		}
	}

	var diags []Diagnostic
	for _, fi := range fns {
		if len(fi.gets) == 0 {
			continue
		}
		// Effective puts: direct ones plus any same-package release
		// helper this function calls (acquire/release split pattern).
		effective := make(map[types.Object]bool)
		for p := range fi.puts {
			effective[p] = true
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeObj(u.Info, call); callee != nil && callee.Pkg() == u.Pkg {
				for p := range putsIn[callee] {
					effective[p] = true
				}
			}
			return true
		})
		returned := returnedGetResults(u, fi.decl)
		for _, g := range fi.gets {
			switch {
			case g.pool != nil && effective[g.pool]:
				// paired locally or through a release helper
			case returned[g.call]:
				if g.pool != nil && !packagePuts[g.pool] {
					diags = append(diags, diag(u, g.call.Pos(), "poolpair",
						"%s returns this pool.Get() result but the package never Puts back to the pool",
						fi.decl.Name.Name))
				}
			default:
				diags = append(diags, diag(u, g.call.Pos(), "poolpair",
					"pool.Get() in %s has no guaranteed Put: defer a Put (or a release helper) on every path, or return the object from a provider",
					fi.decl.Name.Name))
			}
		}
	}

	diags = append(diags, poolResetDiags(u)...)
	return diags
}

// returnedGetResults reports which Get calls in fd have their result
// escape via a return statement: either returned directly
// (return pool.Get().(*T)) or assigned to a variable that a return
// mentions.
func returnedGetResults(u *Unit, fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	// Get call -> variable object(s) its result lands in.
	assigned := make(map[types.Object]*ast.CallExpr)
	getUnder := func(e ast.Expr) *ast.CallExpr {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		call, ok := e.(*ast.CallExpr)
		if !ok || !methodOn(calleeObj(u.Info, call), "sync", "Pool", "Get") {
			return nil
		}
		return call
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call := getUnder(as.Rhs[0])
		if call == nil || len(as.Lhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := u.Info.Defs[id]; obj != nil {
				assigned[obj] = call
			} else if obj := u.Info.Uses[id]; obj != nil {
				assigned[obj] = call
			}
		}
		return true
	})
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call := getUnder(res); call != nil {
				out[call] = true
			}
			// Only the object itself escaping counts: `return sc` is a
			// provider, `return sc.n` still strands the scratch.
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if call, ok := assigned[u.Info.Uses[id]]; ok {
					out[call] = true
				}
			}
		}
		return true
	})
	return out
}

// poolResetDiags checks the reset half of the invariant for every
// sync.Pool composite literal whose New returns a pointer to a named
// struct declared in this package.
func poolResetDiags(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := u.Info.Types[cl]
			if !ok {
				return true
			}
			named := namedOf(tv.Type)
			if named == nil || named.Obj().Name() != "Pool" ||
				named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
				return true
			}
			elem := poolElemType(u, cl)
			if elem == nil || elem.Obj().Pkg() != u.Pkg {
				return true
			}
			if _, ok := elem.Underlying().(*types.Struct); !ok {
				return true // buffers and slices have no state to reset
			}
			reset := lookupMethod(elem, "reset")
			if reset == nil {
				reset = lookupMethod(elem, "Reset")
			}
			if reset == nil {
				diags = append(diags, diag(u, cl.Pos(), "poolpair",
					"pooled scratch type %s has no reset/Reset method; pooled state must be cleared before reuse",
					elem.Obj().Name()))
				return true
			}
			if !methodCalled(u, reset) {
				diags = append(diags, diag(u, cl.Pos(), "poolpair",
					"pooled scratch type %s has %s but this package never calls it; reset must run before reuse",
					elem.Obj().Name(), reset.Name()))
			}
			return true
		})
	}
	return diags
}

// poolElemType extracts the named type a pool's New constructor
// returns, unwrapping the pointer.
func poolElemType(u *Unit, pool *ast.CompositeLit) *types.Named {
	for _, el := range pool.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
			continue
		}
		fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit)
		if !ok {
			return nil
		}
		var elem *types.Named
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 || elem != nil {
				return true
			}
			if tv, ok := u.Info.Types[ret.Results[0]]; ok {
				elem = namedOf(tv.Type)
			}
			return true
		})
		return elem
	}
	return nil
}

// lookupMethod finds a method by exact name on *T.
func lookupMethod(named *types.Named, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}

// methodCalled reports whether the unit contains a call to fn.
func methodCalled(u *Unit, fn *types.Func) bool {
	for _, f := range u.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeObj(u.Info, call) == fn {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
