// Package analysis is the repo's zero-dependency invariant analyzer:
// a go/ast + go/types driver (standard library only — no x/tools) that
// loads every package in the module and runs a suite of repo-aware
// passes over them. Each pass mechanically enforces a correctness
// invariant that an earlier PR established by hand:
//
//   - ctxloop: solver search loops must observe context cancellation
//   - atomicfield: a field accessed atomically anywhere is accessed
//     atomically everywhere
//   - nosleeptest: tests poll or inject clocks; they never time.Sleep
//   - poolpair: sync.Pool Gets are paired with Puts and pooled scratch
//     types expose and call a reset
//   - metriconce: metric families register once, with closed label sets
//
// The driver is exercised by cmd/respect-lint and gated in CI; see
// docs/development.md for each pass's exact rule and suppression
// syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a resolved source position, the pass that
// produced it, and a human-readable message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Pass names the pass that produced the finding (or "suppress" for
	// malformed //lint:ignore comments, which the driver itself flags).
	Pass string
	// Msg describes the violated invariant.
	Msg string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Msg)
}

// Pass is one invariant analyzer. Exactly one of Run (per-unit) and
// RunModule (whole-module, for cross-package facts) is set.
type Pass struct {
	// Name is the pass's identifier, used by -passes and //lint:ignore.
	Name string
	// Doc is a one-line description printed by respect-lint -list.
	Doc string
	// Run analyzes a single Unit.
	Run func(*Unit) []Diagnostic
	// RunModule analyzes all loaded Units together; passes that relate
	// facts across packages (atomicfield) use this form.
	RunModule func([]*Unit) []Diagnostic
}

// Passes returns every registered pass in name order.
func Passes() []*Pass {
	return []*Pass{
		{
			Name:      "atomicfield",
			Doc:       "fields accessed via sync/atomic anywhere must never be read or written plainly elsewhere",
			RunModule: atomicfieldModule,
		},
		{
			Name: "ctxloop",
			Doc:  "search loops in context-bearing solver functions must observe cancellation",
			Run:  ctxloopRun,
		},
		{
			Name: "metriconce",
			Doc:  "metric families register exactly once with constant names and closed label sets",
			Run:  metriconceRun,
		},
		{
			Name: "nosleeptest",
			Doc:  "no time.Sleep in _test.go files or the perf harness; poll with a deadline or inject a clock",
			Run:  nosleeptestRun,
		},
		{
			Name: "poolpair",
			Doc:  "every sync.Pool.Get is paired with a Put and pooled scratch types expose and call a reset",
			Run:  poolpairRun,
		},
	}
}

// PassByName returns the named pass, or nil.
func PassByName(name string) *Pass {
	for _, p := range Passes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// suppressPass is the pseudo-pass name under which the driver reports
// malformed //lint:ignore comments. It is not itself suppressible.
const suppressPass = "suppress"

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file string
	line int
	pass string
}

// collectSuppressions scans every comment in the units for
// //lint:ignore directives. A well-formed directive names a pass and
// gives a non-empty reason:
//
//	//lint:ignore nosleeptest simulated solver latency, bounded by the test deadline
//
// and suppresses that pass's diagnostics on the comment's own line and
// the line directly below it (covering both trailing and standalone
// placement). A directive with no reason, or naming an unknown pass,
// is itself a diagnostic — the reason is the point.
func collectSuppressions(units []*Unit) (map[suppression]bool, []Diagnostic) {
	sup := make(map[suppression]bool)
	var diags []Diagnostic
	seen := make(map[string]bool) // file paths already scanned (units can share files)
	for _, u := range units {
		for _, f := range u.Files {
			name := u.Filename(f.Package)
			if seen[name] {
				continue
			}
			seen[name] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
					if !ok {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{
							Pos: pos, Pass: suppressPass,
							Msg: "//lint:ignore needs a pass name and a reason: //lint:ignore <pass> <why this is safe>",
						})
						continue
					}
					if PassByName(fields[0]) == nil {
						diags = append(diags, Diagnostic{
							Pos: pos, Pass: suppressPass,
							Msg: fmt.Sprintf("//lint:ignore names unknown pass %q (run respect-lint -list)", fields[0]),
						})
						continue
					}
					sup[suppression{file: pos.Filename, line: pos.Line, pass: fields[0]}] = true
					sup[suppression{file: pos.Filename, line: pos.Line + 1, pass: fields[0]}] = true
				}
			}
		}
	}
	return sup, diags
}

// Run executes the passes over the units, applies //lint:ignore
// suppressions, and returns the surviving diagnostics in position
// order.
func Run(units []*Unit, passes []*Pass) []Diagnostic {
	var raw []Diagnostic
	for _, p := range passes {
		if p.Run != nil {
			for _, u := range units {
				raw = append(raw, p.Run(u)...)
			}
		}
		if p.RunModule != nil {
			raw = append(raw, p.RunModule(units)...)
		}
	}
	sup, diags := collectSuppressions(units)
	for _, d := range raw {
		if sup[suppression{file: d.Pos.Filename, line: d.Pos.Line, pass: d.Pass}] {
			continue
		}
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return diags
}

// diag builds a Diagnostic at pos within u.
func diag(u *Unit, pos token.Pos, pass, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: u.Fset.Position(pos), Pass: pass, Msg: fmt.Sprintf(format, args...)}
}

// lastSegment returns the final slash-separated element of an import
// path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isTestFile reports whether the file containing pos is a _test.go
// file.
func isTestFile(u *Unit, f *ast.File) bool {
	return strings.HasSuffix(u.Filename(f.Package), "_test.go")
}
