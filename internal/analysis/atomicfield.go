package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicFns are the sync/atomic function-name prefixes that take an
// address and make the pointed-to field part of an atomic access
// protocol.
var atomicFnPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

// isAtomicFn reports whether obj is one of sync/atomic's functions
// operating through a pointer (AddInt64, LoadUint32, ...).
func isAtomicFn(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFnPrefixes {
		if strings.HasPrefix(obj.Name(), p) {
			return true
		}
	}
	return false
}

// atomicfieldModule enforces the all-or-nothing atomic access
// invariant across the whole module: once any code passes &x.f to a
// sync/atomic function, every other read or write of that field must
// go through sync/atomic too — a single plain access is a data race
// (this is exactly the bug class the function-backed metrics in
// internal/serve and internal/rt invite, fixed by hand in PR 3 and
// PR 7; the repo's cure is usually the atomic.Int64-style types, which
// make non-atomic access inexpressible). Fields are matched by their
// declaration position, which is stable across the plain and
// test-augmented type-checks of a package. Known limitation: an
// address that flows through an intermediate pointer variable before
// reaching sync/atomic is not tracked.
func atomicfieldModule(units []*Unit) []Diagnostic {
	// Phase 1: every field whose address reaches a sync/atomic call,
	// and the exact selector nodes used inside those calls (exempt from
	// phase 2).
	type fieldInfo struct {
		name  string
		where token.Position // one atomic call site, for the message
	}
	atomicFields := make(map[token.Pos]fieldInfo)
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFn(calleeObj(u.Info, call)) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					s, ok := u.Info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						continue
					}
					obj := s.Obj()
					if _, seen := atomicFields[obj.Pos()]; !seen {
						atomicFields[obj.Pos()] = fieldInfo{
							name:  obj.Name(),
							where: u.Fset.Position(call.Pos()),
						}
					}
					exempt[sel] = true
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: any other selection of those fields is a plain access.
	var diags []Diagnostic
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || exempt[sel] {
					return true
				}
				s, ok := u.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				fi, ok := atomicFields[s.Obj().Pos()]
				if !ok || fi.name != s.Obj().Name() {
					return true
				}
				diags = append(diags, diag(u, sel.Sel.Pos(), "atomicfield",
					"field %s is accessed via sync/atomic (e.g. %s:%d) but read or written plainly here; every access must be atomic",
					fi.name, fi.where.Filename, fi.where.Line))
				return true
			})
		}
	}
	return diags
}
