// Package other is the ctxloop near-miss: the same loop shapes
// outside the scoped solver packages (exact/ilp/lp/sched) produce no
// findings.
package other

import "context"

func spinNoCheck(ctx context.Context, step func() bool) {
	for {
		if step() {
			return
		}
	}
}
