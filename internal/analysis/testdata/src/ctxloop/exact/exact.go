// Package exact is a ctxloop fixture: its import path ends in a
// scoped solver segment, so while-shaped loops in cancellation-bearing
// functions must observe ctx.
package exact

import "context"

func spinNoCheck(ctx context.Context, step func() bool) {
	for { // want `loop in cancellation-bearing spinNoCheck can outlive its context`
		if step() {
			return
		}
	}
}

func spinChecked(ctx context.Context, step func() bool) {
	for {
		if ctx.Err() != nil {
			return
		}
		if step() {
			return
		}
	}
}

func spinForwards(ctx context.Context, step func(context.Context) bool) {
	for {
		if step(ctx) {
			return
		}
	}
}

func spinSelects(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-work:
		}
	}
}

func cancelChan(cancel <-chan struct{}, step func() bool) {
	for {
		select {
		case <-cancel:
			return
		default:
		}
		if step() {
			return
		}
	}
}

func boundedScan(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // range loops are bounded by their operand: no finding
		total += x
	}
	for i := 0; i < len(xs); i++ { // counted loops too
		total += xs[i]
	}
	return total
}

// search models the exact solver's shape: the context lives on the
// receiver and budget checks happen in a helper.
type search struct {
	ctx  context.Context
	done bool
}

func (s *search) budget() bool { return s.ctx != nil && s.ctx.Err() != nil }

func (s *search) run(step func()) {
	for !s.done { // compliant: budget() transitively checks s.ctx
		if s.budget() {
			return
		}
		step()
	}
}

func (s *search) runBlind(step func()) {
	for !s.done { // want `loop in cancellation-bearing runBlind can outlive its context`
		step()
	}
}
