// Package metrics is a miniature stand-in for respect/internal/metrics:
// the metriconce pass matches registries and vec handles by final
// import-path segment and type name, so fixtures model the real API
// shape without importing the real package.
package metrics

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

type CounterVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

func (v *CounterVec) Func(fn func() float64, values ...string) {}
