// Package app fixtures metriconce: duplicate family registrations,
// non-constant family names, and fmt-built label values are findings;
// distinct constant names and closed label sets are not.
package app

import (
	"fmt"

	"metriconce/metrics"
)

const familyName = "requests_total"

func register(r *metrics.Registry, dynamic string) {
	r.Counter(familyName, "total requests")
	r.Counter("errors_total", "errors")
	r.Counter(familyName, "duplicate") // want `exactly once per registry`
	r.Counter(dynamic, "who knows")    // want `compile-time constant`
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 0 })
}

func labels(v *metrics.CounterVec, id int, class string) {
	v.With(class).Inc()
	v.With("interactive").Inc()
	v.With(fmt.Sprintf("user-%d", id)).Inc() // want `unbounded cardinality`
	v.Func(func() float64 { return 0 }, class)
}
