// Package poolpair fixtures the sync.Pool pairing and reset rules:
// Gets need a guaranteed Put (locally, via a release helper, or by a
// provider whose package Puts), and pooled scratch structs need a
// reset that the package actually calls.
package poolpair

import "sync"

// scratch is the well-behaved pooled type: reset exists and is called.
type scratch struct{ buf []int }

func (s *scratch) reset() { s.buf = s.buf[:0] }

var good = sync.Pool{New: func() any { return new(scratch) }}

func pairedUse(n int) int {
	sc := good.Get().(*scratch)
	defer good.Put(sc)
	sc.reset()
	sc.buf = append(sc.buf, n)
	return sc.buf[0]
}

// acquire/release split: the provider returns the object and the
// package Puts it back in release.
func acquire() *scratch { return good.Get().(*scratch) }

func release(sc *scratch) {
	sc.reset()
	good.Put(sc)
}

func helperUse(n int) int {
	sc := acquire()
	defer release(sc)
	sc.buf = append(sc.buf, n)
	return sc.buf[0]
}

// leaky Gets without any Put on any path.
type leaky struct{ n int }

func (l *leaky) reset() { l.n = 0 }

var leakPool = sync.Pool{New: func() any { return new(leaky) }}

func leakyUse() int {
	l := leakPool.Get().(*leaky) // want `no guaranteed Put`
	l.reset()
	return l.n
}

func leakRepaid(l *leaky) { leakPool.Put(l) }

// orphanPool's provider escapes its Get but nothing in the package
// ever Puts to the pool.
type orphan struct{ n int }

func (o *orphan) reset() { o.n = 0 }

var orphanPool = sync.Pool{New: func() any { return new(orphan) }}

func provideOrphan() *orphan {
	o := orphanPool.Get().(*orphan) // want `the package never Puts back`
	o.reset()
	return o
}

// stale has no reset at all.
type stale struct{ n int }

var stalePool = sync.Pool{New: func() any { return new(stale) }} // want `has no reset/Reset method`

func staleUse() int {
	s := stalePool.Get().(*stale)
	defer stalePool.Put(s)
	return s.n
}

// unwiped has a reset the package never calls.
type unwiped struct{ n int }

func (u *unwiped) reset() { u.n = 0 }

var unwipedPool = sync.Pool{New: func() any { return new(unwiped) }} // want `never calls it`

func unwipedUse() int {
	v := unwipedPool.Get().(*unwiped)
	defer unwipedPool.Put(v)
	return v.n
}

// bufPool's element is a slice, not a scratch struct: no reset
// demanded (the near miss for the reset rule).
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func bufUse() int {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	return cap(b)
}
