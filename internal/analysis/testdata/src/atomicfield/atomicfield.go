// Package atomicfield fixtures the all-or-nothing atomic access rule:
// once a field's address reaches sync/atomic, plain reads and writes
// of it anywhere are findings; fields never touched atomically stay
// free.
package atomicfield

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
}

func (c *counters) hit() { atomic.AddInt64(&c.hits, 1) }

func (c *counters) load() int64 { return atomic.LoadInt64(&c.hits) }

func (c *counters) snapshot() int64 {
	return c.hits // want `field hits is accessed via sync/atomic`
}

func (c *counters) clear() {
	c.hits = 0 // want `field hits is accessed via sync/atomic`
	c.misses = 0
}

// misses is only ever accessed plainly — the near miss stays clean.
func (c *counters) missed() int64 { return c.misses }
