// Package app fixtures nosleeptest: sleeps in test files are
// findings; production code (this file) is out of scope.
package app

import "time"

func nap() { time.Sleep(time.Millisecond) }
