package app

import (
	"testing"
	"time"
)

type fakeClock struct{}

func (fakeClock) Sleep(time.Duration) {}

func TestSleeps(t *testing.T) {
	time.Sleep(time.Millisecond) // want `time.Sleep in test code`
}

func TestFakeClock(t *testing.T) {
	var c fakeClock
	c.Sleep(time.Millisecond) // near miss: a Sleep method is not time.Sleep
	nap()                     // calling production code that sleeps is not a test sleep
}
