// Package perf fixtures the harness extension of nosleeptest: the
// perf package's non-test files are measurement code, so sleeps there
// are findings too.
package perf

import "time"

func settle() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep in test code`
}
