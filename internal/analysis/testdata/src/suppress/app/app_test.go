// Package app fixtures the //lint:ignore machinery: a well-formed
// suppression (pass + reason) silences a finding on its own line or
// the line below; a missing reason or unknown pass name is itself a
// finding and suppresses nothing.
package app

import (
	"testing"
	"time"
)

func TestSuppressedStandalone(t *testing.T) {
	//lint:ignore nosleeptest fixture: poll interval, bounded by the test deadline
	time.Sleep(time.Millisecond)
}

func TestSuppressedTrailing(t *testing.T) {
	time.Sleep(time.Millisecond) //lint:ignore nosleeptest fixture: trailing placement works too
}

func TestNoReason(t *testing.T) {
	//lint:ignore nosleeptest
	time.Sleep(time.Millisecond)
}

func TestUnknownPass(t *testing.T) {
	//lint:ignore nosuchpass the pass name is wrong
	time.Sleep(time.Millisecond)
}
