package analysis

import (
	"go/ast"
	"go/types"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isCancelChan reports whether t is a receivable chan struct{} — the
// cancellation-channel idiom (lp.Opts.Cancel, ctx.Done()'s type).
func isCancelChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// calleeObj resolves the object a call expression invokes: the
// function or method object, or nil for indirect calls through
// function values and conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// namedOf unwraps pointers and returns the named type beneath t, or
// nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodOn reports whether obj is a method named name on the named
// type typeName declared in a package whose import path ends with the
// segment pkgSeg. Matching by final path segment lets the fixture
// packages stand in for the real internal packages.
func methodOn(obj types.Object, pkgSeg, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	tobj := named.Obj()
	return tobj.Name() == typeName && tobj.Pkg() != nil && lastSegment(tobj.Pkg().Path()) == pkgSeg
}

// rootObj resolves the variable or field a pool (or any receiver)
// expression denotes: the Ident's object, a field selection's field
// object, or nil when the expression is too dynamic to name.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[e.Sel] // package-qualified variable
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	}
	return nil
}
