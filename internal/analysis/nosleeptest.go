package analysis

import (
	"go/ast"
)

// nosleeptestExtraPkgs are non-test packages held to the no-sleep rule
// anyway (by final import-path segment): the perf harness is
// measurement code whose sleeps would be timing slack in every
// benchmark that embeds it.
var nosleeptestExtraPkgs = map[string]bool{"perf": true}

// nosleeptestRun bans time.Sleep from test code. PR 8 deflaked every
// sleep-based assertion in the tree (injectable clocks, gated
// backends, channel-proven states); this pass pins that work forever:
// a test that sleeps is either wasting wall-clock or encoding a timing
// assumption that will flake under -race on a loaded CI runner.
// Besides _test.go files, the rule covers all of internal/perf — the
// benchmark harness runs inside timed regions where a sleep is
// measurement error. Poll intervals inside deadline-bounded wait loops
// are the one legitimate use; they carry a //lint:ignore with a
// reason.
func nosleeptestRun(u *Unit) []Diagnostic {
	wholePkg := nosleeptestExtraPkgs[lastSegment(u.Path)]
	var diags []Diagnostic
	for _, f := range u.Files {
		if !wholePkg && !isTestFile(u, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(calleeObj(u.Info, call), "time", "Sleep") {
				diags = append(diags, diag(u, call.Pos(), "nosleeptest",
					"time.Sleep in test code: poll with a deadline or inject a clock (rt.Clock) instead"))
			}
			return true
		})
	}
	return diags
}
