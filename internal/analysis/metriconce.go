package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// registryMethods are the metrics.Registry methods that register a new
// family; the first argument is the family name.
var registryMethods = map[string]bool{
	"Counter": true, "CounterFunc": true, "CounterVec": true,
	"Gauge": true, "GaugeFunc": true, "GaugeVec": true,
	"Histogram": true, "HistogramVec": true,
}

// vecTypes are the labeled family handles whose With/Func calls take
// label values.
var vecTypes = map[string]bool{"CounterVec": true, "GaugeVec": true, "HistogramVec": true}

// labelBuilders are the formatting functions that mint unbounded label
// values; a label built by one of these opens a cardinality leak.
var labelBuilders = map[string]map[string]bool{
	"fmt":     {"Sprint": true, "Sprintf": true, "Sprintln": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Quote": true},
}

// metriconceRun enforces the metric-registration discipline the
// observability layer (PR 3) was built around:
//
//   - family names passed to Registry.Counter/Gauge/Histogram/…Vec/
//     …Func must be compile-time constant strings, so the exposition
//     surface is auditable statically;
//   - the same family name must not be registered at more than one
//     call site in a package — Registry panics on duplicate names at
//     runtime, and two sites registering one name means either a
//     double registration on a shared registry or two metrics fighting
//     over a name;
//   - label values passed to a Vec's With/Func must not be built by
//     fmt/strconv at the call site — formatted label values are how a
//     closed label set silently becomes per-request cardinality.
//
// Test files are exempt: tests register throwaway names against
// throwaway registries. The pass matches the metrics package by its
// final import-path segment so fixtures can model it.
func metriconceRun(u *Unit) []Diagnostic {
	var diags []Diagnostic
	type site struct {
		pos  ast.Node
		name string
	}
	byName := make(map[string][]site)
	for _, f := range u.Files {
		if isTestFile(u, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(u.Info, call)
			switch {
			case isRegistryMethod(callee):
				if len(call.Args) == 0 {
					return true
				}
				name, isConst := constString(u, call.Args[0])
				if !isConst {
					diags = append(diags, diag(u, call.Args[0].Pos(), "metriconce",
						"metric family name must be a compile-time constant string so the exposition surface is statically auditable"))
					return true
				}
				byName[name] = append(byName[name], site{pos: call, name: name})
			case isVecLabelMethod(callee):
				args := call.Args
				if callee.Name() == "Func" && len(args) > 0 {
					args = args[1:] // first arg is the sample callback
				}
				for _, a := range args {
					if pkg, fn, ok := builderCall(u, a); ok {
						diags = append(diags, diag(u, a.Pos(), "metriconce",
							"label value built with %s.%s: formatted labels are unbounded cardinality; use a closed, constant label set", pkg, fn))
					}
				}
			}
			return true
		})
	}
	for name, sites := range byName {
		if len(sites) < 2 {
			continue
		}
		first := u.Fset.Position(sites[0].pos.Pos())
		for _, s := range sites[1:] {
			diags = append(diags, diag(u, s.pos.Pos(), "metriconce",
				"metric family %q is also registered at %s:%d; a family registers exactly once per registry (Registry panics on duplicates)",
				name, first.Filename, first.Line))
		}
	}
	return diags
}

// isRegistryMethod reports whether obj is a family-registering method
// on a metrics Registry.
func isRegistryMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || !registryMethods[fn.Name()] {
		return false
	}
	return methodOn(obj, "metrics", "Registry", fn.Name())
}

// isVecLabelMethod reports whether obj is With or Func on a labeled
// family handle.
func isVecLabelMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || (fn.Name() != "With" && fn.Name() != "Func") {
		return false
	}
	for t := range vecTypes {
		if methodOn(obj, "metrics", t, fn.Name()) {
			return true
		}
	}
	return false
}

// constString evaluates e as a compile-time string constant.
func constString(u *Unit, e ast.Expr) (string, bool) {
	tv, ok := u.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// builderCall reports whether e is a direct call to a fmt/strconv
// value formatter.
func builderCall(u *Unit, e ast.Expr) (pkg, fn string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	obj := calleeObj(u.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	fns, ok := labelBuilders[obj.Pkg().Path()]
	if !ok || !fns[obj.Name()] {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}
