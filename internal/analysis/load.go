package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one analyzable package: its parsed syntax, its type
// information, and its identity. Test files are part of the unit —
// in-package _test.go files are type-checked together with the package
// proper (the "augmented" package, exactly as `go test` compiles it),
// and an external foo_test package becomes its own Unit whose Path
// carries the "_test" suffix.
type Unit struct {
	// Path is the unit's import path ("respect/internal/serve");
	// external test packages carry a "_test" suffix.
	Path string
	// Dir is the directory the unit's files live in.
	Dir string
	// Fset is the file set all Pos values in the unit resolve against.
	Fset *token.FileSet
	// Files is the unit's parsed syntax, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the unit's type-checking results (uses, defs,
	// selections, expression types).
	Info *types.Info
}

// Filename returns the name of the file containing pos.
func (u *Unit) Filename(pos token.Pos) string {
	return u.Fset.Position(pos).Filename
}

// Loader parses and type-checks the module's packages using only the
// standard library: go/parser for syntax, go/types with the source
// importer for types. Module-internal imports are resolved by the
// Loader itself (mapping "respect/..." paths onto the module tree);
// everything else (the standard library) is delegated to the source
// importer. A Loader memoizes type-checked packages, so loading the
// whole module type-checks each package once.
type Loader struct {
	// Fset is the shared file set for every package the Loader touches.
	Fset *token.FileSet
	// FixtureRoot, when set, resolves import paths that are not under
	// the module path against this directory instead — the fixture
	// harness points it at internal/analysis/testdata/src so fixture
	// packages can import each other and be loaded under short,
	// scope-meaningful import paths.
	FixtureRoot string

	root    string // module root directory (holds go.mod)
	module  string // module path declared in go.mod
	std     types.Importer
	plain   map[string]*types.Package // import path -> non-test package
	loading map[string]bool           // cycle guard
	parsed  map[string][]*ast.File    // dir -> parsed files, sorted by name
}

// NewLoader returns a Loader rooted at the module directory root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    abs,
		module:  mod,
		std:     importer.ForCompiler(fset, "source", nil),
		plain:   make(map[string]*types.Package),
		loading: make(map[string]bool),
		parsed:  make(map[string][]*ast.File),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// Root returns the module root directory the Loader resolves against.
func (l *Loader) Root() string { return l.root }

// dirFor maps an import path to a directory the Loader owns, or
// reports that the path belongs to the standard library.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// importPathFor inverts dirFor: the import path a directory is loaded
// under.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if l.FixtureRoot != "" {
		if rel, err := filepath.Rel(l.FixtureRoot, abs); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel), nil
		}
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside the module root %s", dir, l.root)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses (and memoizes) every .go file directly inside dir,
// returning the files sorted by name.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	if files, ok := l.parsed[dir]; ok {
		return files, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	l.parsed[dir] = files
	return files, nil
}

// partition splits a directory's files into the package proper, its
// in-package test files, and its external (foo_test) test files.
func (l *Loader) partition(files []*ast.File) (nonTest, inTest, extTest []*ast.File) {
	for _, f := range files {
		name := l.Fset.Position(f.Package).Filename
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			nonTest = append(nonTest, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return nonTest, inTest, extTest
}

// newInfo returns an Info with every map the passes consult allocated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// check type-checks files as package path with the given importer,
// tolerating nothing: the first type error aborts the load, because
// analyzing ill-typed syntax produces junk diagnostics.
func (l *Loader) check(path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := newInfo()
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return pkg, info, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	return pkg, info, nil
}

// Import resolves an import for the type checker: module-internal (and
// fixture) paths are type-checked from source by the Loader itself,
// everything else is delegated to the standard library's source
// importer. Only a package's non-test files are visible to importers,
// matching the go tool.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.plain[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	nonTest, _, _ := l.partition(files)
	if len(nonTest) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	pkg, _, err := l.check(path, nonTest, l)
	if err != nil {
		return nil, err
	}
	l.plain[path] = pkg
	return pkg, nil
}

// selfImporter resolves an external test package's import of the
// package under test to the augmented package (including in-package
// test files such as export_test.go), the way `go test` links it.
type selfImporter struct {
	l    *Loader
	path string
	self *types.Package
}

// Import implements types.Importer.
func (s selfImporter) Import(path string) (*types.Package, error) {
	if path == s.path {
		return s.self, nil
	}
	return s.l.Import(path)
}

// LoadDir loads the package in dir as one or two Units: the augmented
// package (sources plus in-package test files) and, when present, the
// external foo_test package.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	nonTest, inTest, extTest := l.partition(files)
	aug := append(append([]*ast.File(nil), nonTest...), inTest...)
	if len(aug) == 0 && len(extTest) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var units []*Unit
	var augPkg *types.Package
	if len(aug) > 0 {
		pkg, info, err := l.check(path, aug, l)
		if err != nil {
			return nil, err
		}
		augPkg = pkg
		units = append(units, &Unit{Path: path, Dir: dir, Fset: l.Fset, Files: aug, Pkg: pkg, Info: info})
	}
	if len(extTest) > 0 {
		imp := types.Importer(l)
		if augPkg != nil {
			imp = selfImporter{l: l, path: path, self: augPkg}
		}
		pkg, info, err := l.check(path+"_test", extTest, imp)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Path: path + "_test", Dir: dir, Fset: l.Fset, Files: extTest, Pkg: pkg, Info: info})
	}
	return units, nil
}

// LoadModule walks the module tree and loads every package in it,
// skipping testdata directories (they hold deliberate fixture
// violations) and hidden directories. Units come back in deterministic
// (path-sorted) order.
func (l *Loader) LoadModule() ([]*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = compactStrings(dirs)
	var units []*Unit
	for _, dir := range dirs {
		us, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// compactStrings removes adjacent duplicates from a sorted slice.
func compactStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
