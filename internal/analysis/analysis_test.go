package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One Loader for the whole test binary: the source importer's
// type-checked stdlib is the expensive part, and it is shared across
// every fixture.
var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := repoRoot()
		if err != nil {
			loaderErr = err
			return
		}
		sharedL, loaderErr = NewLoader(root)
		if loaderErr != nil {
			return
		}
		abs, err := filepath.Abs(filepath.Join("testdata", "src"))
		if err != nil {
			loaderErr = err
			return
		}
		sharedL.FixtureRoot = abs
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return sharedL
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above test working directory")
		}
		dir = parent
	}
}

// wantRE matches the fixture expectation syntax: // want `regexp`
var wantRE = regexp.MustCompile("// want `([^`]+)`")

// expectation is one // want comment: a diagnostic of the pass under
// test must land on its line with a message matching re.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// fixtureExpectations scans a unit's comments for want directives.
func fixtureExpectations(t *testing.T, u *Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// runFixture loads the fixture package at testdata/src/rel, runs the
// named pass over it, and checks the diagnostics against the // want
// comments: every want must be matched by a diagnostic on its line,
// and every diagnostic must be claimed by a want.
func runFixture(t *testing.T, passName, rel string) {
	t.Helper()
	l := fixtureLoader(t)
	units, err := l.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	pass := PassByName(passName)
	if pass == nil {
		t.Fatalf("no pass %q", passName)
	}
	var got []Diagnostic
	for _, u := range units {
		if pass.Run != nil {
			got = append(got, pass.Run(u)...)
		}
	}
	if pass.RunModule != nil {
		got = append(got, pass.RunModule(units)...)
	}
	var wants []*expectation
	for _, u := range units {
		wants = append(wants, fixtureExpectations(t, u)...)
	}
	for _, d := range got {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Msg) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestCtxloopFixtures(t *testing.T) {
	runFixture(t, "ctxloop", "ctxloop/exact")
	runFixture(t, "ctxloop", "ctxloop/other")
}

func TestAtomicfieldFixtures(t *testing.T) {
	runFixture(t, "atomicfield", "atomicfield")
}

func TestNosleeptestFixtures(t *testing.T) {
	runFixture(t, "nosleeptest", "nosleeptest/app")
	runFixture(t, "nosleeptest", "nosleeptest/perf")
}

func TestPoolpairFixtures(t *testing.T) {
	runFixture(t, "poolpair", "poolpair")
}

func TestMetriconceFixtures(t *testing.T) {
	runFixture(t, "metriconce", "metriconce/app")
}

// TestSuppressions drives the full Run pipeline over the suppression
// fixture: well-formed //lint:ignore comments (standalone and
// trailing) silence their findings; a missing reason or an unknown
// pass name is reported by the driver and suppresses nothing.
func TestSuppressions(t *testing.T) {
	l := fixtureLoader(t)
	units, err := l.LoadDir(filepath.Join("testdata", "src", "suppress", "app"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(units, Passes())
	var suppressMsgs, sleepLines []int
	for _, d := range diags {
		switch d.Pass {
		case "suppress":
			suppressMsgs = append(suppressMsgs, d.Pos.Line)
		case "nosleeptest":
			sleepLines = append(sleepLines, d.Pos.Line)
		default:
			t.Errorf("unexpected pass %q: %s", d.Pass, d)
		}
	}
	if len(suppressMsgs) != 2 {
		t.Errorf("want 2 malformed-suppression findings (no reason, unknown pass), got %d: %v", len(suppressMsgs), diags)
	}
	// The two malformed suppressions leave their sleeps unsuppressed;
	// the two well-formed ones silence theirs.
	if len(sleepLines) != 2 {
		t.Errorf("want 2 surviving nosleeptest findings, got %d at lines %v", len(sleepLines), sleepLines)
	}
}

// TestPassRegistry pins the pass catalogue's shape: sorted unique
// names, one-line docs, and exactly one of Run/RunModule per pass —
// respect-lint -list and //lint:ignore validation both key off it.
func TestPassRegistry(t *testing.T) {
	passes := Passes()
	if len(passes) < 5 {
		t.Fatalf("want at least 5 passes, got %d", len(passes))
	}
	for i, p := range passes {
		if p.Name == "" || p.Doc == "" {
			t.Errorf("pass %d has empty name or doc", i)
		}
		if i > 0 && passes[i-1].Name >= p.Name {
			t.Errorf("passes out of order: %q then %q", passes[i-1].Name, p.Name)
		}
		if (p.Run == nil) == (p.RunModule == nil) {
			t.Errorf("pass %s must set exactly one of Run/RunModule", p.Name)
		}
		if PassByName(p.Name) != nil && PassByName(p.Name).Name != p.Name {
			t.Errorf("PassByName(%q) broken", p.Name)
		}
	}
	if PassByName("nosuchpass") != nil {
		t.Error("PassByName invented a pass")
	}
}

// TestLoadModuleShape loads the whole module and checks the loader's
// unit inventory: the root package, its external test package, and the
// internal packages all appear, and testdata fixtures do not.
func TestLoadModuleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow under -short")
	}
	l := fixtureLoader(t)
	units, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]bool, len(units))
	for _, u := range units {
		byPath[u.Path] = true
	}
	for _, want := range []string{"respect", "respect_test", "respect/internal/serve", "respect/internal/analysis", "respect/internal/exact"} {
		if !byPath[want] {
			t.Errorf("LoadModule missing unit %s (have %d units)", want, len(units))
		}
	}
	for p := range byPath {
		if strings.Contains(p, "testdata") {
			t.Errorf("LoadModule loaded fixture package %s", p)
		}
	}
}

// TestModuleClean is the dogfooding gate inside the test suite: the
// entire module must be free of findings from every pass. This is the
// same check CI's lint job runs via respect-lint ./...; keeping it in
// the tests means `go test ./...` alone reproduces the gate.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is slow under -short")
	}
	l := fixtureLoader(t)
	units, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(units, Passes()) {
		t.Errorf("module not clean: %s", d)
	}
}
