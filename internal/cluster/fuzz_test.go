// Fuzz targets for the cluster wire messages: membership heartbeats and
// speculation gossip. Both decoders face bytes from other processes (and,
// with a misconfigured peer list, from arbitrary servers), so they must
// never panic and must only ever return validated messages.
package cluster

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func FuzzDecodeHeartbeat(f *testing.F) {
	n, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := json.NewEncoder(&seed).Encode(n.Heartbeat()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"from":"http://x:1","uptime_seconds":3.5,"peers":{"http://y:1":"suspect"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"from":"ftp://x:1"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		hb, err := DecodeHeartbeat(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted heartbeats carry a dialable identity and survive a
		// re-encode/decode round trip.
		if hb.From == "" || checkURL(hb.From) != nil {
			t.Fatalf("accepted heartbeat with bad from %q", hb.From)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(hb); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeHeartbeat(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted heartbeat failed: %v", err)
		}
		if back.From != hb.From {
			t.Fatalf("round trip changed from %q -> %q", hb.From, back.From)
		}
	})
}

func FuzzDecodeGossip(f *testing.F) {
	var seed bytes.Buffer
	err := EncodeGossip(&seed, "http://a:1", []HotEntry{
		{Class: "interactive", Graph: testGraph(1), Stages: 4, Score: 2.5},
		{Class: "batch", Graph: testGraph(2), Stages: 2, Score: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"from":"http://a:1","entries":[]}`))
	f.Add([]byte(`{"from":"http://a:1","entries":[{"stages":4,"score":1,"graph":{"bad":1}}]}`))
	f.Add([]byte(`{"from":"http://a:1","entries":[{"stages":4,"score":1e308,"graph":null}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(strings.Repeat("[", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeGossip(bytes.NewReader(data), 64)
		if err != nil {
			return
		}
		// Every accepted entry is actionable: parsed graph, sane stage
		// count, finite positive bounded score.
		if msg.From == "" || checkURL(msg.From) != nil {
			t.Fatalf("accepted gossip with bad from %q", msg.From)
		}
		if len(msg.Entries) > maxGossipEntries {
			t.Fatalf("accepted %d entries (max %d)", len(msg.Entries), maxGossipEntries)
		}
		for _, e := range msg.Entries {
			if e.Graph == nil {
				t.Fatal("accepted entry with nil graph")
			}
			if e.Stages < 1 || e.Stages > 64 {
				t.Fatalf("accepted entry with stages %d", e.Stages)
			}
			if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) || e.Score <= 0 || e.Score > maxGossipScore {
				t.Fatalf("accepted entry with score %v", e.Score)
			}
			// The graph must survive the solver path's own serialization.
			var buf bytes.Buffer
			if err := e.Graph.WriteJSON(&buf); err != nil {
				t.Fatalf("accepted graph does not re-encode: %v", err)
			}
		}
	})
}
