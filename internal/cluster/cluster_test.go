// Unit tests for the cluster layer: consistent-hash ring properties
// (agreement, balance, minimal disruption), membership state transitions
// driven through a fake in-memory transport, forward-target semantics,
// and the gossip wire protocol (round trip, validation, sink merging).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"respect/internal/graph"
)

// testGraph builds a small chain graph whose fingerprint varies with i.
func testGraph(i int) *graph.Graph {
	g := graph.New(fmt.Sprintf("cluster-test-%d", i))
	for n := 0; n < 6; n++ {
		g.AddNode(graph.Node{
			Name:       fmt.Sprintf("n%d", n),
			Kind:       graph.OpConv,
			ParamBytes: int64(500 + 31*i + n),
			OutBytes:   64,
			MACs:       1000,
		})
		if n > 0 {
			g.AddEdge(n-1, n)
		}
	}
	if err := g.Build(); err != nil {
		panic(err)
	}
	return g
}

func TestRingAgreementAndBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(members, 64)
	r2 := newRing([]string{members[2], members[0], members[1]}, 64)

	rng := rand.New(rand.NewSource(42))
	owned := map[string]int{}
	for i := 0; i < 4000; i++ {
		fp := rng.Uint64()
		o1, o2 := r1.owner(fp), r2.owner(fp)
		if o1 != o2 {
			t.Fatalf("fp %x: ring order changed owner %q -> %q", fp, o1, o2)
		}
		owned[o1]++
	}
	for _, m := range members {
		if owned[m] < 4000/3/3 {
			t.Errorf("member %s owns only %d/4000 keys; ring is badly unbalanced (%v)", m, owned[m], owned)
		}
	}
}

// TestRingBalanceSimilarURLs pins the fleet-realistic case: member URLs
// identical except for one port digit. The raw FNV point hash barely
// avalanches on a late-byte difference, leaving one member with 70%+ of
// the keyspace; the mix64 finalizer must keep every member near its
// fair third.
func TestRingBalanceSimilarURLs(t *testing.T) {
	members := []string{
		"http://127.0.0.1:18081",
		"http://127.0.0.1:18082",
		"http://127.0.0.1:18083",
	}
	r := newRing(members, 64)
	rng := rand.New(rand.NewSource(1))
	owned := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		owned[r.owner(rng.Uint64())]++
	}
	// With 64 vnodes/member the share's standard deviation is ~4%, so
	// anything under 20% means the points are correlated, not unlucky.
	for _, m := range members {
		if share := float64(owned[m]) / keys; share < 0.20 {
			t.Errorf("member %s owns %.1f%% of the keyspace; vnode points are correlated (%v)", m, 100*share, owned)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1"}
	full := newRing(all, 64)
	without := newRing(all[:2], 64) // c removed

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		fp := rng.Uint64()
		before, after := full.owner(fp), without.owner(fp)
		if before != "http://c:1" && before != after {
			t.Fatalf("fp %x: owner moved %q -> %q though %q stayed in the ring", fp, before, after, before)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if got := newRing(nil, 64).owner(123); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing self", Config{}},
		{"bad self scheme", Config{Self: "ftp://x:1"}},
		{"bad peer", Config{Self: "http://a:1", Peers: []string{"not a url://"}}},
		{"dead before suspect", Config{Self: "http://a:1", SuspectAfter: 3, DeadAfter: 1}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}

	// Self and duplicates are filtered from the peer list.
	n, err := New(Config{
		Self:  "http://a:1",
		Peers: []string{"http://a:1", "http://b:1", "http://b:1", ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if len(st.Members) != 2 {
		t.Fatalf("members = %+v, want self + one peer", st.Members)
	}
}

// fakeTransport routes requests by advertise URL to in-memory handlers
// and lets tests fail specific peers.
type fakeTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler // advertise URL -> handler
	down     map[string]bool
}

func (ft *fakeTransport) set(url string, h http.Handler) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.handlers == nil {
		ft.handlers = make(map[string]http.Handler)
		ft.down = make(map[string]bool)
	}
	ft.handlers[url] = h
}

func (ft *fakeTransport) setDown(url string, down bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.down[url] = down
}

func (ft *fakeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := req.URL.Scheme + "://" + req.URL.Host
	ft.mu.Lock()
	h, ok := ft.handlers[base]
	down := ft.down[base]
	ft.mu.Unlock()
	if !ok || down {
		return nil, fmt.Errorf("fakeTransport: %s unreachable", base)
	}
	rec := &responseRecorder{header: make(http.Header)}
	h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode: rec.code,
		Header:     rec.header,
		Body:       io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		Request:    req,
	}, nil
}

// responseRecorder is a minimal http.ResponseWriter for fakeTransport.
type responseRecorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) WriteHeader(c int)   { r.code = c }
func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

// heartbeatHandler answers heartbeat GETs as the given identity.
func heartbeatHandler(from string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HeartbeatMessage{From: from, UptimeSeconds: 1})
	})
}

func TestMembershipTransitions(t *testing.T) {
	ft := &fakeTransport{}
	ft.set("http://b:1", heartbeatHandler("http://b:1"))
	n, err := New(Config{
		Self:         "http://a:1",
		Peers:        []string{"http://b:1"},
		SuspectAfter: 1,
		DeadAfter:    3,
		Client:       &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stateOf := func(url string) string {
		for _, m := range n.Stats().Members {
			if m.URL == url {
				return m.State
			}
		}
		return "missing"
	}

	n.ProbeOnce(ctx)
	if got := stateOf("http://b:1"); got != "alive" {
		t.Fatalf("after healthy probe: state %s, want alive", got)
	}

	ft.setDown("http://b:1", true)
	n.ProbeOnce(ctx)
	if got := stateOf("http://b:1"); got != "suspect" {
		t.Fatalf("after 1 failure: state %s, want suspect", got)
	}
	if n.Rebalances() != 0 {
		t.Fatalf("suspect transition rebuilt the ring (%d rebalances)", n.Rebalances())
	}
	n.ProbeOnce(ctx)
	n.ProbeOnce(ctx)
	if got := stateOf("http://b:1"); got != "dead" {
		t.Fatalf("after 3 failures: state %s, want dead", got)
	}
	if n.Rebalances() != 1 {
		t.Fatalf("dead transition: %d rebalances, want 1", n.Rebalances())
	}
	// A dead peer owns nothing: every fingerprint is self-owned now.
	for i := 0; i < 100; i++ {
		if owner, self := n.Owner(uint64(i) * 0x9e3779b97f4a7c15); !self {
			t.Fatalf("dead-peer ring still routes to %s", owner)
		}
	}

	// Recovery: one healthy probe resurrects the peer and rebalances back.
	ft.setDown("http://b:1", false)
	n.ProbeOnce(ctx)
	if got := stateOf("http://b:1"); got != "alive" {
		t.Fatalf("after recovery: state %s, want alive", got)
	}
	if n.Rebalances() != 2 {
		t.Fatalf("recovery: %d rebalances, want 2", n.Rebalances())
	}
}

func TestProbeRejectsIdentityMismatch(t *testing.T) {
	ft := &fakeTransport{}
	// The server at b:1 claims to be someone else — a misconfigured peer
	// list must read as unhealthy, not silently join the ring.
	ft.set("http://b:1", heartbeatHandler("http://evil:1"))
	n, err := New(Config{
		Self:         "http://a:1",
		Peers:        []string{"http://b:1"},
		SuspectAfter: 1,
		DeadAfter:    1,
		Client:       &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.ProbeOnce(context.Background())
	if got := n.Stats().Members[1].State; got != "dead" {
		t.Fatalf("identity mismatch: state %s, want dead", got)
	}
}

func TestForwardTargetSemantics(t *testing.T) {
	ft := &fakeTransport{}
	ft.set("http://b:1", heartbeatHandler("http://b:1"))
	n, err := New(Config{
		Self:         "http://a:1",
		Peers:        []string{"http://b:1"},
		SuspectAfter: 1,
		DeadAfter:    3,
		Client:       &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Find one fingerprint owned by each member.
	var selfFP, peerFP uint64
	foundSelf, foundPeer := false, false
	for i := uint64(0); i < 10000 && (!foundSelf || !foundPeer); i++ {
		fp := i * 0x9e3779b97f4a7c15
		if _, self := n.Owner(fp); self {
			selfFP, foundSelf = fp, true
		} else {
			peerFP, foundPeer = fp, true
		}
	}
	if !foundSelf || !foundPeer {
		t.Fatal("could not find fingerprints for both members")
	}

	if _, ok := n.ForwardTarget(selfFP); ok {
		t.Fatal("self-owned fingerprint wants forwarding")
	}
	if target, ok := n.ForwardTarget(peerFP); !ok || target != "http://b:1" {
		t.Fatalf("peer-owned fingerprint: target %q ok=%v, want http://b:1 true", target, ok)
	}

	// A suspect owner is not a forward target (local fallback) but still
	// owns its range — no rebalance.
	ft.setDown("http://b:1", true)
	n.ProbeOnce(context.Background())
	if owner, self := n.Owner(peerFP); self || owner != "http://b:1" {
		t.Fatalf("suspect peer lost ownership: owner %q self=%v", owner, self)
	}
	if _, ok := n.ForwardTarget(peerFP); ok {
		t.Fatal("suspect owner is still a forward target")
	}
}

func TestGossipRoundTrip(t *testing.T) {
	entries := []HotEntry{
		{Class: "interactive", Graph: testGraph(1), Stages: 4, Score: 3.5},
		{Class: "batch", Graph: testGraph(2), Stages: 2, Score: 1.25},
		{Graph: nil, Stages: 4, Score: 9}, // skipped: no graph
	}
	var buf bytes.Buffer
	if err := EncodeGossip(&buf, "http://a:1", entries); err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeGossip(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "http://a:1" {
		t.Fatalf("from = %q", msg.From)
	}
	if len(msg.Entries) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(msg.Entries))
	}
	for i, e := range msg.Entries {
		if e.Graph.Fingerprint() != entries[i].Graph.Fingerprint() {
			t.Errorf("entry %d: fingerprint changed across the wire", i)
		}
		if e.Class != entries[i].Class || e.Stages != entries[i].Stages || e.Score != entries[i].Score {
			t.Errorf("entry %d: %+v does not match input", i, e)
		}
	}
}

func TestDecodeGossipValidation(t *testing.T) {
	g := testGraph(3)
	var gbuf bytes.Buffer
	if err := g.WriteJSON(&gbuf); err != nil {
		t.Fatal(err)
	}
	graphJSON := gbuf.String()

	structural := []string{
		`not json`,
		`{"entries":[]}`,                    // missing from
		`{"from":"ftp://x:1","entries":[]}`, // bad from URL
		`{"from":"http://a:1","entries":` + bigEntriesJSON(graphJSON, maxGossipEntries+1) + `}`,
	}
	for _, raw := range structural {
		if _, err := DecodeGossip(strings.NewReader(raw), 64); err == nil {
			t.Errorf("DecodeGossip accepted %.60q", raw)
		}
	}

	// Per-entry problems drop the entry, not the message.
	dropped := []string{
		`{"stages":0,"score":1,"graph":` + graphJSON + `}`,  // stages < 1
		`{"stages":65,"score":1,"graph":` + graphJSON + `}`, // stages > max
		`{"stages":4,"score":-1,"graph":` + graphJSON + `}`, // score <= 0
		`{"stages":4,"score":1,"graph":{"bad":true}}`,       // unparseable graph
	}
	raw := `{"from":"http://a:1","entries":[` +
		strings.Join(dropped, ",") +
		`,{"stages":4,"score":2,"graph":` + graphJSON + `}]}`
	msg, err := DecodeGossip(strings.NewReader(raw), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Entries) != 1 {
		t.Fatalf("kept %d entries, want 1 (invalid entries must drop individually)", len(msg.Entries))
	}

	// Absurd scores clamp instead of poisoning downstream trackers.
	raw = `{"from":"http://a:1","entries":[{"stages":4,"score":1e300,"graph":` + graphJSON + `}]}`
	msg, err = DecodeGossip(strings.NewReader(raw), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Entries) != 1 || msg.Entries[0].Score != maxGossipScore {
		t.Fatalf("score not clamped: %+v", msg.Entries)
	}
}

// bigEntriesJSON builds a JSON array of n minimal entries.
func bigEntriesJSON(graphJSON string, n int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"stages":4,"score":1,"graph":` + graphJSON + `}`)
	}
	b.WriteByte(']')
	return b.String()
}

// chanSink records merges for gossip tests.
type chanSink struct {
	mu     sync.Mutex
	merged []HotEntry
	froms  []string
}

func (cs *chanSink) MergeRemote(from string, entries []HotEntry) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.froms = append(cs.froms, from)
	cs.merged = append(cs.merged, entries...)
	return len(entries)
}

// sliceSource serves a fixed hot set.
type sliceSource struct{ entries []HotEntry }

func (ss sliceSource) HotEntries(max int) []HotEntry {
	if len(ss.entries) > max {
		return ss.entries[:max]
	}
	return ss.entries
}

func TestGossipOnceDeliversToAlivePeersOnly(t *testing.T) {
	ft := &fakeTransport{}
	sinkB := &chanSink{}
	nodeB, err := New(Config{Self: "http://b:1", Sink: sinkB})
	if err != nil {
		t.Fatal(err)
	}
	mount := func(node *Node) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(node.Heartbeat())
		})
		mux.HandleFunc("/v1/cluster/gossip", func(w http.ResponseWriter, r *http.Request) {
			msg, err := DecodeGossip(r.Body, 64)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			node.ReceiveGossip(msg)
			w.WriteHeader(http.StatusOK)
		})
		return mux
	}
	ft.set("http://b:1", mount(nodeB))
	// c is configured but down the whole time.

	hot := []HotEntry{{Class: "interactive", Graph: testGraph(9), Stages: 4, Score: 5}}
	nodeA, err := New(Config{
		Self:         "http://a:1",
		Peers:        []string{"http://b:1", "http://c:1"},
		SuspectAfter: 1,
		DeadAfter:    1,
		Client:       &http.Client{Transport: ft},
		Source:       sliceSource{entries: hot},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n := nodeA.GossipOnce(ctx) // both presumed alive; c's send fails
	if n != 1 {
		t.Fatalf("first gossip: %d successful sends, want 1", n)
	}
	st := nodeA.Stats()
	if st.GossipSent != 1 || st.GossipSendErrors != 1 {
		t.Fatalf("gossip counters sent=%d errors=%d, want 1/1", st.GossipSent, st.GossipSendErrors)
	}

	nodeA.ProbeOnce(ctx) // c goes dead
	if n := nodeA.GossipOnce(ctx); n != 1 {
		t.Fatalf("second gossip: %d sends, want 1 (only b is alive)", n)
	}
	if st := nodeA.Stats(); st.GossipSendErrors != 1 {
		t.Fatalf("dead peer still gossiped to: errors=%d", st.GossipSendErrors)
	}

	sinkB.mu.Lock()
	defer sinkB.mu.Unlock()
	if len(sinkB.merged) != 2 || sinkB.froms[0] != "http://a:1" {
		t.Fatalf("sink saw merged=%d froms=%v", len(sinkB.merged), sinkB.froms)
	}
	if got := nodeB.Stats(); got.GossipReceived != 2 || got.GossipMergedKeys != 2 {
		t.Fatalf("receiver counters: %+v", got)
	}
}

func TestHeartbeatMessage(t *testing.T) {
	n, err := New(Config{
		Self:  "http://a:1",
		Peers: []string{"http://b:1"},
		Now:   func() time.Time { return time.Unix(100, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hb := n.Heartbeat()
	if hb.From != "http://a:1" || hb.Peers["http://b:1"] != "alive" {
		t.Fatalf("heartbeat %+v", hb)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(hb); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeHeartbeat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.From != hb.From {
		t.Fatalf("round trip changed from: %q", back.From)
	}

	for _, raw := range []string{`x`, `{}`, `{"from":"nope"}`} {
		if _, err := DecodeHeartbeat(strings.NewReader(raw)); err == nil {
			t.Errorf("DecodeHeartbeat accepted %q", raw)
		}
	}
}
