package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"respect/internal/graph"
)

// maxGossipEntries bounds the entries accepted in one gossip message.
const maxGossipEntries = 256

// maxGossipScore clamps incoming popularity scores so one peer cannot
// poison the fleet's demand signal with an absurd value.
const maxGossipScore = 1e6

// gossipEntryJSON is the wire form of one HotEntry.
type gossipEntryJSON struct {
	Class  string          `json:"class,omitempty"`
	Stages int             `json:"stages"`
	Score  float64         `json:"score"`
	Graph  json.RawMessage `json:"graph"`
}

// gossipMessageJSON is the wire form of a gossip push.
type gossipMessageJSON struct {
	From    string            `json:"from"`
	Entries []gossipEntryJSON `json:"entries"`
}

// GossipMessage is a decoded gossip push: the sender's advertise URL and
// its hot entries with fully parsed graphs.
type GossipMessage struct {
	// From is the sender's advertise URL.
	From string
	// Entries are the sender's hot instances, graphs parsed and validated.
	Entries []HotEntry
}

// EncodeGossip writes a gossip message for entries to w. Entries without
// a graph are skipped — a key the sender cannot re-solve is useless to a
// peer.
func EncodeGossip(w io.Writer, from string, entries []HotEntry) error {
	msg := gossipMessageJSON{From: from}
	for _, e := range entries {
		if e.Graph == nil {
			continue
		}
		var buf bytes.Buffer
		if err := e.Graph.WriteJSON(&buf); err != nil {
			return fmt.Errorf("cluster: gossip encode graph %q: %w", e.Graph.Name, err)
		}
		msg.Entries = append(msg.Entries, gossipEntryJSON{
			Class:  e.Class,
			Stages: e.Stages,
			Score:  e.Score,
			Graph:  json.RawMessage(buf.Bytes()),
		})
	}
	return json.NewEncoder(w).Encode(msg)
}

// DecodeGossip parses and validates a gossip message. Structural problems
// (malformed JSON, missing From, too many entries) are errors; individual
// entries that fail validation — unparseable graph, stage count outside
// [1, maxStages], non-finite or non-positive score — are dropped so
// version skew in entry contents cannot take down the whole exchange.
// Scores are clamped to a sane ceiling.
func DecodeGossip(r io.Reader, maxStages int) (*GossipMessage, error) {
	if maxStages < 1 {
		maxStages = defaultMaxStages
	}
	var raw gossipMessageJSON
	dec := json.NewDecoder(io.LimitReader(r, maxWireBytes))
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("cluster: gossip decode: %w", err)
	}
	if raw.From == "" {
		return nil, errors.New("cluster: gossip missing from")
	}
	if err := checkURL(raw.From); err != nil {
		return nil, fmt.Errorf("cluster: gossip from %q: %w", raw.From, err)
	}
	if len(raw.Entries) > maxGossipEntries {
		return nil, fmt.Errorf("cluster: gossip has %d entries (max %d)", len(raw.Entries), maxGossipEntries)
	}
	msg := &GossipMessage{From: raw.From}
	for _, e := range raw.Entries {
		if e.Stages < 1 || e.Stages > maxStages {
			continue
		}
		if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) || e.Score <= 0 {
			continue
		}
		if e.Score > maxGossipScore {
			e.Score = maxGossipScore
		}
		g, err := graph.ReadJSON(bytes.NewReader(e.Graph))
		if err != nil || g.NumNodes() == 0 {
			continue // unparseable or empty graphs cannot warm anything
		}
		msg.Entries = append(msg.Entries, HotEntry{
			Class:  e.Class,
			Graph:  g,
			Stages: e.Stages,
			Score:  e.Score,
		})
	}
	return msg, nil
}

// GossipOnce pushes the local hot set to every alive peer and returns the
// number of successful sends. Without a Source, or with nothing hot, it
// is a no-op.
func (n *Node) GossipOnce(ctx context.Context) int {
	if n.cfg.Source == nil {
		return 0
	}
	entries := n.cfg.Source.HotEntries(n.cfg.GossipTopK)
	kept := entries[:0]
	for _, e := range entries {
		if e.Graph != nil && e.Score > 0 {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		return 0
	}
	var buf bytes.Buffer
	if err := EncodeGossip(&buf, n.cfg.Self, kept); err != nil {
		n.logf("cluster: gossip encode: %v", err)
		return 0
	}

	n.mu.Lock()
	var targets []string
	for _, p := range n.peers {
		if p.state == StateAlive {
			targets = append(targets, p.url)
		}
	}
	n.mu.Unlock()

	var sent atomic.Int64
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			if n.gossipTo(ctx, target, buf.Bytes()) {
				n.gossipSent.Add(1)
				sent.Add(1)
			} else {
				n.gossipSendErrors.Add(1)
			}
		}(t)
	}
	wg.Wait()
	return int(sent.Load())
}

// gossipTo POSTs one encoded gossip message to a peer.
func (n *Node) gossipTo(ctx context.Context, target string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+n.cfg.GossipPath, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxWireBytes))
		resp.Body.Close()
	}()
	return resp.StatusCode == http.StatusOK
}

// ReceiveGossip folds a decoded gossip message into the local sink and
// returns how many keys were merged. The serving layer calls it from its
// gossip endpoint handler.
func (n *Node) ReceiveGossip(msg *GossipMessage) int {
	n.gossipReceived.Add(1)
	if n.cfg.Sink == nil {
		return 0
	}
	merged := n.cfg.Sink.MergeRemote(msg.From, msg.Entries)
	if merged > 0 {
		n.gossipMerged.Add(uint64(merged))
	}
	return merged
}
