package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// State is a peer's observed health.
type State int

// Membership states. Alive peers are owners and forwarding targets;
// suspect peers remain owners (requests for their keys fall back to a
// local solve) so one dropped probe does not reshuffle the ring; dead
// peers leave the ring and their key ranges move to the clockwise
// successors.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

// String returns the state's metric/JSON label.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	h      uint64
	member string
}

// ring is a consistent-hash ring over the uint64 fingerprint space.
// Each member contributes vnodes points (FNV-64a of "url#i"), and a
// fingerprint's owner is the member of the first point at or clockwise
// after it. The ring is immutable once built; Node swaps whole rings on
// membership change, which makes rebalancing deterministic: the ring is
// a pure function of the member set.
type ring struct {
	points []ringPoint
}

// newRing builds a ring over members (deduplicated by the caller). An
// empty member list yields a ring whose owner is always "".
func newRing(members []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties (vanishingly rare) break by member URL so every
		// replica orders identical point sets identically.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// pointHash positions virtual node i of member m on the ring. The raw
// FNV sum is run through a 64-bit finalizer: member URLs in a real
// fleet differ only in a digit or two near the end (ports, last host
// octet), and FNV-64a's avalanche on late-byte differences is too weak
// to interleave the members' points — without the mix one member can
// own 70%+ of the keyspace.
func pointHash(m string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(m))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(i)))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: a bijection with full
// avalanche, so correlated inputs yield decorrelated ring positions.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owner returns the member owning fp, or "" for an empty ring.
func (r *ring) owner(fp uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= fp })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return r.points[i].member
}
