// Package cluster turns a set of independent scheduling replicas into a
// fleet: it shards the graph-fingerprint space across replicas with a
// consistent-hash ring (every fingerprint has exactly one home shard),
// maintains health-checked membership over a static peer list (heartbeat
// probing with alive → suspect → dead transitions and deterministic
// rebalancing on membership change), and gossips the speculation
// popularity counters so the whole fleet warms a hot instance once
// instead of N times.
//
// The package is transport-light by design: a Node speaks plain HTTP/JSON
// to its peers (heartbeat GETs and gossip POSTs against paths the serving
// layer mounts), and the serving layer owns request forwarding — cluster
// only answers "who owns this fingerprint, and are they healthy?" via
// Owner and ForwardTarget. Every decision is a pure function of the
// locally observed peer states, so two replicas with the same view agree
// on every owner without any coordination protocol.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"respect/internal/graph"
)

// HotEntry is one popular scheduling instance exchanged over gossip: the
// graph itself (so a remote replica can warm without a client round trip),
// the requested stage count, the decayed popularity score, and the serving
// class whose cache should be warmed.
type HotEntry struct {
	// Class names the serving class whose warm cache this entry targets.
	Class string
	// Graph is the full graph payload; never nil in a decoded message.
	Graph *graph.Graph
	// Stages is the requested pipeline length.
	Stages int
	// Score is the sender's decayed popularity score for the instance.
	Score float64
}

// GossipSource supplies the local hot set for outbound gossip.
type GossipSource interface {
	// HotEntries returns up to max entries worth pushing to peers, hottest
	// first. Entries without a retained graph are not useful to peers and
	// should be omitted.
	HotEntries(max int) []HotEntry
}

// GossipSink merges inbound gossip into local speculation state.
type GossipSink interface {
	// MergeRemote folds a peer's hot entries into local popularity
	// tracking and returns how many keys were merged. Implementations
	// must treat repeated deliveries idempotently (max-merge, not add).
	MergeRemote(from string, entries []HotEntry) int
}

// Config describes one replica's view of the fleet. Self and the peer
// list are static — membership health is discovered, membership identity
// is configuration.
type Config struct {
	// Self is this replica's advertise URL (scheme://host:port), the
	// identity peers know it by. Required.
	Self string
	// Peers lists every replica's advertise URL. Self is filtered out,
	// duplicates are dropped; the empty list is a single-node fleet.
	Peers []string
	// VirtualNodes is the number of ring points per member (default 64).
	VirtualNodes int
	// SuspectAfter is the consecutive probe failures after which a peer
	// is suspect — still an owner, but not forwarded to (default 1).
	SuspectAfter int
	// DeadAfter is the consecutive probe failures after which a peer is
	// dead and leaves the ring (default 3). Must be >= SuspectAfter.
	DeadAfter int
	// ProbeInterval paces the background heartbeat loop (default 500ms).
	ProbeInterval time.Duration
	// GossipInterval paces the background gossip loop (default 2s).
	GossipInterval time.Duration
	// GossipTopK bounds the entries pushed per gossip round (default 16).
	GossipTopK int
	// MaxStages bounds the stage count accepted in gossip entries
	// (default 64, matching the serving layer's request validation).
	MaxStages int
	// Client issues heartbeat and gossip requests. The default client
	// has a 2s timeout. Tests inject partition-aware transports here.
	Client *http.Client
	// HeartbeatPath is the peer endpoint probed for liveness
	// (default /v1/cluster/heartbeat).
	HeartbeatPath string
	// GossipPath is the peer endpoint gossip is POSTed to
	// (default /v1/cluster/gossip).
	GossipPath string
	// Source, when set, supplies outbound gossip entries.
	Source GossipSource
	// Sink, when set, receives inbound gossip entries.
	Sink GossipSink
	// Now is an injectable clock for deterministic tests (default
	// time.Now); it feeds uptime reporting only.
	Now func() time.Time
	// Logf, when set, receives membership-transition and gossip log lines.
	Logf func(format string, args ...any)
}

// Config defaults, applied by New for unset fields.
const (
	defaultVirtualNodes   = 64
	defaultSuspectAfter   = 1
	defaultDeadAfter      = 3
	defaultProbeInterval  = 500 * time.Millisecond
	defaultGossipInterval = 2 * time.Second
	defaultGossipTopK     = 16
	defaultMaxStages      = 64
	defaultClientTimeout  = 2 * time.Second
)

// peer is the mutable per-peer health state, guarded by Node.mu.
type peer struct {
	url      string
	state    State
	fails    int    // consecutive probe failures
	probes   uint64 // total probes issued
	failures uint64 // total probes failed
}

// Node is one replica's membership, sharding and gossip engine. Create
// with New; either call Run for the background loops or drive ProbeOnce /
// GossipOnce explicitly (the chaos harness does). All methods are safe
// for concurrent use.
type Node struct {
	cfg    Config
	client *http.Client
	start  time.Time

	mu    sync.Mutex
	peers []*peer // sorted by URL; never contains Self
	ring  *ring   // over Self + non-dead peers

	rebalances       atomic.Uint64
	gossipSent       atomic.Uint64
	gossipSendErrors atomic.Uint64
	gossipReceived   atomic.Uint64
	gossipMerged     atomic.Uint64
}

// New validates cfg, applies defaults and returns a ready Node with every
// configured peer presumed alive (the optimistic start means a booting
// fleet shards immediately; the first probe round corrects the view).
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self (advertise URL) is required")
	}
	if err := checkURL(cfg.Self); err != nil {
		return nil, fmt.Errorf("cluster: self %q: %w", cfg.Self, err)
	}
	if cfg.VirtualNodes < 1 {
		cfg.VirtualNodes = defaultVirtualNodes
	}
	if cfg.SuspectAfter < 1 {
		cfg.SuspectAfter = defaultSuspectAfter
	}
	if cfg.DeadAfter < 1 {
		cfg.DeadAfter = defaultDeadAfter
	}
	if cfg.DeadAfter < cfg.SuspectAfter {
		return nil, fmt.Errorf("cluster: DeadAfter %d < SuspectAfter %d", cfg.DeadAfter, cfg.SuspectAfter)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = defaultGossipInterval
	}
	if cfg.GossipTopK < 1 {
		cfg.GossipTopK = defaultGossipTopK
	}
	if cfg.MaxStages < 1 {
		cfg.MaxStages = defaultMaxStages
	}
	if cfg.HeartbeatPath == "" {
		cfg.HeartbeatPath = "/v1/cluster/heartbeat"
	}
	if cfg.GossipPath == "" {
		cfg.GossipPath = "/v1/cluster/gossip"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: defaultClientTimeout}
	}

	seen := map[string]bool{cfg.Self: true}
	var peers []*peer
	for _, p := range cfg.Peers {
		p = strings.TrimRight(p, "/")
		if p == "" || seen[p] {
			continue
		}
		if err := checkURL(p); err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		seen[p] = true
		peers = append(peers, &peer{url: p, state: StateAlive})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].url < peers[j].url })

	n := &Node{
		cfg:    cfg,
		client: client,
		start:  cfg.Now(),
		peers:  peers,
	}
	n.rebuildRingLocked()
	return n, nil
}

// checkURL rejects advertise URLs a peer could not actually dial.
func checkURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("scheme %q: want http or https", u.Scheme)
	}
	if u.Host == "" {
		return errors.New("missing host")
	}
	return nil
}

// Self returns this replica's advertise URL.
func (n *Node) Self() string { return n.cfg.Self }

// rebuildRingLocked rebuilds the ring over Self plus every non-dead peer.
// Called with n.mu held. Membership is the only input, so two replicas
// that agree on who is dead agree on every owner.
func (n *Node) rebuildRingLocked() {
	members := make([]string, 0, len(n.peers)+1)
	members = append(members, n.cfg.Self)
	for _, p := range n.peers {
		if p.state != StateDead {
			members = append(members, p.url)
		}
	}
	n.ring = newRing(members, n.cfg.VirtualNodes)
}

// Owner returns the advertise URL of the fingerprint's home shard under
// the current membership view, and whether that shard is this replica.
func (n *Node) Owner(fp uint64) (string, bool) {
	n.mu.Lock()
	owner := n.ring.owner(fp)
	n.mu.Unlock()
	return owner, owner == n.cfg.Self
}

// ForwardTarget reports where a request for fp should be proxied: the
// owner's URL when the owner is a healthy (alive) remote peer, and
// ok=false when this replica owns fp or the owner is suspect — the
// local-solve fallback path.
func (n *Node) ForwardTarget(fp uint64) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	owner := n.ring.owner(fp)
	if owner == n.cfg.Self {
		return "", false
	}
	for _, p := range n.peers {
		if p.url == owner {
			return owner, p.state == StateAlive
		}
	}
	return "", false
}

// Run drives the background probe and gossip loops until ctx is
// cancelled. The chaos harness skips Run and calls ProbeOnce/GossipOnce
// directly for deterministic scheduling.
func (n *Node) Run(ctx context.Context) {
	probe := time.NewTicker(n.cfg.ProbeInterval)
	defer probe.Stop()
	gossip := time.NewTicker(n.cfg.GossipInterval)
	defer gossip.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-probe.C:
			n.ProbeOnce(ctx)
		case <-gossip.C:
			n.GossipOnce(ctx)
		}
	}
}

// MemberInfo is one member's state in a Stats snapshot.
type MemberInfo struct {
	// URL is the member's advertise URL.
	URL string `json:"url"`
	// Self marks the reporting replica's own row.
	Self bool `json:"self,omitempty"`
	// State is the observed membership state ("alive", "suspect", "dead").
	State string `json:"state"`
	// ConsecutiveFails is the current unbroken probe-failure run.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// Probes and Failures are lifetime probe counters for the member.
	Probes   uint64 `json:"probes,omitempty"`
	Failures uint64 `json:"failures,omitempty"`
}

// Stats is a point-in-time snapshot of the node's membership and gossip
// counters; it backs GET /v1/cluster and the metric families.
type Stats struct {
	// Self is this replica's advertise URL.
	Self string `json:"self"`
	// Members lists every configured member (self first, peers by URL).
	Members []MemberInfo `json:"members"`
	// Rebalances counts ring rebuilds caused by membership transitions.
	Rebalances uint64 `json:"rebalances"`
	// GossipSent / GossipSendErrors count outbound gossip POSTs.
	GossipSent       uint64 `json:"gossip_sent"`
	GossipSendErrors uint64 `json:"gossip_send_errors"`
	// GossipReceived counts inbound gossip messages accepted.
	GossipReceived uint64 `json:"gossip_received"`
	// GossipMergedKeys counts hot keys folded into local state.
	GossipMergedKeys uint64 `json:"gossip_merged_keys"`
}

// Stats snapshots membership and gossip counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	members := make([]MemberInfo, 0, len(n.peers)+1)
	members = append(members, MemberInfo{URL: n.cfg.Self, Self: true, State: StateAlive.String()})
	for _, p := range n.peers {
		members = append(members, MemberInfo{
			URL:              p.url,
			State:            p.state.String(),
			ConsecutiveFails: p.fails,
			Probes:           p.probes,
			Failures:         p.failures,
		})
	}
	n.mu.Unlock()
	return Stats{
		Self:             n.cfg.Self,
		Members:          members,
		Rebalances:       n.rebalances.Load(),
		GossipSent:       n.gossipSent.Load(),
		GossipSendErrors: n.gossipSendErrors.Load(),
		GossipReceived:   n.gossipReceived.Load(),
		GossipMergedKeys: n.gossipMerged.Load(),
	}
}

// Rebalances returns the ring-rebuild counter (lock-free; metrics read it
// at scrape time).
func (n *Node) Rebalances() uint64 { return n.rebalances.Load() }

// GossipSentCount returns successful outbound gossip sends (lock-free).
func (n *Node) GossipSentCount() uint64 { return n.gossipSent.Load() }

// GossipSendErrorCount returns failed outbound gossip sends (lock-free).
func (n *Node) GossipSendErrorCount() uint64 { return n.gossipSendErrors.Load() }

// GossipReceivedCount returns accepted inbound gossip messages (lock-free).
func (n *Node) GossipReceivedCount() uint64 { return n.gossipReceived.Load() }

// GossipMergedCount returns hot keys merged from inbound gossip (lock-free).
func (n *Node) GossipMergedCount() uint64 { return n.gossipMerged.Load() }

// Peers returns the configured peer URLs (self excluded), sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.peers))
	for i, p := range n.peers {
		out[i] = p.url
	}
	return out
}

// PeerState returns the observed state of one configured peer.
func (n *Node) PeerState(url string) (State, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		if p.url == url {
			return p.state, true
		}
	}
	return StateDead, false
}

// logf forwards to the configured logger, if any.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
