package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// maxWireBytes bounds any single heartbeat or gossip message read off the
// network; peers are trusted but a misconfigured peer list can point at
// arbitrary servers.
const maxWireBytes = 4 << 20

// maxHeartbeatPeers bounds the peer-state map accepted in a heartbeat.
const maxHeartbeatPeers = 1024

// HeartbeatMessage is the liveness payload served on the heartbeat
// endpoint. From is the responder's advertise URL — a prober checks it
// against the URL it dialed, so a peer list pointing at the wrong server
// (or a replica advertising the wrong identity) reads as unhealthy
// instead of silently joining the ring.
type HeartbeatMessage struct {
	// From is the responder's advertise URL.
	From string `json:"from"`
	// UptimeSeconds is how long the responder has been up.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Peers maps each of the responder's configured peers to the state it
	// observes ("alive", "suspect", "dead") — operator-facing context.
	Peers map[string]string `json:"peers,omitempty"`
}

// Heartbeat builds this node's heartbeat response.
func (n *Node) Heartbeat() HeartbeatMessage {
	hb := HeartbeatMessage{
		From:          n.cfg.Self,
		UptimeSeconds: n.cfg.Now().Sub(n.start).Seconds(),
		Peers:         make(map[string]string),
	}
	n.mu.Lock()
	for _, p := range n.peers {
		hb.Peers[p.url] = p.state.String()
	}
	n.mu.Unlock()
	return hb
}

// DecodeHeartbeat parses and validates a heartbeat message. It rejects
// malformed JSON, a missing or undialable From, and oversized peer maps;
// unknown peer-state strings are tolerated (version skew).
func DecodeHeartbeat(r io.Reader) (*HeartbeatMessage, error) {
	var hb HeartbeatMessage
	dec := json.NewDecoder(io.LimitReader(r, maxWireBytes))
	if err := dec.Decode(&hb); err != nil {
		return nil, fmt.Errorf("cluster: heartbeat decode: %w", err)
	}
	if hb.From == "" {
		return nil, errors.New("cluster: heartbeat missing from")
	}
	if err := checkURL(hb.From); err != nil {
		return nil, fmt.Errorf("cluster: heartbeat from %q: %w", hb.From, err)
	}
	if len(hb.Peers) > maxHeartbeatPeers {
		return nil, fmt.Errorf("cluster: heartbeat lists %d peers (max %d)", len(hb.Peers), maxHeartbeatPeers)
	}
	return &hb, nil
}

// ProbeOnce runs one heartbeat round: every peer is probed concurrently,
// then states advance — success resets a peer to alive, a failure run of
// SuspectAfter marks it suspect, DeadAfter marks it dead. The ring is
// rebuilt only when a peer crosses the dead boundary in either direction,
// and each rebuild counts one rebalance.
func (n *Node) ProbeOnce(ctx context.Context) {
	n.mu.Lock()
	urls := make([]string, len(n.peers))
	for i, p := range n.peers {
		urls[i] = p.url
	}
	n.mu.Unlock()

	ok := make([]bool, len(urls))
	var wg sync.WaitGroup
	for i := range urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok[i] = n.probe(ctx, urls[i])
		}(i)
	}
	wg.Wait()

	n.mu.Lock()
	ringChanged := false
	for i, p := range n.peers {
		p.probes++
		wasDead := p.state == StateDead
		if ok[i] {
			if p.state != StateAlive {
				n.logf("cluster: peer %s %s -> alive", p.url, p.state)
			}
			p.fails = 0
			p.state = StateAlive
		} else {
			p.failures++
			p.fails++
			next := p.state
			switch {
			case p.fails >= n.cfg.DeadAfter:
				next = StateDead
			case p.fails >= n.cfg.SuspectAfter:
				next = StateSuspect
			}
			if next != p.state {
				n.logf("cluster: peer %s %s -> %s (%d consecutive failures)", p.url, p.state, next, p.fails)
				p.state = next
			}
		}
		if (p.state == StateDead) != wasDead {
			ringChanged = true
		}
	}
	if ringChanged {
		n.rebuildRingLocked()
		n.rebalances.Add(1)
	}
	n.mu.Unlock()
}

// probe issues one heartbeat GET and reports whether the peer answered
// healthily as the identity the peer list claims for it.
func (n *Node) probe(ctx context.Context, peerURL string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+n.cfg.HeartbeatPath, nil)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxWireBytes))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	hb, err := DecodeHeartbeat(resp.Body)
	if err != nil {
		return false
	}
	return hb.From == peerURL
}
