// Package rl implements RESPECT's training procedure (paper §III-B):
// model-free policy-gradient (REINFORCE) optimization of the LSTM-PtrNet,
// imitating the node-emission order of the exact scheduler on synthetic
// DAGs. The reward is the cosine similarity between the one-hot stage
// matrices of the predicted and exact schedules (Eq. 3); the gradient uses
// a greedy-rollout baseline that tracks the best model over past
// iterations (Eq. 6).
package rl

import (
	"fmt"
	"math/rand"
	"time"

	ad "respect/internal/autodiff"
	"respect/internal/embed"
	"respect/internal/exact"
	"respect/internal/graph"
	"respect/internal/nn"
	"respect/internal/ptrnet"
	"respect/internal/sched"
	"respect/internal/synth"
)

// BaselineKind selects the variance-reduction baseline b(G).
type BaselineKind int8

// Baselines (Rollout is the paper's choice; the others are ablations).
const (
	BaselineRollout BaselineKind = iota
	BaselineEMA
	BaselineNone
)

// RewardKind selects the reward signal.
type RewardKind int8

// Rewards (CosineImitation is the paper's Eq. 3; DirectObjective is the
// "learn the objective, not the algorithm" ablation).
const (
	RewardCosineImitation RewardKind = iota
	RewardDirectObjective
)

// Config controls training. Zero values are replaced by defaults matching
// a scaled-down version of the paper's setup (the paper trains 300 epochs
// × 1M graphs with hidden 256 on a GPU; defaults here train in seconds on
// a CPU and every knob scales up).
type Config struct {
	Hidden         int     // LSTM/attention width (paper: 256)
	NumNodes       int     // synthetic graph size |V| (paper: 30)
	Degrees        []int   // deg(V) curriculum (paper: 2..6)
	Stages         int     // pipeline stages for ρ and γ during training
	Iterations     int     // gradient steps
	BatchSize      int     // graphs per step (paper: 128)
	LR             float64 // Adam learning rate (paper: 1e-4)
	Seed           int64
	Baseline       BaselineKind
	Reward         RewardKind
	ChallengeEvery int  // iterations between rollout-baseline challenges
	Supervised     bool // cross-entropy teacher forcing ablation
	// Embed overrides the graph-embedding configuration (nil = paper
	// default); used by the embedding-column ablation benchmarks.
	Embed *embed.Config
	// GreedyRho switches ρ back to the greedy balanced-budget walk
	// (ablation); the default realizes ρ as the optimal DP segmentation
	// of the emitted order (sched.SequenceToScheduleDP).
	GreedyRho bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.NumNodes == 0 {
		c.NumNodes = 30
	}
	if len(c.Degrees) == 0 {
		c.Degrees = []int{2, 3, 4, 5, 6}
	}
	if c.Stages == 0 {
		c.Stages = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 200
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.ChallengeEvery == 0 {
		c.ChallengeEvery = 20
	}
	return c
}

// IterStats reports one training step.
type IterStats struct {
	Iter        int
	MeanReward  float64 // mean cosine/objective reward of sampled rollouts
	MeanBase    float64 // mean baseline value
	GradNorm    float64
	MeanEntropy float64
	Elapsed     time.Duration
}

// Trainer holds the model and training state.
type Trainer struct {
	Cfg      Config
	Model    *ptrnet.Model
	EmbedCfg embed.Config

	baseline *ptrnet.Model
	ema      float64
	emaInit  bool
	opt      *nn.Adam
	sampler  *synth.CurriculumSampler
	evalSet  []*graph.Graph
	rng      *rand.Rand
}

// NewTrainer builds a trainer (and a fresh model) from cfg.
func NewTrainer(cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Stages < 2 {
		return nil, fmt.Errorf("rl: need >= 2 stages, got %d", cfg.Stages)
	}
	ecfg := embed.Default()
	if cfg.Embed != nil {
		ecfg = *cfg.Embed
	}
	model := ptrnet.New(ptrnet.Config{InputDim: ecfg.Dim(), Hidden: cfg.Hidden, Seed: cfg.Seed})
	sampler, err := synth.NewCurriculum(cfg.NumNodes, cfg.Degrees, cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	evalSampler, err := synth.NewCurriculum(cfg.NumNodes, cfg.Degrees, cfg.Seed+900001)
	if err != nil {
		return nil, err
	}
	evalSet := make([]*graph.Graph, 20)
	for i := range evalSet {
		evalSet[i] = evalSampler.Sample()
	}
	return &Trainer{
		Cfg:      cfg,
		Model:    model,
		EmbedCfg: ecfg,
		baseline: model.Clone(),
		opt:      nn.NewAdam(model.Params(), cfg.LR),
		sampler:  sampler,
		evalSet:  evalSet,
		rng:      rand.New(rand.NewSource(cfg.Seed + 7)),
	}, nil
}

// rho applies the configured sequence→schedule mapping.
func rho(g *graph.Graph, seq []int, stages int, greedy bool) (sched.Schedule, error) {
	if greedy {
		return sched.SequenceToSchedule(g, seq, stages)
	}
	return sched.SequenceToScheduleDP(g, seq, stages)
}

// GroundTruth computes the exact scheduler's sequence γ and schedule S for
// a graph (the imitation target). greedyRho selects the ρ variant so the
// reward compares like with like (Eq. 2).
func GroundTruth(g *graph.Graph, stages int) ([]int, sched.Schedule) {
	return groundTruth(g, stages, false)
}

func groundTruth(g *graph.Graph, stages int, greedyRho bool) ([]int, sched.Schedule) {
	res := exact.Solve(g, stages, exact.Options{MaxStates: 2_000_000, Timeout: 2 * time.Second})
	gamma := sched.ScheduleToSequence(g, res.Schedule)
	// S = ρ(γ): the reward compares like with like (Eq. 2).
	s, err := rho(g, gamma, stages, greedyRho)
	if err != nil {
		panic("rl: ground-truth sequence invalid: " + err.Error())
	}
	return gamma, s
}

// Reward scores a predicted sequence π against the ground-truth schedule
// via ρ: the cosine similarity of one-hot stage matrices (Eq. 1/3), or the
// normalized inverse objective for the direct-objective ablation.
func (tr *Trainer) Reward(g *graph.Graph, seq []int, truth sched.Schedule) float64 {
	s, err := rho(g, seq, tr.Cfg.Stages, tr.Cfg.GreedyRho)
	if err != nil {
		return 0
	}
	switch tr.Cfg.Reward {
	case RewardDirectObjective:
		// Peak memory of the repaired schedule relative to the exact
		// optimum: in (0, 1], 1 at optimal.
		repaired := sched.PostProcess(g, s)
		opt := truth.Evaluate(g).PeakParamBytes
		got := repaired.Evaluate(g).PeakParamBytes
		if got <= 0 {
			return 1
		}
		return float64(opt) / float64(got)
	default:
		return sched.Agreement(s, truth)
	}
}

// trainGraph is one sampled graph with its imitation target.
type trainGraph struct {
	g     *graph.Graph
	emb   [][]float64
	gamma []int
	truth sched.Schedule
}

func (tr *Trainer) draw() trainGraph {
	g := tr.sampler.Sample()
	gamma, truth := groundTruth(g, tr.Cfg.Stages, tr.Cfg.GreedyRho)
	return trainGraph{g: g, emb: embed.Graph(g, tr.EmbedCfg), gamma: gamma, truth: truth}
}

// baselineValue returns b(G) for one graph.
func (tr *Trainer) baselineValue(tg trainGraph) float64 {
	switch tr.Cfg.Baseline {
	case BaselineNone:
		return 0
	case BaselineEMA:
		if !tr.emaInit {
			return 0.5
		}
		return tr.ema
	default:
		seq := tr.baseline.Infer(tg.emb)
		return 1 - tr.Reward(tg.g, seq, tg.truth)
	}
}

// Step runs one training iteration and returns its statistics.
func (tr *Trainer) Step(iter int) IterStats {
	start := time.Now()
	stats := IterStats{Iter: iter}
	cfg := tr.Cfg

	for b := 0; b < cfg.BatchSize; b++ {
		tg := tr.draw()
		tape := ad.NewTape()

		if cfg.Supervised {
			res := tr.Model.DecodeForced(tape, tg.emb, tg.gamma)
			// Minimize −log p(γ): seed the log-prob with −1.
			res.LogProb.BackwardWithSeed(-1 / float64(cfg.BatchSize))
			stats.MeanReward += tr.Reward(tg.g, tr.Model.Infer(tg.emb), tg.truth)
			stats.MeanEntropy += res.AvgEntropy
			continue
		}

		res := tr.Model.Decode(tape, tg.emb, true, tr.rng)
		reward := tr.Reward(tg.g, res.Seq, tg.truth)
		cost := 1 - reward
		base := tr.baselineValue(tg)
		adv := cost - base
		// ∇J = E[(cost − b)·∇log p] (Eq. 6); Adam descends the
		// accumulated gradient.
		res.LogProb.BackwardWithSeed(adv / float64(cfg.BatchSize))

		if cfg.Baseline == BaselineEMA {
			if !tr.emaInit {
				tr.ema = cost
				tr.emaInit = true
			} else {
				tr.ema = 0.9*tr.ema + 0.1*cost
			}
		}
		stats.MeanReward += reward
		stats.MeanBase += base
		stats.MeanEntropy += res.AvgEntropy
	}
	stats.MeanReward /= float64(cfg.BatchSize)
	stats.MeanBase /= float64(cfg.BatchSize)
	stats.MeanEntropy /= float64(cfg.BatchSize)
	stats.GradNorm = tr.opt.GradNorm()
	tr.opt.Step()

	// Rollout-baseline challenge: adopt the current model if it beats the
	// snapshot on the held-out evaluation set (greedy vs greedy).
	if cfg.Baseline == BaselineRollout && (iter+1)%cfg.ChallengeEvery == 0 {
		if tr.EvalGreedy(tr.Model) > tr.EvalGreedy(tr.baseline) {
			tr.baseline = tr.Model.Clone()
		}
	}
	stats.Elapsed = time.Since(start)
	return stats
}

// Train runs the configured number of iterations, invoking progress (if
// non-nil) after each.
func (tr *Trainer) Train(progress func(IterStats)) error {
	for i := 0; i < tr.Cfg.Iterations; i++ {
		st := tr.Step(i)
		if progress != nil {
			progress(st)
		}
		if err := nn.CheckFinite(tr.Model.Params()); err != nil {
			return fmt.Errorf("rl: diverged at iteration %d: %w", i, err)
		}
	}
	return nil
}

// EvalGreedy returns the mean greedy-decode reward of m over the held-out
// evaluation set.
func (tr *Trainer) EvalGreedy(m *ptrnet.Model) float64 {
	total := 0.0
	for _, g := range tr.evalSet {
		_, truth := groundTruth(g, tr.Cfg.Stages, tr.Cfg.GreedyRho)
		emb := embed.Graph(g, tr.EmbedCfg)
		total += tr.Reward(g, m.Infer(emb), truth)
	}
	return total / float64(len(tr.evalSet))
}

// Schedule runs RESPECT inference end to end on any graph: embed, greedy
// pointer decode, ρ, post-inference repair. This is the deployment path
// used by all experiments.
func Schedule(m *ptrnet.Model, ecfg embed.Config, g *graph.Graph, numStages int) (sched.Schedule, error) {
	emb := embed.Graph(g, ecfg)
	return deploySeq(g, m.Infer(emb), numStages)
}

// deploySeq is the shared deployment pipeline: sequence-level dependency
// repair (push violating nodes forward), ρ, then the stage-level
// children-same-stage repair.
func deploySeq(g *graph.Graph, seq []int, numStages int) (sched.Schedule, error) {
	repaired, err := sched.RepairSequence(g, seq)
	if err != nil {
		return sched.Schedule{}, fmt.Errorf("rl: inference produced invalid sequence: %w", err)
	}
	s, err := rho(g, repaired, numStages, false)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.PostProcess(g, s), nil
}

// ScheduleSampled is sampling-based inference (Bello et al.'s "sampling"
// decoder): beside the greedy rollout it draws samples stochastic decodes
// and keeps the schedule with the best deployed objective. Solve time
// scales linearly in samples and stays orders of magnitude below exact
// search.
func ScheduleSampled(m *ptrnet.Model, ecfg embed.Config, g *graph.Graph, numStages, samples int, seed int64) (sched.Schedule, error) {
	best, err := Schedule(m, ecfg, g, numStages)
	if err != nil {
		return sched.Schedule{}, err
	}
	bestCost := best.Evaluate(g)
	emb := embed.Graph(g, ecfg)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		s, err := deploySeq(g, m.InferSample(emb, rng), numStages)
		if err != nil {
			return sched.Schedule{}, fmt.Errorf("rl: sampled sequence invalid: %w", err)
		}
		if c := s.Evaluate(g); c.Less(bestCost) {
			best, bestCost = s, c
		}
	}
	return best, nil
}

// ScheduleBeam is beam-search inference: the width most likely node
// orders are decoded jointly and the best deployed objective wins (ties
// to the highest-likelihood sequence via decode order).
func ScheduleBeam(m *ptrnet.Model, ecfg embed.Config, g *graph.Graph, numStages, width int) (sched.Schedule, error) {
	emb := embed.Graph(g, ecfg)
	return deploySeq(g, m.InferBeam(emb, width), numStages)
}
