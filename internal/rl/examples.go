// Replay-example training: the online learning loop (internal/online)
// feeds the REINFORCE step with live-traffic samples instead of the
// synthetic curriculum. Each example carries its own imitation teacher —
// the schedule the serving portfolio's winning backend produced — so no
// exact-solver ground truth is computed here.
package rl

import (
	"math/rand"
	"time"

	ad "respect/internal/autodiff"
	"respect/internal/embed"
	"respect/internal/graph"
	"respect/internal/nn"
	"respect/internal/ptrnet"
	"respect/internal/sched"
)

// Example is one recorded solve used as an imitation target: the graph,
// the teacher schedule (the portfolio winner's), and an importance
// weight. Truth.NumStages fixes the stage count for ρ, so examples with
// different pipeline depths can share a minibatch.
type Example struct {
	// G is the scheduled graph.
	G *graph.Graph
	// Truth is the teacher schedule the reward compares against.
	Truth sched.Schedule
	// Weight scales this example's gradient contribution; 0 means 1.
	// The online loop down-weights deadline-missed periodic samples.
	Weight float64
}

// NewExampleTrainer wraps an existing model for replay-driven training
// via StepExamples. The model is trained in place; callers that serve
// from the same weights must train a Clone. Unlike NewTrainer, no
// synthetic curriculum or held-out evaluation set is built — Step,
// Train and EvalGreedy must not be used on the returned trainer.
func NewExampleTrainer(m *ptrnet.Model, ecfg embed.Config, cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	return &Trainer{
		Cfg:      cfg,
		Model:    m,
		EmbedCfg: ecfg,
		baseline: m.Clone(),
		opt:      nn.NewAdam(m.Params(), cfg.LR),
		rng:      rand.New(rand.NewSource(cfg.Seed + 7)),
	}
}

// rewardAgainst is Reward with the stage count taken from the teacher
// schedule rather than the trainer config: live-traffic examples carry
// per-request pipeline depths.
func (tr *Trainer) rewardAgainst(g *graph.Graph, seq []int, truth sched.Schedule) float64 {
	s, err := rho(g, seq, truth.NumStages, tr.Cfg.GreedyRho)
	if err != nil {
		return 0
	}
	switch tr.Cfg.Reward {
	case RewardDirectObjective:
		repaired := sched.PostProcess(g, s)
		opt := truth.Evaluate(g).PeakParamBytes
		got := repaired.Evaluate(g).PeakParamBytes
		if got <= 0 {
			return 1
		}
		return float64(opt) / float64(got)
	default:
		return sched.Agreement(s, truth)
	}
}

// StepExamples runs one REINFORCE iteration over the given examples
// (Eq. 6, with the teacher schedules standing in for the exact
// scheduler's γ) and returns its statistics. The rollout baseline is
// challenged on the same examples every ChallengeEvery iterations.
func (tr *Trainer) StepExamples(iter int, examples []Example) IterStats {
	start := time.Now()
	stats := IterStats{Iter: iter}
	if len(examples) == 0 {
		return stats
	}
	n := float64(len(examples))
	for _, ex := range examples {
		w := ex.Weight
		if w == 0 {
			w = 1
		}
		emb := embed.Graph(ex.G, tr.EmbedCfg)
		tape := ad.NewTape()
		res := tr.Model.Decode(tape, emb, true, tr.rng)
		reward := tr.rewardAgainst(ex.G, res.Seq, ex.Truth)
		cost := 1 - reward

		base := 0.0
		switch tr.Cfg.Baseline {
		case BaselineNone:
		case BaselineEMA:
			if tr.emaInit {
				base = tr.ema
			} else {
				base = 0.5
			}
			if !tr.emaInit {
				tr.ema, tr.emaInit = cost, true
			} else {
				tr.ema = 0.9*tr.ema + 0.1*cost
			}
		default:
			base = 1 - tr.rewardAgainst(ex.G, tr.baseline.Infer(emb), ex.Truth)
		}
		res.LogProb.BackwardWithSeed((cost - base) * w / n)

		stats.MeanReward += reward
		stats.MeanBase += base
		stats.MeanEntropy += res.AvgEntropy
	}
	stats.MeanReward /= n
	stats.MeanBase /= n
	stats.MeanEntropy /= n
	stats.GradNorm = tr.opt.GradNorm()
	tr.opt.Step()

	if tr.Cfg.Baseline == BaselineRollout && (iter+1)%tr.Cfg.ChallengeEvery == 0 {
		if tr.EvalExamples(tr.Model, examples) > tr.EvalExamples(tr.baseline, examples) {
			tr.baseline = tr.Model.Clone()
		}
	}
	stats.Elapsed = time.Since(start)
	return stats
}

// EvalExamples returns the mean greedy-decode imitation reward of m
// over the examples (weights are ignored: this is an evaluation, not a
// gradient).
func (tr *Trainer) EvalExamples(m *ptrnet.Model, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	total := 0.0
	for _, ex := range examples {
		emb := embed.Graph(ex.G, tr.EmbedCfg)
		total += tr.rewardAgainst(ex.G, m.Infer(emb), ex.Truth)
	}
	return total / float64(len(examples))
}
