package rl

import (
	"testing"

	"respect/internal/embed"
	"respect/internal/models"
	"respect/internal/synth"
)

// smallCfg trains in well under a second.
func smallCfg(seed int64) Config {
	return Config{
		Hidden: 16, NumNodes: 12, Degrees: []int{2, 3}, Stages: 3,
		Iterations: 30, BatchSize: 8, LR: 2e-3, Seed: seed,
	}
}

func TestTrainerImproves(t *testing.T) {
	tr, err := NewTrainer(Config{
		Hidden: 32, NumNodes: 16, Degrees: []int{2, 3}, Stages: 3,
		Iterations: 80, BatchSize: 12, LR: 2e-3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.EvalGreedy(tr.Model)
	if err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	after := tr.EvalGreedy(tr.Model)
	t.Logf("greedy reward %.3f -> %.3f", before, after)
	if after < before+0.1 {
		t.Fatalf("no learning: %.3f -> %.3f", before, after)
	}
}

func TestSupervisedImproves(t *testing.T) {
	cfg := smallCfg(2)
	cfg.Supervised = true
	cfg.Iterations = 60
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.EvalGreedy(tr.Model)
	if err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	after := tr.EvalGreedy(tr.Model)
	t.Logf("supervised greedy reward %.3f -> %.3f", before, after)
	if after < before {
		t.Fatalf("teacher forcing regressed: %.3f -> %.3f", before, after)
	}
}

func TestBaselineVariants(t *testing.T) {
	for _, b := range []BaselineKind{BaselineRollout, BaselineEMA, BaselineNone} {
		cfg := smallCfg(3)
		cfg.Baseline = b
		cfg.Iterations = 10
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Train(nil); err != nil {
			t.Fatalf("baseline %d: %v", b, err)
		}
	}
}

func TestDirectObjectiveReward(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Reward = RewardDirectObjective
	cfg.Iterations = 10
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	// The direct reward must be in (0, 1].
	s, _ := synth.NewSampler(synth.DefaultConfig(2), 5)
	g := s.Sample()
	_, truth := GroundTruth(g, tr.Cfg.Stages)
	r := tr.Reward(g, tr.Model.Infer(embed.Graph(g, tr.EmbedCfg)), truth)
	if r <= 0 || r > 1 {
		t.Fatalf("direct reward %v out of range", r)
	}
}

func TestStagesValidation(t *testing.T) {
	if _, err := NewTrainer(Config{Stages: 1}); err == nil {
		t.Fatal("1-stage training accepted")
	}
}

func TestGroundTruthIsLinearExtension(t *testing.T) {
	s, _ := synth.NewSampler(synth.DefaultConfig(4), 6)
	for i := 0; i < 10; i++ {
		g := s.Sample()
		gamma, truth := GroundTruth(g, 4)
		pos := make([]int, g.NumNodes())
		for i, v := range gamma {
			pos[v] = i
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					t.Fatal("gamma violates dependencies")
				}
			}
		}
		if err := truth.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRewardPerfectImitation(t *testing.T) {
	tr, err := NewTrainer(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := synth.NewSampler(synth.DefaultConfig(2), 8)
	g := s.Sample()
	gamma, truth := GroundTruth(g, tr.Cfg.Stages)
	if r := tr.Reward(g, gamma, truth); r != 1 {
		t.Fatalf("reward of γ itself = %v, want 1", r)
	}
}

func TestRewardInvalidSequenceZero(t *testing.T) {
	tr, err := NewTrainer(smallCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := synth.NewSampler(synth.DefaultConfig(2), 9)
	g := s.Sample()
	_, truth := GroundTruth(g, tr.Cfg.Stages)
	bad := make([]int, g.NumNodes()) // all zeros: repeated nodes
	if r := tr.Reward(g, bad, truth); r != 0 {
		t.Fatalf("reward of invalid sequence = %v", r)
	}
}

func TestScheduleDeploymentPath(t *testing.T) {
	tr, err := NewTrainer(smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Xception", "ResNet50"} {
		g := models.MustLoad(name)
		for _, ns := range []int{4, 6} {
			s, err := Schedule(tr.Model, tr.EmbedCfg, g, ns)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, ns, err)
			}
			if err := s.Validate(g); err != nil {
				t.Fatalf("%s/%d: %v", name, ns, err)
			}
			if !s.SameStageChildrenOK(g) {
				t.Fatalf("%s/%d: children constraint violated", name, ns)
			}
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	run := func() (float64, []float64) {
		cfg := smallCfg(42)
		cfg.Iterations = 10
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Train(nil); err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range tr.Model.Params() {
			flat = append(flat, p.Data...)
		}
		return tr.EvalGreedy(tr.Model), flat
	}
	a, aw := run()
	b, bw := run()
	if a != b {
		t.Fatalf("same seed, different outcomes: %v vs %v", a, b)
	}
	// Same seed must mean bitwise-identical weights, not merely equal
	// eval scores — the online promotion pipeline relies on replayable
	// training.
	if len(aw) != len(bw) {
		t.Fatalf("param counts differ: %d vs %d", len(aw), len(bw))
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("same seed, weights diverge at %d: %v vs %v", i, aw[i], bw[i])
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	tr, err := NewTrainer(smallCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Step(0)
	if st.MeanReward < 0 || st.MeanReward > 1 {
		t.Fatalf("reward %v", st.MeanReward)
	}
	if st.GradNorm < 0 {
		t.Fatalf("grad norm %v", st.GradNorm)
	}
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestDefaultsFilled(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Hidden == 0 || c.NumNodes == 0 || len(c.Degrees) == 0 || c.Stages == 0 ||
		c.Iterations == 0 || c.BatchSize == 0 || c.LR == 0 || c.ChallengeEvery == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
}

func TestScheduleSampledNeverWorseThanGreedy(t *testing.T) {
	tr, err := NewTrainer(smallCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	g := models.MustLoad("Xception")
	greedy, err := Schedule(tr.Model, tr.EmbedCfg, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := ScheduleSampled(tr.Model, tr.EmbedCfg, g, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	gc, sc := greedy.Evaluate(g), sampled.Evaluate(g)
	if gc.Less(sc) {
		t.Fatalf("sampling made things worse: greedy %v, sampled %v", gc, sc)
	}
	if err := sampled.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !sampled.SameStageChildrenOK(g) {
		t.Fatal("sampled schedule not hardware-ready")
	}
}

func TestScheduleBeamValid(t *testing.T) {
	tr, err := NewTrainer(smallCfg(33))
	if err != nil {
		t.Fatal(err)
	}
	g := models.MustLoad("Xception")
	s, err := ScheduleBeam(tr.Model, tr.EmbedCfg, g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !s.SameStageChildrenOK(g) {
		t.Fatal("beam schedule not hardware-ready")
	}
}

func TestGreedyRhoAblationTrains(t *testing.T) {
	cfg := smallCfg(40)
	cfg.GreedyRho = true
	cfg.Iterations = 8
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	// Greedy-rho rewards must stay in [0, 1].
	if r := tr.EvalGreedy(tr.Model); r < 0 || r > 1 {
		t.Fatalf("reward %v", r)
	}
}

func TestScheduleSampledDeterministic(t *testing.T) {
	tr, err := NewTrainer(smallCfg(41))
	if err != nil {
		t.Fatal(err)
	}
	g := models.MustLoad("Xception")
	a, err := ScheduleSampled(tr.Model, tr.EmbedCfg, g, 4, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleSampled(tr.Model, tr.EmbedCfg, g, 4, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Stage {
		if a.Stage[i] != b.Stage[i] {
			t.Fatal("same seed, different sampled schedule")
		}
	}
}
