package rl

import (
	"sync"
	"testing"

	"math/rand"

	"respect/internal/embed"
	"respect/internal/graph"
	"respect/internal/ptrnet"
)

// intree builds a binary-reduction DAG in which every node has at most
// one successor. On such graphs PostProcess's sibling-class merging is
// a no-op, so the deployed schedule cost genuinely depends on the
// emission order — the property the reward-sanity and online-loop
// tests need. (Dense synthetic DAGs collapse to a few sibling classes
// and deploy to the same cost for any order.)
func intree(t testing.TB, leaves int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("intree")
	var cur []int
	for i := 0; i < leaves; i++ {
		cur = append(cur, g.AddNode(graph.Node{Name: "leaf", ParamBytes: int64(50 + rng.Intn(400)), OutBytes: int64(5 + rng.Intn(40))}))
	}
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			v := g.AddNode(graph.Node{Name: "merge", ParamBytes: int64(50 + rng.Intn(400)), OutBytes: int64(5 + rng.Intn(40))})
			g.AddEdge(cur[i], v)
			g.AddEdge(cur[i+1], v)
			next = append(next, v)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return g.MustBuild()
}

// exampleSet builds a fixed tiny graph set with exact-solver teachers —
// the "fixed tiny graph set" of the reward-sanity satellite.
func exampleSet(t *testing.T, n int, stages int, seed int64) []Example {
	t.Helper()
	exs := make([]Example, n)
	for i := range exs {
		g := intree(t, 6+i%3, seed+int64(i))
		_, truth := GroundTruth(g, stages)
		exs[i] = Example{G: g, Truth: truth}
	}
	return exs
}

// meanDeployedCost scores a model by the deployed pipeline (repair, ρ,
// post-process) on the examples' graphs: the metric that must strictly
// improve under training.
func meanDeployedCost(t *testing.T, m *ptrnet.Model, ecfg embed.Config, exs []Example) float64 {
	t.Helper()
	total := 0.0
	for _, ex := range exs {
		s, err := deploySeq(ex.G, m.Infer(embed.Graph(ex.G, ecfg)), ex.Truth.NumStages)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(s.Evaluate(ex.G).PeakParamBytes)
	}
	return total / float64(len(exs))
}

// TestExampleTrainingImprovesCost: training on a fixed tiny graph set
// strictly improves the mean deployed schedule cost (reward-signal
// sanity for the online loop).
func TestExampleTrainingImprovesCost(t *testing.T) {
	exs := exampleSet(t, 6, 4, 60)
	cfg := smallCfg(61)
	cfg.LR = 5e-3
	seed := newModel(t, cfg)
	tr := NewExampleTrainer(seed.Clone(), embed.Default(), cfg)

	before := meanDeployedCost(t, tr.Model, tr.EmbedCfg, exs)
	rewardFirst := tr.EvalExamples(tr.Model, exs)
	for i := 0; i < 60; i++ {
		tr.StepExamples(i, exs)
	}
	after := meanDeployedCost(t, tr.Model, tr.EmbedCfg, exs)
	rewardLast := tr.EvalExamples(tr.Model, exs)
	t.Logf("deployed cost %.0f -> %.0f, imitation reward %.3f -> %.3f", before, after, rewardFirst, rewardLast)
	if after >= before {
		t.Fatalf("mean cost did not strictly improve: %.0f -> %.0f", before, after)
	}
	if rewardLast <= rewardFirst {
		t.Fatalf("imitation reward did not rise: %.3f -> %.3f", rewardFirst, rewardLast)
	}
}

// TestExampleTrainingDeterministic: same seed, same examples → bitwise
// identical weights after training.
func TestExampleTrainingDeterministic(t *testing.T) {
	run := func() []float64 {
		exs := exampleSet(t, 3, 3, 70)
		cfg := smallCfg(71)
		tr := NewExampleTrainer(newModel(t, cfg), embed.Default(), cfg)
		for i := 0; i < 10; i++ {
			tr.StepExamples(i, exs)
		}
		var flat []float64
		for _, p := range tr.Model.Params() {
			flat = append(flat, p.Data...)
		}
		return flat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("param counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestExampleMixedStages: examples with different pipeline depths share
// a minibatch; rewards use each teacher's own stage count.
func TestExampleMixedStages(t *testing.T) {
	exs := append(exampleSet(t, 2, 2, 80), exampleSet(t, 2, 4, 81)...)
	cfg := smallCfg(82)
	tr := NewExampleTrainer(newModel(t, cfg), embed.Default(), cfg)
	st := tr.StepExamples(0, exs)
	if st.MeanReward <= 0 {
		t.Fatalf("no reward signal from mixed-stage batch: %+v", st)
	}
}

// TestConcurrentInferenceDuringTraining is the deployment contract of
// the online loop under -race: serving runs Infer on a promoted clone
// while the trainer mutates the candidate's weights. Inference on the
// frozen clone and on the training model's own Clone snapshots must be
// race-free; only the trainer touches the candidate.
func TestConcurrentInferenceDuringTraining(t *testing.T) {
	exs := exampleSet(t, 3, 3, 90)
	cfg := smallCfg(91)
	incumbent := newModel(t, cfg)  // the serving model
	candidate := incumbent.Clone() // the model under training
	tr := NewExampleTrainer(candidate, embed.Default(), cfg)

	embs := make([][][]float64, len(exs))
	for i, ex := range exs {
		embs[i] = embed.Graph(ex.G, tr.EmbedCfg)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				incumbent.Infer(embs[(w+i)%len(embs)])
			}
		}(w)
	}
	for i := 0; i < 6; i++ {
		tr.StepExamples(i, exs)
	}
	// Promotion under load: clone the trained candidate while serving
	// keeps hammering the incumbent, then serve from the clone too.
	promoted := tr.Model.Clone()
	if got := promoted.Infer(embs[0]); len(got) != exs[0].G.NumNodes() {
		t.Fatalf("promoted clone decode: %v", got)
	}
	close(stop)
	wg.Wait()
}

// newModel builds a fresh model matching cfg's embedding width.
func newModel(t *testing.T, cfg Config) *ptrnet.Model {
	t.Helper()
	return ptrnet.New(ptrnet.Config{InputDim: embed.Default().Dim(), Hidden: cfg.Hidden, Seed: cfg.Seed})
}
