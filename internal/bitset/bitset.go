// Package bitset implements a fixed-capacity bit set used by the exact
// scheduler to represent order ideals (downward-closed node sets) compactly
// and hashably.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bit set over [0, n) backed by 64-bit words.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the capacity n the set was created with.
func (s *Set) Cap() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with o (capacities must match).
func (s *Set) CopyFrom(o *Set) {
	copy(s.words, o.words)
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether the two sets have identical contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Union sets s = s ∪ o.
func (s *Set) Union(o *Set) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// Diff sets s = s \ o.
func (s *Set) Diff(o *Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Intersect sets s = s ∩ o.
func (s *Set) Intersect(o *Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Intersects reports whether s ∩ o is non-empty without materializing the
// intersection — the word-wise test the exact solver's children-rule inner
// loop runs per candidate node.
func (s *Set) Intersects(o *Set) bool {
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the smallest set bit >= i, or -1 when no such bit
// exists. It scans whole words, so iterating a sparse set costs
// O(words + bits) rather than O(capacity).
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i >> 6
	w := s.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// IntersectsRange reports whether s has any set bit in [lo, hi).
func (s *Set) IntersectsRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return false
	}
	next := s.NextSet(lo)
	return next >= 0 && next < hi
}

// ForEach calls f for every set bit in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<6 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the set bits in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Key returns a string usable as a map key identifying the set contents.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 17)
	for _, w := range s.words {
		b.WriteString(strconv.FormatUint(w, 16))
		b.WriteByte(':')
	}
	return b.String()
}

// AppendKey appends a compact binary encoding of the set contents to dst
// and returns the extended slice. Unlike Key it allocates nothing when dst
// has capacity, so map probes of the form m[string(buf)] stay on the
// compiler's no-copy fast path — the exact solver's memoization lookups
// run through this.
func (s *Set) AppendKey(dst []byte) []byte {
	for _, w := range s.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// String renders the set like "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
