// Package bitset implements a fixed-capacity bit set used by the exact
// scheduler to represent order ideals (downward-closed node sets) compactly
// and hashably.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bit set over [0, n) backed by 64-bit words.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the capacity n the set was created with.
func (s *Set) Cap() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with o (capacities must match).
func (s *Set) CopyFrom(o *Set) {
	copy(s.words, o.words)
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether the two sets have identical contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Union sets s = s ∪ o.
func (s *Set) Union(o *Set) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// Diff sets s = s \ o.
func (s *Set) Diff(o *Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Intersect sets s = s ∩ o.
func (s *Set) Intersect(o *Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// ForEach calls f for every set bit in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<6 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the set bits in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Key returns a string usable as a map key identifying the set contents.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 17)
	for _, w := range s.words {
		b.WriteString(strconv.FormatUint(w, 16))
		b.WriteByte(':')
	}
	return b.String()
}

// String renders the set like "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
