package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("spurious bits set")
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear failed")
	}
}

func TestElemsOrdered(t *testing.T) {
	s := New(200)
	want := []int{3, 17, 64, 65, 130, 199}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Elems[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	u := a.Clone()
	u.Union(b)
	if u.Count() != 3 || !u.Has(1) || !u.Has(2) || !u.Has(3) {
		t.Errorf("Union wrong: %v", u)
	}

	d := a.Clone()
	d.Diff(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("Diff wrong: %v", d)
	}

	i := a.Clone()
	i.Intersect(b)
	if i.Count() != 1 || !i.Has(2) {
		t.Errorf("Intersect wrong: %v", i)
	}

	if !d.SubsetOf(a) || d.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(5)
	b.Set(69)
	if a.Key() == b.Key() {
		t.Error("distinct sets share Key")
	}
	c := a.Clone()
	if a.Key() != c.Key() {
		t.Error("clone Key differs")
	}
}

func TestEqualAndCopyFrom(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := New(70)
	if a.Equal(b) {
		t.Error("Equal on different sets")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Error("CopyFrom then not Equal")
	}
	if a.Equal(New(71)) {
		t.Error("Equal across capacities")
	}
}

func TestQuickSetSemantics(t *testing.T) {
	// Compare against a map-based reference implementation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := map[int]bool{}
		for op := 0; op < 100; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, e := range s.Elems() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(4)
	if got := s.String(); got != "{1, 4}" {
		t.Errorf("String = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(200), New(200)
	if a.Intersects(b) {
		t.Fatal("empty sets must not intersect")
	}
	a.Set(65)
	b.Set(66)
	if a.Intersects(b) {
		t.Fatal("disjoint sets must not intersect")
	}
	b.Set(65)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("sets sharing bit 65 must intersect (both directions)")
	}
	b.Clear(65)
	a.Set(199)
	b.Set(199)
	if !a.Intersects(b) {
		t.Fatal("sets sharing the last bit must intersect")
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	for _, i := range []int{3, 63, 64, 190, 299} {
		s.Set(i)
	}
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 63}, {63, 63}, {64, 64},
		{65, 190}, {191, 299}, {299, 299}, {300, -1}, {1000, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("empty NextSet(0) = %d, want -1", got)
	}
}

func TestNextSetMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(513)
	var want []int
	for i := 0; i < 513; i++ {
		if rng.Intn(9) == 0 {
			s.Set(i)
			want = append(want, i)
		}
	}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk found %d bits, ForEach-equivalent %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("walk[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIntersectsRange(t *testing.T) {
	s := New(200)
	s.Set(64)
	s.Set(130)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 64, false}, {0, 65, true}, {64, 65, true}, {65, 130, false},
		{65, 131, true}, {131, 200, false}, {-10, 500, true}, {70, 70, false},
		{100, 50, false},
	}
	for _, c := range cases {
		if got := s.IntersectsRange(c.lo, c.hi); got != c.want {
			t.Errorf("IntersectsRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := map[string]string{}
	for trial := 0; trial < 200; trial++ {
		s := New(1 + rng.Intn(150))
		for i := 0; i < s.Cap(); i++ {
			if rng.Intn(3) == 0 {
				s.Set(i)
			}
		}
		bin := string(s.AppendKey(nil))
		hex := s.Key()
		if prevHex, ok := seen[bin]; ok && prevHex != hex {
			t.Fatalf("AppendKey collided across distinct Key() contents: %q vs %q", prevHex, hex)
		}
		seen[bin] = hex
	}
	// Reusing a buffer must not corrupt earlier contents semantics.
	s := New(70)
	s.Set(69)
	buf := make([]byte, 0, 64)
	first := string(s.AppendKey(buf[:0]))
	s.Clear(69)
	s.Set(0)
	second := string(s.AppendKey(buf[:0]))
	if first == second {
		t.Fatal("distinct sets encoded identically")
	}
}
