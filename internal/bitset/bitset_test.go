package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("spurious bits set")
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear failed")
	}
}

func TestElemsOrdered(t *testing.T) {
	s := New(200)
	want := []int{3, 17, 64, 65, 130, 199}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Elems[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	u := a.Clone()
	u.Union(b)
	if u.Count() != 3 || !u.Has(1) || !u.Has(2) || !u.Has(3) {
		t.Errorf("Union wrong: %v", u)
	}

	d := a.Clone()
	d.Diff(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("Diff wrong: %v", d)
	}

	i := a.Clone()
	i.Intersect(b)
	if i.Count() != 1 || !i.Has(2) {
		t.Errorf("Intersect wrong: %v", i)
	}

	if !d.SubsetOf(a) || d.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(5)
	b.Set(69)
	if a.Key() == b.Key() {
		t.Error("distinct sets share Key")
	}
	c := a.Clone()
	if a.Key() != c.Key() {
		t.Error("clone Key differs")
	}
}

func TestEqualAndCopyFrom(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := New(70)
	if a.Equal(b) {
		t.Error("Equal on different sets")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Error("CopyFrom then not Equal")
	}
	if a.Equal(New(71)) {
		t.Error("Equal across capacities")
	}
}

func TestQuickSetSemantics(t *testing.T) {
	// Compare against a map-based reference implementation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := map[int]bool{}
		for op := 0; op < 100; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, e := range s.Elems() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(4)
	if got := s.String(); got != "{1, 4}" {
		t.Errorf("String = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}
