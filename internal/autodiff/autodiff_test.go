package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"respect/internal/tensor"
)

func TestMatMulForward(t *testing.T) {
	tp := NewTape()
	a := tp.Input(tensor.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	b := tp.Input(tensor.FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12}))
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestBackwardSimple(t *testing.T) {
	// f = sum(a ∘ a): df/da = 2a.
	m := tensor.FromSlice(1, 3, []float64{1, -2, 3})
	tp := NewTape()
	a := tp.Param(m)
	out := Sum(Mul(a, a))
	out.Backward()
	want := []float64{2, -4, 6}
	for i, g := range m.Grad {
		if math.Abs(g-want[i]) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", i, g, want[i])
		}
	}
}

func TestGradCheckDenseChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w1 := tensor.Xavier(3, 4, rng)
	w2 := tensor.Xavier(4, 1, rng)
	b := tensor.Xavier(1, 4, rng)
	x := tensor.FromSlice(1, 3, []float64{0.3, -0.7, 1.1})
	worst, err := GradCheck([]*tensor.Mat{w1, w2, b}, func(tp *Tape) Value {
		xv := tp.Input(x)
		h := Tanh(Add(MatMul(xv, tp.Param(w1)), tp.Param(b)))
		return Sum(Sigmoid(MatMul(h, tp.Param(w2))))
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestGradCheckAttentionPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := tensor.Xavier(5, 4, rng) // encoder contexts as a parameter
	w1 := tensor.Xavier(4, 4, rng)
	w2 := tensor.Xavier(4, 4, rng)
	v := tensor.Xavier(4, 1, rng)
	d := tensor.Xavier(1, 4, rng)
	mask := []bool{true, false, true, true, false}
	worst, err := GradCheck([]*tensor.Mat{e, w1, w2, v, d}, func(tp *Tape) Value {
		ev := tp.Param(e)
		s := Tanh(AddRowBroadcast(MatMul(ev, tp.Param(w1)), MatMul(tp.Param(d), tp.Param(w2))))
		scores := MatMul(s, tp.Param(v))
		p := SoftmaxMasked(scores, mask)
		// Glimpse-weighted context then a log-pick: the full pointer path.
		g := MatMul(Transpose(p), ev)
		return Add(LogPick(p, 2), Sum(Mul(g, g)))
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestGradCheckSliceConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.Xavier(1, 6, rng)
	worst, err := GradCheck([]*tensor.Mat{a}, func(tp *Tape) Value {
		av := tp.Param(a)
		lo := Slice(av, 0, 3)
		hi := Slice(av, 3, 6)
		cat := Concat(Mul(lo, hi), Scale(lo, 0.5))
		return Sum(Tanh(cat))
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestGradCheckStackRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r1 := tensor.Xavier(1, 3, rng)
	r2 := tensor.Xavier(1, 3, rng)
	w := tensor.Xavier(3, 1, rng)
	worst, err := GradCheck([]*tensor.Mat{r1, r2, w}, func(tp *Tape) Value {
		m := StackRows([]Value{tp.Param(r1), Tanh(tp.Param(r2))})
		return Sum(MatMul(m, tp.Param(w)))
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestSoftmaxMaskedZeroesMasked(t *testing.T) {
	tp := NewTape()
	a := tp.InputVec([]float64{5, 1, 3})
	p := SoftmaxMasked(Transpose(a), []bool{true, false, true})
	d := p.Data()
	if d[1] != 0 {
		t.Fatalf("masked prob = %v", d[1])
	}
	if math.Abs(d[0]+d[2]-1) > 1e-12 {
		t.Fatalf("probs sum to %v", d[0]+d[2])
	}
	if d[0] <= d[2] {
		t.Fatal("higher logit got lower probability")
	}
}

func TestSoftmaxMaskedEmptyMaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tp := NewTape()
	a := tp.InputVec([]float64{1, 2})
	SoftmaxMasked(Transpose(a), []bool{false, false})
}

func TestCrossTapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	t1, t2 := NewTape(), NewTape()
	a := t1.InputVec([]float64{1})
	b := t2.InputVec([]float64{1})
	Add(a, b)
}

func TestBackwardOnNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tp := NewTape()
	a := tp.InputVec([]float64{1, 2})
	a.Backward()
}

func TestBackwardWithSeed(t *testing.T) {
	m := tensor.FromSlice(1, 2, []float64{3, 4})
	tp := NewTape()
	a := tp.Param(m)
	out := Sum(a)
	out.BackwardWithSeed(2.5)
	for i, g := range m.Grad {
		if g != 2.5 {
			t.Fatalf("grad[%d] = %v, want 2.5", i, g)
		}
	}
}

func TestParamGradAccumulatesAcrossTapes(t *testing.T) {
	m := tensor.FromSlice(1, 1, []float64{2})
	for i := 0; i < 3; i++ {
		tp := NewTape()
		Sum(tp.Param(m)).Backward()
	}
	if m.Grad[0] != 3 {
		t.Fatalf("accumulated grad = %v, want 3", m.Grad[0])
	}
}

func TestAddRowBroadcastForward(t *testing.T) {
	tp := NewTape()
	a := tp.Input(tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	b := tp.InputVec([]float64{10, 20})
	c := AddRowBroadcast(a, b)
	want := []float64{11, 22, 13, 24}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("broadcast[%d] = %v", i, v)
		}
	}
}
