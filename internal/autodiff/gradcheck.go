package autodiff

import (
	"fmt"
	"math"

	"respect/internal/tensor"
)

// GradCheck compares the analytic gradient of f with central finite
// differences for every entry of every parameter. f must build a fresh
// computation on the supplied tape and return a scalar value. It returns
// the largest relative error observed.
//
// It is exported (rather than test-local) so higher-level packages (nn,
// ptrnet) can gradient-check their composite architectures too.
func GradCheck(params []*tensor.Mat, f func(t *Tape) Value) (float64, error) {
	// Analytic pass.
	for _, p := range params {
		p.EnsureGrad()
		p.ZeroGrad()
	}
	tape := NewTape()
	out := f(tape)
	out.Backward()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}

	eval := func() float64 {
		t := NewTape()
		return f(t).Data()[0]
	}

	const h = 1e-5
	worst := 0.0
	for pi, p := range params {
		for j := range p.Data {
			orig := p.Data[j]
			p.Data[j] = orig + h
			fp := eval()
			p.Data[j] = orig - h
			fm := eval()
			p.Data[j] = orig
			num := (fp - fm) / (2 * h)
			ana := analytic[pi][j]
			denom := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			rel := math.Abs(num-ana) / denom
			if rel > worst {
				worst = rel
			}
			if rel > 1e-4 {
				return rel, fmt.Errorf("autodiff: gradcheck param %d entry %d: analytic %g vs numeric %g (rel %g)",
					pi, j, ana, num, rel)
			}
		}
	}
	return worst, nil
}
