// Package autodiff implements tape-based reverse-mode automatic
// differentiation over dense matrices — the training engine behind the
// LSTM-PtrNet. A Tape records operations as they execute; Backward replays
// the tape in reverse, accumulating gradients into the underlying
// tensor.Mat buffers (shared with persistent parameters).
//
// The op set is exactly what the pointer network needs: affine maps,
// elementwise nonlinearities, concatenation/slicing for LSTM gates,
// row-stacking for encoder contexts, broadcast additions and masked
// softmax attention with log-probability picks for REINFORCE.
package autodiff

import (
	"fmt"
	"math"

	"respect/internal/tensor"
)

// Value is a handle to a node on a Tape.
type Value struct {
	t  *Tape
	id int
}

type node struct {
	out      *tensor.Mat
	backward func()
}

// Tape records a computation for reverse-mode differentiation. Create one
// per training step.
type Tape struct {
	nodes []node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NumOps returns the number of recorded operations.
func (t *Tape) NumOps() int { return len(t.nodes) }

func (t *Tape) push(out *tensor.Mat, backward func()) Value {
	out.EnsureGrad()
	t.nodes = append(t.nodes, node{out: out, backward: backward})
	return Value{t: t, id: len(t.nodes) - 1}
}

func (v Value) mat() *tensor.Mat { return v.t.nodes[v.id].out }

// Shape returns (rows, cols).
func (v Value) Shape() (int, int) {
	m := v.mat()
	return m.Rows, m.Cols
}

// Data exposes the forward values (do not mutate).
func (v Value) Data() []float64 { return v.mat().Data }

// Grad exposes the accumulated gradient after Backward.
func (v Value) Grad() []float64 { return v.mat().Grad }

// Param registers a persistent parameter matrix on the tape. The tape
// shares the matrix's Data and Grad buffers, so Backward accumulates into
// the optimizer-visible gradient.
func (t *Tape) Param(m *tensor.Mat) Value {
	m.EnsureGrad()
	return t.push(m, nil)
}

// Input registers a constant input (no gradient propagated out).
func (t *Tape) Input(m *tensor.Mat) Value {
	return t.push(m, nil)
}

// InputVec registers a 1×n constant row vector copied from data.
func (t *Tape) InputVec(data []float64) Value {
	return t.Input(tensor.FromSlice(1, len(data), data))
}

// Backward seeds v (which must be 1×1) with gradient 1 and propagates the
// whole tape backwards.
func (v Value) Backward() {
	m := v.mat()
	if m.Rows != 1 || m.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward on %dx%d value", m.Rows, m.Cols))
	}
	v.BackwardWithSeed(1)
}

// BackwardWithSeed seeds a 1×1 value with the given gradient — used by
// REINFORCE where the scalar log-probability is weighted by the advantage.
func (v Value) BackwardWithSeed(seed float64) {
	m := v.mat()
	if m.Rows != 1 || m.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward on %dx%d value", m.Rows, m.Cols))
	}
	m.Grad[0] += seed
	t := v.t
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].backward != nil {
			t.nodes[i].backward()
		}
	}
}

func sameTape(a, b Value) *Tape {
	if a.t != b.t {
		panic("autodiff: values from different tapes")
	}
	return a.t
}

// MatMul returns a·b.
func MatMul(a, b Value) Value {
	t := sameTape(a, b)
	am, bm := a.mat(), b.mat()
	out := tensor.New(am.Rows, bm.Cols)
	tensor.MatMulInto(out, am, bm)
	return t.push(out, func() {
		// dA += dOut·Bᵀ ; dB += Aᵀ·dOut
		for i := 0; i < am.Rows; i++ {
			for k := 0; k < am.Cols; k++ {
				var s float64
				br := bm.Data[k*bm.Cols : (k+1)*bm.Cols]
				gr := out.Grad[i*out.Cols : (i+1)*out.Cols]
				for j := range br {
					s += gr[j] * br[j]
				}
				am.Grad[i*am.Cols+k] += s
			}
		}
		for k := 0; k < bm.Rows; k++ {
			for j := 0; j < bm.Cols; j++ {
				var s float64
				for i := 0; i < am.Rows; i++ {
					s += am.Data[i*am.Cols+k] * out.Grad[i*out.Cols+j]
				}
				bm.Grad[k*bm.Cols+j] += s
			}
		}
	})
}

// Add returns a + b (same shape).
func Add(a, b Value) Value {
	t := sameTape(a, b)
	am, bm := a.mat(), b.mat()
	checkSameShape("Add", am, bm)
	out := tensor.New(am.Rows, am.Cols)
	for i := range out.Data {
		out.Data[i] = am.Data[i] + bm.Data[i]
	}
	return t.push(out, func() {
		for i := range out.Grad {
			am.Grad[i] += out.Grad[i]
			bm.Grad[i] += out.Grad[i]
		}
	})
}

// Mul returns the elementwise (Hadamard) product a ∘ b.
func Mul(a, b Value) Value {
	t := sameTape(a, b)
	am, bm := a.mat(), b.mat()
	checkSameShape("Mul", am, bm)
	out := tensor.New(am.Rows, am.Cols)
	for i := range out.Data {
		out.Data[i] = am.Data[i] * bm.Data[i]
	}
	return t.push(out, func() {
		for i := range out.Grad {
			am.Grad[i] += out.Grad[i] * bm.Data[i]
			bm.Grad[i] += out.Grad[i] * am.Data[i]
		}
	})
}

// Scale returns s·a for a constant s.
func Scale(a Value, s float64) Value {
	am := a.mat()
	out := tensor.New(am.Rows, am.Cols)
	for i := range out.Data {
		out.Data[i] = am.Data[i] * s
	}
	return a.t.push(out, func() {
		for i := range out.Grad {
			am.Grad[i] += out.Grad[i] * s
		}
	})
}

// Tanh applies tanh elementwise.
func Tanh(a Value) Value {
	am := a.mat()
	out := tensor.New(am.Rows, am.Cols)
	for i, v := range am.Data {
		out.Data[i] = math.Tanh(v)
	}
	return a.t.push(out, func() {
		for i := range out.Grad {
			am.Grad[i] += out.Grad[i] * (1 - out.Data[i]*out.Data[i])
		}
	})
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a Value) Value {
	am := a.mat()
	out := tensor.New(am.Rows, am.Cols)
	for i, v := range am.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return a.t.push(out, func() {
		for i := range out.Grad {
			am.Grad[i] += out.Grad[i] * out.Data[i] * (1 - out.Data[i])
		}
	})
}

// Slice returns columns [lo, hi) of a row vector (1×n).
func Slice(a Value, lo, hi int) Value {
	am := a.mat()
	if am.Rows != 1 || lo < 0 || hi > am.Cols || lo >= hi {
		panic(fmt.Sprintf("autodiff: Slice[%d:%d] of 1x%d", lo, hi, am.Cols))
	}
	out := tensor.New(1, hi-lo)
	copy(out.Data, am.Data[lo:hi])
	return a.t.push(out, func() {
		for i := range out.Grad {
			am.Grad[lo+i] += out.Grad[i]
		}
	})
}

// StackRows stacks n equal-width row vectors into an n×d matrix.
func StackRows(rows []Value) Value {
	if len(rows) == 0 {
		panic("autodiff: StackRows of nothing")
	}
	t := rows[0].t
	d := rows[0].mat().Cols
	out := tensor.New(len(rows), d)
	mats := make([]*tensor.Mat, len(rows))
	for i, r := range rows {
		m := r.mat()
		if m.Rows != 1 || m.Cols != d {
			panic("autodiff: StackRows shape mismatch")
		}
		mats[i] = m
		copy(out.Data[i*d:(i+1)*d], m.Data)
	}
	return t.push(out, func() {
		for i, m := range mats {
			for j := 0; j < d; j++ {
				m.Grad[j] += out.Grad[i*d+j]
			}
		}
	})
}

// AddRowBroadcast adds row vector b (1×d) to every row of a (n×d).
func AddRowBroadcast(a, b Value) Value {
	t := sameTape(a, b)
	am, bm := a.mat(), b.mat()
	if bm.Rows != 1 || bm.Cols != am.Cols {
		panic(fmt.Sprintf("autodiff: broadcast 1x%d over %dx%d", bm.Cols, am.Rows, am.Cols))
	}
	out := tensor.New(am.Rows, am.Cols)
	for i := 0; i < am.Rows; i++ {
		for j := 0; j < am.Cols; j++ {
			out.Data[i*am.Cols+j] = am.Data[i*am.Cols+j] + bm.Data[j]
		}
	}
	return t.push(out, func() {
		for i := 0; i < am.Rows; i++ {
			for j := 0; j < am.Cols; j++ {
				g := out.Grad[i*am.Cols+j]
				am.Grad[i*am.Cols+j] += g
				bm.Grad[j] += g
			}
		}
	})
}

// Transpose returns aᵀ.
func Transpose(a Value) Value {
	am := a.mat()
	out := tensor.New(am.Cols, am.Rows)
	for i := 0; i < am.Rows; i++ {
		for j := 0; j < am.Cols; j++ {
			out.Data[j*am.Rows+i] = am.Data[i*am.Cols+j]
		}
	}
	return a.t.push(out, func() {
		for i := 0; i < am.Rows; i++ {
			for j := 0; j < am.Cols; j++ {
				am.Grad[i*am.Cols+j] += out.Grad[j*am.Rows+i]
			}
		}
	})
}

// SoftmaxMasked computes softmax over a column vector (n×1), forcing the
// probability of masked-out entries to zero (the paper's −∞ logit rule for
// already-scheduled nodes). mask[i] == true means entry i is allowed.
func SoftmaxMasked(a Value, mask []bool) Value {
	am := a.mat()
	if am.Cols != 1 || len(mask) != am.Rows {
		panic(fmt.Sprintf("autodiff: SoftmaxMasked on %dx%d with %d mask bits", am.Rows, am.Cols, len(mask)))
	}
	out := tensor.New(am.Rows, 1)
	maxv := math.Inf(-1)
	for i, v := range am.Data {
		if mask[i] && v > maxv {
			maxv = v
		}
	}
	if math.IsInf(maxv, -1) {
		panic("autodiff: SoftmaxMasked with empty mask")
	}
	var sum float64
	for i, v := range am.Data {
		if mask[i] {
			out.Data[i] = math.Exp(v - maxv)
			sum += out.Data[i]
		}
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	maskCopy := append([]bool(nil), mask...)
	return a.t.push(out, func() {
		// dL/dx_i = y_i (g_i − Σ_j g_j y_j) over allowed entries.
		var dot float64
		for i := range out.Data {
			dot += out.Grad[i] * out.Data[i]
		}
		for i := range out.Data {
			if maskCopy[i] {
				am.Grad[i] += out.Data[i] * (out.Grad[i] - dot)
			}
		}
	})
}

// LogPick returns log(p[idx]) of a probability column vector as a 1×1
// value — the REINFORCE log-probability of the chosen node.
func LogPick(p Value, idx int) Value {
	pm := p.mat()
	if pm.Cols != 1 || idx < 0 || idx >= pm.Rows {
		panic(fmt.Sprintf("autodiff: LogPick(%d) on %dx%d", idx, pm.Rows, pm.Cols))
	}
	out := tensor.New(1, 1)
	v := pm.Data[idx]
	const floor = 1e-300
	if v < floor {
		v = floor
	}
	out.Data[0] = math.Log(v)
	return p.t.push(out, func() {
		pm.Grad[idx] += out.Grad[0] / v
	})
}

// Sum returns the sum of all elements as a 1×1 value.
func Sum(a Value) Value {
	am := a.mat()
	out := tensor.New(1, 1)
	for _, v := range am.Data {
		out.Data[0] += v
	}
	return a.t.push(out, func() {
		for i := range am.Grad {
			am.Grad[i] += out.Grad[0]
		}
	})
}

// Concat concatenates row vectors horizontally (all 1×*).
func Concat(vs ...Value) Value {
	if len(vs) == 0 {
		panic("autodiff: Concat of nothing")
	}
	t := vs[0].t
	total := 0
	for _, v := range vs {
		if v.mat().Rows != 1 {
			panic("autodiff: Concat of non-row values")
		}
		total += v.mat().Cols
	}
	out := tensor.New(1, total)
	off := 0
	offs := make([]int, len(vs))
	for i, v := range vs {
		offs[i] = off
		copy(out.Data[off:], v.mat().Data)
		off += v.mat().Cols
	}
	return t.push(out, func() {
		for i, v := range vs {
			m := v.mat()
			for j := 0; j < m.Cols; j++ {
				m.Grad[j] += out.Grad[offs[i]+j]
			}
		}
	})
}

func checkSameShape(op string, a, b *tensor.Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("autodiff: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
