package bench

import (
	"os"
	"testing"
	"time"

	"respect/internal/embed"
	"respect/internal/exact"
	"respect/internal/heur"
	"respect/internal/models"
	"respect/internal/ptrnet"
	"respect/internal/rl"
)

// TestAgentQuality is a diagnostic over the committed reference agent; it
// is skipped when the weights file is absent (e.g. fresh clones).
func TestAgentQuality(t *testing.T) {
	const path = "/root/repo/respect-agent.gob"
	if _, err := os.Stat(path); err != nil {
		t.Skip("no reference agent present")
	}
	m, err := ptrnet.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := embed.Default()
	for _, name := range []string{"Xception", "ResNet50", "DenseNet121", "ResNet152", "InceptionResNetv2"} {
		g := models.MustLoad(name)
		for _, ns := range []int{4, 6} {
			opt := exact.Solve(g, ns, exact.Options{Timeout: 30 * time.Second, MaxStates: 100_000_000})
			comp := heur.GreedyBalanced(g, ns).Evaluate(g)
			greedy, _ := rl.Schedule(m, ecfg, g, ns)
			sampled, _ := rl.ScheduleSampled(m, ecfg, g, ns, 16, 1)
			t.Logf("%s/%d: opt=%.3f comp=%.3f RLgreedy=%.3f RLsampled16=%.3f (MiB)",
				name, ns,
				float64(opt.Cost.PeakParamBytes)/(1<<20),
				float64(comp.PeakParamBytes)/(1<<20),
				float64(greedy.Evaluate(g).PeakParamBytes)/(1<<20),
				float64(sampled.Evaluate(g).PeakParamBytes)/(1<<20))
		}
	}
}
