package bench

import (
	"strings"
	"testing"
	"time"
)

func TestBarChart(t *testing.T) {
	out := BarChart("title", []string{"a", "bb"}, []float64{2, 4}, "x")
	if !strings.Contains(out, "title") || !strings.Contains(out, "bb") {
		t.Fatalf("chart:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// The larger value must render a longer bar.
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatal("bars not proportional")
	}
}

func TestBarChartDegenerate(t *testing.T) {
	out := BarChart("z", []string{"a"}, []float64{0}, "")
	if !strings.Contains(out, "a") {
		t.Fatal("missing label")
	}
}

func TestFig4And5Charts(t *testing.T) {
	f4 := []Fig4Row{
		{Model: "M1", Stages: 4, RelExact: 0.8, RelRL: 0.9},
		{Model: "M1", Stages: 6, RelExact: 0.5, RelRL: 0.6},
	}
	c := Fig4Chart(f4, 4)
	if !strings.Contains(c, "M1 exact") || !strings.Contains(c, "4-stage") {
		t.Fatalf("fig4 chart:\n%s", c)
	}
	if Fig4Chart(f4, 5) != "" {
		t.Fatal("chart for absent stage count")
	}

	f5 := []Fig5Row{{Model: "M2", Stages: 4, GapPct: 3.5}}
	c5 := Fig5Chart(f5, 4)
	if !strings.Contains(c5, "M2") {
		t.Fatalf("fig5 chart:\n%s", c5)
	}
	if Fig5Chart(f5, 6) != "" {
		t.Fatal("chart for absent stage count")
	}
}

func TestSpeedupChart(t *testing.T) {
	rows := []Fig3Row{
		{Model: "A", V: 100, Stages: 4, RL: time.Millisecond, SpeedupVsCompiler: 10, SpeedupVsILP: 100, ILPOptimal: false, ILP: time.Second},
		{Model: "B", V: 700, Stages: 6, SpeedupVsCompiler: 50, SpeedupVsILP: 0},
	}
	c := SpeedupChart(rows, false)
	if !strings.Contains(c, "A") || !strings.Contains(c, "B") {
		t.Fatalf("chart:\n%s", c)
	}
	ci := SpeedupChart(rows, true)
	if !strings.Contains(ci, "lower bound") {
		t.Fatalf("ILP chart missing bound marker:\n%s", ci)
	}
	if strings.Contains(ci, "B") {
		t.Fatal("skipped-ILP row rendered")
	}
}
