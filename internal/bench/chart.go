package bench

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labeled horizontal bars scaled to the largest value —
// used by the harness to echo the paper's figures in the terminal.
func BarChart(title string, labels []string, values []float64, unit string) string {
	const width = 46
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(math.Round(v / maxV * width))
		if n < 0 {
			n = 0
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-*s |%s%s %.3g%s\n", maxL, labels[i],
			strings.Repeat("█", n), strings.Repeat(" ", width-n), v, unit)
	}
	return b.String()
}

// Fig4Chart renders one stage count of the Figure 4 comparison as grouped
// relative-runtime bars (compiler = 1.0).
func Fig4Chart(rows []Fig4Row, stages int) string {
	var labels []string
	var values []float64
	for _, r := range rows {
		if r.Stages != stages {
			continue
		}
		labels = append(labels, r.Model+" exact")
		values = append(values, r.RelExact)
		labels = append(labels, r.Model+" RESPECT")
		values = append(values, r.RelRL)
	}
	if len(labels) == 0 {
		return ""
	}
	return BarChart(fmt.Sprintf("Figure 4 (%d-stage): runtime relative to Edge TPU compiler (shorter is faster)", stages),
		labels, values, "x")
}

// Fig5Chart renders the gap-to-optimal study as per-model bars.
func Fig5Chart(rows []Fig5Row, stages int) string {
	var labels []string
	var values []float64
	for _, r := range rows {
		if r.Stages != stages {
			continue
		}
		labels = append(labels, r.Model)
		values = append(values, math.Max(r.GapPct, 0))
	}
	if len(labels) == 0 {
		return ""
	}
	return BarChart(fmt.Sprintf("Figure 5 (%d-stage): RESPECT gap to optimal peak memory", stages),
		labels, values, "%")
}

// SpeedupChart renders Figure 3's speedup-vs-graph-size series as an
// aligned scatter: one row per (model, stages), bars proportional to the
// speedup on a log scale.
func SpeedupChart(rows []Fig3Row, vsILP bool) string {
	const width = 46
	var b strings.Builder
	if vsILP {
		b.WriteString("Figure 3: RESPECT solve-time speedup over exact ILP (log scale)\n")
	} else {
		b.WriteString("Figure 3: RESPECT solve-time speedup over Edge TPU compiler (log scale)\n")
	}
	maxLog := 0.0
	for _, r := range rows {
		v := r.SpeedupVsCompiler
		if vsILP {
			v = r.SpeedupVsILP
		}
		if l := math.Log10(math.Max(v, 1)); l > maxLog {
			maxLog = l
		}
	}
	if maxLog <= 0 {
		maxLog = 1
	}
	for _, r := range rows {
		v := r.SpeedupVsCompiler
		suffix := "x"
		if vsILP {
			v = r.SpeedupVsILP
			if v == 0 {
				continue
			}
			if !r.ILPOptimal {
				suffix = "x (lower bound)"
			}
		}
		n := int(math.Round(math.Log10(math.Max(v, 1)) / maxLog * width))
		fmt.Fprintf(&b, "  |V|=%4d s=%d %-18s |%s%s %.0f%s\n",
			r.V, r.Stages, r.Model, strings.Repeat("█", n), strings.Repeat(" ", width-n), v, suffix)
	}
	return b.String()
}
