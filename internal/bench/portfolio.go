package bench

import (
	"context"
	"time"

	"respect/internal/models"
	"respect/internal/perf"
	"respect/internal/solver"
)

// PortfolioRow is one (model, stages) outcome of racing a backend set.
type PortfolioRow struct {
	Model  string
	Stages int
	// Winner names the backend whose schedule won the race.
	Winner  string
	PeakMiB float64
	// Elapsed is the whole race's wall time (= the slowest backend or the
	// budget, whichever ends it).
	Elapsed time.Duration
	// Outcomes is the per-backend telemetry, in backend order.
	Outcomes []solver.Outcome
}

// PortfolioStudy races the named registry backends on each (model, stages)
// instance under perInstance budget, reporting winners and per-backend
// telemetry. RL backends must be registered by the caller beforehand.
func PortfolioStudy(ctx context.Context, names []string, stages []int, backendNames []string, perInstance time.Duration) ([]PortfolioRow, error) {
	if len(names) == 0 {
		names = models.TableINames()
	}
	if len(stages) == 0 {
		stages = Stages
	}
	backends, err := solver.Resolve(backendNames...)
	if err != nil {
		return nil, err
	}
	var rows []PortfolioRow
	for _, name := range names {
		g, err := models.Load(name)
		if err != nil {
			return nil, err
		}
		for _, ns := range stages {
			ictx, cancel := context.WithTimeout(ctx, perInstance)
			var res solver.PortfolioResult
			elapsed, err := perf.TimeOnce(func() error {
				var perr error
				res, perr = solver.Portfolio(ictx, backends, g, ns)
				return perr
			})
			cancel()
			if err != nil {
				return nil, err
			}
			rows = append(rows, PortfolioRow{
				Model: name, Stages: ns,
				Winner:   res.Backend,
				PeakMiB:  float64(res.Cost.PeakParamBytes) / (1 << 20),
				Elapsed:  elapsed,
				Outcomes: res.Outcomes,
			})
		}
	}
	return rows, nil
}
