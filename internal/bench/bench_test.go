package bench

import (
	"strings"
	"testing"
	"time"

	"respect/internal/exact"
	"respect/internal/models"
	"respect/internal/rl"
	"respect/internal/tpu"
)

// tinyTrainer returns a barely-trained trainer for harness plumbing tests.
func tinyTrainer(t *testing.T) *rl.Trainer {
	t.Helper()
	tr, err := rl.NewTrainer(rl.Config{
		Hidden: 12, NumNodes: 10, Degrees: []int{2}, Stages: 3,
		Iterations: 3, BatchSize: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	return tr
}

var quickModels = []string{"Xception", "ResNet50"}

func TestTableIAllMatch(t *testing.T) {
	rows := TableI()
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s does not match the paper's Table I: %+v", r.Model, r.Stats)
		}
	}
}

func TestFig3Harness(t *testing.T) {
	tr := tinyTrainer(t)
	rows, err := Fig3(tr.Model, tr.EmbedCfg, Fig3Config{
		Models: quickModels, Stages: []int{4}, CompilerEffort: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RL <= 0 || r.Compiler <= 0 || r.CombExact <= 0 {
			t.Errorf("unmeasured durations: %+v", r)
		}
		if r.ILP != 0 {
			t.Errorf("ILP ran despite zero budget")
		}
		if r.SpeedupVsCompiler <= 0 {
			t.Errorf("speedup not computed: %+v", r)
		}
	}
	SortRows(rows)
	if rows[0].V > rows[1].V {
		t.Error("SortRows did not order by |V|")
	}
}

func TestFig4Harness(t *testing.T) {
	tr := tinyTrainer(t)
	rows, err := Fig4(tr.Model, tr.EmbedCfg, quickModels, []int{4}, tpu.Coral())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CompilerLatency <= 0 || r.RelRL <= 0 || r.RelExact <= 0 {
			t.Errorf("bad row: %+v", r)
		}
		// The exact schedule cannot be drastically slower than the
		// compiler heuristic; allow noise headroom.
		if r.RelExact > 1.5 {
			t.Errorf("%s: exact %vx slower than compiler", r.Model, r.RelExact)
		}
	}
}

func TestFig5HarnessAndAverages(t *testing.T) {
	tr := tinyTrainer(t)
	rows, err := Fig5(tr.Model, tr.EmbedCfg, quickModels, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.GapPct < 0 {
			t.Errorf("%s/%d: RL beat the proven optimum (gap %.2f%%)", r.Model, r.Stages, r.GapPct)
		}
	}
	avg := Fig5Averages(rows)
	if len(avg) != 2 {
		t.Fatalf("averages for %d stage counts", len(avg))
	}
}

func TestPostProcessAblationHarness(t *testing.T) {
	tr := tinyTrainer(t)
	rows, err := PostProcessAblation(tr, []string{"Xception"}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.RepairedPeakMiB < r.OptimalPeakMiB {
		t.Errorf("repaired schedule beats the optimum: %+v", r)
	}
}

func TestHeuristicStudy(t *testing.T) {
	rows, err := HeuristicStudy("Xception", 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(StudyBackends()); len(rows) != want {
		t.Fatalf("%d rows, want one per study backend (%d)", len(rows), want)
	}
	found := false
	for _, r := range rows {
		if r.Name == "exact" {
			found = true
		}
	}
	if !found {
		t.Fatal("exact backend missing from study")
	}
	// Every backend returns deployed schedules, which stay monotone, so
	// none can beat the raw monotone optimum.
	g := models.MustLoad("Xception")
	opt := exact.Solve(g, 4, exact.Options{Timeout: 30 * time.Second, MaxStates: 100_000_000})
	optMiB := float64(opt.Cost.PeakParamBytes) / (1 << 20)
	for _, r := range rows {
		if r.PeakMiB < optMiB-1e-9 {
			t.Errorf("%s beat the monotone optimum: %.3f < %.3f", r.Name, r.PeakMiB, optMiB)
		}
	}
	if _, err := HeuristicStudy("NoSuchModel", 4); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRenderers(t *testing.T) {
	tbl := RenderTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(tbl, "a    bb") || !strings.Contains(tbl, "333") {
		t.Errorf("table render:\n%s", tbl)
	}
	csv := RenderCSV([]string{"x", "y"}, [][]string{{"1", "2"}})
	if csv != "x,y\n1,2\n" {
		t.Errorf("csv render: %q", csv)
	}
}

func TestTrainQuickSmoke(t *testing.T) {
	tr, err := TrainQuick(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model == nil {
		t.Fatal("no model")
	}
}

func TestFig3UnknownModel(t *testing.T) {
	tr := tinyTrainer(t)
	if _, err := Fig3(tr.Model, tr.EmbedCfg, Fig3Config{Models: []string{"nope"}}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Fig4(tr.Model, tr.EmbedCfg, []string{"nope"}, nil, tpu.Coral()); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Fig5(tr.Model, tr.EmbedCfg, []string{"nope"}, nil); err == nil {
		t.Fatal("unknown model accepted")
	}
}
