package bench

import (
	"context"
	"fmt"
	"time"

	"respect/internal/embed"
	"respect/internal/exact"
	"respect/internal/models"
	"respect/internal/perf"
	"respect/internal/rl"
	"respect/internal/sched"
	"respect/internal/solver"
)

// AblationRow is one training-variant outcome.
type AblationRow struct {
	Variant string
	// GreedyReward is the mean cosine-imitation reward of greedy decoding
	// on the trainer's held-out synthetic evaluation set.
	GreedyReward float64
	// TrainTime is total wall-clock training time.
	TrainTime time.Duration
}

// AblationConfig bounds the study's cost.
type AblationConfig struct {
	Iterations int
	Hidden     int
	NumNodes   int
	Seed       int64
}

// DefaultAblation is sized to finish in a couple of minutes on a laptop.
func DefaultAblation() AblationConfig {
	return AblationConfig{Iterations: 120, Hidden: 32, NumNodes: 20, Seed: 7}
}

// Ablations trains the design variants DESIGN.md calls out and reports
// final held-out quality: reward shape, baseline choice, supervised
// teacher forcing, and embedding columns.
func Ablations(cfg AblationConfig) ([]AblationRow, error) {
	base := rl.Config{
		Hidden: cfg.Hidden, NumNodes: cfg.NumNodes, Degrees: []int{2, 3, 4},
		Stages: 4, Iterations: cfg.Iterations, BatchSize: 12, LR: 2e-3, Seed: cfg.Seed,
	}

	noMem := embed.Default()
	noMem.IncludeMemory = false
	noParents := embed.Default()
	noParents.Parents = 0

	variants := []struct {
		name string
		mut  func(c rl.Config) rl.Config
	}{
		{"paper (cosine reward, rollout baseline)", func(c rl.Config) rl.Config { return c }},
		{"reward: direct objective", func(c rl.Config) rl.Config { c.Reward = rl.RewardDirectObjective; return c }},
		{"baseline: EMA", func(c rl.Config) rl.Config { c.Baseline = rl.BaselineEMA; return c }},
		{"baseline: none", func(c rl.Config) rl.Config { c.Baseline = rl.BaselineNone; return c }},
		{"supervised teacher forcing", func(c rl.Config) rl.Config { c.Supervised = true; return c }},
		{"embedding: no memory column", func(c rl.Config) rl.Config { c.Embed = &noMem; return c }},
		{"embedding: no parent columns", func(c rl.Config) rl.Config { c.Embed = &noParents; return c }},
		{"rho: greedy budget walk", func(c rl.Config) rl.Config { c.GreedyRho = true; return c }},
	}

	var rows []AblationRow
	for _, v := range variants {
		tr, err := rl.NewTrainer(v.mut(base))
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %q: %w", v.name, err)
		}
		start := time.Now()
		if err := tr.Train(nil); err != nil {
			return nil, fmt.Errorf("bench: ablation %q: %w", v.name, err)
		}
		rows = append(rows, AblationRow{
			Variant:      v.name,
			GreedyReward: tr.EvalGreedy(tr.Model),
			TrainTime:    time.Since(start),
		})
	}
	return rows, nil
}

// PostProcessAblationRow quantifies what the post-inference repair pass
// contributes on real models: how many raw RL schedules violate hardware
// constraints, and the objective before/after repair.
type PostProcessAblationRow struct {
	Model           string
	Stages          int
	RawValid        bool
	RawChildrenOK   bool
	RawPeakMiB      float64 // peak of ρ output before repair
	RepairedPeakMiB float64
	OptimalPeakMiB  float64
}

// PostProcessAblation runs the deployment repair study (§III,
// post-inference processing on vs off).
func PostProcessAblation(tr *rl.Trainer, names []string, stages []int) ([]PostProcessAblationRow, error) {
	if len(names) == 0 {
		names = []string{"Xception", "ResNet50", "DenseNet121"}
	}
	if len(stages) == 0 {
		stages = Stages
	}
	var rows []PostProcessAblationRow
	for _, name := range names {
		g, err := models.Load(name)
		if err != nil {
			return nil, err
		}
		emb := embed.Graph(g, tr.EmbedCfg)
		for _, ns := range stages {
			seq := tr.Model.Infer(emb)
			raw, err := sched.SequenceToSchedule(g, seq, ns)
			if err != nil {
				return nil, err
			}
			repaired := sched.PostProcess(g, raw)
			opt := exact.Solve(g, ns, exact.Options{Timeout: 30 * time.Second, MaxStates: 100_000_000})
			rows = append(rows, PostProcessAblationRow{
				Model: name, Stages: ns,
				RawValid:        raw.Validate(g) == nil,
				RawChildrenOK:   raw.SameStageChildrenOK(g),
				RawPeakMiB:      float64(raw.Evaluate(g).PeakParamBytes) / (1 << 20),
				RepairedPeakMiB: float64(repaired.Evaluate(g).PeakParamBytes) / (1 << 20),
				OptimalPeakMiB:  float64(opt.Cost.PeakParamBytes) / (1 << 20),
			})
		}
	}
	return rows, nil
}

// HeuristicRow compares one scheduler backend's schedule quality on a
// model (supporting the paper's §II discussion of the heuristic/exact
// trade-off).
type HeuristicRow struct {
	Name     string
	PeakMiB  float64
	CrossMiB float64
	Elapsed  time.Duration
}

// StudyBackends returns the registry backends the heuristic study runs by
// default: everything registered except the generic MILP (hours at model
// scale), the full compiler emulation (its solve time is Figure 3's story,
// not a quality story), the "dp" alias (the same heuristic as "heur"),
// and the model-bound RL decoders, which need an agent.
func StudyBackends() []string {
	skip := map[string]bool{"ilp": true, "compiler-full": true, "dp": true,
		"rl": true, "rl-sampled": true, "rl-beam": true}
	var names []string
	for _, n := range solver.Names() {
		if !skip[n] {
			names = append(names, n)
		}
	}
	return names
}

// HeuristicStudy evaluates the default backend set on one model with a
// 10-second budget per backend.
func HeuristicStudy(name string, ns int) ([]HeuristicRow, error) {
	return BackendStudy(context.Background(), name, ns, nil, 10*time.Second)
}

// BackendStudy evaluates the named registry backends (nil = the
// StudyBackends default set) on one model, reporting deployed schedule
// quality and solve latency per backend. Each backend gets its own
// perBackend budget (0 = none beyond ctx), so an anytime search that runs
// to its deadline cannot starve the backends after it.
func BackendStudy(ctx context.Context, model string, ns int, backends []string, perBackend time.Duration) ([]HeuristicRow, error) {
	g, err := models.Load(model)
	if err != nil {
		return nil, err
	}
	if backends == nil {
		backends = StudyBackends()
	}
	schedulers, err := solver.Resolve(backends...)
	if err != nil {
		return nil, err
	}
	var rows []HeuristicRow
	for _, b := range schedulers {
		bctx, cancel := ctx, context.CancelFunc(func() {})
		if perBackend > 0 {
			bctx, cancel = context.WithTimeout(ctx, perBackend)
		}
		// Timing goes through the perf harness primitive so the study
		// column and the BENCH_*.json trajectory share one methodology
		// (single-shot here because anytime backends are budget-bound).
		var s sched.Schedule
		el, err := perf.TimeOnce(func() error {
			var serr error
			s, serr = b.Schedule(bctx, g, ns)
			return serr
		})
		cancel()
		if err != nil {
			return nil, fmt.Errorf("bench: backend %q: %w", b.Name(), err)
		}
		c := s.Evaluate(g)
		rows = append(rows, HeuristicRow{
			Name:     b.Name(),
			PeakMiB:  float64(c.PeakParamBytes) / (1 << 20),
			CrossMiB: float64(c.CrossBytes) / (1 << 20),
			Elapsed:  el,
		})
	}
	return rows, nil
}
