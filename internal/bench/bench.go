// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (Table I, Figures 3-5) plus the ablation studies
// called out in DESIGN.md, it runs the workload, collects the same rows or
// series the paper reports, and renders them as aligned text tables and
// CSV.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"respect/internal/compiler"
	"respect/internal/embed"
	"respect/internal/exact"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/ilp"
	"respect/internal/models"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/sched"
	"respect/internal/tpu"
)

// Stages evaluated throughout the paper.
var Stages = []int{4, 5, 6}

// TrainQuick trains a RESPECT model with a CPU-friendly scaled-down
// configuration (every knob of the paper's setup is available through
// rl.Config for full-scale runs).
func TrainQuick(seed int64, iterations int) (*rl.Trainer, error) {
	tr, err := rl.NewTrainer(rl.Config{
		Hidden:     48,
		NumNodes:   30,
		Degrees:    []int{2, 3, 4, 5, 6},
		Stages:     4,
		Iterations: iterations,
		BatchSize:  16,
		LR:         2e-3,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.Train(nil); err != nil {
		return nil, err
	}
	return tr, nil
}

// TableIRow is one model's statistics row.
type TableIRow struct {
	Model string
	Stats graph.Stats
	Match bool // equals the paper's Table I entry
}

// TableI regenerates the paper's Table I.
func TableI() []TableIRow {
	rows := make([]TableIRow, 0, 10)
	for _, name := range models.TableINames() {
		g := models.MustLoad(name)
		st := g.Stats()
		rows = append(rows, TableIRow{Model: name, Stats: st, Match: st == models.TableI[name]})
	}
	return rows
}

// Fig3Row is one (model, stages) point of the solving-time comparison.
type Fig3Row struct {
	Model  string
	V      int
	Stages int
	// RL is the RESPECT inference wall time (embed + pointer decode + ρ +
	// repair).
	RL time.Duration
	// Compiler is the full Edge TPU compiler-emulation wall time.
	Compiler time.Duration
	// ILP is the generic MILP (CPLEX stand-in) wall time, capped at its
	// budget; ILPOptimal reports whether it proved optimality in budget.
	ILP        time.Duration
	ILPOptimal bool
	// CombExact is our specialized combinatorial exact solver's time
	// (reported alongside; far faster than generic constraint solving).
	CombExact time.Duration
	// Speedups of RL over the two baselines (paper's Figure 3 series);
	// where the ILP timed out the value is a lower bound.
	SpeedupVsCompiler float64
	SpeedupVsILP      float64
}

// Fig3Config bounds the experiment cost.
type Fig3Config struct {
	Models []string
	Stages []int
	// ILPBudget caps each generic-MILP solve (0 skips the MILP column
	// entirely — it is by far the most expensive part).
	ILPBudget time.Duration
	// CompilerEffort is passed to the compiler emulation.
	CompilerEffort int
}

// Fig3 regenerates the schedule-solving-time comparison (paper Figure 3).
func Fig3(model *ptrnet.Model, ecfg embed.Config, cfg Fig3Config) ([]Fig3Row, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = models.TableINames()
	}
	if len(cfg.Stages) == 0 {
		cfg.Stages = Stages
	}
	var rows []Fig3Row
	for _, name := range cfg.Models {
		g, err := models.Load(name)
		if err != nil {
			return nil, err
		}
		for _, ns := range cfg.Stages {
			row := Fig3Row{Model: name, V: g.NumNodes(), Stages: ns}

			start := time.Now()
			if _, err := rl.Schedule(model, ecfg, g, ns); err != nil {
				return nil, err
			}
			row.RL = time.Since(start)

			comp, err := compiler.Compile(g, ns, compiler.Options{Effort: cfg.CompilerEffort})
			if err != nil {
				return nil, err
			}
			row.Compiler = comp.CompileTime

			res := exact.Solve(g, ns, exact.Options{TieBreakCross: true, Timeout: 60 * time.Second, MaxStates: 200_000_000})
			row.CombExact = res.Elapsed

			if cfg.ILPBudget > 0 {
				ilpStart := time.Now()
				ires, ierr := exact.SolveILP(g, ns, ilp.Options{Timeout: cfg.ILPBudget})
				row.ILP = time.Since(ilpStart)
				row.ILPOptimal = ierr == nil && ires.Optimal
			}

			row.SpeedupVsCompiler = ratio(row.Compiler, row.RL)
			row.SpeedupVsILP = ratio(row.ILP, row.RL)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig4Row is one (model, stages) point of the on-chip runtime comparison,
// normalized to the Edge TPU compiler baseline (= 1.0).
type Fig4Row struct {
	Model  string
	Stages int
	// Per-inference simulated latency, averaged over the paper's
	// measurement protocol (10 rounds × 1000 inferences).
	CompilerLatency time.Duration
	ExactLatency    time.Duration
	RLLatency       time.Duration
	// RelExact and RelRL are normalized to the compiler baseline.
	RelExact float64
	RelRL    float64
}

// Fig4 regenerates the pipelined inference-runtime comparison (paper
// Figure 4) on the Edge TPU simulator.
func Fig4(model *ptrnet.Model, ecfg embed.Config, names []string, stages []int, hw tpu.HW) ([]Fig4Row, error) {
	if len(names) == 0 {
		names = models.TableINames()
	}
	if len(stages) == 0 {
		stages = Stages
	}
	var rows []Fig4Row
	for _, name := range names {
		g, err := models.Load(name)
		if err != nil {
			return nil, err
		}
		for _, ns := range stages {
			comp := sched.PostProcess(g, compilerSchedule(g, ns))
			ex := sched.PostProcess(g, exact.Solve(g, ns, exact.Options{
				TieBreakCross: true, Timeout: 60 * time.Second, MaxStates: 200_000_000,
			}).Schedule)
			rlSched, err := rl.Schedule(model, ecfg, g, ns)
			if err != nil {
				return nil, err
			}

			row := Fig4Row{Model: name, Stages: ns}
			if row.CompilerLatency, err = tpu.RunBenchmark(g, comp, hw, 10, 1000); err != nil {
				return nil, err
			}
			if row.ExactLatency, err = tpu.RunBenchmark(g, ex, hw, 10, 1000); err != nil {
				return nil, err
			}
			if row.RLLatency, err = tpu.RunBenchmark(g, rlSched, hw, 10, 1000); err != nil {
				return nil, err
			}
			row.RelExact = float64(row.ExactLatency) / float64(row.CompilerLatency)
			row.RelRL = float64(row.RLLatency) / float64(row.CompilerLatency)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// compilerSchedule is the partition the compiler emulation would produce,
// without paying for its quantization and serialization passes.
func compilerSchedule(g *graph.Graph, ns int) sched.Schedule {
	return heur.GreedyBalanced(g, ns)
}

// Fig5Row is one (model, stages) gap-to-optimal data point. Two optima
// are reported: the monotone lower bound (the paper's ILP objective) and
// the deployable optimum under the children-same-stage hardware rule —
// the tightest bound a post-processed schedule can reach.
type Fig5Row struct {
	Model         string
	Stages        int
	OptimalMiB    float64 // monotone optimum (paper's objective)
	DeployableMiB float64 // optimum under the hardware children rule
	RespectMiB    float64
	GapPct        float64 // vs OptimalMiB (paper's definition)
	DeployGapPct  float64 // vs DeployableMiB
}

// Fig5 regenerates the gap-to-optimal parameter-caching study (paper
// Figure 5) across the twelve evaluation models.
func Fig5(model *ptrnet.Model, ecfg embed.Config, names []string, stages []int) ([]Fig5Row, error) {
	if len(names) == 0 {
		names = models.Figure5Names()
	}
	if len(stages) == 0 {
		stages = Stages
	}
	var rows []Fig5Row
	for _, name := range names {
		g, err := models.Load(name)
		if err != nil {
			return nil, err
		}
		for _, ns := range stages {
			opt := exact.Solve(g, ns, exact.Options{Timeout: 60 * time.Second, MaxStates: 200_000_000})
			dep := exact.Solve(g, ns, exact.Options{Timeout: 60 * time.Second, MaxStates: 200_000_000, ChildrenRule: true})
			rlSched, err := rl.Schedule(model, ecfg, g, ns)
			if err != nil {
				return nil, err
			}
			optPeak := float64(opt.Cost.PeakParamBytes) / (1 << 20)
			depPeak := float64(dep.Cost.PeakParamBytes) / (1 << 20)
			gotPeak := float64(rlSched.Evaluate(g).PeakParamBytes) / (1 << 20)
			gap, depGap := 0.0, 0.0
			if optPeak > 0 {
				gap = (gotPeak - optPeak) / optPeak * 100
			}
			if depPeak > 0 {
				depGap = (gotPeak - depPeak) / depPeak * 100
			}
			rows = append(rows, Fig5Row{
				Model: name, Stages: ns,
				OptimalMiB: optPeak, DeployableMiB: depPeak, RespectMiB: gotPeak,
				GapPct: gap, DeployGapPct: depGap,
			})
		}
	}
	return rows, nil
}

// Fig5Averages returns the mean gap per stage count (the paper reports
// 2.26 % / 2.74 % / 6.31 % for 4/5/6 stages).
func Fig5Averages(rows []Fig5Row) map[int]float64 {
	sum := map[int]float64{}
	n := map[int]int{}
	for _, r := range rows {
		sum[r.Stages] += r.GapPct
		n[r.Stages]++
	}
	out := map[int]float64{}
	for k, s := range sum {
		out[k] = s / float64(n[k])
	}
	return out
}

// Fig5DeployAverages returns the mean gap to the deployable optimum per
// stage count.
func Fig5DeployAverages(rows []Fig5Row) map[int]float64 {
	sum := map[int]float64{}
	n := map[int]int{}
	for _, r := range rows {
		sum[r.Stages] += r.DeployGapPct
		n[r.Stages]++
	}
	out := map[int]float64{}
	for k, s := range sum {
		out[k] = s / float64(n[k])
	}
	return out
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RenderTable renders rows of cells as an aligned text table.
func RenderTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	dashes := make([]string, len(header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", width[i])
	}
	line(dashes)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// RenderCSV renders rows as CSV with a header.
func RenderCSV(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortRows orders rows by model graph size then stage count (the paper's
// plotting order for Figure 3).
func SortRows(rows []Fig3Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].V != rows[j].V {
			return rows[i].V < rows[j].V
		}
		return rows[i].Stages < rows[j].Stages
	})
}
