// Package embed converts computational graphs into the fixed-width vector
// sequences consumed by the LSTM-PtrNet (paper §III-A): per node, its ASAP
// topological level (absolute coordinate), its ID, the levels and IDs of
// its parents (relative coordinates, dependency constraints), and its
// memory consumption.
package embed

import (
	"hash/fnv"
	"sort"

	"respect/internal/graph"
)

// Config selects embedding columns; the defaults reproduce the paper, the
// switches support the ablation benchmarks.
type Config struct {
	// Parents is how many parent (level, ID) pairs are encoded; the paper
	// diagrams one pair per parent — two covers deg(V)=2 real models, and
	// higher-degree parents are summarized by the maximum-level pair
	// first. Must be >= 0.
	Parents int
	// IncludeMemory adds the node memory column (paper default true).
	IncludeMemory bool
	// HashIDs derives node IDs by FNV-hashing operator names (the paper's
	// rule) instead of using node indices. Either way IDs are normalized
	// to [0, 1].
	HashIDs bool
}

// Default is the paper-faithful configuration.
func Default() Config {
	return Config{Parents: 2, IncludeMemory: true, HashIDs: false}
}

// Dim returns the embedding width under the configuration.
func (c Config) Dim() int {
	d := 2 + 2*c.Parents // level, id, parent pairs
	if c.IncludeMemory {
		d++
	}
	return d
}

// Graph embeds every node of g, returning |V| rows in node-ID order.
// All columns are normalized to small ranges so LSTM inputs stay
// well-conditioned: levels by graph depth, IDs to [0,1] (missing parents
// get −1, the paper's sentinel), memory by the largest node footprint.
func Graph(g *graph.Graph, cfg Config) [][]float64 {
	n := g.NumNodes()
	depth := float64(g.Depth() + 1)
	var maxMem int64 = 1
	for v := 0; v < n; v++ {
		if p := g.Node(v).ParamBytes; p > maxMem {
			maxMem = p
		}
	}
	ids := make([]float64, n)
	for v := 0; v < n; v++ {
		if cfg.HashIDs {
			h := fnv.New32a()
			h.Write([]byte(g.Node(v).Name))
			ids[v] = float64(h.Sum32()%100003) / 100003
		} else {
			ids[v] = float64(v+1) / float64(n)
		}
	}

	out := make([][]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, 0, cfg.Dim())
		row = append(row, float64(g.ASAP(v))/depth, ids[v])

		// Parents sorted by level descending (the binding constraint
		// first), then by ID for determinism.
		preds := append([]int(nil), g.Pred(v)...)
		sort.Slice(preds, func(a, b int) bool {
			la, lb := g.ASAP(preds[a]), g.ASAP(preds[b])
			if la != lb {
				return la > lb
			}
			return preds[a] < preds[b]
		})
		for k := 0; k < cfg.Parents; k++ {
			if k < len(preds) {
				p := preds[k]
				row = append(row, float64(g.ASAP(p))/depth, ids[p])
			} else {
				row = append(row, 0, -1)
			}
		}
		if cfg.IncludeMemory {
			row = append(row, float64(g.Node(v).ParamBytes)/float64(maxMem))
		}
		out[v] = row
	}
	return out
}
