package embed

import (
	"testing"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/synth"
)

func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("d")
	g.AddNode(graph.Node{Name: "in"})
	g.AddNode(graph.Node{Name: "l", ParamBytes: 100})
	g.AddNode(graph.Node{Name: "r", ParamBytes: 50})
	g.AddNode(graph.Node{Name: "out"})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g.MustBuild()
}

func TestDim(t *testing.T) {
	if d := Default().Dim(); d != 7 {
		t.Fatalf("default dim = %d, want 7", d)
	}
	if d := (Config{Parents: 0, IncludeMemory: false}).Dim(); d != 2 {
		t.Fatalf("minimal dim = %d, want 2", d)
	}
}

func TestRowsAndWidths(t *testing.T) {
	g := diamond(t)
	e := Graph(g, Default())
	if len(e) != 4 {
		t.Fatalf("%d rows", len(e))
	}
	for v, row := range e {
		if len(row) != 7 {
			t.Fatalf("node %d row width %d", v, len(row))
		}
	}
}

func TestLevelsAndSentinels(t *testing.T) {
	g := diamond(t)
	e := Graph(g, Default())
	// Source: level 0, no parents -> sentinel (0, -1) twice.
	if e[0][0] != 0 {
		t.Errorf("source level = %v", e[0][0])
	}
	if e[0][2] != 0 || e[0][3] != -1 || e[0][4] != 0 || e[0][5] != -1 {
		t.Errorf("source parent sentinels = %v", e[0][2:6])
	}
	// Sink at level 2/3 with two real parents.
	if e[3][0] <= e[1][0] {
		t.Errorf("sink level %v not deeper than mid %v", e[3][0], e[1][0])
	}
	if e[3][3] == -1 || e[3][5] == -1 {
		t.Errorf("sink should have two real parents: %v", e[3][2:6])
	}
}

func TestMemoryColumnNormalized(t *testing.T) {
	g := diamond(t)
	e := Graph(g, Default())
	if e[1][6] != 1 {
		t.Errorf("max-mem node column = %v, want 1", e[1][6])
	}
	if e[2][6] != 0.5 {
		t.Errorf("half-mem node column = %v, want 0.5", e[2][6])
	}
	if e[0][6] != 0 {
		t.Errorf("zero-mem node column = %v", e[0][6])
	}
}

func TestMemoryAblation(t *testing.T) {
	g := diamond(t)
	cfg := Default()
	cfg.IncludeMemory = false
	e := Graph(g, cfg)
	if len(e[0]) != 6 {
		t.Fatalf("width %d without memory", len(e[0]))
	}
}

func TestHashIDsDeterministicAndBounded(t *testing.T) {
	g := diamond(t)
	cfg := Default()
	cfg.HashIDs = true
	a := Graph(g, cfg)
	b := Graph(g, cfg)
	for v := range a {
		if a[v][1] != b[v][1] {
			t.Fatal("hash IDs nondeterministic")
		}
		if a[v][1] < 0 || a[v][1] > 1 {
			t.Fatalf("hash ID %v out of range", a[v][1])
		}
	}
}

func TestAllColumnsBounded(t *testing.T) {
	s, err := synth.NewSampler(synth.DefaultConfig(6), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		g := s.Sample()
		for _, row := range Graph(g, Default()) {
			for j, v := range row {
				if v < -1 || v > 1 {
					t.Fatalf("column %d = %v out of [-1,1]", j, v)
				}
			}
		}
	}
}

func TestRealModelEmbedding(t *testing.T) {
	g := models.MustLoad("ResNet50")
	e := Graph(g, Default())
	if len(e) != 177 {
		t.Fatalf("rows = %d", len(e))
	}
	// Parent levels must be strictly below the node's own level.
	for v, row := range e {
		if row[3] != -1 && row[2] >= row[0] {
			t.Fatalf("node %d: parent level %v >= own %v", v, row[2], row[0])
		}
	}
}

func TestParentsOrderedByLevel(t *testing.T) {
	// Node with parents at different levels: first pair must be deeper.
	g := graph.New("p")
	g.AddNode(graph.Node{Name: "a"})
	g.AddNode(graph.Node{Name: "b"})
	g.AddNode(graph.Node{Name: "c"})
	g.AddEdge(0, 1) // b at level 1
	g.AddEdge(0, 2)
	g.AddEdge(1, 2) // c has parents a(0) and b(1)
	g.MustBuild()
	e := Graph(g, Default())
	if e[2][2] <= e[2][4] {
		t.Fatalf("parents not level-ordered: %v", e[2][2:6])
	}
}
