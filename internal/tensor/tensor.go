// Package tensor provides the dense float64 matrix type underlying the
// neural components of RESPECT: storage, initialization and the handful of
// BLAS-level kernels the autodiff tape dispatches to.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix. Grad, when non-nil, accumulates the
// gradient of a scalar loss with respect to Data (same layout).
type Mat struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: bad shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Xavier returns a matrix initialized with scaled uniform noise
// (Glorot/Xavier), the initialization used for all PtrNet weights.
func Xavier(rows, cols int, rng *rand.Rand) *Mat {
	m := New(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// EnsureGrad allocates the gradient buffer if absent.
func (m *Mat) EnsureGrad() {
	if m.Grad == nil {
		m.Grad = make([]float64, len(m.Data))
	}
}

// ZeroGrad clears the gradient buffer.
func (m *Mat) ZeroGrad() {
	for i := range m.Grad {
		m.Grad[i] = 0
	}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone deep-copies the matrix values (not gradients).
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatMulInto computes dst = a·b. Shapes must agree; dst must not alias the
// inputs.
func MatMulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		ar := a.Data[i*a.Cols : (i+1)*a.Cols]
		dr := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// Norm returns the Frobenius norm of Data.
func (m *Mat) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
