package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Set/At wrong")
	}
}

func TestBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, 3)
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	MatMulInto(c, a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("c[%d] = %v", i, c.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(2, 2))
}

func TestXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Xavier(10, 10, rng)
	scale := math.Sqrt(6.0 / 20)
	for _, v := range m.Data {
		if v < -scale || v > scale {
			t.Fatalf("xavier value %v outside ±%v", v, scale)
		}
	}
	if m.Norm() == 0 {
		t.Fatal("xavier produced all zeros")
	}
}

func TestGradLifecycle(t *testing.T) {
	m := New(2, 2)
	if m.Grad != nil {
		t.Fatal("grad allocated eagerly")
	}
	m.EnsureGrad()
	m.Grad[3] = 7
	m.ZeroGrad()
	if m.Grad[3] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestClone(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 9
	if m.Data[0] != 1 {
		t.Fatal("clone aliases")
	}
}
