package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the serialized wire format of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	ParamBytes int64  `json:"param_bytes"`
	OutBytes   int64  `json:"out_bytes"`
	MACs       int64  `json:"macs"`
}

func kindFromString(s string) OpKind {
	for k, name := range opKindNames {
		if name == s {
			return OpKind(k)
		}
	}
	return OpOther
}

// WriteJSON serializes the graph to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.Name}
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{
			Name: n.Name, Kind: n.Kind.String(),
			ParamBytes: n.ParamBytes, OutBytes: n.OutBytes, MACs: n.MACs,
		})
	}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			jg.Edges = append(jg.Edges, [2]int{u, v})
		}
	}
	sort.Slice(jg.Edges, func(i, j int) bool {
		if jg.Edges[i][0] != jg.Edges[j][0] {
			return jg.Edges[i][0] < jg.Edges[j][0]
		}
		return jg.Edges[i][1] < jg.Edges[j][1]
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jg)
}

// ReadJSON parses a graph previously written with WriteJSON and builds it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New(jg.Name)
	for _, n := range jg.Nodes {
		g.AddNode(Node{
			Name: n.Name, Kind: kindFromString(n.Kind),
			ParamBytes: n.ParamBytes, OutBytes: n.OutBytes, MACs: n.MACs,
		})
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= len(g.nodes) || e[1] < 0 || e[1] >= len(g.nodes) {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range", e[0], e[1])
		}
		// AddEdge panics on self edges — fine for programmatic
		// construction, but decoded bytes come from clients and must
		// fail as errors, never crash the process.
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self edge at node %d", e[0])
		}
		g.AddEdge(e[0], e[1])
	}
	if err := g.Build(); err != nil {
		return nil, err
	}
	return g, nil
}

// DOT renders the graph in Graphviz format; stage, if non-nil, colors nodes
// by pipeline stage assignment.
func (g *Graph) DOT(stage []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled];\n", g.Name)
	palette := []string{"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"}
	for _, n := range g.nodes {
		color := "#eeeeee"
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Kind)
		if stage != nil && n.ID < len(stage) {
			color = palette[stage[n.ID]%len(palette)]
			label = fmt.Sprintf("%s\\n%s s%d", n.Name, n.Kind, stage[n.ID])
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", fillcolor=%q];\n", n.ID, label, color)
	}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
