package graph

import "strings"

// Merge builds the disjoint union of several computational graphs. The
// paper's deployment flow "takes single or multiple DNN models ... as
// inputs": co-deployed models share the pipeline, and scheduling their
// union lets the solvers balance parameter memory across all of them at
// once. Node IDs of graph i are offset by the sizes of graphs 0..i-1;
// node names are prefixed with their source graph's name.
func Merge(graphs ...*Graph) (*Graph, error) {
	names := make([]string, len(graphs))
	for i, g := range graphs {
		names[i] = g.Name
	}
	m := New(strings.Join(names, "+"))
	offset := 0
	for _, g := range graphs {
		for _, n := range g.Nodes() {
			n.Name = g.Name + "/" + n.Name
			m.AddNode(n)
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				m.AddEdge(offset+u, offset+v)
			}
		}
		offset += g.NumNodes()
	}
	if err := m.Build(); err != nil {
		return nil, err
	}
	return m, nil
}
