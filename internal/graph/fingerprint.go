package graph

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns a 64-bit FNV-1a hash of the graph's topology and
// per-node scheduling attributes (operator kind, parameter bytes, output
// bytes, MACs) plus the adjacency structure. Two graphs with identical
// structure and attributes share a fingerprint regardless of Name, so a
// schedule computed for one is valid — and cost-identical — for the other.
// This keys the solver-level schedule cache. The hash is computed once at
// Build time (the graph is immutable afterwards), so hot serving paths
// that fingerprint per request — cache lookups, popularity taps, hit
// attribution — pay a field read, not an O(V+E) rehash.
func (g *Graph) Fingerprint() uint64 {
	g.mustBuilt()
	return g.fp
}

// computeFingerprint hashes the structure; called by Build.
func (g *Graph) computeFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	u64(uint64(len(g.nodes)))
	for v := range g.nodes {
		n := &g.nodes[v]
		u64(uint64(n.Kind))
		u64(uint64(n.ParamBytes))
		u64(uint64(n.OutBytes))
		u64(uint64(n.MACs))
		u64(uint64(len(g.succ[v])))
		for _, w := range g.succ[v] {
			u64(uint64(w))
		}
	}
	return h.Sum64()
}
