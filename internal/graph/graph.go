// Package graph provides the directed-acyclic-graph representation of DNN
// computational graphs used throughout RESPECT, together with the
// topological machinery (ASAP/ALAP levels, depth, order ideals) that the
// scheduler, the exact solver and the graph embedding build on.
package graph

import (
	"fmt"
	"sort"
)

// OpKind identifies the operator class of a computation node. The scheduler
// itself only consumes memory attributes, but the Edge TPU simulator and the
// compiler emulation use the kind to pick compute/memory cost models.
type OpKind uint8

// Operator kinds found in quantized TFLite graphs of the evaluated models.
const (
	OpInput OpKind = iota
	OpConv
	OpDepthwiseConv
	OpDense
	OpBatchNorm
	OpRelu
	OpAdd
	OpConcat
	OpMaxPool
	OpAvgPool
	OpGlobalPool
	OpPad
	OpSoftmax
	OpMul
	OpOther
)

var opKindNames = [...]string{
	OpInput:         "input",
	OpConv:          "conv",
	OpDepthwiseConv: "dwconv",
	OpDense:         "dense",
	OpBatchNorm:     "batchnorm",
	OpRelu:          "relu",
	OpAdd:           "add",
	OpConcat:        "concat",
	OpMaxPool:       "maxpool",
	OpAvgPool:       "avgpool",
	OpGlobalPool:    "globalpool",
	OpPad:           "pad",
	OpSoftmax:       "softmax",
	OpMul:           "mul",
	OpOther:         "other",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Node is a single operation in a computational graph.
type Node struct {
	// ID is the node index, dense in [0, |V|).
	ID int
	// Name is the operator instance name (e.g. "conv2_block1_1_conv").
	Name string
	// Kind is the operator class.
	Kind OpKind
	// ParamBytes is the quantized parameter (weight+bias) footprint in
	// bytes; this is what competes for the 8 MiB on-chip cache.
	ParamBytes int64
	// OutBytes is the output activation tensor size in bytes; edges
	// crossing a stage boundary transfer this amount over USB.
	OutBytes int64
	// MACs is the number of multiply-accumulate operations; the simulator
	// derives systolic-array compute latency from it.
	MACs int64
}

// Graph is an immutable-after-Build DAG. Construct with New, add nodes and
// edges, then call Build to validate and freeze derived data.
type Graph struct {
	// Name labels the graph (model name or synthetic sampler tag).
	Name string

	nodes []Node
	succ  [][]int
	pred  [][]int

	built    bool
	topo     []int // a topological order of node IDs
	asap     []int // ASAP level per node (source level 0)
	alap     []int // ALAP level per node
	depth    int   // longest path length in edges
	maxInDeg int
	fp       uint64 // structural fingerprint, memoized at Build
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddNode appends a node and returns its ID. The ID fields of the argument
// is overwritten with the assigned index.
func (g *Graph) AddNode(n Node) int {
	if g.built {
		panic("graph: AddNode after Build")
	}
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return n.ID
}

// AddEdge adds the dependency u -> v (v consumes u's output).
func (g *Graph) AddEdge(u, v int) {
	if g.built {
		panic("graph: AddEdge after Build")
	}
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range, |V|=%d", u, v, len(g.nodes)))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self edge at node %d", u))
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
}

// Build validates acyclicity, computes topological order, ASAP/ALAP levels
// and depth, and freezes the graph. It returns an error on cycles or
// duplicate edges.
func (g *Graph) Build() error {
	if g.built {
		return nil
	}
	n := len(g.nodes)
	for v := 0; v < n; v++ {
		seen := make(map[int]bool, len(g.succ[v]))
		for _, w := range g.succ[v] {
			if seen[w] {
				return fmt.Errorf("graph %q: duplicate edge (%d,%d)", g.Name, v, w)
			}
			seen[w] = true
		}
	}
	topo, err := g.topoSort()
	if err != nil {
		return err
	}
	g.topo = topo
	g.asap = make([]int, n)
	for _, v := range topo {
		lvl := 0
		for _, p := range g.pred[v] {
			if g.asap[p]+1 > lvl {
				lvl = g.asap[p] + 1
			}
		}
		g.asap[v] = lvl
	}
	g.alap = make([]int, n)
	maxLvl := 0
	for _, l := range g.asap {
		if l > maxLvl {
			maxLvl = l
		}
	}
	for i := range g.alap {
		g.alap[i] = maxLvl
	}
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range g.succ[v] {
			if g.alap[s]-1 < g.alap[v] {
				g.alap[v] = g.alap[s] - 1
			}
		}
	}
	g.depth = maxLvl
	g.maxInDeg = 0
	for v := 0; v < n; v++ {
		if len(g.pred[v]) > g.maxInDeg {
			g.maxInDeg = len(g.pred[v])
		}
	}
	g.fp = g.computeFingerprint()
	g.built = true
	return nil
}

// MustBuild is Build that panics on error; for use with generated graphs
// whose construction is tested.
func (g *Graph) MustBuild() *Graph {
	if err := g.Build(); err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) topoSort() ([]int, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.pred[v])
	}
	// Deterministic Kahn: smallest-ID-first among ready nodes.
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, n)
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				// Insert keeping ready sorted (ready lists are short for
				// the thin DNN graphs we schedule).
				i := sort.SearchInts(ready, w)
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = w
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph %q: cycle detected (%d of %d nodes ordered)", g.Name, len(order), n)
	}
	return order, nil
}

func (g *Graph) mustBuilt() {
	if !g.built {
		panic("graph: derived query before Build")
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int {
	m := 0
	for _, s := range g.succ {
		m += len(s)
	}
	return m
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Nodes returns a copy of the node slice.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Succ returns the successor IDs of v. The returned slice must not be
// modified.
func (g *Graph) Succ(v int) []int { return g.succ[v] }

// Pred returns the predecessor IDs of v. The returned slice must not be
// modified.
func (g *Graph) Pred(v int) []int { return g.pred[v] }

// Topo returns a topological order (deterministic for a given graph).
func (g *Graph) Topo() []int {
	g.mustBuilt()
	out := make([]int, len(g.topo))
	copy(out, g.topo)
	return out
}

// TopoView returns the graph's memoized topological order without copying.
// Like Succ and Pred, the returned slice must not be modified; it is the
// allocation-free variant of Topo for solver hot paths that walk the order
// on every request.
func (g *Graph) TopoView() []int {
	g.mustBuilt()
	return g.topo
}

// ASAP returns the as-soon-as-possible level of v (sources at 0). This is
// the "absolute coordinate" of the paper's embedding.
func (g *Graph) ASAP(v int) int {
	g.mustBuilt()
	return g.asap[v]
}

// ALAP returns the as-late-as-possible level of v.
func (g *Graph) ALAP(v int) int {
	g.mustBuilt()
	return g.alap[v]
}

// Depth returns the longest path length counted in edges (Table I "Depth").
func (g *Graph) Depth() int {
	g.mustBuilt()
	return g.depth
}

// MaxInDegree returns deg(V), the maximum number of incoming edges of any
// node (Table I "deg(V)").
func (g *Graph) MaxInDegree() int {
	g.mustBuilt()
	return g.maxInDeg
}

// TotalParamBytes returns the sum of parameter bytes over all nodes.
func (g *Graph) TotalParamBytes() int64 {
	var t int64
	for _, n := range g.nodes {
		t += n.ParamBytes
	}
	return t
}

// TotalMACs returns the sum of MACs over all nodes.
func (g *Graph) TotalMACs() int64 {
	var t int64
	for _, n := range g.nodes {
		t += n.MACs
	}
	return t
}

// Sources returns the IDs of nodes with no predecessors.
func (g *Graph) Sources() []int {
	var out []int
	for v := range g.nodes {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the IDs of nodes with no successors.
func (g *Graph) Sinks() []int {
	var out []int
	for v := range g.nodes {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// IsEdge reports whether (u,v) is an edge.
func (g *Graph) IsEdge(u, v int) bool {
	for _, w := range g.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Clone returns a deep, unbuilt copy of the graph structure. The clone can
// be further mutated and must be Built before derived queries.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	c.nodes = make([]Node, len(g.nodes))
	copy(c.nodes, g.nodes)
	c.succ = make([][]int, len(g.succ))
	c.pred = make([][]int, len(g.pred))
	for v := range g.succ {
		c.succ[v] = append([]int(nil), g.succ[v]...)
		c.pred[v] = append([]int(nil), g.pred[v]...)
	}
	return c
}

// Stats is the Table I statistics triple of a computational graph.
type Stats struct {
	V     int // |V|
	Deg   int // deg(V): max in-degree
	Depth int // longest path in edges
}

// Stats returns the Table I statistics of the graph.
func (g *Graph) Stats() Stats {
	g.mustBuilt()
	return Stats{V: g.NumNodes(), Deg: g.MaxInDegree(), Depth: g.Depth()}
}
