package graph

import "testing"

func fpGraph(name string, params []int64, edges [][2]int) *Graph {
	g := New(name)
	for _, p := range params {
		g.AddNode(Node{ParamBytes: p, OutBytes: 10})
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g.MustBuild()
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fpGraph("a", []int64{5, 7, 9}, [][2]int{{0, 1}, {1, 2}})
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	// Name must not influence the fingerprint: structurally identical
	// graphs share schedules.
	b := fpGraph("b", []int64{5, 7, 9}, [][2]int{{0, 1}, {1, 2}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical structure, different fingerprints")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph("x", []int64{5, 7, 9}, [][2]int{{0, 1}, {1, 2}})
	paramChanged := fpGraph("x", []int64{5, 8, 9}, [][2]int{{0, 1}, {1, 2}})
	edgeChanged := fpGraph("x", []int64{5, 7, 9}, [][2]int{{0, 1}, {0, 2}})
	extraEdge := fpGraph("x", []int64{5, 7, 9}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if base.Fingerprint() == paramChanged.Fingerprint() {
		t.Fatal("parameter change not reflected")
	}
	if base.Fingerprint() == edgeChanged.Fingerprint() {
		t.Fatal("edge rewiring not reflected")
	}
	if base.Fingerprint() == extraEdge.Fingerprint() {
		t.Fatal("added edge not reflected")
	}
}
