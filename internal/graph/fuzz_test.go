// Fuzz targets for the graph JSON wire format and the structural
// fingerprint. External test package so the seed corpus can draw on the
// model zoo (models imports graph).
package graph_test

import (
	"bytes"
	"testing"

	"respect/internal/graph"
	"respect/internal/models"
)

// zooSeeds serializes a few representative zoo graphs (chain-style,
// dense-block and wide-inception topologies) as decoder seed inputs.
func zooSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, name := range []string{"ResNet50", "DenseNet121", "Inception_v3", "MobileNet"} {
		g, err := models.Load(name)
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// structurallyEqual deep-compares two built graphs through the public API:
// node attributes (not names — the fingerprint is name-blind by design)
// and adjacency.
func structurallyEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		na, nb := a.Node(v), b.Node(v)
		if na.Kind != nb.Kind || na.ParamBytes != nb.ParamBytes || na.OutBytes != nb.OutBytes || na.MACs != nb.MACs {
			return false
		}
		sa, sb := a.Succ(v), b.Succ(v)
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
	}
	return true
}

// FuzzReadJSON feeds arbitrary bytes to the graph decoder: it must never
// panic, and every graph it accepts must survive an encode/decode round
// trip with its structure (and therefore fingerprint) intact.
func FuzzReadJSON(f *testing.F) {
	for _, seed := range zooSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{"name":"g","nodes":[{"name":"a","kind":"conv","param_bytes":3}],"edges":[]}`))
	f.Add([]byte(`{"name":"g","nodes":[{"name":"a"},{"name":"b"}],"edges":[[0,1],[1,0]]}`))
	f.Add([]byte(`{"edges":[[0,7]]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just must not crash
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		g2, err := graph.ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\nencoded: %s", err, buf.Bytes())
		}
		if !structurallyEqual(g, g2) {
			t.Fatal("round trip changed the graph structure")
		}
		if g.Fingerprint() != g2.Fingerprint() {
			t.Fatal("round trip changed the fingerprint")
		}
	})
}

// fuzzBuild deterministically derives a small DAG from raw bytes: node
// count, per-node attributes and parent choices are all read from data.
// mutNode/mutDelta optionally perturb one node's parameter bytes, and
// mutEdge rewires one node's parent — the controlled mutations the
// fingerprint property is checked against.
func fuzzBuild(data []byte, mutNode uint8, mutDelta int64, mutEdge bool) *graph.Graph {
	at := func(i int) int64 {
		if len(data) == 0 {
			return 0
		}
		return int64(data[i%len(data)])
	}
	n := int(2 + at(0)%14)
	g := graph.New("fuzz")
	for v := 0; v < n; v++ {
		node := graph.Node{
			Kind:       graph.OpKind(at(1+3*v) % 15),
			ParamBytes: at(2 + 3*v),
			OutBytes:   at(3 + 3*v),
			MACs:       at(4 + 3*v),
		}
		if int(mutNode)%n == v {
			node.ParamBytes += mutDelta
		}
		g.AddNode(node)
	}
	for v := 1; v < n; v++ {
		parent := int(at(5+2*v)) % v
		if mutEdge && v == n-1 && v > 1 {
			parent = (parent + 1) % v
		}
		g.AddEdge(parent, v)
	}
	return g.MustBuild()
}

// FuzzFingerprint checks the fingerprint contract on mutated inputs:
// deterministic and name-blind, equal for structurally equal graphs, and
// different whenever a node attribute or an edge differs (fingerprint
// equality ⇔ structural equality over the mutation space).
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{7, 1, 2, 3}, uint8(0), int64(1), true)
	f.Add([]byte{255, 254, 253}, uint8(3), int64(-5), false)
	f.Add([]byte{}, uint8(0), int64(0), false)
	f.Add([]byte{42, 42, 42, 42, 42, 42, 42, 42}, uint8(200), int64(1<<40), true)
	f.Fuzz(func(t *testing.T, data []byte, mutNode uint8, mutDelta int64, mutEdge bool) {
		base := fuzzBuild(data, 0, 0, false)
		same := fuzzBuild(data, 0, 0, false)
		if !structurallyEqual(base, same) {
			t.Fatal("deterministic build produced different graphs")
		}
		if base.Fingerprint() != same.Fingerprint() {
			t.Fatal("equal structures, different fingerprints")
		}
		same.Name = "renamed"
		if base.Fingerprint() != same.Fingerprint() {
			t.Fatal("fingerprint must ignore the graph name")
		}

		for _, mutated := range []*graph.Graph{
			fuzzBuild(data, mutNode, mutDelta, false),
			fuzzBuild(data, 0, 0, mutEdge),
			fuzzBuild(data, mutNode, mutDelta, mutEdge),
		} {
			fpEqual := base.Fingerprint() == mutated.Fingerprint()
			structEqual := structurallyEqual(base, mutated)
			if fpEqual != structEqual {
				t.Fatalf("fingerprint equality (%v) diverged from structural equality (%v)", fpEqual, structEqual)
			}
		}
	})
}

// TestFingerprintZooCorpus pins the fingerprint ⇔ structure property on
// the real model zoo: every pair of distinct zoo models must disagree, and
// a serialization round trip must agree.
func TestFingerprintZooCorpus(t *testing.T) {
	names := models.Names()
	fps := make(map[uint64]string, len(names))
	for _, name := range names {
		g, err := models.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		fp := g.Fingerprint()
		if prev, ok := fps[fp]; ok {
			t.Fatalf("zoo fingerprint collision: %s and %s", prev, name)
		}
		fps[fp] = name

		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := graph.ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if g2.Fingerprint() != fp {
			t.Fatalf("%s: fingerprint not serialization-stable", name)
		}
	}
}
