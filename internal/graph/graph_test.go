package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the 4-node diamond a -> {b,c} -> d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddNode(Node{Name: "a", Kind: OpInput})
	b := g.AddNode(Node{Name: "b", Kind: OpConv, ParamBytes: 100})
	c := g.AddNode(Node{Name: "c", Kind: OpConv, ParamBytes: 200})
	d := g.AddNode(Node{Name: "d", Kind: OpAdd})
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	if err := g.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestDiamondLevels(t *testing.T) {
	g := diamond(t)
	wantASAP := []int{0, 1, 1, 2}
	for v, want := range wantASAP {
		if got := g.ASAP(v); got != want {
			t.Errorf("ASAP(%d) = %d, want %d", v, got, want)
		}
	}
	wantALAP := []int{0, 1, 1, 2}
	for v, want := range wantALAP {
		if got := g.ALAP(v); got != want {
			t.Errorf("ALAP(%d) = %d, want %d", v, got, want)
		}
	}
	if g.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", g.Depth())
	}
	if g.MaxInDegree() != 2 {
		t.Errorf("MaxInDegree = %d, want 2", g.MaxInDegree())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestChainALAPSlack(t *testing.T) {
	// a -> b -> d plus a -> d: node b has no slack; a parallel free node
	// would. Here c is a dangling source with slack.
	g := New("slack")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	c := g.AddNode(Node{Name: "c"})
	d := g.AddNode(Node{Name: "d"})
	g.AddEdge(a, b)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	if g.ASAP(c) != 0 || g.ALAP(c) != 1 {
		t.Errorf("c: ASAP=%d ALAP=%d, want 0,1", g.ASAP(c), g.ALAP(c))
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("cyclic")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if err := g.Build(); err == nil {
		t.Fatal("Build accepted a cyclic graph")
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	g := New("dup")
	a := g.AddNode(Node{})
	b := g.AddNode(Node{})
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if err := g.Build(); err == nil {
		t.Fatal("Build accepted duplicate edge")
	}
}

func TestSelfEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(v,v) did not panic")
		}
	}()
	g := New("self")
	a := g.AddNode(Node{})
	g.AddEdge(a, a)
}

func TestMutationAfterBuildPanics(t *testing.T) {
	g := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode after Build did not panic")
		}
	}()
	g.AddNode(Node{})
}

func TestTopoIsValidOrder(t *testing.T) {
	g := diamond(t)
	pos := make(map[int]int)
	for i, v := range g.Topo() {
		pos[v] = i
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succ(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo violates edge (%d,%d)", u, v)
			}
		}
	}
}

// randomDAG builds a random layered DAG with up to 20 nodes from a seed.
func randomDAG(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(19)
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddNode(Node{Name: "n", ParamBytes: int64(rng.Intn(1000))})
	}
	for v := 1; v < n; v++ {
		k := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			u := rng.Intn(v)
			if !seen[u] {
				seen[u] = true
				g.AddEdge(u, v)
			}
		}
	}
	if err := g.Build(); err != nil {
		panic(err)
	}
	return g
}

func TestQuickTopoAndLevels(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed)
		pos := make([]int, g.NumNodes())
		for i, v := range g.Topo() {
			pos[v] = i
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					return false
				}
				if g.ASAP(u) >= g.ASAP(v) {
					return false
				}
				if g.ALAP(u) >= g.ALAP(v) {
					return false
				}
			}
			if g.ASAP(u) > g.ALAP(u) {
				return false
			}
			if g.ALAP(u) > g.Depth() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g2.Node(v).ParamBytes != g.Node(v).ParamBytes {
			t.Errorf("node %d param bytes changed", v)
		}
		if g2.Node(v).Kind != g.Node(v).Kind {
			t.Errorf("node %d kind changed", v)
		}
	}
}

// TestReadJSONRejectsMalformedEdges regression-tests decoder inputs that
// must come back as errors, never reach the panicking AddEdge guards:
// the serving layer feeds ReadJSON raw client bytes. The self-edge case
// was found by fuzzing the /v1/batch decode path ("edges":[[]] decodes
// as the edge (0,0)).
func TestReadJSONRejectsMalformedEdges(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"self edge", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[[0,0]]}`},
		{"empty edge pair", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[[]]}`},
		{"edge out of range", `{"nodes":[{"name":"a"}],"edges":[[0,7]]}`},
		{"negative endpoint", `{"nodes":[{"name":"a"},{"name":"b"}],"edges":[[-1,1]]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("ReadJSON accepted %s", tc.doc)
			}
		})
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		return g2.NumNodes() == g.NumNodes() &&
			g2.NumEdges() == g.NumEdges() &&
			g2.Depth() == g.Depth() &&
			g2.MaxInDegree() == g.MaxInDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	g := diamond(t)
	dot := g.DOT([]int{0, 0, 1, 1})
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3", "s1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddNode(Node{Name: "extra"})
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != g.NumNodes()+1 {
		t.Errorf("clone node count %d, want %d", c.NumNodes(), g.NumNodes()+1)
	}
	if g.NumNodes() != 4 {
		t.Errorf("clone mutated original")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", s)
	}
}

func TestStats(t *testing.T) {
	g := diamond(t)
	st := g.Stats()
	if st.V != 4 || st.Deg != 2 || st.Depth != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "conv" {
		t.Errorf("OpConv.String() = %q", OpConv.String())
	}
	if !strings.Contains(OpKind(200).String(), "200") {
		t.Errorf("unknown kind string = %q", OpKind(200).String())
	}
	if kindFromString("dwconv") != OpDepthwiseConv {
		t.Error("kindFromString(dwconv) mismatch")
	}
	if kindFromString("nonsense") != OpOther {
		t.Error("kindFromString fallback mismatch")
	}
}

func TestMerge(t *testing.T) {
	a := diamond(t)
	b := New("chain")
	x := b.AddNode(Node{Name: "x", ParamBytes: 7})
	y := b.AddNode(Node{Name: "y"})
	b.AddEdge(x, y)
	b.MustBuild()

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 6 || m.NumEdges() != 5 {
		t.Fatalf("merged shape %d/%d", m.NumNodes(), m.NumEdges())
	}
	if m.Name != "diamond+chain" {
		t.Errorf("merged name %q", m.Name)
	}
	// Offsets: b's x is node 4 and keeps its attributes.
	if m.Node(4).ParamBytes != 7 || m.Node(4).Name != "chain/x" {
		t.Errorf("offset node wrong: %+v", m.Node(4))
	}
	if !m.IsEdge(4, 5) || m.IsEdge(3, 4) {
		t.Error("merged edges wrong")
	}
	if len(m.Sources()) != 2 {
		t.Errorf("merged sources %v", m.Sources())
	}
	// Depth is the max of the parts.
	if m.Depth() != 2 {
		t.Errorf("merged depth %d", m.Depth())
	}
}
