// Package tpu is a cycle-approximate simulator of the paper's evaluation
// platform: a host-driven pipeline of Coral Edge TPUs connected over USB
// 3.0 (Figure 2). It substitutes for the physical testbed per the
// reproduction's substitution rule (see DESIGN.md).
//
// The mechanisms that differentiate schedules on real silicon are modeled
// directly:
//
//   - each stage owns an 8 MiB on-chip parameter cache; parameters beyond
//     it are re-streamed from the host over USB on every inference
//     (the Edge TPU is DRAM-less — this is the dominant penalty the
//     memory-aware schedulers optimize),
//   - systolic-array compute time from per-op MAC counts plus per-op
//     dispatch overhead,
//   - inter-stage activation transfers through the host (device → host →
//     device, one hop each way),
//   - pipelined steady-state throughput set by the bottleneck stage, and
//   - a deterministic "miscorrelation" perturbation reproducing the
//     paper's observation that high-level cost models do not perfectly
//     track closed-source silicon (§IV-A).
package tpu

import (
	"fmt"
	"hash/fnv"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// HW describes the hardware platform.
type HW struct {
	// MACRate is int8 multiply-accumulates per second (Coral: 4 TOPS
	// peak ⇒ 2e12 MAC/s).
	MACRate float64
	// CacheBytes is the on-chip parameter cache per TPU (Coral: 8 MiB).
	CacheBytes int64
	// USBBandwidth is effective host↔device bandwidth in bytes/s
	// (USB 3.0 bulk: ~320 MB/s in practice).
	USBBandwidth float64
	// USBLatency is the fixed per-transfer setup latency.
	USBLatency time.Duration
	// OpOverhead is the per-op dispatch cost on the device.
	OpOverhead time.Duration
	// ActiveWatts and IdleWatts drive the energy model.
	ActiveWatts float64
	IdleWatts   float64
	// USBJoulesPerByte is transfer energy.
	USBJoulesPerByte float64
	// NoiseAmp is the amplitude of the deterministic model-vs-silicon
	// miscorrelation (fraction of stage latency; 0 disables).
	NoiseAmp float64
}

// Coral returns the default Coral Edge TPU pipeline platform.
func Coral() HW {
	return HW{
		MACRate:          2e12,
		CacheBytes:       8 << 20,
		USBBandwidth:     320e6,
		USBLatency:       250 * time.Microsecond,
		OpOverhead:       800 * time.Nanosecond,
		ActiveWatts:      2.0,
		IdleWatts:        0.5,
		USBJoulesPerByte: 5e-9,
		NoiseAmp:         0.04,
	}
}

// StageReport is the per-stage latency breakdown for one inference.
type StageReport struct {
	// ParamBytes is the stage's parameter footprint.
	ParamBytes int64
	// OverflowBytes is the portion above the cache, streamed per inference.
	OverflowBytes int64
	// InBytes is activation data received from the host.
	InBytes int64
	// OutBytes is activation data sent to the host.
	OutBytes int64
	// Compute, Stream, Transfer, Total are the latency components.
	Compute  time.Duration
	Stream   time.Duration
	Transfer time.Duration
	Total    time.Duration
}

// Report is the simulation outcome for a schedule.
type Report struct {
	Stages []StageReport
	// Latency is one inference end to end through the pipe (fill time).
	Latency time.Duration
	// Bottleneck is the slowest stage; steady-state inter-arrival time.
	Bottleneck time.Duration
	// EnergyPerInference is the modeled energy in joules.
	EnergyPerInference float64
}

// Throughput returns steady-state inferences per second.
func (r Report) Throughput() float64 {
	if r.Bottleneck <= 0 {
		return 0
	}
	return float64(time.Second) / float64(r.Bottleneck)
}

// TotalFor returns the modeled wall-clock for n pipelined inferences:
// pipe fill plus (n−1) bottleneck periods.
func (r Report) TotalFor(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return r.Latency + time.Duration(n-1)*r.Bottleneck
}

// Simulate runs the cost model for schedule s of graph g on hw. The
// schedule must be valid and deployment-ready (post-processed): both
// monotonicity and the children-same-stage hardware rule are enforced.
func Simulate(g *graph.Graph, s sched.Schedule, hw HW) (Report, error) {
	if err := s.Validate(g); err != nil {
		return Report{}, fmt.Errorf("tpu: %w", err)
	}
	if !s.SameStageChildrenOK(g) {
		return Report{}, fmt.Errorf("tpu: schedule violates the children-same-stage hardware constraint; run sched.PostProcess first")
	}

	n := s.NumStages
	rep := Report{Stages: make([]StageReport, n)}
	for v := 0; v < g.NumNodes(); v++ {
		st := &rep.Stages[s.Stage[v]]
		node := g.Node(v)
		st.ParamBytes += node.ParamBytes
		st.Compute += time.Duration(float64(node.MACs)/hw.MACRate*1e9) * time.Nanosecond
		st.Compute += hw.OpOverhead

		// Activations crossing stage boundaries hop through the host:
		// producer pays an upload, every consuming stage pays a download.
		consumers := map[int]bool{}
		for _, w := range g.Succ(v) {
			if s.Stage[w] != s.Stage[v] {
				consumers[s.Stage[w]] = true
			}
		}
		if len(consumers) > 0 {
			st.OutBytes += node.OutBytes
			for c := range consumers {
				rep.Stages[c].InBytes += node.OutBytes
			}
		}
	}

	xfer := func(bytes int64) time.Duration {
		if bytes == 0 {
			return 0
		}
		return hw.USBLatency + time.Duration(float64(bytes)/hw.USBBandwidth*1e9)*time.Nanosecond
	}

	var energy float64
	for k := range rep.Stages {
		st := &rep.Stages[k]
		if st.ParamBytes > hw.CacheBytes {
			st.OverflowBytes = st.ParamBytes - hw.CacheBytes
		}
		st.Stream = xfer(st.OverflowBytes)
		st.Transfer = xfer(st.InBytes) + xfer(st.OutBytes)
		st.Total = st.Compute + st.Stream + st.Transfer

		// Deterministic miscorrelation: the closed-source compiler backend
		// and cache behaviour perturb real latencies away from any
		// high-level model; hash stage composition into a stable ±NoiseAmp
		// factor so comparisons are reproducible run to run.
		if hw.NoiseAmp > 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|%d|%d|%d", g.Name, k, st.ParamBytes, st.InBytes)
			u := float64(h.Sum64()%10007)/10007*2 - 1 // [-1, 1)
			st.Total = time.Duration(float64(st.Total) * (1 + hw.NoiseAmp*u))
		}

		rep.Latency += st.Total
		if st.Total > rep.Bottleneck {
			rep.Bottleneck = st.Total
		}
		energy += st.Compute.Seconds() * hw.ActiveWatts
		energy += float64(st.OverflowBytes+st.InBytes+st.OutBytes) * hw.USBJoulesPerByte
	}
	// Idle energy: stages wait for the bottleneck period each inference.
	for k := range rep.Stages {
		idle := rep.Bottleneck - rep.Stages[k].Total
		if idle > 0 {
			energy += idle.Seconds() * hw.IdleWatts
		}
	}
	rep.EnergyPerInference = energy
	return rep, nil
}

// RunBenchmark mirrors the paper's measurement protocol: rounds × perRound
// inferences, returning the mean per-inference latency.
func RunBenchmark(g *graph.Graph, s sched.Schedule, hw HW, rounds, perRound int) (time.Duration, error) {
	rep, err := Simulate(g, s, hw)
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for r := 0; r < rounds; r++ {
		total += rep.TotalFor(perRound)
	}
	return total / time.Duration(rounds*perRound), nil
}

// CoralPCIe returns the M.2/PCIe Coral accelerator platform: same compute
// die, but parameters and activations move over PCIe Gen2 x1 (~2x the
// practical USB 3.0 throughput, far lower setup latency). Useful for
// asking how much of a schedule's penalty is fabric-bound.
func CoralPCIe() HW {
	hw := Coral()
	hw.USBBandwidth = 800e6
	hw.USBLatency = 20 * time.Microsecond
	return hw
}

// DevBoard returns the Coral Dev Board platform: the Edge TPU sits behind
// the SoC's internal fabric, so off-chip parameter streaming is cheaper
// still, at a slightly lower sustained MAC rate (thermal envelope).
func DevBoard() HW {
	hw := Coral()
	hw.USBBandwidth = 1.5e9
	hw.USBLatency = 5 * time.Microsecond
	hw.MACRate = 1.6e12
	hw.ActiveWatts = 1.5
	return hw
}
