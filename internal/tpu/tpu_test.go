package tpu

import (
	"testing"
	"time"

	"respect/internal/exact"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/models"
	"respect/internal/sched"
)

func chain(t testing.TB, params []int64) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	for i, p := range params {
		g.AddNode(graph.Node{Name: "n", Kind: graph.OpConv, ParamBytes: p, OutBytes: 1000, MACs: p * 100})
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	return g.MustBuild()
}

func quietHW() HW {
	hw := Coral()
	hw.NoiseAmp = 0
	return hw
}

func TestRejectsInvalidSchedule(t *testing.T) {
	g := chain(t, []int64{1, 1})
	s := sched.Schedule{NumStages: 2, Stage: []int{1, 0}}
	if _, err := Simulate(g, s, quietHW()); err == nil {
		t.Fatal("dependency violation accepted")
	}
}

func TestRejectsSplitChildren(t *testing.T) {
	g := graph.New("split")
	g.AddNode(graph.Node{OutBytes: 1})
	g.AddNode(graph.Node{OutBytes: 1})
	g.AddNode(graph.Node{OutBytes: 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.MustBuild()
	s := sched.Schedule{NumStages: 2, Stage: []int{0, 0, 1}}
	if _, err := Simulate(g, s, quietHW()); err == nil {
		t.Fatal("children split across stages accepted")
	}
}

func TestCacheOverflowStreams(t *testing.T) {
	hw := quietHW()
	// One stage holding 10 MiB: 2 MiB overflow streamed per inference.
	g := chain(t, []int64{10 << 20})
	s := sched.Schedule{NumStages: 1, Stage: []int{0}}
	rep, err := Simulate(g, s, hw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].OverflowBytes != 2<<20 {
		t.Fatalf("overflow = %d", rep.Stages[0].OverflowBytes)
	}
	wantStream := hw.USBLatency + time.Duration(float64(2<<20)/hw.USBBandwidth*1e9)
	if d := rep.Stages[0].Stream - wantStream; d > time.Microsecond || d < -time.Microsecond {
		t.Fatalf("stream = %v, want %v", rep.Stages[0].Stream, wantStream)
	}
}

func TestNoOverflowNoStream(t *testing.T) {
	g := chain(t, []int64{1 << 20, 1 << 20})
	s := sched.Schedule{NumStages: 2, Stage: []int{0, 1}}
	rep, err := Simulate(g, s, quietHW())
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range rep.Stages {
		if st.Stream != 0 {
			t.Fatalf("stage %d streams %v without overflow", k, st.Stream)
		}
	}
	if rep.Stages[0].OutBytes != 1000 || rep.Stages[1].InBytes != 1000 {
		t.Fatalf("activation accounting wrong: %+v", rep.Stages)
	}
}

func TestBottleneckAndTotals(t *testing.T) {
	g := chain(t, []int64{1 << 20, 12 << 20})
	s := sched.Schedule{NumStages: 2, Stage: []int{0, 1}}
	rep, err := Simulate(g, s, quietHW())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck != rep.Stages[1].Total {
		t.Fatal("bottleneck is not the slow stage")
	}
	if rep.Latency != rep.Stages[0].Total+rep.Stages[1].Total {
		t.Fatal("latency is not the stage sum")
	}
	if rep.TotalFor(1) != rep.Latency {
		t.Fatal("TotalFor(1) != fill latency")
	}
	want := rep.Latency + 9*rep.Bottleneck
	if rep.TotalFor(10) != want {
		t.Fatalf("TotalFor(10) = %v, want %v", rep.TotalFor(10), want)
	}
	if rep.TotalFor(0) != 0 {
		t.Fatal("TotalFor(0) != 0")
	}
	if rep.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestBalancedBeatsImbalanced(t *testing.T) {
	// 16 MiB over two stages: balanced (8+8) fully cached; imbalanced
	// (12+4) streams 4 MiB every inference and must be slower.
	g := chain(t, []int64{4 << 20, 4 << 20, 4 << 20, 4 << 20})
	bal := sched.Schedule{NumStages: 2, Stage: []int{0, 0, 1, 1}}
	imb := sched.Schedule{NumStages: 2, Stage: []int{0, 0, 0, 1}}
	hw := quietHW()
	rb, err := Simulate(g, bal, hw)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Simulate(g, imb, hw)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Bottleneck >= ri.Bottleneck {
		t.Fatalf("balanced %v not faster than imbalanced %v", rb.Bottleneck, ri.Bottleneck)
	}
}

func TestEnergyPositiveAndOrdered(t *testing.T) {
	g := chain(t, []int64{6 << 20, 6 << 20})
	oneStage := sched.Schedule{NumStages: 1, Stage: []int{0, 0}}
	rep, err := Simulate(g, oneStage, quietHW())
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyPerInference <= 0 {
		t.Fatal("no energy modeled")
	}
}

func TestNoiseDeterministic(t *testing.T) {
	g := models.MustLoad("ResNet50")
	s := sched.PostProcess(g, heur.GreedyBalanced(g, 4))
	hw := Coral()
	a, err := Simulate(g, s, hw)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(g, s, hw)
	if a.Bottleneck != b.Bottleneck {
		t.Fatal("noise is nondeterministic")
	}
	hw.NoiseAmp = 0
	c, _ := Simulate(g, s, hw)
	ratio := float64(a.Bottleneck) / float64(c.Bottleneck)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("noise ratio %v outside ±10%%", ratio)
	}
}

func TestMemoryOptimalWinsOnRealModel(t *testing.T) {
	// ResNet152 at 6 stages: the exact memory-optimal schedule must beat
	// level-band splitting (which ignores memory) on simulated runtime.
	g := models.MustLoad("ResNet152")
	hw := quietHW()
	ex := sched.PostProcess(g, exact.Solve(g, 6, exact.Options{MaxStates: 5_000_000}).Schedule)
	hu := sched.PostProcess(g, heur.HuLevel(g, 6))
	re, err := Simulate(g, ex, hw)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Simulate(g, hu, hw)
	if err != nil {
		t.Fatal(err)
	}
	if re.Bottleneck >= rh.Bottleneck {
		t.Fatalf("exact %v not faster than Hu %v", re.Bottleneck, rh.Bottleneck)
	}
}

func TestRunBenchmarkAveraging(t *testing.T) {
	g := chain(t, []int64{1 << 20})
	s := sched.Schedule{NumStages: 1, Stage: []int{0}}
	mean, err := RunBenchmark(g, s, quietHW(), 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := Simulate(g, s, quietHW())
	// Mean per-inference time approaches the bottleneck for long runs.
	if mean < rep.Bottleneck || mean > rep.Bottleneck+rep.Latency/1000+time.Microsecond {
		t.Fatalf("mean %v vs bottleneck %v", mean, rep.Bottleneck)
	}
}

func TestMultiConsumerTransferOncePerStage(t *testing.T) {
	// A producer feeding two consumers in one later stage uploads once and
	// that stage downloads once.
	g := graph.New("fanout")
	g.AddNode(graph.Node{OutBytes: 500})
	g.AddNode(graph.Node{OutBytes: 1})
	g.AddNode(graph.Node{OutBytes: 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.MustBuild()
	s := sched.Schedule{NumStages: 2, Stage: []int{0, 1, 1}}
	rep, err := Simulate(g, s, quietHW())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].OutBytes != 500 || rep.Stages[1].InBytes != 500 {
		t.Fatalf("fanout accounting: %+v", rep.Stages)
	}
}

func TestPlatformVariants(t *testing.T) {
	// A streaming-bound schedule (12 MiB on one stage) must speed up on
	// faster fabrics: USB < PCIe < DevBoard streaming time.
	g := chain(t, []int64{12 << 20})
	s := sched.Schedule{NumStages: 1, Stage: []int{0}}
	variants := []HW{Coral(), CoralPCIe(), DevBoard()}
	var prev time.Duration
	for i, hw := range variants {
		hw.NoiseAmp = 0
		rep, err := Simulate(g, s, hw)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.Stages[0].Stream >= prev {
			t.Fatalf("variant %d stream %v not faster than %v", i, rep.Stages[0].Stream, prev)
		}
		prev = rep.Stages[0].Stream
	}
}
