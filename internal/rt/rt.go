// Package rt adds a real-time periodic task mode to the scheduling
// service: clients register streams of work released every period with a
// relative deadline — the camera/inference pipelines Coral Edge TPUs are
// deployed against — instead of one-shot requests.
//
// Three pieces make up the subsystem:
//
//   - Admission is a schedulability test, not a queue-depth check. A
//     registration is accepted only if the stream set's total utilization
//     (Σ cost/period, scaled by the worker count) stays under the
//     policy's bound — 1.0 for EDF, the Liu & Layland bound
//     n·(2^(1/n)−1) for RM and FIFO — and a response-time analysis
//     confirms every stream meets its deadline under worst-case
//     interference. Costs are pinned per stream or fed live from
//     observed solve-latency percentiles via Config.Estimate.
//
//   - A release loop turns each registered stream into jobs: one job per
//     period, stamped with its absolute deadline. A release that finds
//     the stream's previous job still waiting supersedes it — the old
//     job is dropped and counted as a deadline miss, which bounds the
//     backlog to one pending job per stream under overload. Workers
//     likewise shed a job whose deadline has already passed instead of
//     executing it — stale output is worthless, and running overdue
//     jobs first is exactly EDF's overload failure mode.
//
//   - A pluggable queue discipline orders the released jobs for the
//     executor workers: FIFO (release order), RM (rate-monotonic,
//     shortest period first) or EDF (earliest absolute deadline first).
//     Execution is non-preemptive — a running job is never interrupted —
//     matching a real inference pipeline.
//
// Every completion records deadline misses and tardiness, so the serving
// layer can export miss-rate and tardiness metrics per stream, and the
// RL agents gain miss-rate minimization as a training objective.
package rt

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Policy names a queue discipline ordering released jobs for execution.
type Policy string

// The built-in queue disciplines.
const (
	// FIFO serves jobs in release order, ignoring deadlines and periods.
	FIFO Policy = "fifo"
	// RM is rate-monotonic: jobs of shorter-period streams are served
	// first (the classic static-priority discipline).
	RM Policy = "rm"
	// EDF serves the job with the earliest absolute deadline first (the
	// optimal single-processor dynamic-priority discipline).
	EDF Policy = "edf"
)

// ParsePolicy maps a policy name ("fifo", "rm", "edf") to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case FIFO, RM, EDF:
		return Policy(s), nil
	}
	return "", fmt.Errorf("rt: unknown policy %q (have fifo, rm, edf)", s)
}

// LiuLayland returns the Liu & Layland rate-monotonic utilization bound
// n·(2^(1/n)−1) for n streams: a periodic task set with total utilization
// under this bound is schedulable by RM on one processor.
func LiuLayland(n int) float64 {
	if n < 1 {
		return 1
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// DefaultBound returns the policy's default admission utilization bound
// for n streams: 1.0 for EDF (optimal), Liu & Layland for RM, and Liu &
// Layland for FIFO too — FIFO has no exact bound, so it borrows the
// conservative static-priority one.
func DefaultBound(p Policy, n int) float64 {
	if p == EDF {
		return 1
	}
	return LiuLayland(n)
}

// StreamSpec describes one periodic stream at registration time.
type StreamSpec struct {
	// Name identifies the stream; it must be unique within a Dispatcher
	// and is the stream label on the rt metric families.
	Name string
	// Period is the release interval. Required.
	Period time.Duration
	// Deadline is the relative deadline of each released job, measured
	// from its release. Zero defaults to Period; it must not exceed
	// Period (the constrained-deadline task model).
	Deadline time.Duration
	// Cost pins the per-job execution-time estimate used by the
	// schedulability test. Zero asks Config.Estimate at admission time,
	// which the serving layer feeds from observed solve-latency
	// percentiles.
	Cost time.Duration
	// Payload is opaque stream context handed back through Job; the
	// serving layer stores the resolved graph and request class here.
	Payload any
}

// Stream is one admitted periodic stream plus its live counters.
type Stream struct {
	StreamSpec

	cost atomic.Int64 // effective cost estimate, ns (atomic: read off-lock)
	next time.Time    // next release (owned by the release loop)

	releases    atomic.Uint64
	completions atomic.Uint64
	misses      atomic.Uint64
	drops       atomic.Uint64
}

// Cost returns the effective per-job cost estimate applied by the last
// admission test.
func (s *Stream) Cost() time.Duration { return time.Duration(s.cost.Load()) }

// Utilization returns the stream's processor share, cost/period.
func (s *Stream) Utilization() float64 {
	return float64(s.cost.Load()) / float64(s.Period)
}

// Releases returns the number of jobs released so far.
func (s *Stream) Releases() uint64 { return s.releases.Load() }

// Completions returns the number of jobs that finished executing.
func (s *Stream) Completions() uint64 { return s.completions.Load() }

// Misses returns the number of deadline misses: jobs that finished after
// their absolute deadline plus jobs dropped because a newer release
// superseded them.
func (s *Stream) Misses() uint64 { return s.misses.Load() }

// Drops returns the subset of Misses that never executed: releases
// superseded by a newer period, or jobs shed because their deadline had
// already passed when a worker picked them up.
func (s *Stream) Drops() uint64 { return s.drops.Load() }

// Job is one released unit of periodic work.
type Job struct {
	// Stream is the job's origin.
	Stream *Stream
	// Seq is the global release sequence number (FIFO order).
	Seq uint64
	// Release is when the job was released.
	Release time.Time
	// Deadline is the absolute deadline (Release + the stream's relative
	// deadline).
	Deadline time.Time
}

// JobResult reports one finished or dropped job to Config.OnComplete.
type JobResult struct {
	Job
	// Finish is when the job completed (or was dropped).
	Finish time.Time
	// Dropped marks a job that never executed: superseded by a newer
	// release, or shed because its deadline passed before it started.
	Dropped bool
	// Missed reports the job finished after its deadline (drops always
	// miss).
	Missed bool
	// Tardiness is max(0, Finish−Deadline): zero for on-time jobs, the
	// lateness for misses.
	Tardiness time.Duration
	// Err is the executor's failure, if any. Failed jobs still complete
	// for accounting purposes.
	Err error
}

// Config configures a Dispatcher.
type Config struct {
	// Policy is the queue discipline (default EDF).
	Policy Policy
	// UtilBound overrides the admission utilization bound; zero selects
	// the policy default (see DefaultBound) plus the response-time
	// analysis. Setting it is an operator override: only the utilization
	// test applies, and values above Workers admit overload on purpose.
	UtilBound float64
	// Workers sizes the executor pool (default 1 — one pipeline).
	Workers int
	// Run executes one job; required. The context is cancelled when the
	// dispatcher stops.
	Run func(ctx context.Context, job Job) error
	// Estimate returns the current per-job cost estimate for a stream
	// whose spec does not pin one. The serving layer feeds observed
	// solve-latency percentiles here; nil means every spec must pin Cost.
	Estimate func(s *Stream) time.Duration
	// OnComplete, when set, observes every finished or dropped job (off
	// the dispatcher lock; keep it cheap — the serving layer records
	// tardiness histograms here).
	OnComplete func(res JobResult)
	// Clock supplies releases, deadline checks and tardiness stamps
	// (default: the wall clock). Tests inject a FakeClock to drive the
	// dispatcher deterministically.
	Clock Clock
	// Logf, when set, receives dispatcher log lines.
	Logf func(format string, args ...any)
}

// ErrNotSchedulable wraps every admission rejection, so callers can map
// it to a distinct HTTP status.
var ErrNotSchedulable = errors.New("rt: stream set not schedulable")

// ErrStreamExists wraps a Register rejection caused by a duplicate
// stream name.
var ErrStreamExists = errors.New("rt: stream already registered")

// Dispatcher owns the registered stream set, the release loop and the
// executor workers. Construct with New; Register/Remove are safe at any
// time, including while running.
type Dispatcher struct {
	cfg Config

	mu      sync.Mutex
	cond    sync.Cond
	streams map[string]*Stream
	queue   jobHeap
	pending map[string]*queuedJob // stream name -> released, not yet started
	seq     uint64
	running bool
	stopped bool
	recalc  chan struct{}
}

// New validates cfg and returns a ready (not yet started) Dispatcher.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Policy == "" {
		cfg.Policy = EDF
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.UtilBound < 0 {
		return nil, fmt.Errorf("rt: utilization bound %v must not be negative", cfg.UtilBound)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("rt: workers %d must be at least 1", cfg.Workers)
	}
	if cfg.Run == nil {
		return nil, errors.New("rt: Config.Run is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock{}
	}
	d := &Dispatcher{
		cfg:     cfg,
		streams: make(map[string]*Stream),
		pending: make(map[string]*queuedJob),
		recalc:  make(chan struct{}, 1),
	}
	d.queue.policy = cfg.Policy
	d.cond.L = &d.mu
	return d, nil
}

// Policy returns the dispatcher's queue discipline.
func (d *Dispatcher) Policy() Policy { return d.cfg.Policy }

// bound returns the admission utilization bound for n streams, scaled by
// the worker count.
func (d *Dispatcher) bound(n int) float64 {
	b := d.cfg.UtilBound
	if b == 0 {
		b = DefaultBound(d.cfg.Policy, n)
	}
	return b * float64(d.cfg.Workers)
}

// effectiveCost resolves one stream's cost estimate: the pinned spec cost
// when set, else the live estimate.
func (d *Dispatcher) effectiveCost(s *Stream) (time.Duration, error) {
	if s.StreamSpec.Cost > 0 {
		return s.StreamSpec.Cost, nil
	}
	if d.cfg.Estimate != nil {
		if c := d.cfg.Estimate(s); c > 0 {
			return c, nil
		}
	}
	return 0, fmt.Errorf("rt: stream %q has no cost estimate (pin Cost or configure Estimate)", s.Name)
}

// Register admits spec after a schedulability test over the would-be
// stream set (existing streams re-estimated with fresh costs) and starts
// releasing its jobs. Rejections wrap ErrNotSchedulable when the set
// fails the test and plain errors for invalid specs.
func (d *Dispatcher) Register(spec StreamSpec) (*Stream, error) {
	if spec.Name == "" {
		return nil, errors.New("rt: stream name is required")
	}
	if spec.Period <= 0 {
		return nil, fmt.Errorf("rt: stream %q: period %v must be positive", spec.Name, spec.Period)
	}
	if spec.Deadline == 0 {
		spec.Deadline = spec.Period
	}
	if spec.Deadline < 0 || spec.Deadline > spec.Period {
		return nil, fmt.Errorf("rt: stream %q: deadline %v outside (0, period %v]", spec.Name, spec.Deadline, spec.Period)
	}
	if spec.Cost < 0 {
		return nil, fmt.Errorf("rt: stream %q: cost %v must not be negative", spec.Name, spec.Cost)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.streams[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, spec.Name)
	}

	cand := &Stream{StreamSpec: spec}
	set := make([]*Stream, 0, len(d.streams)+1)
	for _, s := range d.streams {
		set = append(set, s)
	}
	set = append(set, cand)
	// Refresh every cost: estimates sharpen as the histograms fill, and
	// the admission decision should reflect what the set costs now.
	for _, s := range set {
		c, err := d.effectiveCost(s)
		if err != nil {
			return nil, err
		}
		if c > s.Deadline {
			return nil, fmt.Errorf("%w: stream %q cost %v exceeds its deadline %v",
				ErrNotSchedulable, s.Name, c, s.Deadline)
		}
		s.cost.Store(int64(c))
	}
	if err := d.schedulable(set); err != nil {
		return nil, err
	}

	d.streams[spec.Name] = cand
	if d.running {
		cand.next = d.cfg.Clock.Now()
		d.wakeReleaseLoop()
	}
	d.logf("rt: registered stream %q period=%v deadline=%v cost=%v (util %.3f, total %.3f)",
		spec.Name, spec.Period, spec.Deadline, cand.Cost(), cand.Utilization(), totalUtil(set))
	return cand, nil
}

// schedulable runs the admission test on the candidate set: utilization
// bound first, then response-time analysis.
func (d *Dispatcher) schedulable(set []*Stream) error {
	u := totalUtil(set)
	if bound := d.bound(len(set)); u > bound {
		return fmt.Errorf("%w: total utilization %.3f exceeds the %s bound %.3f for %d streams",
			ErrNotSchedulable, u, d.cfg.Policy, bound, len(set))
	}
	// An explicit UtilBound is an operator override — it may admit sets
	// the analysis would reject (including deliberate overload), so the
	// utilization test alone governs. RTA also only models a single
	// executor; with more workers the scaled bound is the admission test.
	if d.cfg.UtilBound != 0 || d.cfg.Workers > 1 {
		return nil
	}
	return responseTimeAnalysis(d.cfg.Policy, set)
}

// totalUtil sums cost/period over the set.
func totalUtil(set []*Stream) float64 {
	u := 0.0
	for _, s := range set {
		u += s.Utilization()
	}
	return u
}

// responseTimeAnalysis is the single-worker deadline check behind
// admission. For EDF it is the density test Σ cost/deadline ≤ 1 (a
// sufficient condition for constrained deadlines). For RM it is the
// classic fixpoint iteration R = C + Σ_hp ceil(R/T_j)·C_j plus a
// non-preemptive blocking term (the largest lower-priority cost), since
// a running job is never interrupted. FIFO has no priority structure, so
// every other stream counts as interference — deliberately conservative.
func responseTimeAnalysis(policy Policy, set []*Stream) error {
	switch policy {
	case EDF:
		density := 0.0
		for _, s := range set {
			density += float64(s.Cost()) / float64(s.Deadline)
		}
		if density > 1 {
			return fmt.Errorf("%w: EDF density %.3f exceeds 1 (Σ cost/deadline)", ErrNotSchedulable, density)
		}
		return nil
	case RM:
		byPeriod := append([]*Stream(nil), set...)
		sort.Slice(byPeriod, func(i, j int) bool { return byPeriod[i].Period < byPeriod[j].Period })
		for i, s := range byPeriod {
			// Non-preemptive blocking: one lower-priority job may already
			// be running when s releases.
			var blocking time.Duration
			for _, lp := range byPeriod[i+1:] {
				if c := lp.Cost(); c > blocking {
					blocking = c
				}
			}
			if r, ok := fixpointResponse(s, byPeriod[:i], blocking); !ok {
				return fmt.Errorf("%w: stream %q worst-case response %v exceeds its deadline %v under rm",
					ErrNotSchedulable, s.Name, r, s.Deadline)
			}
		}
		return nil
	default: // FIFO
		for i, s := range set {
			others := make([]*Stream, 0, len(set)-1)
			for j, o := range set {
				if j != i {
					others = append(others, o)
				}
			}
			if r, ok := fixpointResponse(s, others, 0); !ok {
				return fmt.Errorf("%w: stream %q worst-case response %v exceeds its deadline %v under fifo",
					ErrNotSchedulable, s.Name, r, s.Deadline)
			}
		}
		return nil
	}
}

// fixpointResponse iterates R = blocking + C + Σ ceil(R/T_j)·C_j over the
// interfering streams until it converges or exceeds s's deadline.
func fixpointResponse(s *Stream, interfering []*Stream, blocking time.Duration) (time.Duration, bool) {
	r := blocking + s.Cost()
	for iter := 0; iter < 64; iter++ {
		next := blocking + s.Cost()
		for _, j := range interfering {
			n := (r + j.Period - 1) / j.Period // ceil(r / T_j)
			next += time.Duration(n) * j.Cost()
		}
		if next > s.Deadline {
			return next, false
		}
		if next == r {
			return r, true
		}
		r = next
	}
	return r, r <= s.Deadline
}

// Remove unregisters a stream, cancelling its pending release. It reports
// whether the stream existed. Already-running jobs finish normally.
func (d *Dispatcher) Remove(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.streams[name]
	if !ok {
		return false
	}
	delete(d.streams, name)
	if p := d.pending[name]; p != nil {
		p.cancelled = true
		delete(d.pending, name)
	}
	if d.running {
		d.wakeReleaseLoop()
	}
	d.logf("rt: removed stream %q", s.Name)
	return true
}

// wakeReleaseLoop nudges the release loop to recompute its next wake-up;
// callers hold d.mu.
func (d *Dispatcher) wakeReleaseLoop() {
	select {
	case d.recalc <- struct{}{}:
	default:
	}
}

// Start launches the release loop and the executor workers under ctx and
// returns an idempotent stop function that cancels and awaits them all —
// after stop returns, no release or job goroutine is left running.
// Starting an already-running dispatcher returns an error.
func (d *Dispatcher) Start(ctx context.Context) (stop func(), err error) {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return nil, errors.New("rt: dispatcher already running")
	}
	d.running = true
	d.stopped = false
	now := d.cfg.Clock.Now()
	for _, s := range d.streams {
		s.next = now
	}
	d.mu.Unlock()

	rctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.releaseLoop(rctx)
	}()
	for i := 0; i < d.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.worker(rctx)
		}()
	}
	wg.Add(1)
	go func() {
		// The stop watcher: workers parked in cond.Wait cannot see a
		// context, so cancellation is translated into the stopped flag
		// plus a broadcast.
		defer wg.Done()
		<-rctx.Done()
		d.mu.Lock()
		d.stopped = true
		d.mu.Unlock()
		d.cond.Broadcast()
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			wg.Wait()
			d.mu.Lock()
			d.running = false
			d.queue.jobs = nil
			d.pending = make(map[string]*queuedJob)
			d.mu.Unlock()
		})
	}, nil
}

// releaseLoop releases one job per stream per period, sleeping until the
// earliest next release and waking early on register/remove.
func (d *Dispatcher) releaseLoop(ctx context.Context) {
	timer := d.cfg.Clock.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var dropped []JobResult
		d.mu.Lock()
		now := d.cfg.Clock.Now()
		// Release in sorted-name order so coincident releases get
		// deterministic sequence numbers: seq breaks every heap tie, so
		// map iteration order must not leak into FIFO (or tied RM/EDF)
		// dispatch order.
		byName := make([]*Stream, 0, len(d.streams))
		for _, s := range d.streams {
			byName = append(byName, s)
		}
		sort.Slice(byName, func(i, j int) bool { return byName[i].Name < byName[j].Name })
		var next time.Time
		for _, s := range byName {
			for !s.next.After(now) {
				if res, drop := d.releaseLocked(s, s.next); drop {
					dropped = append(dropped, res)
				}
				s.next = s.next.Add(s.Period)
			}
			if next.IsZero() || s.next.Before(next) {
				next = s.next
			}
		}
		d.mu.Unlock()
		for _, res := range dropped {
			d.complete(res)
		}

		if next.IsZero() {
			// No streams yet: wait for a registration or shutdown.
			select {
			case <-ctx.Done():
				return
			case <-d.recalc:
				continue
			}
		}
		timer.Reset(next.Sub(d.cfg.Clock.Now()))
		select {
		case <-ctx.Done():
			return
		case <-d.recalc:
		case <-timer.C():
		}
	}
}

// releaseLocked creates the job for one period of s, superseding a still
// pending predecessor (returned as a dropped JobResult for the caller to
// report off-lock). Callers hold d.mu.
func (d *Dispatcher) releaseLocked(s *Stream, release time.Time) (droppedRes JobResult, dropped bool) {
	d.seq++
	j := &queuedJob{Job: Job{
		Stream:   s,
		Seq:      d.seq,
		Release:  release,
		Deadline: release.Add(s.Deadline),
	}}
	s.releases.Add(1)
	if old := d.pending[s.Name]; old != nil {
		// The previous release never started and its successor is here;
		// under the constrained-deadline model its deadline has passed,
		// so dropping it is the honest miss accounting (and bounds the
		// backlog to one pending job per stream under overload).
		old.cancelled = true
		s.drops.Add(1)
		s.misses.Add(1)
		now := d.cfg.Clock.Now()
		tard := now.Sub(old.Deadline)
		if tard < 0 {
			tard = 0
		}
		droppedRes = JobResult{Job: old.Job, Finish: now, Dropped: true, Missed: true, Tardiness: tard}
		dropped = true
	}
	d.pending[s.Name] = j
	heap.Push(&d.queue, j)
	d.cond.Signal()
	return droppedRes, dropped
}

// worker executes queued jobs in policy order until the dispatcher stops.
func (d *Dispatcher) worker(ctx context.Context) {
	for {
		d.mu.Lock()
		for len(d.queue.jobs) == 0 && !d.stopped {
			d.cond.Wait()
		}
		if d.stopped {
			d.mu.Unlock()
			return
		}
		j := heap.Pop(&d.queue).(*queuedJob)
		if j.cancelled {
			d.mu.Unlock()
			continue
		}
		if d.pending[j.Stream.Name] == j {
			delete(d.pending, j.Stream.Name)
		}
		d.mu.Unlock()

		if now := d.cfg.Clock.Now(); !now.Before(j.Deadline) {
			// The job is already past its deadline: shed it instead of
			// burning the worker on worthless output (a stale camera
			// frame). Without this, EDF under overload dominoes — the
			// most-overdue job always has the earliest deadline.
			s := j.Stream
			s.drops.Add(1)
			s.misses.Add(1)
			d.complete(JobResult{Job: j.Job, Finish: now, Dropped: true, Missed: true, Tardiness: now.Sub(j.Deadline)})
			continue
		}

		err := d.cfg.Run(ctx, j.Job)
		finish := d.cfg.Clock.Now()
		tard := finish.Sub(j.Deadline)
		missed := tard > 0
		if tard < 0 {
			tard = 0
		}
		s := j.Stream
		s.completions.Add(1)
		if missed {
			s.misses.Add(1)
		}
		d.complete(JobResult{Job: j.Job, Finish: finish, Missed: missed, Tardiness: tard, Err: err})
	}
}

// complete forwards one job result to the OnComplete observer.
func (d *Dispatcher) complete(res JobResult) {
	if d.cfg.OnComplete != nil {
		d.cfg.OnComplete(res)
	}
	if res.Err != nil {
		d.logf("rt: job %s/%d failed: %v", res.Stream.Name, res.Seq, res.Err)
	}
}

// logf forwards to the configured logger, if any.
func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// StreamStats is one stream's point-in-time snapshot.
type StreamStats struct {
	// Name is the stream's registration name.
	Name string `json:"name"`
	// PeriodMS / DeadlineMS / CostMS echo the admitted parameters
	// (milliseconds; cost is the last admission estimate).
	PeriodMS   float64 `json:"period_ms"`
	DeadlineMS float64 `json:"deadline_ms"`
	CostMS     float64 `json:"cost_ms"`
	// Utilization is cost/period.
	Utilization float64 `json:"utilization"`
	// Releases / Completions / Misses / Drops are the live counters
	// (drops are the subset of misses that never started).
	Releases    uint64 `json:"releases"`
	Completions uint64 `json:"completions"`
	Misses      uint64 `json:"misses"`
	Drops       uint64 `json:"drops"`
}

// Stats is a point-in-time snapshot of the whole dispatcher.
type Stats struct {
	// Policy is the queue discipline in force.
	Policy Policy `json:"policy"`
	// UtilBound is the admission bound applied to the current stream
	// count (already scaled by workers).
	UtilBound float64 `json:"util_bound"`
	// Utilization is the admitted set's total cost/period share.
	Utilization float64 `json:"utilization"`
	// Queued counts jobs released but not yet started.
	Queued int `json:"queued"`
	// Releases / Completions / Misses / Drops aggregate the per-stream
	// counters.
	Releases    uint64 `json:"releases"`
	Completions uint64 `json:"completions"`
	Misses      uint64 `json:"misses"`
	Drops       uint64 `json:"drops"`
	// Streams lists every admitted stream, sorted by name.
	Streams []StreamStats `json:"streams"`
}

// Stats snapshots the dispatcher.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	streams := make([]*Stream, 0, len(d.streams))
	for _, s := range d.streams {
		streams = append(streams, s)
	}
	queued := len(d.pending)
	n := len(d.streams)
	d.mu.Unlock()

	sort.Slice(streams, func(i, j int) bool { return streams[i].Name < streams[j].Name })
	out := Stats{Policy: d.cfg.Policy, UtilBound: d.bound(n), Queued: queued}
	for _, s := range streams {
		ss := StreamStats{
			Name:        s.Name,
			PeriodMS:    float64(s.Period) / float64(time.Millisecond),
			DeadlineMS:  float64(s.Deadline) / float64(time.Millisecond),
			CostMS:      float64(s.Cost()) / float64(time.Millisecond),
			Utilization: s.Utilization(),
			Releases:    s.Releases(),
			Completions: s.Completions(),
			Misses:      s.Misses(),
			Drops:       s.Drops(),
		}
		out.Utilization += ss.Utilization
		out.Releases += ss.Releases
		out.Completions += ss.Completions
		out.Misses += ss.Misses
		out.Drops += ss.Drops
		out.Streams = append(out.Streams, ss)
	}
	return out
}

// Queued counts jobs released but not yet started.
func (d *Dispatcher) Queued() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Streams snapshots the admitted stream set, sorted by name.
func (d *Dispatcher) Streams() []StreamStats { return d.Stats().Streams }

// queuedJob is a Job on the dispatch heap; cancelled jobs are skipped
// lazily when popped.
type queuedJob struct {
	Job
	cancelled bool
}

// jobHeap orders queued jobs by the dispatcher policy: FIFO by release
// sequence, RM by stream period, EDF by absolute deadline (sequence
// breaking ties everywhere, for determinism).
type jobHeap struct {
	policy Policy
	jobs   []*queuedJob
}

// Len implements heap.Interface.
func (h *jobHeap) Len() int { return len(h.jobs) }

// Less implements heap.Interface with the policy ordering.
func (h *jobHeap) Less(i, j int) bool {
	a, b := h.jobs[i], h.jobs[j]
	switch h.policy {
	case RM:
		if a.Stream.Period != b.Stream.Period {
			return a.Stream.Period < b.Stream.Period
		}
	case EDF:
		if !a.Deadline.Equal(b.Deadline) {
			return a.Deadline.Before(b.Deadline)
		}
	}
	return a.Seq < b.Seq
}

// Swap implements heap.Interface.
func (h *jobHeap) Swap(i, j int) { h.jobs[i], h.jobs[j] = h.jobs[j], h.jobs[i] }

// Push implements heap.Interface.
func (h *jobHeap) Push(x any) { h.jobs = append(h.jobs, x.(*queuedJob)) }

// Pop implements heap.Interface.
func (h *jobHeap) Pop() any {
	n := len(h.jobs)
	j := h.jobs[n-1]
	h.jobs[n-1] = nil
	h.jobs = h.jobs[:n-1]
	return j
}
