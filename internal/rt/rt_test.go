package rt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"
)

// nopRun is a Run for tests that only exercise admission: it never
// actually executes because those dispatchers are never started.
func nopRun(ctx context.Context, j Job) error { return nil }

// harness couples a dispatcher to a fake clock and a result channel so
// tests drive releases deterministically: advance the clock, then block
// on the next JobResult instead of sleeping.
type harness struct {
	clk     *FakeClock
	results chan JobResult
}

func newHarness() *harness {
	return &harness{
		clk:     NewFakeClock(time.Unix(0, 0)),
		results: make(chan JobResult, 1024),
	}
}

// config returns a Config wired to the harness clock and result channel.
func (h *harness) config(p Policy, run func(ctx context.Context, j Job) error) Config {
	return Config{
		Policy:     p,
		Run:        run,
		Clock:      h.clk,
		OnComplete: func(res JobResult) { h.results <- res },
	}
}

// next blocks for the next job result.
func (h *harness) next(t *testing.T) JobResult {
	t.Helper()
	return <-h.results
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"fifo", "rm", "edf"} {
		p, err := ParsePolicy(ok)
		if err != nil || string(p) != ok {
			t.Fatalf("ParsePolicy(%q) = %v, %v", ok, p, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("ParsePolicy accepted lifo")
	}
}

func TestLiuLaylandAndDefaultBound(t *testing.T) {
	if got := LiuLayland(1); got != 1 {
		t.Fatalf("LiuLayland(1) = %v, want 1", got)
	}
	if got, want := LiuLayland(2), 2*(math.Sqrt2-1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LiuLayland(2) = %v, want %v", got, want)
	}
	if got := LiuLayland(100); got < math.Ln2 || got > 1 {
		t.Fatalf("LiuLayland(100) = %v outside (ln2, 1)", got)
	}
	if DefaultBound(EDF, 5) != 1 {
		t.Fatal("EDF default bound should be 1")
	}
	if DefaultBound(RM, 3) != LiuLayland(3) || DefaultBound(FIFO, 3) != LiuLayland(3) {
		t.Fatal("RM/FIFO default bound should be Liu & Layland")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Policy: "lifo", Run: nopRun},
		{UtilBound: -0.5, Run: nopRun},
		{Workers: -1, Run: nopRun},
		{}, // no Run
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
	d, err := New(Config{Run: nopRun})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d.Policy() != EDF {
		t.Fatalf("default policy = %v, want edf", d.Policy())
	}
}

func TestRegisterValidation(t *testing.T) {
	d, err := New(Config{Policy: EDF, Run: nopRun})
	if err != nil {
		t.Fatal(err)
	}
	bad := []StreamSpec{
		{Period: time.Second, Cost: time.Millisecond},                                       // no name
		{Name: "a", Cost: time.Millisecond},                                                 // no period
		{Name: "a", Period: time.Second, Deadline: 2 * time.Second, Cost: time.Millisecond}, // deadline > period
		{Name: "a", Period: time.Second, Deadline: -time.Second, Cost: time.Millisecond},    // negative deadline
		{Name: "a", Period: time.Second, Cost: -time.Millisecond},                           // negative cost
		{Name: "a", Period: time.Second},                                                    // no cost, no Estimate
	}
	for i, spec := range bad {
		if _, err := d.Register(spec); err == nil {
			t.Fatalf("case %d: Register accepted invalid spec %+v", i, spec)
		}
	}
	if _, err := d.Register(StreamSpec{Name: "a", Period: time.Second, Cost: 10 * time.Millisecond}); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := d.Register(StreamSpec{Name: "a", Period: time.Second, Cost: 10 * time.Millisecond}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestSchedulabilityUtilizationBound(t *testing.T) {
	// Two streams at 0.5 utilization each: fine under EDF (bound 1.0),
	// rejected under RM's Liu & Layland bound (0.828).
	specs := []StreamSpec{
		{Name: "a", Period: 100 * time.Millisecond, Cost: 50 * time.Millisecond},
		{Name: "b", Period: 200 * time.Millisecond, Cost: 100 * time.Millisecond},
	}
	edf, _ := New(Config{Policy: EDF, Run: nopRun})
	for _, sp := range specs {
		if _, err := edf.Register(sp); err != nil {
			t.Fatalf("edf rejected %q: %v", sp.Name, err)
		}
	}
	rm, _ := New(Config{Policy: RM, Run: nopRun})
	if _, err := rm.Register(specs[0]); err != nil {
		t.Fatalf("rm rejected first stream: %v", err)
	}
	_, err := rm.Register(specs[1])
	if !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("rm admission of util-1.0 set: err = %v, want ErrNotSchedulable", err)
	}
	// The explicit-bound override admits the same set (and skips RTA).
	over, _ := New(Config{Policy: RM, UtilBound: 1.5, Run: nopRun})
	for _, sp := range specs {
		if _, err := over.Register(sp); err != nil {
			t.Fatalf("override bound rejected %q: %v", sp.Name, err)
		}
	}
	// Cost beyond the deadline is never schedulable, bound or not.
	_, err = over.Register(StreamSpec{Name: "c", Period: 100 * time.Millisecond,
		Deadline: 20 * time.Millisecond, Cost: 30 * time.Millisecond})
	if !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("cost>deadline: err = %v, want ErrNotSchedulable", err)
	}
}

func TestSchedulabilityResponseTimeAnalysis(t *testing.T) {
	// Utilization 0.5 passes every bound, but stream b's 60ms deadline
	// cannot absorb a's interference under RM (R = 30 + ceil(R/100)*40
	// fixes at 70ms) or FIFO. EDF's density test (0.9) admits it.
	specs := []StreamSpec{
		{Name: "a", Period: 100 * time.Millisecond, Cost: 40 * time.Millisecond},
		{Name: "b", Period: 300 * time.Millisecond, Deadline: 60 * time.Millisecond, Cost: 30 * time.Millisecond},
	}
	for _, tc := range []struct {
		policy Policy
		admit  bool
	}{{EDF, true}, {RM, false}, {FIFO, false}} {
		d, _ := New(Config{Policy: tc.policy, Run: nopRun})
		var err error
		for _, sp := range specs {
			if _, err = d.Register(sp); err != nil {
				break
			}
		}
		if tc.admit && err != nil {
			t.Fatalf("%s rejected RTA-feasible set: %v", tc.policy, err)
		}
		if !tc.admit && !errors.Is(err, ErrNotSchedulable) {
			t.Fatalf("%s admission: err = %v, want ErrNotSchedulable", tc.policy, err)
		}
	}
}

func TestEstimateFeedsAdmission(t *testing.T) {
	est := 5 * time.Millisecond
	d, _ := New(Config{
		Policy: EDF,
		Run:    nopRun,
		Estimate: func(s *Stream) time.Duration {
			return est
		},
	})
	s, err := d.Register(StreamSpec{Name: "a", Period: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Register with Estimate: %v", err)
	}
	if s.Cost() != est {
		t.Fatalf("cost = %v, want %v", s.Cost(), est)
	}
	// A later registration re-estimates the existing stream too.
	est = 9 * time.Millisecond
	if _, err := d.Register(StreamSpec{Name: "b", Period: 100 * time.Millisecond}); err != nil {
		t.Fatalf("second Register: %v", err)
	}
	if s.Cost() != est {
		t.Fatalf("refreshed cost = %v, want %v", s.Cost(), est)
	}
	// An estimate that no longer fits the deadline blocks new admissions.
	est = 150 * time.Millisecond
	if _, err := d.Register(StreamSpec{Name: "c", Period: 200 * time.Millisecond}); !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("oversized estimate: err = %v, want ErrNotSchedulable", err)
	}
}

func TestDispatcherReleasesAndCompletes(t *testing.T) {
	h := newHarness()
	d, _ := New(h.config(EDF, func(ctx context.Context, j Job) error { return nil }))
	s, err := d.Register(StreamSpec{Name: "cam", Period: 30 * time.Millisecond, Cost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The first job releases at start; each clock advance of one period
	// releases exactly one more. Awaiting the result before advancing
	// keeps the schedule lock-step deterministic.
	for i := 0; i < 4; i++ {
		if i > 0 {
			h.clk.Advance(30 * time.Millisecond)
		}
		res := h.next(t)
		if res.Dropped || res.Missed || res.Err != nil {
			t.Fatalf("job %d: unexpected result %+v", i, res)
		}
	}
	stop()
	if got := s.Completions(); got != 4 {
		t.Fatalf("completions = %d, want 4", got)
	}
	if got := s.Releases(); got != 4 {
		t.Fatalf("releases = %d, want 4", got)
	}
	if s.Misses() != 0 {
		t.Fatalf("misses = %d for a trivially schedulable stream", s.Misses())
	}
	st := d.Stats()
	if st.Policy != EDF || len(st.Streams) != 1 || st.Streams[0].Name != "cam" {
		t.Fatalf("stats = %+v", st)
	}
	if st.Releases != s.Releases() || st.Completions != s.Completions() {
		t.Fatalf("stats totals %+v do not reconcile with stream counters", st)
	}
}

func TestDeadlineMissAndSupersedeAccounting(t *testing.T) {
	h := newHarness()
	cfg := h.config(EDF, func(ctx context.Context, j Job) error {
		// Each execution burns 45ms of virtual time — far past the 15ms
		// deadline and the 25ms release period.
		h.clk.Advance(45 * time.Millisecond)
		return nil
	})
	// Overload deliberately; admission must be bypassed via bound.
	cfg.UtilBound = 10
	d, _ := New(cfg)
	s, err := d.Register(StreamSpec{Name: "slow", Period: 25 * time.Millisecond,
		Deadline: 15 * time.Millisecond, Cost: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// t=0: job 1 releases and starts; running it advances the clock to
	// t=45, past both its own deadline (15) and the t=25 release of
	// job 2 (deadline 40), which the worker must then shed unrun.
	first := h.next(t)
	if !first.Missed || first.Dropped || first.Tardiness != 30*time.Millisecond {
		t.Fatalf("job 1: %+v, want missed with 30ms tardiness", first)
	}
	second := h.next(t)
	if !second.Dropped || !second.Missed {
		t.Fatalf("job 2: %+v, want shed (dropped and missed)", second)
	}
	// t=65: job 3 (released t=50, deadline 65) is exactly at its
	// deadline when the worker sees it — shed as well.
	h.clk.Advance(20 * time.Millisecond)
	third := h.next(t)
	if !third.Dropped || !third.Missed {
		t.Fatalf("job 3: %+v, want shed (dropped and missed)", third)
	}
	stop()
	if s.Misses() != 3 || s.Drops() != 2 || s.Completions() != 1 {
		t.Fatalf("misses=%d drops=%d completions=%d; want 3, 2, 1",
			s.Misses(), s.Drops(), s.Completions())
	}
	// Every release is accounted for: completed or dropped.
	if s.Releases() != s.Completions()+s.Drops() {
		t.Fatalf("unaccounted releases: releases=%d completions=%d drops=%d",
			s.Releases(), s.Completions(), s.Drops())
	}
}

func TestRemoveCancelsPending(t *testing.T) {
	h := newHarness()
	cfg := h.config(FIFO, func(ctx context.Context, j Job) error { return nil })
	cfg.UtilBound = 10
	d, _ := New(cfg)
	if _, err := d.Register(StreamSpec{Name: "a", Period: 20 * time.Millisecond, Cost: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Await the initial release's completion so Remove races nothing.
	if res := h.next(t); res.Err != nil {
		t.Fatalf("first job failed: %v", res.Err)
	}
	if !d.Remove("a") {
		t.Fatal("Remove returned false for a registered stream")
	}
	if d.Remove("a") {
		t.Fatal("Remove returned true for an unregistered stream")
	}
	if st := d.Stats(); len(st.Streams) != 0 {
		t.Fatalf("stats still lists %d streams after Remove", len(st.Streams))
	}
}

func TestShutdownLeavesNoOrphanedReleases(t *testing.T) {
	h := newHarness()
	d, _ := New(h.config(RM, func(ctx context.Context, j Job) error { return nil }))
	for i := 0; i < 3; i++ {
		spec := StreamSpec{Name: fmt.Sprintf("s%d", i),
			Period: time.Duration(20+10*i) * time.Millisecond, Cost: time.Millisecond}
		if _, err := d.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(context.Background()); err == nil {
		t.Fatal("second Start while running should fail")
	}
	// Each stream releases once at start; no clock advance means no
	// further releases, so exactly three results flow.
	for i := 0; i < 3; i++ {
		h.next(t)
	}
	stop()
	stop() // idempotent
	// After stop returns every goroutine has exited: even a full second
	// of virtual time (dozens of periods) must release nothing.
	relBefore := d.Stats().Releases
	if relBefore != 3 {
		t.Fatalf("releases before shutdown = %d, want 3", relBefore)
	}
	h.clk.Advance(time.Second)
	select {
	case res := <-h.results:
		t.Fatalf("completion flowed after stop: %+v", res)
	default:
	}
	if relAfter := d.Stats().Releases; relAfter != relBefore {
		t.Fatalf("releases kept flowing after stop: %d -> %d", relBefore, relAfter)
	}
	// The dispatcher restarts cleanly and releases the set again.
	stop2, err := d.Start(context.Background())
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	for i := 0; i < 3; i++ {
		h.next(t)
	}
	stop2()
	if got := d.Stats().Releases; got != relBefore+3 {
		t.Fatalf("releases after restart = %d, want %d", got, relBefore+3)
	}
}

// TestMissRateOrderingUnderOverload replays the same deadline-constrained
// camera-style workload under each queue discipline on a fake clock — a
// deterministic discrete-event simulation where running a job advances
// virtual time by its cost — and asserts the expected ordering: EDF
// misses least, RM more, FIFO most. Each policy's losses are structural,
// not noise. The heavy "bulk" job blocks everyone equally while running
// (execution is non-preemptive), but only FIFO also serves it ahead of
// younger urgent jobs — the classic priority inversion — costing extra
// "cam" misses; RM additionally starves the long-period tight-deadline
// "lidar" stream behind the cam/aux queue, where EDF jumps it ahead.
// The set runs ~7% under capacity so the ordering reflects discipline
// rather than saturation collapse, yet it exceeds every default
// admission bound — registration needs the explicit override, which is
// the overload the acceptance criterion exercises.
func TestMissRateOrderingUnderOverload(t *testing.T) {
	specs := []StreamSpec{
		{Name: "cam", Period: 60 * time.Millisecond, Cost: 20 * time.Millisecond},
		{Name: "aux", Period: 150 * time.Millisecond, Cost: 30 * time.Millisecond},
		{Name: "lidar", Period: 300 * time.Millisecond, Deadline: 90 * time.Millisecond, Cost: 30 * time.Millisecond},
		{Name: "bulk", Period: 400 * time.Millisecond, Cost: 120 * time.Millisecond},
	}
	replay := func(p Policy) uint64 {
		h := newHarness()
		// The worker hands each job to the driver and blocks until the
		// driver has advanced virtual time by its cost: the clock only
		// moves while every dispatcher goroutine is parked, which makes
		// the whole replay a deterministic simulation.
		started := make(chan Job, 1) // one worker: at most one in flight
		finish := make(chan struct{})
		cfg := h.config(p, func(ctx context.Context, j Job) error {
			// Both channel operations yield to cancellation: at stop the
			// driver is gone, and an unconsumed handoff must not wedge
			// the worker (and with it the dispatcher's shutdown).
			select {
			case started <- j:
			case <-ctx.Done():
				return ctx.Err()
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-finish:
				return nil
			}
		})
		cfg.UtilBound = 1.2
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range specs {
			if _, err := d.Register(sp); err != nil {
				t.Fatalf("%s: register %q: %v", p, sp.Name, err)
			}
		}
		start := h.clk.Now()
		// Mirror the dispatcher's release schedule (stream i releases at
		// start + k*period) so every clock movement can wait until the
		// release loop has caught up to exactly the expected count.
		nextRel := make([]time.Time, len(specs))
		for i := range nextRel {
			nextRel[i] = start
		}
		var rel, seen uint64
		settle := func(now time.Time) {
			for i, sp := range specs {
				for !nextRel[i].After(now) {
					rel++
					nextRel[i] = nextRel[i].Add(sp.Period)
				}
			}
			for d.Stats().Releases < rel {
				runtime.Gosched()
			}
		}
		stop, err := d.Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		settle(start) // the initial release of every stream
		end := start.Add(2400 * time.Millisecond)
		for h.clk.Now().Before(end) {
			if rel > seen {
				// A released job has not resulted yet: it is queued (the
				// worker will shed or start it) or in flight. Either a
				// result or a start arrives without moving the clock.
				select {
				case <-h.results:
					seen++
				case j := <-started:
					h.clk.Advance(j.Stream.Cost())
					settle(h.clk.Now())
					finish <- struct{}{}
				}
			} else {
				// Quiescent: jump exactly to the earliest next release.
				next := nextRel[0]
				for _, v := range nextRel[1:] {
					if v.Before(next) {
						next = v
					}
				}
				h.clk.Advance(next.Sub(h.clk.Now()))
				settle(next)
			}
		}
		stop()
		st := d.Stats()
		t.Logf("%-4s: releases=%d completions=%d misses=%d drops=%d", p, st.Releases, st.Completions, st.Misses, st.Drops)
		return st.Misses
	}
	edf := replay(EDF)
	rm := replay(RM)
	fifo := replay(FIFO)
	if edf > rm {
		t.Errorf("miss ordering violated: edf=%d > rm=%d", edf, rm)
	}
	if rm > fifo {
		t.Errorf("miss ordering violated: rm=%d > fifo=%d", rm, fifo)
	}
}
