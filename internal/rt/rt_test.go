package rt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sleepRun returns a Run that sleeps for the stream's effective cost
// (respecting cancellation), simulating an inference pipeline.
func sleepRun() func(ctx context.Context, j Job) error {
	return func(ctx context.Context, j Job) error {
		t := time.NewTimer(j.Stream.Cost())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"fifo", "rm", "edf"} {
		p, err := ParsePolicy(ok)
		if err != nil || string(p) != ok {
			t.Fatalf("ParsePolicy(%q) = %v, %v", ok, p, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("ParsePolicy accepted lifo")
	}
}

func TestLiuLaylandAndDefaultBound(t *testing.T) {
	if got := LiuLayland(1); got != 1 {
		t.Fatalf("LiuLayland(1) = %v, want 1", got)
	}
	if got, want := LiuLayland(2), 2*(math.Sqrt2-1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LiuLayland(2) = %v, want %v", got, want)
	}
	if got := LiuLayland(100); got < math.Ln2 || got > 1 {
		t.Fatalf("LiuLayland(100) = %v outside (ln2, 1)", got)
	}
	if DefaultBound(EDF, 5) != 1 {
		t.Fatal("EDF default bound should be 1")
	}
	if DefaultBound(RM, 3) != LiuLayland(3) || DefaultBound(FIFO, 3) != LiuLayland(3) {
		t.Fatal("RM/FIFO default bound should be Liu & Layland")
	}
}

func TestNewValidation(t *testing.T) {
	run := sleepRun()
	cases := []Config{
		{Policy: "lifo", Run: run},
		{UtilBound: -0.5, Run: run},
		{Workers: -1, Run: run},
		{}, // no Run
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
	d, err := New(Config{Run: run})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d.Policy() != EDF {
		t.Fatalf("default policy = %v, want edf", d.Policy())
	}
}

func TestRegisterValidation(t *testing.T) {
	d, err := New(Config{Policy: EDF, Run: sleepRun()})
	if err != nil {
		t.Fatal(err)
	}
	bad := []StreamSpec{
		{Period: time.Second, Cost: time.Millisecond},                                       // no name
		{Name: "a", Cost: time.Millisecond},                                                 // no period
		{Name: "a", Period: time.Second, Deadline: 2 * time.Second, Cost: time.Millisecond}, // deadline > period
		{Name: "a", Period: time.Second, Deadline: -time.Second, Cost: time.Millisecond},    // negative deadline
		{Name: "a", Period: time.Second, Cost: -time.Millisecond},                           // negative cost
		{Name: "a", Period: time.Second},                                                    // no cost, no Estimate
	}
	for i, spec := range bad {
		if _, err := d.Register(spec); err == nil {
			t.Fatalf("case %d: Register accepted invalid spec %+v", i, spec)
		}
	}
	if _, err := d.Register(StreamSpec{Name: "a", Period: time.Second, Cost: 10 * time.Millisecond}); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := d.Register(StreamSpec{Name: "a", Period: time.Second, Cost: 10 * time.Millisecond}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestSchedulabilityUtilizationBound(t *testing.T) {
	// Two streams at 0.5 utilization each: fine under EDF (bound 1.0),
	// rejected under RM's Liu & Layland bound (0.828).
	specs := []StreamSpec{
		{Name: "a", Period: 100 * time.Millisecond, Cost: 50 * time.Millisecond},
		{Name: "b", Period: 200 * time.Millisecond, Cost: 100 * time.Millisecond},
	}
	edf, _ := New(Config{Policy: EDF, Run: sleepRun()})
	for _, sp := range specs {
		if _, err := edf.Register(sp); err != nil {
			t.Fatalf("edf rejected %q: %v", sp.Name, err)
		}
	}
	rm, _ := New(Config{Policy: RM, Run: sleepRun()})
	if _, err := rm.Register(specs[0]); err != nil {
		t.Fatalf("rm rejected first stream: %v", err)
	}
	_, err := rm.Register(specs[1])
	if !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("rm admission of util-1.0 set: err = %v, want ErrNotSchedulable", err)
	}
	// The explicit-bound override admits the same set (and skips RTA).
	over, _ := New(Config{Policy: RM, UtilBound: 1.5, Run: sleepRun()})
	for _, sp := range specs {
		if _, err := over.Register(sp); err != nil {
			t.Fatalf("override bound rejected %q: %v", sp.Name, err)
		}
	}
	// Cost beyond the deadline is never schedulable, bound or not.
	_, err = over.Register(StreamSpec{Name: "c", Period: 100 * time.Millisecond,
		Deadline: 20 * time.Millisecond, Cost: 30 * time.Millisecond})
	if !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("cost>deadline: err = %v, want ErrNotSchedulable", err)
	}
}

func TestSchedulabilityResponseTimeAnalysis(t *testing.T) {
	// Utilization 0.5 passes every bound, but stream b's 60ms deadline
	// cannot absorb a's interference under RM (R = 30 + ceil(R/100)*40
	// fixes at 70ms) or FIFO. EDF's density test (0.9) admits it.
	specs := []StreamSpec{
		{Name: "a", Period: 100 * time.Millisecond, Cost: 40 * time.Millisecond},
		{Name: "b", Period: 300 * time.Millisecond, Deadline: 60 * time.Millisecond, Cost: 30 * time.Millisecond},
	}
	for _, tc := range []struct {
		policy Policy
		admit  bool
	}{{EDF, true}, {RM, false}, {FIFO, false}} {
		d, _ := New(Config{Policy: tc.policy, Run: sleepRun()})
		var err error
		for _, sp := range specs {
			if _, err = d.Register(sp); err != nil {
				break
			}
		}
		if tc.admit && err != nil {
			t.Fatalf("%s rejected RTA-feasible set: %v", tc.policy, err)
		}
		if !tc.admit && !errors.Is(err, ErrNotSchedulable) {
			t.Fatalf("%s admission: err = %v, want ErrNotSchedulable", tc.policy, err)
		}
	}
}

func TestEstimateFeedsAdmission(t *testing.T) {
	est := 5 * time.Millisecond
	d, _ := New(Config{
		Policy: EDF,
		Run:    sleepRun(),
		Estimate: func(s *Stream) time.Duration {
			return est
		},
	})
	s, err := d.Register(StreamSpec{Name: "a", Period: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Register with Estimate: %v", err)
	}
	if s.Cost() != est {
		t.Fatalf("cost = %v, want %v", s.Cost(), est)
	}
	// A later registration re-estimates the existing stream too.
	est = 9 * time.Millisecond
	if _, err := d.Register(StreamSpec{Name: "b", Period: 100 * time.Millisecond}); err != nil {
		t.Fatalf("second Register: %v", err)
	}
	if s.Cost() != est {
		t.Fatalf("refreshed cost = %v, want %v", s.Cost(), est)
	}
	// An estimate that no longer fits the deadline blocks new admissions.
	est = 150 * time.Millisecond
	if _, err := d.Register(StreamSpec{Name: "c", Period: 200 * time.Millisecond}); !errors.Is(err, ErrNotSchedulable) {
		t.Fatalf("oversized estimate: err = %v, want ErrNotSchedulable", err)
	}
}

func TestDispatcherReleasesAndCompletes(t *testing.T) {
	var done atomic.Uint64
	d, _ := New(Config{
		Policy: EDF,
		Run: func(ctx context.Context, j Job) error {
			done.Add(1)
			return nil
		},
	})
	s, err := d.Register(StreamSpec{Name: "cam", Period: 30 * time.Millisecond, Cost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for done.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if got := done.Load(); got < 4 {
		t.Fatalf("completions = %d, want >= 4", got)
	}
	if s.Releases() < s.Completions() {
		t.Fatalf("releases %d < completions %d", s.Releases(), s.Completions())
	}
	if s.Misses() != 0 {
		t.Fatalf("misses = %d for a trivially schedulable stream", s.Misses())
	}
	st := d.Stats()
	if st.Policy != EDF || len(st.Streams) != 1 || st.Streams[0].Name != "cam" {
		t.Fatalf("stats = %+v", st)
	}
	if st.Releases != s.Releases() || st.Completions != s.Completions() {
		t.Fatalf("stats totals %+v do not reconcile with stream counters", st)
	}
}

func TestDeadlineMissAndSupersedeAccounting(t *testing.T) {
	var mu sync.Mutex
	var results []JobResult
	d, _ := New(Config{
		Policy: EDF,
		// Overload deliberately; admission must be bypassed via bound.
		UtilBound: 10,
		Run: func(ctx context.Context, j Job) error {
			t := time.NewTimer(45 * time.Millisecond) // >> deadline
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
		OnComplete: func(res JobResult) {
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		},
	})
	s, err := d.Register(StreamSpec{Name: "slow", Period: 25 * time.Millisecond,
		Deadline: 15 * time.Millisecond, Cost: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s.Misses() >= 3 && s.Drops() >= 1 && s.Completions() >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if s.Misses() < 3 || s.Drops() < 1 || s.Completions() < 1 {
		t.Fatalf("misses=%d drops=%d completions=%d; want >=3, >=1, >=1",
			s.Misses(), s.Drops(), s.Completions())
	}
	mu.Lock()
	defer mu.Unlock()
	var missed, tardy int
	for _, r := range results {
		if r.Missed {
			missed++
		}
		if r.Tardiness > 0 {
			tardy++
		}
	}
	if missed == 0 || tardy == 0 {
		t.Fatalf("OnComplete saw %d missed / %d tardy results out of %d", missed, tardy, len(results))
	}
	// Every release is accounted for: completed, dropped, or still queued
	// (at most one pending job per stream at shutdown).
	if s.Releases() > s.Completions()+s.Drops()+1 {
		t.Fatalf("unaccounted releases: releases=%d completions=%d drops=%d",
			s.Releases(), s.Completions(), s.Drops())
	}
}

func TestRemoveCancelsPending(t *testing.T) {
	d, _ := New(Config{Policy: FIFO, UtilBound: 10, Run: sleepRun()})
	if _, err := d.Register(StreamSpec{Name: "a", Period: 20 * time.Millisecond, Cost: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	time.Sleep(30 * time.Millisecond)
	if !d.Remove("a") {
		t.Fatal("Remove returned false for a registered stream")
	}
	if d.Remove("a") {
		t.Fatal("Remove returned true for an unregistered stream")
	}
	if st := d.Stats(); len(st.Streams) != 0 {
		t.Fatalf("stats still lists %d streams after Remove", len(st.Streams))
	}
}

func TestShutdownLeavesNoOrphanedReleases(t *testing.T) {
	var completions atomic.Uint64
	d, _ := New(Config{
		Policy:     RM,
		Run:        sleepRun(),
		OnComplete: func(JobResult) { completions.Add(1) },
	})
	for i := 0; i < 3; i++ {
		spec := StreamSpec{Name: fmt.Sprintf("s%d", i),
			Period: time.Duration(20+10*i) * time.Millisecond, Cost: time.Millisecond}
		if _, err := d.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	stop, err := d.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(context.Background()); err == nil {
		t.Fatal("second Start while running should fail")
	}
	time.Sleep(60 * time.Millisecond)
	stop()
	stop() // idempotent
	// After stop returns every goroutine has exited: no further releases
	// or completions may surface.
	before := completions.Load()
	relBefore := d.Stats().Releases
	time.Sleep(80 * time.Millisecond)
	if after := completions.Load(); after != before {
		t.Fatalf("completions kept flowing after stop: %d -> %d", before, after)
	}
	if relAfter := d.Stats().Releases; relAfter != relBefore {
		t.Fatalf("releases kept flowing after stop: %d -> %d", relBefore, relAfter)
	}
	// The dispatcher restarts cleanly.
	stop2, err := d.Start(context.Background())
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	stop2()
	if d.Stats().Releases <= relBefore {
		t.Fatal("restarted dispatcher released nothing")
	}
}

// TestMissRateOrderingUnderOverload replays the same deadline-constrained
// camera-style workload under each queue discipline and asserts the
// expected ordering: EDF misses least, RM more, FIFO most. Each policy's
// losses are structural, not noise. The heavy "bulk" job blocks everyone
// equally while running (execution is non-preemptive), but only FIFO
// also serves it ahead of younger urgent jobs — the classic priority
// inversion — costing extra "cam" misses; RM additionally starves the
// long-period tight-deadline "lidar" stream behind the cam/aux queue,
// where EDF jumps it ahead. The set runs ~7% under capacity so the
// ordering reflects discipline rather than saturation collapse, yet it
// exceeds every default admission bound — registration needs the
// explicit override, which is the overload the acceptance criterion
// exercises. Parameters were tuned by replaying candidates against this
// dispatcher until the ordering held with stable margins across trials.
func TestMissRateOrderingUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replay; skipped in -short")
	}
	specs := []StreamSpec{
		{Name: "cam", Period: 60 * time.Millisecond, Cost: 20 * time.Millisecond},
		{Name: "aux", Period: 150 * time.Millisecond, Cost: 30 * time.Millisecond},
		{Name: "lidar", Period: 300 * time.Millisecond, Deadline: 90 * time.Millisecond, Cost: 30 * time.Millisecond},
		{Name: "bulk", Period: 400 * time.Millisecond, Cost: 120 * time.Millisecond},
	}
	replay := func(p Policy) uint64 {
		d, err := New(Config{Policy: p, UtilBound: 1.2, Run: sleepRun()})
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range specs {
			if _, err := d.Register(sp); err != nil {
				t.Fatalf("%s: register %q: %v", p, sp.Name, err)
			}
		}
		stop, err := d.Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(2400 * time.Millisecond)
		stop()
		st := d.Stats()
		t.Logf("%-4s: releases=%d completions=%d misses=%d drops=%d", p, st.Releases, st.Completions, st.Misses, st.Drops)
		return st.Misses
	}
	edf := replay(EDF)
	rm := replay(RM)
	fifo := replay(FIFO)
	if edf > rm {
		t.Errorf("miss ordering violated: edf=%d > rm=%d", edf, rm)
	}
	if rm > fifo {
		t.Errorf("miss ordering violated: rm=%d > fifo=%d", rm, fifo)
	}
}
