package rt

import (
	"sync"
	"time"
)

// Clock abstracts the dispatcher's time source so tests can drive
// releases and deadline checks deterministically instead of sleeping.
// The zero Config uses the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a Timer that fires d from now.
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of time.Timer the release loop needs. Reset may
// be called on an expired or stopped timer without draining first —
// implementations absorb the stop/drain dance — but only from the one
// goroutine that receives from C. A Reset with a non-positive duration
// fires immediately, which is what makes a fake clock race-free: if the
// clock is advanced past a deadline before the timer is (re)armed, the
// arm itself delivers the tick.
type Timer interface {
	// C is the channel the timer fires on.
	C() <-chan time.Time
	// Reset re-arms the timer to fire d from now, superseding any
	// earlier arming and discarding an undelivered fire.
	Reset(d time.Duration)
	// Stop disarms the timer.
	Stop()
}

// WallClock returns the production Clock: real time. Packages that
// take an injectable Clock (the rt dispatcher, the online learning
// loop) default to it.
func WallClock() Clock { return wallClock{} }

// wallClock is the production Clock: real time.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) NewTimer(d time.Duration) Timer {
	return &wallTimer{t: time.NewTimer(d)}
}

// wallTimer wraps time.Timer with the drain-on-Reset contract.
type wallTimer struct{ t *time.Timer }

func (w *wallTimer) C() <-chan time.Time { return w.t.C }

func (w *wallTimer) Reset(d time.Duration) {
	if !w.t.Stop() {
		select {
		case <-w.t.C:
		default:
		}
	}
	w.t.Reset(d)
}

func (w *wallTimer) Stop() { w.t.Stop() }

// FakeClock is a manually advanced Clock for tests: time moves only
// when Advance is called, and due timers fire synchronously inside it.
// Advancing past a timer that has not been armed yet is safe — the
// subsequent Reset computes a non-positive delay and fires immediately.
// Safe for concurrent use; a job's Run callback may advance the clock
// to model execution time.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer arms a fake timer d from the current fake time.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clock: c, ch: make(chan time.Time, 1), when: c.now.Add(d), active: true}
	if d <= 0 {
		t.fireLocked(c.now)
	}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the fake time forward by d and fires every armed timer
// whose deadline has been reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.timers {
		if t.active && !t.when.After(c.now) {
			t.fireLocked(c.now)
		}
	}
}

// fakeTimer is one armed (or spent) FakeClock timer.
type fakeTimer struct {
	clock  *FakeClock
	ch     chan time.Time
	when   time.Time
	active bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Reset(d time.Duration) {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	select { // discard an undelivered fire from the previous arming
	case <-t.ch:
	default:
	}
	t.when = t.clock.now.Add(d)
	t.active = true
	if d <= 0 {
		t.fireLocked(t.clock.now)
	}
}

func (t *fakeTimer) Stop() {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	t.active = false
}

// fireLocked delivers one tick without blocking; callers hold clock.mu.
func (t *fakeTimer) fireLocked(now time.Time) {
	t.active = false
	select {
	case t.ch <- now:
	default:
	}
}
