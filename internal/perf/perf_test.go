package perf

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"time"

	"respect/internal/models"
	"respect/internal/solver"
)

func TestTimingPercentiles(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	tm := Timing{Iters: 100, Total: time.Second, Samples: samples}
	if got := tm.P(0.50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := tm.P(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := tm.P(1.0); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := tm.P(0); got != 1*time.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := tm.PerSecond(); got != 100 {
		t.Fatalf("per-second = %v", got)
	}
}

func TestMeasureSchedulerDeterministicCost(t *testing.T) {
	b, err := solver.Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	g := models.MustLoad("Xception")
	r1, err := MeasureScheduler(context.Background(), b, g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MeasureScheduler(context.Background(), b, g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PeakParamBytes != r2.PeakParamBytes || r1.CrossBytes != r2.CrossBytes {
		t.Fatalf("deterministic backend produced different costs: %+v vs %+v", r1, r2)
	}
	if r1.Backend != "heur" || r1.Graph != "Xception" || r1.Nodes != g.NumNodes() || r1.Iters != 5 {
		t.Fatalf("result metadata wrong: %+v", r1)
	}
	if r1.GraphsPerSecCore <= 0 || r1.P50Micros <= 0 || r1.P99Micros < r1.P50Micros {
		t.Fatalf("implausible timing: %+v", r1)
	}
}

func TestRunSolverSuiteSmall(t *testing.T) {
	results, notes, err := RunSolverSuite(context.Background(), SuiteConfig{
		Backends:   []string{"heur", "exact"},
		Models:     []string{"MobileNet"},
		SynthSizes: []int{20, 60},
		Stages:     4,
		Iters:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// heur: MobileNet + synth-20 + synth-60; exact: MobileNet + synth-20
	// (synth-60 is over the exact synthetic cap and must land in notes).
	if len(results) != 5 {
		t.Fatalf("got %d cells: %+v", len(results), results)
	}
	if len(notes) != 1 {
		t.Fatalf("want 1 skip note, got %v", notes)
	}
	for _, r := range results {
		if r.GraphsPerSecCore <= 0 {
			t.Fatalf("cell without throughput: %+v", r)
		}
	}
}

func TestSynthGraphDeterministic(t *testing.T) {
	a, err := SynthGraph(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthGraph(40)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("SynthGraph is not deterministic")
	}
	if a.NumNodes() != 40 {
		t.Fatalf("nodes = %d", a.NumNodes())
	}
}

func TestMeasureAllocsHotPathsStayLean(t *testing.T) {
	if testing.Short() {
		t.Skip("testing.Benchmark is slow")
	}
	results := MeasureAllocs()
	if len(results) != len(AllocProbeNames()) {
		t.Fatalf("got %d probes, want %d", len(results), len(AllocProbeNames()))
	}
	byName := map[string]AllocResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	// These ceilings are the point of the PR: the hot paths must stay
	// allocation-free (or nearly so) on repeat calls. They are loose
	// enough to not flake, tight enough that a reverted pool fails.
	ceilings := map[string]int64{
		"exact.SolveCtx":    64, // pre-optimization: 567
		"heur.DPBudget":     4,  // pre-optimization: 21
		"sched.Evaluate":    0,  // pre-optimization: 1
		"graph.Fingerprint": 0,
	}
	for name, ceil := range ceilings {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("probe %q missing", name)
		}
		if r.AllocsPerOp > ceil {
			t.Errorf("%s allocates %d/op, ceiling %d", name, r.AllocsPerOp, ceil)
		}
	}
}

func TestServingReplaySmall(t *testing.T) {
	res, err := ServingReplay(context.Background(), ServingConfig{
		Models:   []string{"MobileNet", "Xception"},
		Stages:   4,
		Workers:  4,
		Requests: 200,
		SLO:      50 * time.Millisecond,
		Warm:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.Rejected != 200 {
		t.Fatalf("accounting: %d ok + %d rejected != 200", res.Requests, res.Rejected)
	}
	if res.ThroughputRPS <= 0 || res.P99Micros < res.P50Micros {
		t.Fatalf("implausible replay: %+v", res)
	}
	if res.Class != "interactive" || res.SLOMicros != 50_000 {
		t.Fatalf("config not reflected: %+v", res)
	}
}

func TestReportRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	old := NewReport("BENCH_old")
	old.Solver = []SolverResult{
		{Backend: "heur", Graph: "X", Stages: 4, P50Micros: 100, GraphsPerSecCore: 1000},
		{Backend: "exact", Graph: "X", Stages: 4, P50Micros: 500, GraphsPerSecCore: 200},
	}
	old.Alloc = []AllocResult{{Name: "heur.DPBudget", AllocsPerOp: 10, BytesPerOp: 1000}}
	old.Serving = []ServingResult{{Class: "interactive", Stages: 4, Workers: 8, P99Micros: 900, ThroughputRPS: 5000}}
	path := filepath.Join(dir, "old.json")
	if err := old.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Solver) != 2 || back.Label != "BENCH_old" {
		t.Fatalf("round trip lost data: %+v", back)
	}

	// Identical reports: no regressions at any threshold.
	if regs := Compare(old, back, 0.15); len(regs) != 0 {
		t.Fatalf("self-compare flagged %v", regs)
	}

	// Degrade latency 2x, allocs 3x, serving throughput halved.
	worse := *back
	worse.Solver = append([]SolverResult(nil), back.Solver...)
	for i := range worse.Solver {
		if worse.Solver[i].Backend == "heur" {
			worse.Solver[i].P50Micros = 200
			worse.Solver[i].GraphsPerSecCore = 500
		}
	}
	worse.Alloc = []AllocResult{{Name: "heur.DPBudget", AllocsPerOp: 30, BytesPerOp: 1000}}
	worse.Serving = []ServingResult{{Class: "interactive", Stages: 4, Workers: 8, P99Micros: 950, ThroughputRPS: 2500}}
	regs := Compare(old, &worse, 0.15)
	metrics := map[string]bool{}
	for _, r := range regs {
		metrics[r.Metric] = true
		if r.Ratio <= 1.15 {
			t.Fatalf("regression with ratio %v should not be flagged: %+v", r.Ratio, r)
		}
	}
	for _, want := range []string{"solver.p50_us", "solver.graphs_per_sec_core", "alloc.allocs_per_op", "serving.throughput_rps"} {
		if !metrics[want] {
			t.Fatalf("missing regression %q in %v", want, regs)
		}
	}
	if metrics["serving.p99_us"] {
		t.Fatalf("p99 within threshold flagged: %v", regs)
	}
	// Improvements never flag.
	if regs := Compare(&worse, old, 0.15); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}

	// Cells only in one report are ignored.
	extra := *old
	extra.Solver = append([]SolverResult(nil), old.Solver...)
	extra.Solver = append(extra.Solver, SolverResult{Backend: "new", Graph: "Y", Stages: 4, P50Micros: 1})
	if regs := Compare(old, &extra, 0.15); len(regs) != 0 {
		t.Fatalf("new cell flagged: %v", regs)
	}

	// Schema mismatches are read errors.
	bad := filepath.Join(dir, "bad.json")
	old.SchemaVersion = 99
	if err := old.WriteJSON(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Fatal("want schema version error")
	}
}

// TestCompareFlagsZeroBaselineAllocRegression is the gate for the
// zero-baseline blind spot: a hot path measured at 0 allocs/op that
// starts allocating must fail the comparison — the old ratio math
// silently skipped every `oldV <= 0` cell, so 0 -> 500 passed CI.
func TestCompareFlagsZeroBaselineAllocRegression(t *testing.T) {
	old := NewReport("BENCH_old")
	old.Alloc = []AllocResult{
		{Name: "sched.Evaluate", AllocsPerOp: 0, BytesPerOp: 0},
		{Name: "graph.Fingerprint", AllocsPerOp: 0, BytesPerOp: 0},
	}
	cur := NewReport("BENCH_new")
	cur.Alloc = []AllocResult{
		{Name: "sched.Evaluate", AllocsPerOp: 500, BytesPerOp: 4096},
		{Name: "graph.Fingerprint", AllocsPerOp: 0, BytesPerOp: 0},
	}

	regs := Compare(old, cur, 0.15)
	byMetric := map[string]Regression{}
	for _, r := range regs {
		byMetric[r.Metric] = r
		if r.Key != "sched.Evaluate" {
			t.Fatalf("stable zero-alloc probe flagged: %+v", r)
		}
	}
	for _, metric := range []string{"alloc.allocs_per_op", "alloc.bytes_per_op"} {
		r, ok := byMetric[metric]
		if !ok {
			t.Fatalf("0 -> N %s not flagged: %v", metric, regs)
		}
		if !math.IsInf(r.Ratio, 1) {
			t.Fatalf("%s zero-baseline ratio = %v, want +Inf: %+v", metric, r.Ratio, r)
		}
		if r.Old != 0 || r.New <= 0 {
			t.Fatalf("%s endpoints wrong: %+v", metric, r)
		}
	}
	if len(regs) != 2 {
		t.Fatalf("want exactly the two alloc regressions, got %v", regs)
	}

	// The noisy latency/throughput metrics keep skipping zero baselines:
	// a timing of 0 is a missing sample, not a guarantee.
	old.Solver = []SolverResult{{Backend: "heur", Graph: "X", Stages: 4, P50Micros: 0, GraphsPerSecCore: 1000}}
	cur.Solver = []SolverResult{{Backend: "heur", Graph: "X", Stages: 4, P50Micros: 100, GraphsPerSecCore: 1000}}
	cur.Alloc = old.Alloc
	if regs := Compare(old, cur, 0.15); len(regs) != 0 {
		t.Fatalf("zero-baseline latency must stay unflagged: %v", regs)
	}
}
