// Package perf is the benchmark trajectory harness: one methodology for
// measuring solver latency, allocation behaviour and serving throughput,
// shared by cmd/respect-perf (which emits the schema-stable BENCH_*.json
// trajectory artifacts), the go test benchmarks in bench_test.go, and the
// internal/bench backend studies — so "go test -bench" and the checked-in
// BENCH files can never disagree about how a number was produced.
package perf

import (
	"context"
	"fmt"
	"sort"
	"time"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/sched"
	"respect/internal/solver"
	"respect/internal/synth"
)

// SolverResult is one backend×graph×stages cell of the solve-latency
// matrix. Cost fields double as a schema-stable output check: a trajectory
// diff that moves PeakParamBytes means solver behaviour changed, not just
// speed.
type SolverResult struct {
	Backend          string  `json:"backend"`
	Graph            string  `json:"graph"`
	Nodes            int     `json:"nodes"`
	Stages           int     `json:"stages"`
	Iters            int     `json:"iters"`
	P50Micros        float64 `json:"p50_us"`
	P99Micros        float64 `json:"p99_us"`
	GraphsPerSecCore float64 `json:"graphs_per_sec_core"`
	PeakParamBytes   int64   `json:"peak_param_bytes"`
	CrossBytes       int64   `json:"cross_bytes"`
}

// Timing is the raw outcome of timing a function repeatedly.
type Timing struct {
	Iters   int
	Total   time.Duration
	Samples []time.Duration // sorted ascending
}

// P returns the q-quantile (q in [0,1]) of the sorted samples by the
// nearest-rank method; deterministic for a fixed sample set.
func (t Timing) P(q float64) time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	i := int(q*float64(len(t.Samples))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(t.Samples) {
		i = len(t.Samples) - 1
	}
	return t.Samples[i]
}

// PerSecond returns single-core operations per second over the run.
func (t Timing) PerSecond() float64 {
	if t.Total <= 0 {
		return 0
	}
	return float64(t.Iters) / t.Total.Seconds()
}

// Time runs fn iters times on the calling goroutine after one untimed
// warm-up call, returning sorted per-call latencies. This is the single
// timing primitive every harness entry point uses.
func Time(iters int, fn func() error) (Timing, error) {
	if iters < 1 {
		iters = 1
	}
	if err := fn(); err != nil {
		return Timing{}, err
	}
	samples := make([]time.Duration, iters)
	var total time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return Timing{}, err
		}
		d := time.Since(start)
		samples[i] = d
		total += d
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	return Timing{Iters: iters, Total: total, Samples: samples}, nil
}

// TimeOnce times a single cold call of fn — no warm-up, for callers whose
// subject is budget-bound (an anytime search runs to its deadline; a
// warm-up call would double it). Single-shot latencies belong in study
// tables, never in trajectory percentiles.
func TimeOnce(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// MeasureScheduler times iters full solves of g by backend b on a single
// core and records the (deterministic) schedule cost alongside.
func MeasureScheduler(ctx context.Context, b solver.Scheduler, g *graph.Graph, stages, iters int) (SolverResult, error) {
	var last sched.Schedule
	t, err := Time(iters, func() error {
		s, err := b.Schedule(ctx, g, stages)
		if err != nil {
			return err
		}
		last = s
		return nil
	})
	if err != nil {
		return SolverResult{}, fmt.Errorf("perf: backend %q on %s: %w", b.Name(), g.Name, err)
	}
	cost := last.Evaluate(g)
	return SolverResult{
		Backend:          b.Name(),
		Graph:            g.Name,
		Nodes:            g.NumNodes(),
		Stages:           stages,
		Iters:            t.Iters,
		P50Micros:        micros(t.P(0.50)),
		P99Micros:        micros(t.P(0.99)),
		GraphsPerSecCore: t.PerSecond(),
		PeakParamBytes:   cost.PeakParamBytes,
		CrossBytes:       cost.CrossBytes,
	}, nil
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// SuiteConfig selects the solver sweep: which backends, over which zoo
// models and synthetic graph sizes, at which stage count.
type SuiteConfig struct {
	// Backends are registry names; empty uses DefaultBackends().
	Backends []string
	// Models are zoo names; empty uses DefaultModels().
	Models []string
	// SynthSizes lists synthetic |V| values swept in addition to the zoo
	// (sampled deterministically; empty uses DefaultSynthSizes()).
	SynthSizes []int
	// Stages is the pipeline length (0 = 4, the paper's smallest).
	Stages int
	// Iters is the per-cell iteration count (0 = 50). Fixed counts, not
	// time targets, keep the trajectory comparable across machines.
	Iters int
}

// DefaultBackends is the trajectory's backend set: the deployed heuristic
// path, the compiler-style greedy baseline, and the exact solver — the
// three hot paths this harness exists to track.
func DefaultBackends() []string { return []string{"heur", "compiler", "exact"} }

// DefaultModels spans the zoo's size range without paying for all twelve
// models on every CI run.
func DefaultModels() []string {
	return []string{"MobileNet", "Xception", "ResNet152", "DenseNet201"}
}

// DefaultSynthSizes sweeps synthetic graphs beyond zoo scale.
func DefaultSynthSizes() []int { return []int{30, 60, 120, 240} }

// SynthGraph returns the deterministic synthetic benchmark graph with n
// nodes: sampler seed fixed by n, so every harness run and every future
// trajectory point measures the same instance.
func SynthGraph(n int) (*graph.Graph, error) {
	cfg := synth.DefaultConfig(4)
	cfg.NumNodes = n
	s, err := synth.NewSampler(cfg, int64(n)*7919)
	if err != nil {
		return nil, err
	}
	return s.Sample(), nil
}

// exactSynthNodeCap bounds exact-family cells on synthetic graphs: dense
// random DAGs past ~30 nodes push the branch-and-bound into seconds per
// solve (zoo models, being thin, close in well under a millisecond), which
// no fixed-iteration trajectory can afford. Skipped cells are reported in
// the suite's notes — never dropped silently.
const exactSynthNodeCap = 30

// RunSolverSuite measures every configured backend over every configured
// graph. Cells where a backend errors (e.g. an unregistered RL agent)
// fail the suite: the trajectory must cover everything it claims. The
// returned notes document any cells the suite intentionally skipped.
func RunSolverSuite(ctx context.Context, cfg SuiteConfig) ([]SolverResult, []string, error) {
	if len(cfg.Backends) == 0 {
		cfg.Backends = DefaultBackends()
	}
	if len(cfg.Models) == 0 {
		cfg.Models = DefaultModels()
	}
	if cfg.SynthSizes == nil {
		cfg.SynthSizes = DefaultSynthSizes()
	}
	if cfg.Stages == 0 {
		cfg.Stages = 4
	}
	if cfg.Iters == 0 {
		cfg.Iters = 50
	}
	backends, err := solver.Resolve(cfg.Backends...)
	if err != nil {
		return nil, nil, err
	}
	var graphs []*graph.Graph
	synthetic := map[string]bool{}
	for _, name := range cfg.Models {
		g, err := models.Load(name)
		if err != nil {
			return nil, nil, err
		}
		graphs = append(graphs, g)
	}
	for _, n := range cfg.SynthSizes {
		g, err := SynthGraph(n)
		if err != nil {
			return nil, nil, err
		}
		synthetic[g.Name] = true
		graphs = append(graphs, g)
	}
	var out []SolverResult
	var notes []string
	for _, b := range backends {
		exactFamily := b.Name() == "exact" || b.Name() == "exact-ilp-grade" || b.Name() == "ilp"
		for _, g := range graphs {
			if exactFamily && synthetic[g.Name] && g.NumNodes() > exactSynthNodeCap {
				notes = append(notes, fmt.Sprintf(
					"skipped %s on %s: exact-family cells capped at %d synthetic nodes",
					b.Name(), g.Name, exactSynthNodeCap))
				continue
			}
			r, err := MeasureScheduler(ctx, b, g, cfg.Stages, cfg.Iters)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, r)
		}
	}
	return out, notes, nil
}
