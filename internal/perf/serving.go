package perf

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"respect/internal/serve"
)

// ServingResult is the serving-path point of the trajectory: a closed-loop
// replay against an in-process server at a fixed SLO.
type ServingResult struct {
	Class         string  `json:"class"`
	Models        string  `json:"models"` // comma-joined request mix
	Stages        int     `json:"stages"`
	Workers       int     `json:"workers"`
	Requests      int     `json:"requests"`
	Rejected      int     `json:"rejected"` // admission-control 429/503s
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
	SLOMicros     float64 `json:"slo_us"`
	WithinSLO     bool    `json:"within_slo"`
}

// ServingConfig configures the replay.
type ServingConfig struct {
	// Models is the request mix, cycled round-robin (empty uses
	// DefaultModels()).
	Models []string
	// Stages per request (0 = 4).
	Stages int
	// Class is the request class (empty = interactive, the latency-bound
	// class whose p99 the trajectory tracks).
	Class string
	// Workers is the closed-loop client count (0 = 8).
	Workers int
	// Requests is the total request count across workers (0 = 2000).
	Requests int
	// SLO is the p99 target the replay is judged against (0 = 50ms, the
	// interactive class budget).
	SLO time.Duration
	// Warm pre-populates the cache with the request mix before the clock
	// starts — the steady-state serving measurement. False measures the
	// cold path.
	Warm bool
}

// ServingReplay boots an in-process serve.Server (no sockets: requests go
// straight through Server.ServeHTTP) and drives the configured closed
// loop against it.
func ServingReplay(ctx context.Context, cfg ServingConfig) (ServingResult, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = DefaultModels()
	}
	if cfg.Stages == 0 {
		cfg.Stages = 4
	}
	if cfg.Class == "" {
		cfg.Class = "interactive"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 2000
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 50 * time.Millisecond
	}

	warm := []string{}
	if cfg.Warm {
		warm = cfg.Models
	}
	srv, err := serve.New(serve.Config{
		Stages:         cfg.Stages,
		CacheSize:      256,
		WarmModels:     warm,
		DisableMetrics: true,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		return ServingResult{}, err
	}
	if cfg.Warm {
		if _, err := srv.WarmUp(ctx); err != nil {
			return ServingResult{}, err
		}
	}

	bodies := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		bodies[i] = fmt.Sprintf(`{"model":%q,"stages":%d,"class":%q}`, m, cfg.Stages, cfg.Class)
	}

	var (
		mu       sync.Mutex
		latency  []time.Duration
		rejected int
		firstErr error
	)
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Requests; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, cfg.Requests/cfg.Workers+1)
			localRej := 0
			var localErr error
			for i := range next {
				body := bodies[i%len(bodies)]
				req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				t0 := time.Now()
				srv.ServeHTTP(rec, req)
				d := time.Since(t0)
				switch rec.Code {
				case http.StatusOK:
					local = append(local, d)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					localRej++
				default:
					if localErr == nil {
						localErr = fmt.Errorf("perf: replay request got %d: %s", rec.Code, rec.Body.String())
					}
				}
			}
			mu.Lock()
			latency = append(latency, local...)
			rejected += localRej
			if firstErr == nil {
				firstErr = localErr
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ServingResult{}, firstErr
	}
	if err := ctx.Err(); err != nil {
		return ServingResult{}, err
	}
	if len(latency) == 0 {
		return ServingResult{}, fmt.Errorf("perf: replay completed 0 requests (%d rejected)", rejected)
	}
	sort.Slice(latency, func(a, b int) bool { return latency[a] < latency[b] })
	t := Timing{Iters: len(latency), Total: elapsed, Samples: latency}
	p99 := t.P(0.99)
	return ServingResult{
		Class:         cfg.Class,
		Models:        strings.Join(cfg.Models, ","),
		Stages:        cfg.Stages,
		Workers:       cfg.Workers,
		Requests:      len(latency),
		Rejected:      rejected,
		ThroughputRPS: float64(len(latency)) / elapsed.Seconds(),
		P50Micros:     micros(t.P(0.50)),
		P99Micros:     micros(p99),
		SLOMicros:     micros(cfg.SLO),
		WithinSLO:     p99 <= cfg.SLO,
	}, nil
}
