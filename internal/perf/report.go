package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion identifies the BENCH_*.json layout. Comparing reports
// across schema versions is an error, not a silent best-effort.
const SchemaVersion = 1

// Report is the schema-stable trajectory artifact (BENCH_<pr>.json): one
// solver-latency matrix, one allocation profile, one serving replay.
// Environment fields contextualize cross-machine diffs; the comparator
// warns rather than fails when they differ.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label"` // e.g. "BENCH_6"
	GoVersion     string `json:"go_version"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	// CreatedAt is an ISO-8601 stamp; informational only and ignored by
	// the comparator.
	CreatedAt string `json:"created_at,omitempty"`

	Solver  []SolverResult  `json:"solver"`
	Alloc   []AllocResult   `json:"alloc"`
	Serving []ServingResult `json:"serving"`
	// Notes records intentional coverage gaps (skipped cells) so a
	// trajectory never implies measurements it did not take.
	Notes []string `json:"notes,omitempty"`
}

// NewReport stamps the runtime environment into an empty report.
func NewReport(label string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Label:         label,
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
	}
}

// WriteJSON writes the report, stably ordered and human-diffable.
func (r *Report) WriteJSON(path string) error {
	r.sortForStability()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func (r *Report) sortForStability() {
	sort.Slice(r.Solver, func(i, j int) bool {
		a, b := r.Solver[i], r.Solver[j]
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.Graph != b.Graph {
			return a.Graph < b.Graph
		}
		return a.Stages < b.Stages
	})
	sort.Slice(r.Alloc, func(i, j int) bool { return r.Alloc[i].Name < r.Alloc[j].Name })
	sort.Strings(r.Notes)
}

// ReadReport loads and schema-checks a trajectory artifact.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema_version %d, this build expects %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Regression is one metric that moved past the comparator's threshold
// between two trajectory points.
type Regression struct {
	Metric string  `json:"metric"` // "solver.p50", "alloc.allocs", ...
	Key    string  `json:"key"`    // e.g. "heur/ResNet152/4"
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is New/Old for higher-is-worse metrics and Old/New for
	// higher-is-better ones, so > 1+threshold always means "regressed".
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%.2fx)", r.Metric, r.Key, r.Old, r.New, r.Ratio)
}

// Compare diffs two reports and returns the metrics that regressed past
// threshold (e.g. 0.15 = fail on >15% worse). Latency and throughput use
// threshold as-is and skip zero baselines (a ratio over nothing is
// noise); the allocation counters are deterministic, so there a zero
// baseline is load-bearing — 0 -> N allocs/op means a formerly
// allocation-free hot path now allocates, reported with Ratio = +Inf.
// Cells present in only one report are ignored — coverage changes are
// reviewed via Notes and the diff itself, not flagged as performance
// regressions.
func Compare(old, new *Report, threshold float64) []Regression {
	var regs []Regression
	worse := func(metric, key string, oldV, newV float64) {
		if oldV <= 0 {
			return
		}
		ratio := newV / oldV
		if ratio > 1+threshold {
			regs = append(regs, Regression{Metric: metric, Key: key, Old: oldV, New: newV, Ratio: ratio})
		}
	}
	// worseFromZero wraps worse for the deterministic metrics where a
	// zero baseline is a guarantee, not a missing sample: any move off
	// zero is an unambiguous regression regardless of threshold.
	worseFromZero := func(metric, key string, oldV, newV float64) {
		if oldV == 0 && newV > 0 {
			regs = append(regs, Regression{Metric: metric, Key: key, Old: 0, New: newV, Ratio: math.Inf(1)})
			return
		}
		worse(metric, key, oldV, newV)
	}
	better := func(metric, key string, oldV, newV float64) {
		if newV <= 0 {
			return
		}
		ratio := oldV / newV
		if ratio > 1+threshold {
			regs = append(regs, Regression{Metric: metric, Key: key, Old: oldV, New: newV, Ratio: ratio})
		}
	}

	oldSolver := map[string]SolverResult{}
	for _, s := range old.Solver {
		oldSolver[fmt.Sprintf("%s/%s/%d", s.Backend, s.Graph, s.Stages)] = s
	}
	for _, s := range new.Solver {
		key := fmt.Sprintf("%s/%s/%d", s.Backend, s.Graph, s.Stages)
		o, ok := oldSolver[key]
		if !ok {
			continue
		}
		worse("solver.p50_us", key, o.P50Micros, s.P50Micros)
		better("solver.graphs_per_sec_core", key, o.GraphsPerSecCore, s.GraphsPerSecCore)
	}

	oldAlloc := map[string]AllocResult{}
	for _, a := range old.Alloc {
		oldAlloc[a.Name] = a
	}
	for _, a := range new.Alloc {
		o, ok := oldAlloc[a.Name]
		if !ok {
			continue
		}
		worseFromZero("alloc.allocs_per_op", a.Name, float64(o.AllocsPerOp), float64(a.AllocsPerOp))
		worseFromZero("alloc.bytes_per_op", a.Name, float64(o.BytesPerOp), float64(a.BytesPerOp))
	}

	oldServing := map[string]ServingResult{}
	for _, s := range old.Serving {
		oldServing[fmt.Sprintf("%s/%d/%d", s.Class, s.Stages, s.Workers)] = s
	}
	for _, s := range new.Serving {
		key := fmt.Sprintf("%s/%d/%d", s.Class, s.Stages, s.Workers)
		o, ok := oldServing[key]
		if !ok {
			continue
		}
		worse("serving.p99_us", key, o.P99Micros, s.P99Micros)
		better("serving.throughput_rps", key, o.ThroughputRPS, s.ThroughputRPS)
	}
	return regs
}
