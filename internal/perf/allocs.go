package perf

import (
	"testing"

	"respect/internal/exact"
	"respect/internal/heur"
	"respect/internal/models"
)

// AllocResult is one hot path's allocation profile, measured with
// testing.Benchmark so BENCH_*.json and "go test -bench" report through
// the identical mechanism.
type AllocResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// allocProbe is one named allocation benchmark.
type allocProbe struct {
	name string
	fn   func(b *testing.B)
}

// allocProbes defines the tracked hot paths. Each closure is exactly the
// body the corresponding bench_test.go benchmark runs — one methodology,
// two entry points.
func allocProbes() []allocProbe {
	big := models.MustLoad("ResNet152")
	small := models.MustLoad("Xception")
	evalSched := heur.DPBudget(big, 6)
	return []allocProbe{
		{"exact.SolveCtx", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := exact.Solve(small, 4, exact.Options{MaxStates: 50_000_000})
				if !res.Optimal {
					b.Fatal("truncated exact solve in alloc probe")
				}
			}
		}},
		{"heur.DPBudget", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				heur.DPBudget(big, 6)
			}
		}},
		{"sched.Evaluate", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evalSched.Evaluate(big)
			}
		}},
		{"graph.Fingerprint", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				big.Fingerprint()
			}
		}},
	}
}

// AllocProbe runs the named tracked hot path inside a caller-provided
// *testing.B — this is what bench_test.go mounts, so the go test
// benchmarks and the harness share one body per path.
func AllocProbe(name string, b *testing.B) bool {
	for _, p := range allocProbes() {
		if p.name == name {
			p.fn(b)
			return true
		}
	}
	return false
}

// AllocProbeNames lists the tracked hot paths in report order.
func AllocProbeNames() []string {
	var out []string
	for _, p := range allocProbes() {
		out = append(out, p.name)
	}
	return out
}

// MeasureAllocs runs every tracked hot path under testing.Benchmark.
func MeasureAllocs() []AllocResult {
	var out []AllocResult
	for _, p := range allocProbes() {
		r := testing.Benchmark(p.fn)
		out = append(out, AllocResult{
			Name:        p.name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}
