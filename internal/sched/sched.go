// Package sched defines the pipeline-scheduling problem RESPECT solves:
// schedule types, validity constraints, the memory/communication objective,
// the ρ mapping from emitted node sequences to stage assignments (Eq. 2 of
// the paper), and the deterministic post-inference repair applied before
// hardware deployment (§III, "Post-Inference Processing").
package sched

import (
	"fmt"
	"sort"
	"sync"

	"respect/internal/graph"
)

// Schedule assigns every node of a graph to one of NumStages pipeline
// stages. Stage k executes on Edge TPU k; activations flowing to a later
// stage cross the USB fabric.
type Schedule struct {
	// NumStages is the pipeline length n (the paper evaluates 4, 5, 6).
	NumStages int
	// Stage[v] is the stage of node v, in [0, NumStages).
	Stage []int
}

// NewSchedule returns an all-zero schedule for numNodes nodes.
func NewSchedule(numNodes, numStages int) Schedule {
	return Schedule{NumStages: numStages, Stage: make([]int, numNodes)}
}

// Clone returns a deep copy.
func (s Schedule) Clone() Schedule {
	c := Schedule{NumStages: s.NumStages, Stage: make([]int, len(s.Stage))}
	copy(c.Stage, s.Stage)
	return c
}

// Validate checks structural validity: stage bounds and pipeline
// monotonicity (stage(u) <= stage(v) for every edge u->v). A nil error
// means the schedule is deployable after the children-same-stage repair.
func (s Schedule) Validate(g *graph.Graph) error {
	if len(s.Stage) != g.NumNodes() {
		return fmt.Errorf("sched: schedule covers %d nodes, graph has %d", len(s.Stage), g.NumNodes())
	}
	for v, st := range s.Stage {
		if st < 0 || st >= s.NumStages {
			return fmt.Errorf("sched: node %d assigned to stage %d outside [0,%d)", v, st, s.NumStages)
		}
		for _, w := range g.Succ(v) {
			if s.Stage[w] < st {
				return fmt.Errorf("sched: dependency violation on edge (%d,%d): stages %d > %d", v, w, st, s.Stage[w])
			}
		}
	}
	return nil
}

// SameStageChildrenOK reports whether every node's children share a stage —
// the Edge TPU hardware constraint enforced by post-inference processing.
func (s Schedule) SameStageChildrenOK(g *graph.Graph) bool {
	for v := 0; v < g.NumNodes(); v++ {
		succ := g.Succ(v)
		for i := 1; i < len(succ); i++ {
			if s.Stage[succ[i]] != s.Stage[succ[0]] {
				return false
			}
		}
	}
	return true
}

// Cost is the scheduling objective, compared lexicographically:
// peak per-stage parameter memory first (parameter-cache pressure), then
// cross-stage activation traffic (USB communication).
type Cost struct {
	// PeakParamBytes is max over stages of the summed parameter bytes.
	PeakParamBytes int64
	// CrossBytes is the total activation bytes crossing stage boundaries.
	CrossBytes int64
}

// Less reports whether c is strictly better than o.
func (c Cost) Less(o Cost) bool {
	if c.PeakParamBytes != o.PeakParamBytes {
		return c.PeakParamBytes < o.PeakParamBytes
	}
	return c.CrossBytes < o.CrossBytes
}

func (c Cost) String() string {
	return fmt.Sprintf("peak=%.3fMiB cross=%.3fMiB",
		float64(c.PeakParamBytes)/(1<<20), float64(c.CrossBytes)/(1<<20))
}

// StageParamBytes returns the summed parameter bytes per stage.
func (s Schedule) StageParamBytes(g *graph.Graph) []int64 {
	mem := make([]int64, s.NumStages)
	for v, st := range s.Stage {
		mem[st] += g.Node(v).ParamBytes
	}
	return mem
}

// Evaluate computes the objective of the schedule on g. It is a solver
// hot path (every branch-and-bound leaf, every portfolio member, every
// serving request evaluates at least once), so the per-stage accumulator
// lives on the stack for realistic pipeline lengths and the call allocates
// nothing.
func (s Schedule) Evaluate(g *graph.Graph) Cost {
	var c Cost
	var stack [16]int64
	var mem []int64
	if s.NumStages <= len(stack) {
		mem = stack[:s.NumStages]
	} else {
		mem = make([]int64, s.NumStages)
	}
	for v, st := range s.Stage {
		mem[st] += g.Node(v).ParamBytes
	}
	for _, m := range mem {
		if m > c.PeakParamBytes {
			c.PeakParamBytes = m
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		crossed := false
		for _, w := range g.Succ(v) {
			if s.Stage[w] != s.Stage[v] {
				crossed = true
				break
			}
		}
		if crossed {
			// The producing stage sends v's output tensor once over USB,
			// regardless of how many downstream stages consume it (the
			// host fans it out).
			c.CrossBytes += g.Node(v).OutBytes
		}
	}
	return c
}

// SequenceToSchedule is the paper's ρ: map an emitted node order π to a
// stage assignment for an n-stage pipeline. The walk opens stages greedily
// against the balanced parameter budget B = ceil(total/n); the final stage
// absorbs the remainder. No dependency knowledge is used here — repairs
// happen in PostProcess, mirroring the paper's split between the RL policy
// and the deterministic deployment pass.
func SequenceToSchedule(g *graph.Graph, seq []int, numStages int) (Schedule, error) {
	n := g.NumNodes()
	if err := validateSequence(g, seq, numStages); err != nil {
		return Schedule{}, err
	}

	total := g.TotalParamBytes()
	budget := (total + int64(numStages) - 1) / int64(numStages)
	if budget < 1 {
		budget = 1
	}
	s := NewSchedule(n, numStages)
	stage, acc := 0, int64(0)
	for _, v := range seq {
		p := g.Node(v).ParamBytes
		if acc > 0 && acc+p > budget && stage < numStages-1 {
			stage++
			acc = 0
		}
		s.Stage[v] = stage
		acc += p
	}
	return s, nil
}

// SequenceToScheduleDP is the stronger realization of ρ used by default
// at deployment: instead of the greedy budget walk it computes the
// minimum-peak-memory segmentation of the emitted order into numStages
// contiguous segments by dynamic programming (O(|V|²·numStages)). The
// paper leaves ρ abstract ("the scheduling algorithm w.r.t. the specific
// Edge TPU"); the DP keeps ρ deterministic and polynomial while letting
// the learned node order express schedule quality fully. The greedy
// budget walk remains available (SequenceToSchedule) as an ablation.
func SequenceToScheduleDP(g *graph.Graph, seq []int, numStages int) (Schedule, error) {
	// Validate via the shared path, then resegment optimally.
	if err := validateSequence(g, seq, numStages); err != nil {
		return Schedule{}, err
	}
	return dpSegment(g, seq, numStages), nil
}

// validateSequence checks that seq is a permutation of g's nodes and that
// numStages is positive — the shared precondition of both ρ realizations.
// The visited buffer is pooled so repeated decode/serve calls allocate
// nothing here.
func validateSequence(g *graph.Graph, seq []int, numStages int) error {
	n := g.NumNodes()
	if len(seq) != n {
		return fmt.Errorf("sched: sequence length %d, graph has %d nodes", len(seq), n)
	}
	if numStages < 1 {
		return fmt.Errorf("sched: numStages = %d", numStages)
	}
	sc := dpPool.Get().(*dpScratch)
	defer releaseDP(sc)
	seen := growBool(&sc.seen, n)
	for i := range seen {
		seen[i] = false
	}
	for _, v := range seq {
		if v < 0 || v >= n {
			return fmt.Errorf("sched: sequence element %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("sched: node %d repeated in sequence", v)
		}
		seen[v] = true
	}
	return nil
}

// dpScratch is the pooled working storage of dpSegment and
// validateSequence; one solve's tables are reused by the next instead of
// re-allocated, which matters because the DP runs on every ρ application —
// each RL decode, each heur/dp backend call, every serving request that
// misses the cache.
type dpScratch struct {
	prefix []int64
	prev   []int64
	cur    []int64
	cut    []int32
	seen   []bool
}

var dpPool = sync.Pool{New: func() any { return new(dpScratch) }}

// reset truncates the pooled tables before the scratch goes back to the
// pool: capacity is retained so the next solve reuses the allocations,
// but no stale window of a previous solve's values stays reachable.
func (sc *dpScratch) reset() {
	sc.prefix = sc.prefix[:0]
	sc.prev = sc.prev[:0]
	sc.cur = sc.cur[:0]
	sc.cut = sc.cut[:0]
	sc.seen = sc.seen[:0]
}

// releaseDP resets sc and returns it to the pool.
func releaseDP(sc *dpScratch) {
	sc.reset()
	dpPool.Put(sc)
}

func grow64(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func grow32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// dpSegment optimally cuts order into numStages contiguous segments
// minimizing the peak segment parameter load.
//
// It exploits two exact monotonicity properties of the min-max partition
// recurrence dp[k][j] = min_i max(dp[k-1][i], prefix[j]-prefix[i]) that
// hold whenever node weights are non-negative:
//
//  1. each dp row is non-decreasing in j, so once dp[k-1][i] reaches the
//     running minimum no larger i can strictly improve it, and
//  2. the leftmost minimizer is non-decreasing in j (strict dominance of
//     i2 over i1 < i2 persists as j grows), so the scan for column j can
//     start at column j-1's minimizer.
//
// Together these turn the inner loop into an amortized two-pointer walk —
// O(|V|·numStages) instead of O(|V|²·numStages) — while selecting exactly
// the cuts the quadratic reference selects (smallest minimizer, strict
// improvement), so the returned schedule is bit-identical to
// dpSegmentRef's. Graphs with negative weights (expressible through the
// JSON wire format, never by real models) fall back to the reference.
func dpSegment(g *graph.Graph, order []int, numStages int) Schedule {
	n := len(order)
	sc := dpPool.Get().(*dpScratch)
	defer releaseDP(sc)

	prefix := grow64(&sc.prefix, n+1)
	prefix[0] = 0
	negative := false
	for i, v := range order {
		p := g.Node(v).ParamBytes
		if p < 0 {
			negative = true
			break
		}
		prefix[i+1] = prefix[i] + p
	}
	if negative {
		return dpSegmentRef(g, order, numStages)
	}

	const inf = int64(1) << 62
	prev := grow64(&sc.prev, n+1)
	cur := grow64(&sc.cur, n+1)
	cut := grow32(&sc.cut, (numStages+1)*(n+1))
	for i := range prev {
		prev[i] = inf
	}
	prev[0] = 0
	for k := 1; k <= numStages; k++ {
		cutRow := cut[k*(n+1) : (k+1)*(n+1)]
		lo := 0
		for j := 0; j <= n; j++ {
			best := prev[lo]
			if sm := prefix[j] - prefix[lo]; sm > best {
				best = sm
			}
			arg := lo
			for i := lo + 1; i <= j; i++ {
				if prev[i] >= best {
					break // rows are monotone: no larger i can improve
				}
				f := prev[i]
				if sm := prefix[j] - prefix[i]; sm > f {
					f = sm
				}
				if f < best {
					best, arg = f, i
				}
			}
			cur[j] = best
			cutRow[j] = int32(arg)
			lo = arg
		}
		prev, cur = cur, prev
	}

	s := NewSchedule(g.NumNodes(), numStages)
	j := n
	for k := numStages; k >= 1; k-- {
		i := int(cut[k*(n+1)+j])
		for t := i; t < j; t++ {
			s.Stage[order[t]] = k - 1
		}
		j = i
	}
	return s
}

// dpSegmentRef is the quadratic reference implementation of dpSegment: a
// direct materialization of the recurrence with smallest-index tie-breaks.
// It handles negative weights (where the two-pointer walk's monotonicity
// arguments fail) and anchors the differential tests that pin dpSegment's
// output bit-for-bit.
func dpSegmentRef(g *graph.Graph, order []int, numStages int) Schedule {
	n := len(order)
	prefix := make([]int64, n+1)
	for i, v := range order {
		prefix[i+1] = prefix[i] + g.Node(v).ParamBytes
	}
	const inf = int64(1) << 62
	dp := make([][]int64, numStages+1)
	cut := make([][]int, numStages+1)
	for k := range dp {
		dp[k] = make([]int64, n+1)
		cut[k] = make([]int, n+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= numStages; k++ {
		for i := 0; i <= n; i++ {
			if dp[k-1][i] == inf {
				continue
			}
			for j := i; j <= n; j++ {
				peak := dp[k-1][i]
				if sm := prefix[j] - prefix[i]; sm > peak {
					peak = sm
				}
				if peak < dp[k][j] {
					dp[k][j] = peak
					cut[k][j] = i
				}
			}
		}
	}
	s := NewSchedule(g.NumNodes(), numStages)
	j := n
	for k := numStages; k >= 1; k-- {
		i := cut[k][j]
		for t := i; t < j; t++ {
			s.Stage[order[t]] = k - 1
		}
		j = i
	}
	return s
}

// ScheduleToSequence is the inverse direction used to derive the ground
// truth γ: read the schedule out stage by stage, nodes within a stage in
// topological order. The result is always a valid linear extension when the
// schedule satisfies monotonicity.
func ScheduleToSequence(g *graph.Graph, s Schedule) []int {
	type key struct{ stage, pos int }
	pos := make([]int, g.NumNodes())
	for i, v := range g.TopoView() {
		pos[v] = i
	}
	seq := make([]int, g.NumNodes())
	for i := range seq {
		seq[i] = i
	}
	sort.Slice(seq, func(a, b int) bool {
		ka := key{s.Stage[seq[a]], pos[seq[a]]}
		kb := key{s.Stage[seq[b]], pos[seq[b]]}
		if ka.stage != kb.stage {
			return ka.stage < kb.stage
		}
		return ka.pos < kb.pos
	})
	return seq
}

// PostProcess is the paper's deterministic post-inference repair, made
// provably terminating. Two hardware rules are enforced with minimal
// change to the predicted stages:
//
//  1. dependency violations are corrected "by simply pushing the involved
//     node forward" (to a stage no earlier than every parent), and
//  2. all children of any node must share a pipeline stage, unified onto
//     "the earliest predicted stage" among them.
//
// Rule 2 induces must-be-equal classes over nodes (children of a common
// parent, closed transitively via union-find). Monotonicity constraints
// between classes may then force further equalities — those appear as
// cycles in the class-level constraint graph and are merged by SCC
// condensation. The resulting class DAG is assigned stages in topological
// order: each class takes max(its earliest predicted stage, stages of all
// predecessor classes). The output always satisfies Validate and
// SameStageChildrenOK.
func PostProcess(g *graph.Graph, s Schedule) Schedule {
	n := g.NumNodes()
	uf := newUnionFind(n)
	for v := 0; v < n; v++ {
		succ := g.Succ(v)
		for i := 1; i < len(succ); i++ {
			uf.union(succ[0], succ[i])
		}
	}

	// Class-level constraint edges from node-level edges.
	classOf := make([]int, n)
	classes := map[int]int{} // root -> dense class index
	for v := 0; v < n; v++ {
		r := uf.find(v)
		if _, ok := classes[r]; !ok {
			classes[r] = len(classes)
		}
		classOf[v] = classes[r]
	}
	nc := len(classes)
	adj := make([][]int, nc)
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			cu, cv := classOf[u], classOf[v]
			if cu != cv {
				adj[cu] = append(adj[cu], cv)
			}
		}
	}

	// SCC condensation merges classes forced equal by A<=B<=A chains.
	comp := tarjanSCC(adj)
	ncc := 0
	for _, c := range comp {
		if c+1 > ncc {
			ncc = c + 1
		}
	}
	cadj := make([][]int, ncc)
	indeg := make([]int, ncc)
	seen := map[[2]int]bool{}
	for u := 0; u < nc; u++ {
		for _, v := range adj[u] {
			a, b := comp[u], comp[v]
			if a != b && !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				cadj[a] = append(cadj[a], b)
				indeg[b]++
			}
		}
	}

	// Earliest predicted stage per condensed class (the paper's rule 2).
	floor := make([]int, ncc)
	for i := range floor {
		floor[i] = s.NumStages // sentinel: min over members below
	}
	for v := 0; v < n; v++ {
		c := comp[classOf[v]]
		st := s.Stage[v]
		if st < 0 {
			st = 0
		}
		if st >= s.NumStages {
			st = s.NumStages - 1
		}
		if st < floor[c] {
			floor[c] = st
		}
	}

	// Kahn order over condensed classes; push forward past predecessors.
	stage := make([]int, ncc)
	queue := make([]int, 0, ncc)
	for c := 0; c < ncc; c++ {
		if indeg[c] == 0 {
			queue = append(queue, c)
			stage[c] = floor[c]
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, d := range cadj[c] {
			if stage[c] > floor[d] {
				floor[d] = stage[c]
			}
			indeg[d]--
			if indeg[d] == 0 {
				stage[d] = floor[d]
				queue = append(queue, d)
			}
		}
	}

	out := NewSchedule(n, s.NumStages)
	for v := 0; v < n; v++ {
		out.Stage[v] = stage[comp[classOf[v]]]
	}
	return out
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// tarjanSCC returns, for each vertex, its strongly-connected-component
// index; indices are a reverse topological order of the condensation, so
// callers re-derive edges rather than relying on index order. Iterative to
// stay safe on deep graphs.
func tarjanSCC(adj [][]int) []int {
	n := len(adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	ncomp := 0

	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// OneHot returns the |V| x n one-hot stage matrix flattened row-major; the
// cosine similarity of two such encodings is the paper's reward (Eq. 3).
func (s Schedule) OneHot() []float64 {
	out := make([]float64, len(s.Stage)*s.NumStages)
	for v, st := range s.Stage {
		out[v*s.NumStages+st] = 1
	}
	return out
}

// Agreement returns the fraction of nodes assigned to the same stage in
// both schedules; for one-hot encodings this equals cosine similarity.
func Agreement(a, b Schedule) float64 {
	if len(a.Stage) != len(b.Stage) || len(a.Stage) == 0 {
		return 0
	}
	same := 0
	for i := range a.Stage {
		if a.Stage[i] == b.Stage[i] {
			same++
		}
	}
	return float64(same) / float64(len(a.Stage))
}

// RepairSequence is the sequence-level half of post-inference processing:
// dependency violations in the emitted order are corrected "by simply
// pushing the involved node forward" — each node is deferred until all of
// its parents have been emitted, and deferred nodes re-enter in emitted-
// priority order. The result is the linear extension closest to the
// emitted order under that rule (a priority topological sort keyed by
// emitted position), leaving only the children-same-stage rule for
// PostProcess.
func RepairSequence(g *graph.Graph, seq []int) ([]int, error) {
	n := g.NumNodes()
	if len(seq) != n {
		return nil, fmt.Errorf("sched: sequence length %d, graph has %d nodes", len(seq), n)
	}
	prio := make([]int, n)
	seen := make([]bool, n)
	for i, v := range seq {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("sched: sequence element %d out of range", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("sched: node %d repeated in sequence", v)
		}
		seen[v] = true
		prio[v] = i
	}

	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Pred(v))
	}
	// Min-heap of ready nodes keyed by emitted priority.
	heap := make([]int, 0, n)
	less := func(a, b int) bool { return prio[heap[a]] < prio[heap[b]] }
	push := func(v int) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(i, p) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(l, m) {
				m = l
			}
			if r < len(heap) && less(r, m) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}

	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			push(v)
		}
	}
	out := make([]int, 0, n)
	for len(heap) > 0 {
		v := pop()
		out = append(out, v)
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				push(w)
			}
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("sched: graph has a cycle")
	}
	return out, nil
}
