package sched

import (
	"math/rand"
	"testing"

	"respect/internal/graph"
	"respect/internal/models"
)

// TestDPSegmentMatchesReference pins the two-pointer dpSegment to the
// quadratic reference implementation bit-for-bit: same cuts, hence the
// same Stage slice, over every zoo model and a sweep of stage counts.
func TestDPSegmentMatchesReference(t *testing.T) {
	for _, name := range models.Names() {
		g := models.MustLoad(name)
		order := g.TopoView()
		for _, k := range []int{1, 2, 3, 4, 6, 8, 13} {
			fast := dpSegment(g, order, k)
			ref := dpSegmentRef(g, order, k)
			if fast.NumStages != ref.NumStages {
				t.Fatalf("%s k=%d: NumStages %d != %d", name, k, fast.NumStages, ref.NumStages)
			}
			for v := range fast.Stage {
				if fast.Stage[v] != ref.Stage[v] {
					t.Fatalf("%s k=%d: node %d staged %d by fast DP, %d by reference",
						name, k, v, fast.Stage[v], ref.Stage[v])
				}
			}
		}
	}
}

// TestDPSegmentMatchesReferenceRandom fuzzes random weights — including
// zero-weight plateaus, the case where a sloppy two-pointer tie-break
// would diverge from the reference's leftmost-minimizer choice.
func TestDPSegmentMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		g := graph.New("rand")
		for i := 0; i < n; i++ {
			w := int64(rng.Intn(50))
			if rng.Intn(3) == 0 {
				w = 0 // force plateaus
			}
			g.AddNode(graph.Node{Name: "n", ParamBytes: w, OutBytes: int64(rng.Intn(20))})
		}
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i)
		}
		g.MustBuild()
		order := g.TopoView()
		k := 1 + rng.Intn(8)
		fast := dpSegment(g, order, k)
		ref := dpSegmentRef(g, order, k)
		for v := range fast.Stage {
			if fast.Stage[v] != ref.Stage[v] {
				t.Fatalf("trial %d n=%d k=%d: node %d staged %d by fast DP, %d by reference",
					trial, n, k, v, fast.Stage[v], ref.Stage[v])
			}
		}
	}
}

// TestDPSegmentNegativeWeightsFallBack exercises the monotonicity guard:
// negative parameter weights (expressible through the JSON wire format)
// void the two-pointer argument, so dpSegment must detect them and fall
// back to the reference — the outputs still have to agree exactly.
func TestDPSegmentNegativeWeightsFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.New("neg")
		for i := 0; i < n; i++ {
			g.AddNode(graph.Node{Name: "n", ParamBytes: int64(rng.Intn(41)) - 20})
		}
		for i := 1; i < n; i++ {
			g.AddEdge(i-1, i)
		}
		g.MustBuild()
		order := g.TopoView()
		k := 1 + rng.Intn(5)
		fast := dpSegment(g, order, k)
		ref := dpSegmentRef(g, order, k)
		for v := range fast.Stage {
			if fast.Stage[v] != ref.Stage[v] {
				t.Fatalf("trial %d: node %d staged %d by fast DP, %d by reference",
					trial, v, fast.Stage[v], ref.Stage[v])
			}
		}
	}
}

// TestEvaluateStackAndHeapPathsAgree pins the small-stage stack fast path
// in Evaluate to the heap path by evaluating the same schedule at a stage
// count on each side of the threshold.
func TestEvaluateStackAndHeapPathsAgree(t *testing.T) {
	g := models.MustLoad("ResNet50")
	order := g.TopoView()
	for _, k := range []int{2, 16, 17, 24} {
		s := dpSegment(g, order, k)
		got := s.Evaluate(g)
		// Reference evaluation: direct per-stage accumulation.
		mem := make([]int64, k)
		var cross int64
		for v := 0; v < g.NumNodes(); v++ {
			mem[s.Stage[v]] += g.Node(v).ParamBytes
			for _, w := range g.Succ(v) {
				if s.Stage[w] != s.Stage[v] {
					cross += g.Node(v).OutBytes
					break
				}
			}
		}
		var peak int64
		for _, m := range mem {
			if m > peak {
				peak = m
			}
		}
		if got.PeakParamBytes != peak || got.CrossBytes != cross {
			t.Fatalf("k=%d: Evaluate=(%d,%d) reference=(%d,%d)",
				k, got.PeakParamBytes, got.CrossBytes, peak, cross)
		}
	}
}
