package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"respect/internal/graph"
)

func chain(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{Name: "n", ParamBytes: 100, OutBytes: 10})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i)
	}
	return g.MustBuild()
}

func diamond(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New("diamond")
	g.AddNode(graph.Node{Name: "a", OutBytes: 5})
	g.AddNode(graph.Node{Name: "b", ParamBytes: 100, OutBytes: 10})
	g.AddNode(graph.Node{Name: "c", ParamBytes: 200, OutBytes: 20})
	g.AddNode(graph.Node{Name: "d", OutBytes: 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g.MustBuild()
}

func randomDAG(seed int64, maxN int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	g := graph.New("rand")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{ParamBytes: int64(rng.Intn(500)), OutBytes: int64(rng.Intn(100))})
	}
	for v := 1; v < n; v++ {
		k := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			u := rng.Intn(v)
			if !seen[u] {
				seen[u] = true
				g.AddEdge(u, v)
			}
		}
	}
	return g.MustBuild()
}

func TestValidate(t *testing.T) {
	g := chain(t, 4)
	s := NewSchedule(4, 2)
	copy(s.Stage, []int{0, 0, 1, 1})
	if err := s.Validate(g); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	copy(s.Stage, []int{1, 0, 1, 1})
	if err := s.Validate(g); err == nil {
		t.Fatal("dependency violation accepted")
	}
	copy(s.Stage, []int{0, 0, 1, 2})
	if err := s.Validate(g); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
	short := NewSchedule(3, 2)
	if err := short.Validate(g); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEvaluate(t *testing.T) {
	g := diamond(t)
	s := NewSchedule(4, 2)
	copy(s.Stage, []int{0, 0, 1, 1})
	c := s.Evaluate(g)
	// Stage 0 holds a+b = 100 params; stage 1 holds c+d = 200.
	if c.PeakParamBytes != 200 {
		t.Errorf("PeakParamBytes = %d, want 200", c.PeakParamBytes)
	}
	// Crossing producers: a (edge a->c) and b (edge b->d): 5 + 10.
	if c.CrossBytes != 15 {
		t.Errorf("CrossBytes = %d, want 15", c.CrossBytes)
	}
}

func TestCostLess(t *testing.T) {
	a := Cost{PeakParamBytes: 100, CrossBytes: 50}
	b := Cost{PeakParamBytes: 100, CrossBytes: 60}
	c := Cost{PeakParamBytes: 90, CrossBytes: 999}
	if !a.Less(b) || b.Less(a) {
		t.Error("tie-break on CrossBytes wrong")
	}
	if !c.Less(a) {
		t.Error("peak dominates wrong")
	}
	if a.Less(a) {
		t.Error("Less not strict")
	}
}

func TestSequenceToScheduleBalances(t *testing.T) {
	g := chain(t, 6) // 600 bytes total
	seq := []int{0, 1, 2, 3, 4, 5}
	s, err := SequenceToSchedule(g, seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2}
	for v := range want {
		if s.Stage[v] != want[v] {
			t.Fatalf("Stage = %v, want %v", s.Stage, want)
		}
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceToScheduleErrors(t *testing.T) {
	g := chain(t, 3)
	if _, err := SequenceToSchedule(g, []int{0, 1}, 2); err == nil {
		t.Error("short sequence accepted")
	}
	if _, err := SequenceToSchedule(g, []int{0, 1, 1}, 2); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := SequenceToSchedule(g, []int{0, 1, 9}, 2); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := SequenceToSchedule(g, []int{0, 1, 2}, 0); err == nil {
		t.Error("zero stages accepted")
	}
}

func TestScheduleToSequenceIsLinearExtension(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 25)
		// Any monotone schedule: stage = ASAP level mod stages scaled.
		ns := 3
		s := NewSchedule(g.NumNodes(), ns)
		d := g.Depth() + 1
		for v := 0; v < g.NumNodes(); v++ {
			s.Stage[v] = g.ASAP(v) * ns / d
		}
		if err := s.Validate(g); err != nil {
			return false
		}
		seq := ScheduleToSequence(g, s)
		pos := make([]int, g.NumNodes())
		for i, v := range seq {
			pos[v] = i
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPostProcessAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(seed, 40)
		ns := 2 + rng.Intn(5)
		s := NewSchedule(g.NumNodes(), ns)
		for v := range s.Stage {
			s.Stage[v] = rng.Intn(ns) // arbitrary, likely invalid
		}
		r := PostProcess(g, s)
		if err := r.Validate(g); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !r.SameStageChildrenOK(g) {
			t.Logf("seed %d: children split across stages", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPostProcessIdempotentOnValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 30)
		s := NewSchedule(g.NumNodes(), 4)
		// All-zero schedule is valid and has unified children.
		r := PostProcess(g, s)
		for v := range r.Stage {
			if r.Stage[v] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPostProcessPreservesValidMinimalChange(t *testing.T) {
	// A valid schedule whose branching children already share stages must
	// come back unchanged.
	g := diamond(t)
	s := NewSchedule(4, 3)
	copy(s.Stage, []int{0, 1, 1, 2})
	r := PostProcess(g, s)
	for v := range s.Stage {
		if r.Stage[v] != s.Stage[v] {
			t.Fatalf("PostProcess changed valid schedule: %v -> %v", s.Stage, r.Stage)
		}
	}
}

func TestPostProcessUnifiesChildrenToEarliest(t *testing.T) {
	g := diamond(t)
	s := NewSchedule(4, 4)
	copy(s.Stage, []int{0, 1, 3, 3}) // children of a: b@1, c@3 -> unify at 1
	r := PostProcess(g, s)
	if r.Stage[1] != 1 || r.Stage[2] != 1 {
		t.Fatalf("children not unified to earliest: %v", r.Stage)
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPostProcessPushesForward(t *testing.T) {
	g := chain(t, 3)
	s := NewSchedule(3, 3)
	copy(s.Stage, []int{2, 0, 1}) // node1 before its parent
	r := PostProcess(g, s)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Stage[0] != 2 || r.Stage[1] != 2 || r.Stage[2] != 2 {
		t.Fatalf("push-forward repair wrong: %v", r.Stage)
	}
}

func TestAgreement(t *testing.T) {
	a := Schedule{NumStages: 2, Stage: []int{0, 0, 1, 1}}
	b := Schedule{NumStages: 2, Stage: []int{0, 1, 1, 0}}
	if got := Agreement(a, b); got != 0.5 {
		t.Errorf("Agreement = %v, want 0.5", got)
	}
	if got := Agreement(a, a); got != 1 {
		t.Errorf("self Agreement = %v", got)
	}
	if got := Agreement(a, Schedule{}); got != 0 {
		t.Errorf("mismatched Agreement = %v", got)
	}
}

func TestOneHotMatchesAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, ns := 1+rng.Intn(20), 1+rng.Intn(5)
		a, b := NewSchedule(n, ns), NewSchedule(n, ns)
		for i := 0; i < n; i++ {
			a.Stage[i] = rng.Intn(ns)
			b.Stage[i] = rng.Intn(ns)
		}
		ha, hb := a.OneHot(), b.OneHot()
		dot := 0.0
		na, nb := 0.0, 0.0
		for i := range ha {
			dot += ha[i] * hb[i]
			na += ha[i] * ha[i]
			nb += hb[i] * hb[i]
		}
		cos := dot / (sqrt(na) * sqrt(nb))
		diff := cos - Agreement(a, b)
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestRhoRoundTripOnBalancedChain(t *testing.T) {
	// γ -> ρ(γ) reconstructs a balanced exact schedule on a uniform chain.
	g := chain(t, 9)
	s := NewSchedule(9, 3)
	copy(s.Stage, []int{0, 0, 0, 1, 1, 1, 2, 2, 2})
	seq := ScheduleToSequence(g, s)
	s2, err := SequenceToSchedule(g, seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Agreement(s, s2) != 1 {
		t.Fatalf("round trip lost schedule: %v -> %v", s.Stage, s2.Stage)
	}
}

func TestSequenceToScheduleDPNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 30)
		seq := g.Topo()
		for _, ns := range []int{2, 4, 6} {
			greedy, err := SequenceToSchedule(g, seq, ns)
			if err != nil {
				return false
			}
			dp, err := SequenceToScheduleDP(g, seq, ns)
			if err != nil {
				return false
			}
			if err := dp.Validate(g); err != nil {
				return false
			}
			if dp.Evaluate(g).PeakParamBytes > greedy.Evaluate(g).PeakParamBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceToScheduleDPErrors(t *testing.T) {
	g := chain(t, 3)
	if _, err := SequenceToScheduleDP(g, []int{0, 0, 1}, 2); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := SequenceToScheduleDP(g, []int{0, 1, 2}, 0); err == nil {
		t.Error("zero stages accepted")
	}
}

func TestSequenceToScheduleDPSegmentsContiguous(t *testing.T) {
	g := chain(t, 10)
	seq := g.Topo()
	s, err := SequenceToScheduleDP(g, seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Stages must be non-decreasing along the sequence.
	last := 0
	for _, v := range seq {
		if s.Stage[v] < last {
			t.Fatalf("segmentation not contiguous: %v", s.Stage)
		}
		last = s.Stage[v]
	}
}

func TestRepairSequenceProducesLinearExtension(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(seed, 40)
		// Random permutation, almost surely violating dependencies.
		seq := rng.Perm(g.NumNodes())
		out, err := RepairSequence(g, seq)
		if err != nil {
			return false
		}
		pos := make([]int, g.NumNodes())
		for i, v := range out {
			pos[v] = i
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairSequenceIdentityOnValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 30)
		topo := g.Topo()
		out, err := RepairSequence(g, topo)
		if err != nil {
			return false
		}
		for i := range topo {
			if out[i] != topo[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairSequencePushesForwardOnly(t *testing.T) {
	// chain 0->1->2 emitted as [2,0,1]: 2 must be pushed after 1, giving
	// [0,1,2]; relative order of already-valid nodes is preserved.
	g := chain(t, 3)
	out, err := RepairSequence(g, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("repaired = %v", out)
		}
	}
}

func TestRepairSequenceErrors(t *testing.T) {
	g := chain(t, 3)
	if _, err := RepairSequence(g, []int{0, 1}); err == nil {
		t.Error("short sequence accepted")
	}
	if _, err := RepairSequence(g, []int{0, 0, 1}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := RepairSequence(g, []int{0, 1, 7}); err == nil {
		t.Error("out of range accepted")
	}
}
