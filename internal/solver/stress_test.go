// Concurrency stress tests: hammer the Cached and CachedPortfolio engines
// from many goroutines under the race detector, asserting cache statistics
// stay consistent and cancelled solves never write into the caches.
package solver

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

func TestCachedConcurrentStress(t *testing.T) {
	heurB, err := Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(heurB, 64)
	graphs := make([]*graph.Graph, 8)
	for i := range graphs {
		graphs[i] = randomDAG(int64(100+i), 12+i)
	}

	const (
		workers = 16
		iters   = 64
	)
	var calls, hits atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				g := graphs[rng.Intn(len(graphs))]
				s, hit, _, err := c.ScheduleTracked(context.Background(), g, 3)
				if err != nil {
					t.Errorf("worker %d: %v", seed, err)
					return
				}
				if err := s.Validate(g); err != nil {
					t.Errorf("worker %d: invalid schedule: %v", seed, err)
					return
				}
				calls.Add(1)
				if hit {
					hits.Add(1)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	gotHits, gotMisses := c.Stats()
	if gotHits+gotMisses != calls.Load() {
		t.Fatalf("stats leak: %d hits + %d misses != %d calls", gotHits, gotMisses, calls.Load())
	}
	if gotHits != hits.Load() {
		t.Fatalf("hit accounting differs: stats %d, callers observed %d", gotHits, hits.Load())
	}
	// One key per (graph, stages) pair; concurrent misses on a key may
	// each solve, but the table can never exceed the key universe.
	if c.Len() > len(graphs) {
		t.Fatalf("cache holds %d entries for %d keys", c.Len(), len(graphs))
	}
	// After the churn, every key is warm: a full sweep is all hits.
	before, _ := c.Stats()
	for _, g := range graphs {
		if _, hit, _, err := c.ScheduleTracked(context.Background(), g, 3); err != nil || !hit {
			t.Fatalf("post-churn sweep: hit=%v err=%v", hit, err)
		}
	}
	after, _ := c.Stats()
	if after-before != uint64(len(graphs)) {
		t.Fatalf("sweep hits = %d, want %d", after-before, len(graphs))
	}
}

// TestCachedNoPostCancellationWrites cancels contexts midway through
// concurrent solves and asserts nothing computed under a dead context is
// ever stored.
func TestCachedNoPostCancellationWrites(t *testing.T) {
	// The inner backend ignores ctx (solves with a background context), so
	// results DO come back after cancellation — the cache must still
	// refuse them because the caller's ctx is dead.
	heurB, err := Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	inner := NewFunc("ctx-blind", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		return heurB.Schedule(context.Background(), g, numStages)
	})
	c := NewCached(inner, 64)

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			g := randomDAG(200+seed, 14)
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // dead before the solve starts
			s, hit, _, err := c.ScheduleTracked(ctx, g, 3)
			if err != nil || hit {
				t.Errorf("worker %d: hit=%v err=%v", seed, hit, err)
				return
			}
			if err := s.Validate(g); err != nil {
				t.Errorf("worker %d: %v", seed, err)
			}
		}(int64(w))
	}
	wg.Wait()
	if c.Len() != 0 {
		t.Fatalf("%d schedules were cached despite cancelled contexts", c.Len())
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Fatalf("impossible hits: %d", hits)
	}
}

func TestCachedPortfolioConcurrentStress(t *testing.T) {
	backends, err := Resolve("heur", "compiler", "hu")
	if err != nil {
		t.Fatal(err)
	}
	p := NewCachedPortfolio(backends, 64, PortfolioOptions{})
	graphs := make([]*graph.Graph, 6)
	for i := range graphs {
		graphs[i] = randomDAG(int64(300+i), 10+2*i)
	}

	var calls atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 32; i++ {
				g := graphs[rng.Intn(len(graphs))]
				res, _, err := p.Run(context.Background(), g, 4)
				if err != nil {
					t.Errorf("worker %d: %v", seed, err)
					return
				}
				if err := res.Schedule.Validate(g); err != nil {
					t.Errorf("worker %d: %v", seed, err)
					return
				}
				if res.Truncated {
					t.Errorf("worker %d: heuristics truncated without a deadline", seed)
					return
				}
				calls.Add(1)
			}
		}(int64(w))
	}
	wg.Wait()
	hits, misses := p.Stats()
	if hits+misses != calls.Load() {
		t.Fatalf("stats leak: %d + %d != %d", hits, misses, calls.Load())
	}
	if p.Len() > len(graphs) {
		t.Fatalf("cache holds %d entries for %d keys", p.Len(), len(graphs))
	}
	// Warm on an already-hot cache is a no-op that still reports coverage.
	stored, err := p.Warm(context.Background(), graphs, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stored != len(graphs) {
		t.Fatalf("warm coverage = %d, want %d", stored, len(graphs))
	}
}

// TestPortfolioStressUnderCancellation races portfolios whose contexts die
// at random points; no run may panic, deadlock, or write a truncated
// result into a CachedPortfolio.
func TestPortfolioStressUnderCancellation(t *testing.T) {
	backends, err := Resolve("heur", "exact")
	if err != nil {
		t.Fatal(err)
	}
	p := NewCachedPortfolio(backends, 64, PortfolioOptions{})
	g := randomDAG(999, 24)

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 8; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(2000))*time.Microsecond)
				res, _, err := p.Run(ctx, g, 4)
				cancel()
				if err != nil {
					continue // cancelled before any backend finished
				}
				if verr := res.Schedule.Validate(g); verr != nil {
					t.Errorf("worker %d: %v", seed, verr)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Whatever was cached must be full-effort: replaying each cached key
	// with a generous deadline returns an untruncated result.
	if p.Len() > 0 {
		res, hit, err := p.Run(context.Background(), g, 4)
		if err != nil || !hit {
			t.Fatalf("expected a warm hit, got hit=%v err=%v", hit, err)
		}
		if res.Truncated {
			t.Fatal("a truncated result was cached under cancellation stress")
		}
	}
}
