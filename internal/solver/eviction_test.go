// Tests of the keyed eviction hooks and popularity-aware eviction
// ordering that feed the speculative-warming subsystem.
package solver

import (
	"context"
	"testing"

	"respect/internal/graph"
	"respect/internal/sched"
)

// trivialSolve assigns contiguous topological blocks to stages — a valid
// schedule for any (graph, numStages) with numStages <= |V|.
func trivialSolve(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	stage := make([]int, g.NumNodes())
	for i, v := range g.Topo() {
		stage[v] = i * numStages / g.NumNodes()
	}
	return sched.Schedule{NumStages: numStages, Stage: stage}, nil
}

// fill schedules n distinct graphs through c, returning them in order.
func fillCached(t *testing.T, c *Cached, n, stages int) []uint64 {
	t.Helper()
	fps := make([]uint64, n)
	for i := 0; i < n; i++ {
		g := chain(int64(100+i), 200, 300)
		fps[i] = g.Fingerprint()
		if _, err := c.Schedule(context.Background(), g, stages); err != nil {
			t.Fatal(err)
		}
	}
	return fps
}

func TestCachedOnEvictReportsKeys(t *testing.T) {
	c := NewCached(NewFunc("t", trivialSolve), 2)
	var evicted []uint64
	var stagesSeen []int
	c.OnEvict(func(fp uint64, numStages int) {
		evicted = append(evicted, fp)
		stagesSeen = append(stagesSeen, numStages)
	})
	fps := fillCached(t, c, 3, 2)
	if len(evicted) != 1 || evicted[0] != fps[0] {
		t.Fatalf("evicted keys = %v, want exactly the oldest %v", evicted, fps[0])
	}
	if stagesSeen[0] != 2 {
		t.Fatalf("evicted stages = %v, want 2", stagesSeen)
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions() = %d, want 1", c.Evictions())
	}
}

func TestCachedMultipleEvictHooksRunInOrder(t *testing.T) {
	c := NewCached(NewFunc("t", trivialSolve), 1)
	var order []string
	c.OnEvict(func(uint64, int) { order = append(order, "a") })
	c.OnEvict(func(uint64, int) { order = append(order, "b") })
	fillCached(t, c, 2, 2)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("hook order = %v, want [a b]", order)
	}
}

// TestCachedPopularityAwareEviction: with a scorer installed, cold
// entries are evicted ahead of a hot-but-older one.
func TestCachedPopularityAwareEviction(t *testing.T) {
	c := NewCached(NewFunc("t", trivialSolve), 3)
	hot := chain(111, 222, 333)
	score := map[uint64]float64{hot.Fingerprint(): 100}
	c.SetEvictionScorer(func(fp uint64, numStages int) float64 { return score[fp] })

	// Schedule hot first: under plain LRU it would be the first victim.
	if _, err := c.Schedule(context.Background(), hot, 2); err != nil {
		t.Fatal(err)
	}
	fillCached(t, c, 3, 2) // three cold graphs push the cache over capacity
	if !c.Contains(hot, 2) {
		t.Fatal("hot entry evicted despite popularity-aware ordering")
	}

	// With the scorer removed, plain LRU order resumes and the hot entry
	// (now the oldest untouched entry) goes first.
	c.SetEvictionScorer(nil)
	fillCached(t, c, 3, 3) // distinct stage count: all fresh inserts
	if c.Contains(hot, 2) {
		t.Fatal("hot entry survived beyond plain-LRU capacity")
	}
}

// TestCachedScorerNeverEvictsFreshInsert: with a scorer installed, the
// entry being inserted must never be its own victim — a low-scoring new
// key still lands in the cache (displacing the lowest-scoring resident),
// otherwise put is a silent no-op and the key re-solves forever.
func TestCachedScorerNeverEvictsFreshInsert(t *testing.T) {
	c := NewCached(NewFunc("t", trivialSolve), 2)
	score := map[uint64]float64{}
	c.SetEvictionScorer(func(fp uint64, numStages int) float64 { return score[fp] })

	resident1, resident2 := chain(111, 222, 333), chain(112, 223, 334)
	score[resident1.Fingerprint()] = 50
	score[resident2.Fingerprint()] = 100
	for _, g := range []*graph.Graph{resident1, resident2} {
		if _, err := c.Schedule(context.Background(), g, 2); err != nil {
			t.Fatal(err)
		}
	}
	newcomer := chain(10, 20, 30) // score 0: lowest in the whole cache
	if _, err := c.Schedule(context.Background(), newcomer, 2); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(newcomer, 2) {
		t.Fatal("fresh insert evicted itself under the scorer")
	}
	if !c.Contains(resident2, 2) || c.Contains(resident1, 2) {
		t.Fatal("scorer did not evict the lowest-scoring resident")
	}
}

func TestCachedPortfolioOnEvictAndScorer(t *testing.T) {
	p := NewCachedPortfolio([]Scheduler{NewFunc("t", trivialSolve)}, 2, PortfolioOptions{})
	hot := chain(111, 222, 333)
	score := map[uint64]float64{hot.Fingerprint(): 100}
	p.SetEvictionScorer(func(fp uint64, numStages int) float64 { return score[fp] })
	var evicted []uint64
	p.OnEvict(func(fp uint64, numStages int) { evicted = append(evicted, fp) })

	if _, _, err := p.Run(context.Background(), hot, 2); err != nil {
		t.Fatal(err)
	}
	cold1, cold2 := chain(10, 20, 30), chain(11, 21, 31)
	if _, _, err := p.Run(context.Background(), cold1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(context.Background(), cold2, 2); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(hot, 2) {
		t.Fatal("hot memo evicted despite popularity-aware ordering")
	}
	if len(evicted) != 1 || evicted[0] != cold1.Fingerprint() {
		t.Fatalf("evicted = %v, want the cold memo %v", evicted, cold1.Fingerprint())
	}
}
