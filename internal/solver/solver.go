// Package solver is the scheduling-engine layer of RESPECT: a uniform
// Scheduler interface over every backend the paper evaluates (RL
// pointer-network decoding, branch-and-bound exact search, generic MILP,
// classic heuristics, compiler emulation), a named registry to enumerate
// and resolve them, and concurrent engines built on top — Portfolio races
// backends under one deadline and returns the cheapest deployable
// schedule; Batch schedules many graphs through a bounded worker pool;
// Cached memoizes schedules by graph fingerprint.
//
// Every Scheduler returns deployment-ready schedules (pipeline-monotone
// and hardware-repaired via sched.PostProcess), so costs are directly
// comparable across backends and a Portfolio winner can be deployed
// without further processing. Backends honor context cancellation: when
// the deadline expires mid-search, anytime backends (exact, ilp, anneal)
// return their incumbent rather than blocking.
package solver

import (
	"context"

	"respect/internal/graph"
	"respect/internal/sched"
)

// Scheduler maps a DNN computational DAG onto an n-stage Edge TPU
// pipeline. Implementations must be safe for concurrent use — the
// Portfolio and Batch engines invoke one value from many goroutines —
// and must respect ctx: return promptly (with an incumbent schedule or an
// error) once ctx is cancelled or its deadline passes.
type Scheduler interface {
	// Name identifies the backend in the registry and in telemetry.
	Name() string
	// Schedule computes a deployment-ready schedule of g on numStages
	// pipeline stages.
	Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error)
}

// Info is optional metadata about how a schedule was obtained, reported
// by backends that can distinguish a full-effort result from a
// budget-truncated incumbent.
type Info struct {
	// Truncated reports the search ran out of budget (deadline,
	// cancellation, or state cap) and returned an incumbent.
	Truncated bool
	// OptimalityProven reports the result is provably optimal (the exact
	// family with an exhausted search space).
	OptimalityProven bool
}

// InfoScheduler is implemented by backends that report Info alongside the
// schedule. The schedule cache refuses to store truncated incumbents, and
// the CLI uses Info to caption results honestly.
type InfoScheduler interface {
	Scheduler
	ScheduleInfo(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, Info, error)
}

// ScheduleInfo runs b, forwarding metadata when b provides it; plain
// backends report a zero Info (full-effort, no optimality claim).
func ScheduleInfo(ctx context.Context, b Scheduler, g *graph.Graph, numStages int) (sched.Schedule, Info, error) {
	if is, ok := b.(InfoScheduler); ok {
		return is.ScheduleInfo(ctx, g, numStages)
	}
	s, err := b.Schedule(ctx, g, numStages)
	return s, Info{}, err
}

// Func adapts a plain function to the Scheduler interface.
type Func struct {
	// BackendName is returned by Name.
	BackendName string
	// Fn is invoked by Schedule.
	Fn func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error)
}

// NewFunc wraps fn as a named Scheduler.
func NewFunc(name string, fn func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error)) Func {
	return Func{BackendName: name, Fn: fn}
}

// Name implements Scheduler.
func (f Func) Name() string { return f.BackendName }

// Schedule implements Scheduler.
func (f Func) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	return f.Fn(ctx, g, numStages)
}
