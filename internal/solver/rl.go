package solver

import (
	"context"

	"respect/internal/embed"
	"respect/internal/graph"
	"respect/internal/ptrnet"
	"respect/internal/rl"
	"respect/internal/sched"
)

// RL backends are model-bound: they wrap a trained pointer network, so
// they cannot be registered at init time. Whoever loads or trains an
// agent constructs them here and registers them (see Registry.Replace,
// which keeps re-loading an agent idempotent).

// rlGuard performs the shared pre-flight cancellation check; pointer
// decoding runs in microseconds, so finer-grained ctx checks buy nothing.
func rlGuard(ctx context.Context) error { return ctx.Err() }

// RL returns the greedy pointer-decode backend ("rl"): embedding, greedy
// decode, ρ stage mapping, deployment repair — the paper's headline
// inference path.
func RL(m *ptrnet.Model, ecfg embed.Config) Scheduler {
	return NewFunc("rl", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		if err := rlGuard(ctx); err != nil {
			return sched.Schedule{}, err
		}
		return rl.Schedule(m, ecfg, g, numStages)
	})
}

// RLSampled returns the best-of-K stochastic decode backend
// ("rl-sampled"): beside the greedy rollout it draws samples decodes and
// keeps the cheapest deployed schedule.
func RLSampled(m *ptrnet.Model, ecfg embed.Config, samples int, seed int64) Scheduler {
	return NewFunc("rl-sampled", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		if err := rlGuard(ctx); err != nil {
			return sched.Schedule{}, err
		}
		return rl.ScheduleSampled(m, ecfg, g, numStages, samples, seed)
	})
}

// RLBeam returns the beam-search decode backend ("rl-beam") of the given
// width.
func RLBeam(m *ptrnet.Model, ecfg embed.Config, width int) Scheduler {
	return NewFunc("rl-beam", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		if err := rlGuard(ctx); err != nil {
			return sched.Schedule{}, err
		}
		return rl.ScheduleBeam(m, ecfg, g, numStages, width)
	})
}

// AgentBackends bundles the three decode modes of one trained model with
// default inference knobs (16 samples, beam width 8).
func AgentBackends(m *ptrnet.Model, ecfg embed.Config) []Scheduler {
	return []Scheduler{
		RL(m, ecfg),
		RLSampled(m, ecfg, 16, 1),
		RLBeam(m, ecfg, 8),
	}
}
