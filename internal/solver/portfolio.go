package solver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// Outcome is the per-backend telemetry of one portfolio run.
type Outcome struct {
	// Backend is the Scheduler's name.
	Backend string
	// Schedule and Cost are set when Err is nil and the schedule validated.
	Schedule sched.Schedule
	Cost     sched.Cost
	// Err is the backend's failure (including ctx cancellation when the
	// backend was cancelled as a loser before producing a schedule).
	Err error
	// Info is the backend's honesty metadata (truncation / optimality
	// proof) when it reports any; zero for plain backends.
	Info Info
	// Started is the backend goroutine's start offset from the beginning
	// of the race (scheduling delay; normally microseconds). Together with
	// Elapsed it places the backend on a per-request timeline.
	Started time.Duration
	// Elapsed is the backend's wall-clock solve time.
	Elapsed time.Duration
	// Winner marks the backend whose schedule the portfolio returned.
	Winner bool
}

// PortfolioResult is the aggregate outcome of racing several backends.
type PortfolioResult struct {
	// Schedule is the cheapest deployable schedule found.
	Schedule sched.Schedule
	// Cost is Schedule's objective.
	Cost sched.Cost
	// Backend names the winner.
	Backend string
	// Truncated reports the returned schedule is a budget-cut incumbent:
	// the winning backend ran out of budget mid-search. A full-effort
	// winner is not truncated even when slower members were cut by the
	// deadline (their Outcomes record that). Honest callers must surface
	// this flag rather than presenting the schedule as full-effort.
	Truncated bool
	// Outcomes reports every raced backend, in input order.
	Outcomes []Outcome
}

// PortfolioOptions tunes the race.
type PortfolioOptions struct {
	// Patience bounds how long the portfolio keeps waiting for stragglers
	// after the first backend returns a valid schedule: once it elapses the
	// shared context is cancelled and anytime backends hand back their
	// incumbents. Zero waits for every backend (or the caller's deadline).
	Patience time.Duration
}

// Portfolio races the given backends on one scheduling instance under the
// caller's context and returns the best deployable schedule by deployed
// cost (ties break toward the earlier backend in the argument order).
// Every backend runs in its own goroutine against a shared derived
// context; when the race is decided the derived context is cancelled, so
// no goroutine outlives the call. Backends that error or return invalid
// schedules are excluded; the call fails only when no backend produced a
// valid schedule or the caller's context was cancelled outright.
func Portfolio(ctx context.Context, backends []Scheduler, g *graph.Graph, numStages int) (PortfolioResult, error) {
	return PortfolioOpt(ctx, backends, g, numStages, PortfolioOptions{})
}

// PortfolioOpt is Portfolio with explicit options.
func PortfolioOpt(ctx context.Context, backends []Scheduler, g *graph.Graph, numStages int, opts PortfolioOptions) (PortfolioResult, error) {
	if len(backends) == 0 {
		return PortfolioResult{}, errors.New("solver: portfolio needs at least one backend")
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type indexed struct {
		i   int
		out Outcome
	}
	results := make(chan indexed, len(backends))
	raceStart := time.Now()
	for i, b := range backends {
		go func(i int, b Scheduler) {
			start := time.Now()
			s, info, err := ScheduleInfo(raceCtx, b, g, numStages)
			out := Outcome{Backend: b.Name(), Started: start.Sub(raceStart), Elapsed: time.Since(start), Err: err, Info: info}
			if err == nil {
				if verr := s.Validate(g); verr != nil {
					out.Err = fmt.Errorf("solver: backend %q returned an invalid schedule: %w", b.Name(), verr)
				} else {
					out.Schedule = s
					out.Cost = s.Evaluate(g)
				}
			}
			results <- indexed{i, out}
		}(i, b)
	}

	res := PortfolioResult{Outcomes: make([]Outcome, len(backends))}
	var patience <-chan time.Time
	for done := 0; done < len(backends); {
		select {
		case r := <-results:
			done++
			res.Outcomes[r.i] = r.out
			if r.out.Err == nil && patience == nil && opts.Patience > 0 {
				patience = time.After(opts.Patience)
			}
		case <-patience:
			// The stragglers lost; reclaim their goroutines. Anytime
			// backends return incumbents, others return ctx.Canceled —
			// either way every goroutine reports in and we keep draining.
			cancel()
			patience = nil
		}
	}

	best := -1
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Err != nil {
			continue
		}
		if best < 0 || o.Cost.Less(res.Outcomes[best].Cost) {
			best = i
		}
	}
	if best < 0 {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("solver: portfolio cancelled before any backend finished: %w", err)
		}
		return res, fmt.Errorf("solver: every portfolio backend failed (first: %w)", firstErr(res.Outcomes))
	}
	res.Outcomes[best].Winner = true
	res.Schedule = res.Outcomes[best].Schedule
	res.Cost = res.Outcomes[best].Cost
	res.Backend = res.Outcomes[best].Backend
	res.Truncated = res.Outcomes[best].Info.Truncated
	return res, nil
}

func firstErr(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return errors.New("no error recorded")
}

// CachedPortfolio memoizes portfolio races by graph fingerprint and stage
// count, preserving per-backend telemetry. A hit returns the stored race
// result in O(1) (with a defensively copied schedule); a miss races the
// backends and stores the result unless it was budget-truncated — a cut
// incumbent is only as good as the call's deadline and must not shadow a
// later full-effort race. This is the serving layer's per-request-class
// engine: one CachedPortfolio per class, warmed from the model zoo.
type CachedPortfolio struct {
	backends []Scheduler
	opts     PortfolioOptions
	lru      *lru

	ins    *Instruments
	engine string
}

// NewCachedPortfolio builds a cached race over backends with at most
// capacity memoized results (capacity < 1 defaults to 256).
func NewCachedPortfolio(backends []Scheduler, capacity int, opts PortfolioOptions) *CachedPortfolio {
	return &CachedPortfolio{backends: backends, lru: newLRU(capacity), opts: opts}
}

// Instrument attaches the memo cache's hit/miss/eviction counters and
// per-backend race telemetry (latency, win/loss/truncation) to ins under
// the given engine name — the serving layer passes the request class.
// Call once, before the engine serves traffic.
func (p *CachedPortfolio) Instrument(ins *Instruments, engine string) {
	ins.instrumentLRU(engine, p.lru)
	p.ins, p.engine = ins, engine
}

// Backends returns the raced backend names, in race order.
func (p *CachedPortfolio) Backends() []string {
	names := make([]string, len(p.backends))
	for i, b := range p.backends {
		names[i] = b.Name()
	}
	return names
}

// Run races the portfolio on (g, numStages), serving memoized results when
// available. hit reports a cache hit; on a hit the Outcomes telemetry
// (elapsed times, per-backend costs) is that of the original race and the
// result is shared — callers must treat Outcomes as read-only.
func (p *CachedPortfolio) Run(ctx context.Context, g *graph.Graph, numStages int) (res PortfolioResult, hit bool, err error) {
	key := cacheKey{fp: g.Fingerprint(), numStages: numStages}
	if v, ok := p.lru.get(key); ok {
		res = v.(PortfolioResult)
		res.Schedule = res.Schedule.Clone()
		return res, true, nil
	}
	res, err = PortfolioOpt(ctx, p.backends, g, numStages, p.opts)
	p.ins.ObserveOutcomes(p.engine, res.Outcomes)
	if err != nil {
		return res, false, err
	}
	if res.Truncated {
		// A budget-cut incumbent must not shadow a later full-effort race.
		// A full-effort winner IS stored even when slower members were cut:
		// the memoized result means "best found within one race budget".
		return res, false, nil
	}
	stored := res
	stored.Schedule = res.Schedule.Clone()
	// Drop every per-outcome schedule: telemetry (cost, elapsed, error)
	// stays, the winner's assignment lives in stored.Schedule, and nothing
	// in the cache aliases a schedule the miss caller may mutate.
	stored.Outcomes = append([]Outcome(nil), res.Outcomes...)
	for i := range stored.Outcomes {
		stored.Outcomes[i].Schedule = sched.Schedule{}
	}
	p.lru.put(key, stored)
	return res, false, nil
}

// Contains reports whether a full-effort race for (g, numStages) is
// memoized, without counting toward hit/miss statistics.
func (p *CachedPortfolio) Contains(g *graph.Graph, numStages int) bool {
	return p.lru.contains(cacheKey{fp: g.Fingerprint(), numStages: numStages})
}

// Warm races the portfolio over every graph through a bounded worker pool
// (jobs < 1 defaults to GOMAXPROCS), returning how many instances are
// memoized afterwards. Best-effort, like Cached.Warm: truncated races are
// skipped and the first error is reported after all warms ran.
func (p *CachedPortfolio) Warm(ctx context.Context, graphs []*graph.Graph, numStages, jobs int) (stored int, err error) {
	return warm(ctx, graphs, jobs,
		func(ctx context.Context, g *graph.Graph) error {
			_, _, err := p.Run(ctx, g, numStages)
			return err
		},
		func(g *graph.Graph) bool { return p.Contains(g, numStages) })
}

// OnEvict registers fn to be called with the evicted instance's graph
// fingerprint and stage count on every memo eviction; the same contract
// as Cached.OnEvict (runs under the cache lock, keep it cheap, no
// re-entry).
func (p *CachedPortfolio) OnEvict(fn func(fp uint64, numStages int)) {
	p.lru.addEvictHook(func(k cacheKey) { fn(k.fp, k.numStages) })
}

// SetEvictionScorer makes memo eviction popularity-aware; the same
// contract as Cached.SetEvictionScorer.
func (p *CachedPortfolio) SetEvictionScorer(score func(fp uint64, numStages int) float64) {
	if score == nil {
		p.lru.setVictimScorer(nil)
		return
	}
	p.lru.setVictimScorer(func(k cacheKey) float64 { return score(k.fp, k.numStages) })
}

// Stats returns cumulative cache hits and misses.
func (p *CachedPortfolio) Stats() (hits, misses uint64) { return p.lru.stats() }

// Evictions returns the cumulative number of LRU evictions.
func (p *CachedPortfolio) Evictions() uint64 { return p.lru.evicted() }

// Len returns the number of memoized races.
func (p *CachedPortfolio) Len() int { return p.lru.len() }

// PortfolioScheduler wraps a fixed backend set as a Scheduler, so a
// portfolio composes with the Batch engine and the schedule cache like any
// single backend.
func PortfolioScheduler(name string, opts PortfolioOptions, backends ...Scheduler) Scheduler {
	return NewFunc(name, func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		res, err := PortfolioOpt(ctx, backends, g, numStages, opts)
		if err != nil {
			return sched.Schedule{}, err
		}
		return res.Schedule, nil
	})
}
