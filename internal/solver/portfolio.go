package solver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// Outcome is the per-backend telemetry of one portfolio run.
type Outcome struct {
	// Backend is the Scheduler's name.
	Backend string
	// Schedule and Cost are set when Err is nil and the schedule validated.
	Schedule sched.Schedule
	Cost     sched.Cost
	// Err is the backend's failure (including ctx cancellation when the
	// backend was cancelled as a loser before producing a schedule).
	Err error
	// Elapsed is the backend's wall-clock solve time.
	Elapsed time.Duration
	// Winner marks the backend whose schedule the portfolio returned.
	Winner bool
}

// PortfolioResult is the aggregate outcome of racing several backends.
type PortfolioResult struct {
	// Schedule is the cheapest deployable schedule found.
	Schedule sched.Schedule
	// Cost is Schedule's objective.
	Cost sched.Cost
	// Backend names the winner.
	Backend string
	// Outcomes reports every raced backend, in input order.
	Outcomes []Outcome
}

// PortfolioOptions tunes the race.
type PortfolioOptions struct {
	// Patience bounds how long the portfolio keeps waiting for stragglers
	// after the first backend returns a valid schedule: once it elapses the
	// shared context is cancelled and anytime backends hand back their
	// incumbents. Zero waits for every backend (or the caller's deadline).
	Patience time.Duration
}

// Portfolio races the given backends on one scheduling instance under the
// caller's context and returns the best deployable schedule by deployed
// cost (ties break toward the earlier backend in the argument order).
// Every backend runs in its own goroutine against a shared derived
// context; when the race is decided the derived context is cancelled, so
// no goroutine outlives the call. Backends that error or return invalid
// schedules are excluded; the call fails only when no backend produced a
// valid schedule or the caller's context was cancelled outright.
func Portfolio(ctx context.Context, backends []Scheduler, g *graph.Graph, numStages int) (PortfolioResult, error) {
	return PortfolioOpt(ctx, backends, g, numStages, PortfolioOptions{})
}

// PortfolioOpt is Portfolio with explicit options.
func PortfolioOpt(ctx context.Context, backends []Scheduler, g *graph.Graph, numStages int, opts PortfolioOptions) (PortfolioResult, error) {
	if len(backends) == 0 {
		return PortfolioResult{}, errors.New("solver: portfolio needs at least one backend")
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type indexed struct {
		i   int
		out Outcome
	}
	results := make(chan indexed, len(backends))
	for i, b := range backends {
		go func(i int, b Scheduler) {
			start := time.Now()
			s, err := b.Schedule(raceCtx, g, numStages)
			out := Outcome{Backend: b.Name(), Elapsed: time.Since(start), Err: err}
			if err == nil {
				if verr := s.Validate(g); verr != nil {
					out.Err = fmt.Errorf("solver: backend %q returned an invalid schedule: %w", b.Name(), verr)
				} else {
					out.Schedule = s
					out.Cost = s.Evaluate(g)
				}
			}
			results <- indexed{i, out}
		}(i, b)
	}

	res := PortfolioResult{Outcomes: make([]Outcome, len(backends))}
	var patience <-chan time.Time
	for done := 0; done < len(backends); {
		select {
		case r := <-results:
			done++
			res.Outcomes[r.i] = r.out
			if r.out.Err == nil && patience == nil && opts.Patience > 0 {
				patience = time.After(opts.Patience)
			}
		case <-patience:
			// The stragglers lost; reclaim their goroutines. Anytime
			// backends return incumbents, others return ctx.Canceled —
			// either way every goroutine reports in and we keep draining.
			cancel()
			patience = nil
		}
	}

	best := -1
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Err != nil {
			continue
		}
		if best < 0 || o.Cost.Less(res.Outcomes[best].Cost) {
			best = i
		}
	}
	if best < 0 {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("solver: portfolio cancelled before any backend finished: %w", err)
		}
		return res, fmt.Errorf("solver: every portfolio backend failed (first: %w)", firstErr(res.Outcomes))
	}
	res.Outcomes[best].Winner = true
	res.Schedule = res.Outcomes[best].Schedule
	res.Cost = res.Outcomes[best].Cost
	res.Backend = res.Outcomes[best].Backend
	return res, nil
}

func firstErr(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return errors.New("no error recorded")
}

// PortfolioScheduler wraps a fixed backend set as a Scheduler, so a
// portfolio composes with the Batch engine and the schedule cache like any
// single backend.
func PortfolioScheduler(name string, opts PortfolioOptions, backends ...Scheduler) Scheduler {
	return NewFunc(name, func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		res, err := PortfolioOpt(ctx, backends, g, numStages, opts)
		if err != nil {
			return sched.Schedule{}, err
		}
		return res.Schedule, nil
	})
}
