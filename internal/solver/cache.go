package solver

import (
	"container/list"
	"context"
	"runtime"
	"sync"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// cacheKey identifies one scheduling instance: the graph's structural
// fingerprint plus the pipeline length.
type cacheKey struct {
	fp        uint64
	numStages int
}

// lru is a concurrency-safe fixed-capacity LRU table keyed by cacheKey,
// shared by the single-backend schedule cache (Cached) and the portfolio
// result cache (CachedPortfolio). Values are opaque; callers own copy
// semantics.
type lru struct {
	cap int

	mu        sync.Mutex
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	onEvict   func() // optional eviction hook, called (under mu) per eviction
}

type lruEntry struct {
	key cacheKey
	val any
}

// defaultCacheCap replaces non-positive cache capacities. Every LRU
// construction path (NewCached, NewCachedPortfolio, NewCacheSet) funnels
// through this guard, so a zero or negative configured size can never
// build a pathological always-evicting cache.
const defaultCacheCap = 256

// normCacheCap normalizes a configured cache capacity.
func normCacheCap(capacity int) int {
	if capacity < 1 {
		return defaultCacheCap
	}
	return capacity
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:     normCacheCap(capacity),
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
	}
}

// setEvictHook installs fn, called once per evicted entry while the LRU
// lock is held — keep it cheap (an atomic counter increment).
func (l *lru) setEvictHook(fn func()) {
	l.mu.Lock()
	l.onEvict = fn
	l.mu.Unlock()
}

// get returns the cached value for key, counting a hit or a miss.
func (l *lru) get(key cacheKey) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		l.hits++
		return el.Value.(*lruEntry).val, true
	}
	l.misses++
	return nil, false
}

// contains reports whether key is cached without touching recency or stats.
func (l *lru) contains(key cacheKey) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[key]
	return ok
}

// put inserts or refreshes key, evicting the least recently used entries
// beyond capacity.
func (l *lru) put(key cacheKey, val any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	l.entries[key] = l.order.PushFront(&lruEntry{key: key, val: val})
	for l.order.Len() > l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.entries, oldest.Value.(*lruEntry).key)
		l.evictions++
		if l.onEvict != nil {
			l.onEvict()
		}
	}
}

func (l *lru) stats() (hits, misses uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}

func (l *lru) evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

func (l *lru) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Cached wraps a Scheduler with an LRU schedule cache keyed by graph
// fingerprint (topology + per-node parameters) and stage count: repeated
// requests for structurally identical graphs — multi-model serving,
// synthetic sweeps, benchmark reruns — return in O(1) without re-running
// the backend. Safe for concurrent use; hits return defensive copies so
// callers can never corrupt a cached schedule.
type Cached struct {
	inner Scheduler
	lru   *lru

	ins     *Instruments
	insName string
}

// NewCached wraps inner with a cache of at most capacity schedules
// (capacity < 1 defaults to 256).
func NewCached(inner Scheduler, capacity int) *Cached {
	return &Cached{inner: inner, lru: newLRU(capacity)}
}

// Instrument attaches the cache's hit/miss/eviction counters and the
// backend's fresh-solve latency histogram to ins under the given engine
// name. Call once, before the cache serves traffic.
func (c *Cached) Instrument(ins *Instruments, name string) {
	ins.instrumentLRU(name, c.lru)
	c.ins, c.insName = ins, name
}

// Name implements Scheduler: a Cached backend is transparent, carrying its
// inner backend's name.
func (c *Cached) Name() string { return c.inner.Name() }

// Schedule implements Scheduler.
func (c *Cached) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, _, err := c.ScheduleTracked(ctx, g, numStages)
	return s, err
}

// ScheduleTracked is Schedule plus cache telemetry: hit reports whether the
// schedule came from the cache, and info carries the backend's honesty
// metadata (truncation / optimality) for fresh solves. Cache hits report a
// zero Info — only full-effort results are ever stored.
func (c *Cached) ScheduleTracked(ctx context.Context, g *graph.Graph, numStages int) (s sched.Schedule, hit bool, info Info, err error) {
	key := cacheKey{fp: g.Fingerprint(), numStages: numStages}
	if v, ok := c.lru.get(key); ok {
		return v.(sched.Schedule).Clone(), true, Info{}, nil
	}

	// Solve outside the lock: a slow backend must not serialize unrelated
	// cache traffic. Concurrent misses on one key may race the solve; the
	// last finisher's (equivalent) schedule wins.
	start := time.Now()
	s, info, err = ScheduleInfo(ctx, c.inner, g, numStages)
	c.ins.ObserveSolve(c.insName, c.inner.Name(), time.Since(start))
	if err != nil {
		return sched.Schedule{}, false, info, err
	}
	if info.Truncated || ctx.Err() != nil {
		// A budget-cut incumbent is only as good as this call's deadline;
		// caching it would poison every later caller with a looser budget.
		return s, false, info, nil
	}
	c.lru.put(key, s.Clone())
	return s, false, info, nil
}

// Contains reports whether a full-effort schedule for (g, numStages) is
// cached, without counting toward hit/miss statistics.
func (c *Cached) Contains(g *graph.Graph, numStages int) bool {
	return c.lru.contains(cacheKey{fp: g.Fingerprint(), numStages: numStages})
}

// Warm populates the cache for every graph through a bounded pool of jobs
// workers (jobs < 1 defaults to GOMAXPROCS) and returns how many instances
// are cached afterwards. Warming is best-effort: graphs whose solve was
// truncated by ctx are skipped rather than stored, failures don't stop the
// remaining warms, and the first backend error is returned at the end.
func (c *Cached) Warm(ctx context.Context, graphs []*graph.Graph, numStages, jobs int) (stored int, err error) {
	return warm(ctx, graphs, jobs,
		func(ctx context.Context, g *graph.Graph) error {
			_, _, _, err := c.ScheduleTracked(ctx, g, numStages)
			return err
		},
		func(g *graph.Graph) bool { return c.Contains(g, numStages) })
}

// warm fans solve out over graphs with a bounded worker pool, then counts
// the distinct instances that ended up cached — duplicate graphs in the
// warm set and LRU evictions by later warms must not inflate the count.
// Used by both Cached.Warm and CachedPortfolio.Warm.
func warm(ctx context.Context, graphs []*graph.Graph, jobs int, solve func(ctx context.Context, g *graph.Graph) error, contains func(g *graph.Graph) bool) (int, error) {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(graphs) {
		jobs = len(graphs)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan *graph.Graph)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				if err := solve(ctx, g); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for _, g := range graphs {
		select {
		case work <- g:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	stored := 0
	seen := make(map[uint64]bool, len(graphs))
	for _, g := range graphs {
		if fp := g.Fingerprint(); !seen[fp] {
			seen[fp] = true
			if contains(g) {
				stored++
			}
		}
	}
	return stored, firstErr
}

// Stats returns cumulative cache hits and misses.
func (c *Cached) Stats() (hits, misses uint64) { return c.lru.stats() }

// Evictions returns the cumulative number of LRU evictions.
func (c *Cached) Evictions() uint64 { return c.lru.evicted() }

// Len returns the number of cached schedules.
func (c *Cached) Len() int { return c.lru.len() }

// CacheSet lazily maintains one fingerprint-keyed Cached per backend name,
// resolved dynamically from a registry — the shared engine behind the
// public ScheduleWith/ScheduleBatch cache and the serving layer's batch
// endpoint. Replacing a backend registration (agent reload) takes effect
// immediately without invalidating unrelated backends' caches.
type CacheSet struct {
	r   *Registry
	cap int

	mu     sync.Mutex
	m      map[string]*Cached
	ins    *Instruments
	prefix string
}

// NewCacheSet builds a cache set over r with the given per-backend
// capacity (capacity < 1 defaults to 256 — normalized here as well as in
// the LRU itself, so the set never records a pathological capacity).
func NewCacheSet(r *Registry, capacity int) *CacheSet {
	return &CacheSet{r: r, cap: normCacheCap(capacity), m: make(map[string]*Cached)}
}

// Instrument wires every cache in the set — current and future — into
// ins; each backend's cache is named prefix+backendName (e.g. "batch/"
// yields "batch/heur"). Call once, before the set serves traffic.
func (cs *CacheSet) Instrument(ins *Instruments, prefix string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ins, cs.prefix = ins, prefix
	for name, c := range cs.m {
		c.Instrument(ins, prefix+name)
	}
}

// For returns the cache wrapping the named backend, creating it on first
// use; unknown names error eagerly.
func (cs *CacheSet) For(name string) (*Cached, error) {
	if _, err := cs.r.Lookup(name); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c, ok := cs.m[name]; ok {
		return c, nil
	}
	c := NewCached(Dynamic(cs.r, name), cs.cap)
	if cs.ins != nil {
		c.Instrument(cs.ins, cs.prefix+name)
	}
	cs.m[name] = c
	return c, nil
}

// Stats reports cumulative hits and misses for one backend name (zeros
// when that backend was never used through the set).
func (cs *CacheSet) Stats(name string) (hits, misses uint64) {
	cs.mu.Lock()
	c, ok := cs.m[name]
	cs.mu.Unlock()
	if !ok {
		return 0, 0
	}
	return c.Stats()
}

// Reset drops every cached schedule for every backend.
func (cs *CacheSet) Reset() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.m = make(map[string]*Cached)
}
