package solver

import (
	"container/list"
	"context"
	"runtime"
	"sync"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// cacheKey identifies one scheduling instance: the graph's structural
// fingerprint plus the pipeline length.
type cacheKey struct {
	fp        uint64
	numStages int
}

// lru is a concurrency-safe fixed-capacity LRU table keyed by cacheKey,
// shared by the single-backend schedule cache (Cached) and the portfolio
// result cache (CachedPortfolio). Values are opaque; callers own copy
// semantics.
type lru struct {
	cap int

	mu        sync.Mutex
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	onEvict   []func(cacheKey) // eviction hooks, called (under mu) per eviction
	// victimScore, when set, makes eviction popularity-aware: instead of
	// always evicting the LRU tail, put scans the victimScanDepth least
	// recently used entries and evicts the lowest-scoring one, so a hot
	// entry that merely aged survives cold churn.
	victimScore func(cacheKey) float64
}

type lruEntry struct {
	key cacheKey
	val any
}

// defaultCacheCap replaces non-positive cache capacities. Every LRU
// construction path (NewCached, NewCachedPortfolio, NewCacheSet) funnels
// through this guard, so a zero or negative configured size can never
// build a pathological always-evicting cache.
const defaultCacheCap = 256

// normCacheCap normalizes a configured cache capacity.
func normCacheCap(capacity int) int {
	if capacity < 1 {
		return defaultCacheCap
	}
	return capacity
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:     normCacheCap(capacity),
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
	}
}

// addEvictHook registers fn, called once per evicted entry with the
// evicted key while the LRU lock is held — keep it cheap (a counter
// increment, a set insertion) and never re-enter the LRU from it.
func (l *lru) addEvictHook(fn func(cacheKey)) {
	l.mu.Lock()
	l.onEvict = append(l.onEvict, fn)
	l.mu.Unlock()
}

// setVictimScorer installs score as the eviction-ordering signal (nil
// restores plain LRU order). Called under the LRU lock at eviction time,
// so it must be cheap and must not touch the LRU itself.
func (l *lru) setVictimScorer(score func(cacheKey) float64) {
	l.mu.Lock()
	l.victimScore = score
	l.mu.Unlock()
}

// victimScanDepth bounds how many tail entries a popularity-aware
// eviction examines; beyond a handful the scan buys nothing — anything
// deeper in the recency order is recent enough to keep regardless.
const victimScanDepth = 8

// victim picks the entry to evict: the back of the recency order, or,
// with a scorer installed, the lowest-scoring of the last victimScanDepth
// entries (ties keep the least recently used). The just-inserted front
// entry is never a candidate — evicting it would turn put into a silent
// no-op, and a hot key that can never land in the cache re-solves on
// every request. Called with l.mu held.
func (l *lru) victim() *list.Element {
	victim := l.order.Back()
	if l.victimScore == nil || victim == nil {
		return victim
	}
	scan := victimScanDepth
	if n := l.order.Len() - 1; scan > n {
		scan = n
	}
	best, bestScore := victim, l.victimScore(victim.Value.(*lruEntry).key)
	el := victim
	for i := 1; i < scan; i++ {
		if el = el.Prev(); el == nil {
			break
		}
		if sc := l.victimScore(el.Value.(*lruEntry).key); sc < bestScore {
			best, bestScore = el, sc
		}
	}
	return best
}

// get returns the cached value for key, counting a hit or a miss.
func (l *lru) get(key cacheKey) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		l.hits++
		return el.Value.(*lruEntry).val, true
	}
	l.misses++
	return nil, false
}

// contains reports whether key is cached without touching recency or stats.
func (l *lru) contains(key cacheKey) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[key]
	return ok
}

// put inserts or refreshes key, evicting the least recently used entries
// beyond capacity.
func (l *lru) put(key cacheKey, val any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	l.entries[key] = l.order.PushFront(&lruEntry{key: key, val: val})
	for l.order.Len() > l.cap {
		oldest := l.victim()
		evictedKey := oldest.Value.(*lruEntry).key
		l.order.Remove(oldest)
		delete(l.entries, evictedKey)
		l.evictions++
		for _, fn := range l.onEvict {
			fn(evictedKey)
		}
	}
}

// recordHit counts a hit that was satisfied outside the lru (within-batch
// dedup), without touching entries or recency.
func (l *lru) recordHit() {
	l.mu.Lock()
	l.hits++
	l.mu.Unlock()
}

func (l *lru) stats() (hits, misses uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}

func (l *lru) evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

func (l *lru) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Cached wraps a Scheduler with an LRU schedule cache keyed by graph
// fingerprint (topology + per-node parameters) and stage count: repeated
// requests for structurally identical graphs — multi-model serving,
// synthetic sweeps, benchmark reruns — return in O(1) without re-running
// the backend. Safe for concurrent use; hits return defensive copies so
// callers can never corrupt a cached schedule.
type Cached struct {
	inner Scheduler
	lru   *lru

	ins     *Instruments
	insName string
}

// NewCached wraps inner with a cache of at most capacity schedules
// (capacity < 1 defaults to 256).
func NewCached(inner Scheduler, capacity int) *Cached {
	return &Cached{inner: inner, lru: newLRU(capacity)}
}

// Instrument attaches the cache's hit/miss/eviction counters and the
// backend's fresh-solve latency histogram to ins under the given engine
// name. Call once, before the cache serves traffic.
func (c *Cached) Instrument(ins *Instruments, name string) {
	ins.instrumentLRU(name, c.lru)
	c.ins, c.insName = ins, name
}

// Name implements Scheduler: a Cached backend is transparent, carrying its
// inner backend's name.
func (c *Cached) Name() string { return c.inner.Name() }

// RecordExternalHit counts a fingerprint-cache hit that was satisfied
// without querying the cache: Batch's within-batch dedup copies a
// representative's schedule instead of re-looking it up, and records the
// duplicate here so Stats and the cache-ops metrics stay truthful about
// how many requests were served without a fresh solve.
func (c *Cached) RecordExternalHit() { c.lru.recordHit() }

// Schedule implements Scheduler.
func (c *Cached) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, _, err := c.ScheduleTracked(ctx, g, numStages)
	return s, err
}

// ScheduleTracked is Schedule plus cache telemetry: hit reports whether the
// schedule came from the cache, and info carries the backend's honesty
// metadata (truncation / optimality) for fresh solves. Cache hits report a
// zero Info — only full-effort results are ever stored.
func (c *Cached) ScheduleTracked(ctx context.Context, g *graph.Graph, numStages int) (s sched.Schedule, hit bool, info Info, err error) {
	key := cacheKey{fp: g.Fingerprint(), numStages: numStages}
	if v, ok := c.lru.get(key); ok {
		return v.(sched.Schedule).Clone(), true, Info{}, nil
	}

	// Solve outside the lock: a slow backend must not serialize unrelated
	// cache traffic. Concurrent misses on one key may race the solve; the
	// last finisher's (equivalent) schedule wins.
	start := time.Now()
	s, info, err = ScheduleInfo(ctx, c.inner, g, numStages)
	c.ins.ObserveSolve(c.insName, c.inner.Name(), time.Since(start))
	if err != nil {
		return sched.Schedule{}, false, info, err
	}
	if info.Truncated || ctx.Err() != nil {
		// A budget-cut incumbent is only as good as this call's deadline;
		// caching it would poison every later caller with a looser budget.
		return s, false, info, nil
	}
	c.lru.put(key, s.Clone())
	return s, false, info, nil
}

// Contains reports whether a full-effort schedule for (g, numStages) is
// cached, without counting toward hit/miss statistics.
func (c *Cached) Contains(g *graph.Graph, numStages int) bool {
	return c.lru.contains(cacheKey{fp: g.Fingerprint(), numStages: numStages})
}

// Warm populates the cache for every graph through a bounded pool of jobs
// workers (jobs < 1 defaults to GOMAXPROCS) and returns how many instances
// are cached afterwards. Warming is best-effort: graphs whose solve was
// truncated by ctx are skipped rather than stored, failures don't stop the
// remaining warms, and the first backend error is returned at the end.
func (c *Cached) Warm(ctx context.Context, graphs []*graph.Graph, numStages, jobs int) (stored int, err error) {
	return warm(ctx, graphs, jobs,
		func(ctx context.Context, g *graph.Graph) error {
			_, _, _, err := c.ScheduleTracked(ctx, g, numStages)
			return err
		},
		func(g *graph.Graph) bool { return c.Contains(g, numStages) })
}

// warm fans solve out over graphs with a bounded worker pool, then counts
// the distinct instances that ended up cached — duplicate graphs in the
// warm set and LRU evictions by later warms must not inflate the count.
// Used by both Cached.Warm and CachedPortfolio.Warm.
func warm(ctx context.Context, graphs []*graph.Graph, jobs int, solve func(ctx context.Context, g *graph.Graph) error, contains func(g *graph.Graph) bool) (int, error) {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(graphs) {
		jobs = len(graphs)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan *graph.Graph)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				if err := solve(ctx, g); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for _, g := range graphs {
		select {
		case work <- g:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	stored := 0
	seen := make(map[uint64]bool, len(graphs))
	for _, g := range graphs {
		if fp := g.Fingerprint(); !seen[fp] {
			seen[fp] = true
			if contains(g) {
				stored++
			}
		}
	}
	return stored, firstErr
}

// OnEvict registers fn to be called with the evicted instance's graph
// fingerprint and stage count on every LRU eviction. The hook runs under
// the cache lock: keep it cheap and never call back into this cache from
// it. Multiple hooks run in registration order; this is the signal source
// for speculative re-admission of evicted hot entries.
func (c *Cached) OnEvict(fn func(fp uint64, numStages int)) {
	c.lru.addEvictHook(func(k cacheKey) { fn(k.fp, k.numStages) })
}

// SetEvictionScorer makes eviction popularity-aware: when over capacity
// the cache evicts the lowest-scoring of its least recently used entries
// instead of strictly the oldest, so hot-but-aged schedules survive cold
// churn. score runs under the cache lock — it must be cheap and must not
// call back into this cache. A nil score restores plain LRU order.
func (c *Cached) SetEvictionScorer(score func(fp uint64, numStages int) float64) {
	if score == nil {
		c.lru.setVictimScorer(nil)
		return
	}
	c.lru.setVictimScorer(func(k cacheKey) float64 { return score(k.fp, k.numStages) })
}

// Stats returns cumulative cache hits and misses.
func (c *Cached) Stats() (hits, misses uint64) { return c.lru.stats() }

// Evictions returns the cumulative number of LRU evictions.
func (c *Cached) Evictions() uint64 { return c.lru.evicted() }

// Len returns the number of cached schedules.
func (c *Cached) Len() int { return c.lru.len() }

// CacheSet lazily maintains one fingerprint-keyed Cached per backend name,
// resolved dynamically from a registry — the shared engine behind the
// public ScheduleWith/ScheduleBatch cache and the serving layer's batch
// endpoint. Replacing a backend registration (agent reload) takes effect
// immediately without invalidating unrelated backends' caches.
type CacheSet struct {
	r   *Registry
	cap int

	mu     sync.Mutex
	m      map[string]*Cached
	ins    *Instruments
	prefix string
}

// NewCacheSet builds a cache set over r with the given per-backend
// capacity (capacity < 1 defaults to 256 — normalized here as well as in
// the LRU itself, so the set never records a pathological capacity).
func NewCacheSet(r *Registry, capacity int) *CacheSet {
	return &CacheSet{r: r, cap: normCacheCap(capacity), m: make(map[string]*Cached)}
}

// Instrument wires every cache in the set — current and future — into
// ins; each backend's cache is named prefix+backendName (e.g. "batch/"
// yields "batch/heur"). Call once, before the set serves traffic.
func (cs *CacheSet) Instrument(ins *Instruments, prefix string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ins, cs.prefix = ins, prefix
	for name, c := range cs.m {
		c.Instrument(ins, prefix+name)
	}
}

// For returns the cache wrapping the named backend, creating it on first
// use; unknown names error eagerly.
func (cs *CacheSet) For(name string) (*Cached, error) {
	if _, err := cs.r.Lookup(name); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c, ok := cs.m[name]; ok {
		return c, nil
	}
	c := NewCached(Dynamic(cs.r, name), cs.cap)
	if cs.ins != nil {
		c.Instrument(cs.ins, cs.prefix+name)
	}
	cs.m[name] = c
	return c, nil
}

// Stats reports cumulative hits and misses for one backend name (zeros
// when that backend was never used through the set).
func (cs *CacheSet) Stats(name string) (hits, misses uint64) {
	cs.mu.Lock()
	c, ok := cs.m[name]
	cs.mu.Unlock()
	if !ok {
		return 0, 0
	}
	return c.Stats()
}

// Reset drops every cached schedule for every backend.
func (cs *CacheSet) Reset() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.m = make(map[string]*Cached)
}
