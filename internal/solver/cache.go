package solver

import (
	"container/list"
	"context"
	"sync"

	"respect/internal/graph"
	"respect/internal/sched"
)

// Cached wraps a Scheduler with an LRU schedule cache keyed by graph
// fingerprint (topology + per-node parameters) and stage count: repeated
// requests for structurally identical graphs — multi-model serving,
// synthetic sweeps, benchmark reruns — return in O(1) without re-running
// the backend. Safe for concurrent use; hits return defensive copies so
// callers can never corrupt a cached schedule.
type Cached struct {
	inner Scheduler
	cap   int

	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
	hits    uint64
	misses  uint64
}

type cacheKey struct {
	fp        uint64
	numStages int
}

type cacheEntry struct {
	key cacheKey
	s   sched.Schedule
}

// NewCached wraps inner with a cache of at most capacity schedules
// (capacity < 1 defaults to 256).
func NewCached(inner Scheduler, capacity int) *Cached {
	if capacity < 1 {
		capacity = 256
	}
	return &Cached{
		inner:   inner,
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
	}
}

// Name implements Scheduler: a Cached backend is transparent, carrying its
// inner backend's name.
func (c *Cached) Name() string { return c.inner.Name() }

// Schedule implements Scheduler.
func (c *Cached) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, err := c.scheduleTracked(ctx, g, numStages)
	return s, err
}

// scheduleTracked is Schedule plus a cache-hit flag; the Batch engine
// detects it through an unexported interface to surface per-item hits.
func (c *Cached) scheduleTracked(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, bool, error) {
	key := cacheKey{fp: g.Fingerprint(), numStages: numStages}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		s := el.Value.(*cacheEntry).s.Clone()
		c.hits++
		c.mu.Unlock()
		return s, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Solve outside the lock: a slow backend must not serialize unrelated
	// cache traffic. Concurrent misses on one key may race the solve; the
	// last finisher's (equivalent) schedule wins.
	s, info, err := ScheduleInfo(ctx, c.inner, g, numStages)
	if err != nil {
		return sched.Schedule{}, false, err
	}
	if info.Truncated || ctx.Err() != nil {
		// A budget-cut incumbent is only as good as this call's deadline;
		// caching it would poison every later caller with a looser budget.
		return s, false, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).s = s.Clone()
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, s: s.Clone()})
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	return s, false, nil
}

// Stats returns cumulative cache hits and misses.
func (c *Cached) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached schedules.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
