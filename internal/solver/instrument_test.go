package solver

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"respect/internal/graph"
	"respect/internal/metrics"
)

// chainGraph builds an n-node path graph with distinct per-node weights,
// so different n produce different fingerprints.
func chainGraph(t *testing.T, name string, n int) *graph.Graph {
	t.Helper()
	g := graph.New(name)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{Name: fmt.Sprintf("%s%d", name, i), ParamBytes: int64(50*i + 7), OutBytes: 5})
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	g.MustBuild()
	return g
}

func expositionOf(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestInstrumentedCachedPortfolio(t *testing.T) {
	reg := metrics.NewRegistry()
	ins := NewInstruments(reg, nil)
	backends, err := Resolve("heur", "compiler")
	if err != nil {
		t.Fatal(err)
	}
	p := NewCachedPortfolio(backends, 8, PortfolioOptions{})
	p.Instrument(ins, "interactive")

	g := chainGraph(t, "ins", 6)
	for i := 0; i < 3; i++ { // 1 miss (one race), then 2 hits (no race)
		if _, _, err := p.Run(context.Background(), g, 3); err != nil {
			t.Fatal(err)
		}
	}

	page := expositionOf(t, reg)
	for _, want := range []string{
		`respect_schedule_cache_ops_total{cache="interactive",op="hit"} 2`,
		`respect_schedule_cache_ops_total{cache="interactive",op="miss"} 1`,
		`respect_schedule_cache_ops_total{cache="interactive",op="evict"} 0`,
		`respect_backend_schedule_duration_seconds_count{engine="interactive",backend="heur"} 1`,
		`respect_backend_schedule_duration_seconds_count{engine="interactive",backend="compiler"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Exactly one race ran, so wins across the portfolio must sum to 1 and
	// every member was observed once (win or loss).
	hits, misses := p.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats (%d hits, %d misses), want (2, 1)", hits, misses)
	}
	winSum := 0
	for _, b := range []string{"heur", "compiler"} {
		if strings.Contains(page, fmt.Sprintf(`respect_portfolio_wins_total{engine="interactive",backend="%s"} 1`, b)) {
			winSum++
		}
	}
	if winSum != 1 {
		t.Fatalf("portfolio wins sum to %d, want exactly 1\n%s", winSum, page)
	}
}

// TestEvictionHookCountsEvictions fills a capacity-1 memo cache with two
// distinct instances: the second put must evict the first, feeding both
// the LRU's own eviction counter and the hook-driven metrics counter.
func TestEvictionHookCountsEvictions(t *testing.T) {
	reg := metrics.NewRegistry()
	ins := NewInstruments(reg, nil)
	heur, err := Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(heur, 1)
	c.Instrument(ins, "tiny")

	g1, g2 := chainGraph(t, "ev-a", 4), chainGraph(t, "ev-b", 5)
	for _, g := range []*graph.Graph{g1, g2} {
		if _, err := c.Schedule(context.Background(), g, 2); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	page := expositionOf(t, reg)
	if !strings.Contains(page, `respect_schedule_cache_ops_total{cache="tiny",op="evict"} 1`) {
		t.Fatalf("hook-driven eviction counter missing:\n%s", page)
	}
}

// TestCacheSetZeroCapacityRegression guards the LRU capacity
// normalization: a CacheSet configured with capacity 0 (or negative) must
// build working default-capacity caches, not pathological always-evicting
// ones.
func TestCacheSetZeroCapacityRegression(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		cs := NewCacheSet(Default(), capacity)
		c, err := cs.For("heur")
		if err != nil {
			t.Fatal(err)
		}
		g := chainGraph(t, "zerocap", 5)
		if _, err := c.Schedule(context.Background(), g, 2); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 1 {
			t.Fatalf("capacity %d: schedule not retained (len=%d): capacity guard lost", capacity, c.Len())
		}
		if _, hit, _, err := c.ScheduleTracked(context.Background(), g, 2); err != nil || !hit {
			t.Fatalf("capacity %d: repeat lookup hit=%v err=%v, want a cache hit", capacity, hit, err)
		}
		if ev := c.Evictions(); ev != 0 {
			t.Fatalf("capacity %d: %d spurious evictions", capacity, ev)
		}
	}

	// The same guard must hold for the portfolio memo cache.
	backends, err := Resolve("heur")
	if err != nil {
		t.Fatal(err)
	}
	p := NewCachedPortfolio(backends, 0, PortfolioOptions{})
	g := chainGraph(t, "zerocap-p", 6)
	if _, _, err := p.Run(context.Background(), g, 2); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("portfolio memo lost its only entry (len=%d)", p.Len())
	}
	if _, hit, err := p.Run(context.Background(), g, 2); err != nil || !hit {
		t.Fatalf("portfolio repeat hit=%v err=%v, want a hit", hit, err)
	}
}

// TestOutcomeStartedOffsets checks the race timeline fields: every
// outcome starts at a non-negative offset and the offsets are small
// relative to elapsed solve time bookkeeping (they measure goroutine
// spawn delay, not solve time).
func TestOutcomeStartedOffsets(t *testing.T) {
	backends, err := Resolve("heur", "compiler", "list")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Portfolio(context.Background(), backends, chainGraph(t, "started", 7), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Started < 0 {
			t.Fatalf("%s: negative start offset %v", o.Backend, o.Started)
		}
		if o.Elapsed < 0 {
			t.Fatalf("%s: negative elapsed %v", o.Backend, o.Elapsed)
		}
	}
}
