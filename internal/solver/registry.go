package solver

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"respect/internal/graph"
	"respect/internal/sched"
)

// Registry is a concurrency-safe name → Scheduler table. The zero value
// is not usable; construct with NewRegistry. A process normally uses the
// package-level default registry (Register/Lookup/Names), which is
// pre-populated with every model-free backend; model-bound backends (the
// RL decoders) are registered by whoever loads or trains the agent.
type Registry struct {
	mu       sync.RWMutex
	backends map[string]Scheduler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{backends: make(map[string]Scheduler)}
}

// Register adds s under s.Name(). Registering an empty name or a name
// already taken is an error.
func (r *Registry) Register(s Scheduler) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("solver: refusing to register a backend with an empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.backends[name]; ok {
		return fmt.Errorf("solver: backend %q already registered", name)
	}
	r.backends[name] = s
	return nil
}

// Replace adds s under s.Name(), overwriting any existing registration —
// the idempotent variant used when re-binding a freshly loaded RL agent.
func (r *Registry) Replace(s Scheduler) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("solver: refusing to register a backend with an empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.backends[name] = s
	return nil
}

// Lookup resolves one backend by name.
func (r *Registry) Lookup(name string) (Scheduler, error) {
	r.mu.RLock()
	s, ok := r.backends[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown backend %q (have %v)", name, r.Names())
	}
	return s, nil
}

// Resolve maps a list of names to backends, failing on the first unknown
// name.
func (r *Registry) Resolve(names ...string) ([]Scheduler, error) {
	out := make([]Scheduler, 0, len(names))
	for _, n := range names {
		s, err := r.Lookup(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Names lists registered backends, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.backends))
	for n := range r.backends {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Dynamic returns a Scheduler that resolves name from r at every call, so
// replacing the registration (e.g. re-binding a freshly loaded RL agent)
// takes effect immediately. Metadata from Info-aware backends is
// forwarded, which lets a Cached wrapper around the dynamic handle refuse
// truncated incumbents.
func Dynamic(r *Registry, name string) InfoScheduler { return dynamicScheduler{r: r, name: name} }

type dynamicScheduler struct {
	r    *Registry
	name string
}

func (d dynamicScheduler) Name() string { return d.name }

func (d dynamicScheduler) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, err := d.ScheduleInfo(ctx, g, numStages)
	return s, err
}

func (d dynamicScheduler) ScheduleInfo(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, Info, error) {
	b, err := d.r.Lookup(d.name)
	if err != nil {
		return sched.Schedule{}, Info{}, err
	}
	return ScheduleInfo(ctx, b, g, numStages)
}

// defaultRegistry holds the process-wide backend table.
var defaultRegistry = NewRegistry()

// Default returns the package-level registry.
func Default() *Registry { return defaultRegistry }

// Register adds s to the default registry.
func Register(s Scheduler) error { return defaultRegistry.Register(s) }

// Replace adds s to the default registry, overwriting an existing name.
func Replace(s Scheduler) error { return defaultRegistry.Replace(s) }

// Lookup resolves a backend from the default registry.
func Lookup(name string) (Scheduler, error) { return defaultRegistry.Lookup(name) }

// Resolve maps names to backends from the default registry.
func Resolve(names ...string) ([]Scheduler, error) { return defaultRegistry.Resolve(names...) }

// Names lists the default registry's backends, sorted.
func Names() []string { return defaultRegistry.Names() }
