package solver

import (
	"time"

	"respect/internal/metrics"
)

// Instruments bundles the solver-layer metric families registered on one
// metrics.Registry: per-backend schedule-solve latency histograms,
// portfolio win/loss/truncation counters, and schedule-cache
// hit/miss/eviction counters. One Instruments is shared by every engine
// wired to the same registry (the serving layer creates one per Server);
// engines attach to it with Cached.Instrument, CachedPortfolio.Instrument
// and CacheSet.Instrument before serving traffic.
//
// Cache hit/miss counters are function-backed on the LRU's own counters
// and evictions are counted through the LRU's eviction hook, so the
// exposition page can never disagree with the engines' Stats()/Len()
// telemetry.
type Instruments struct {
	scheduleSeconds *metrics.HistogramVec // engine, backend
	wins            *metrics.CounterVec   // engine, backend
	losses          *metrics.CounterVec   // engine, backend
	truncations     *metrics.CounterVec   // engine, backend
	cacheOps        *metrics.CounterVec   // cache, op (hit | miss | evict)
}

// NewInstruments registers the solver metric families on reg. Latency
// histograms use buckets (upper bounds in seconds; nil defaults to
// metrics.DefBuckets). Registering twice on one registry panics
// (duplicate metric names) — create one Instruments per registry.
func NewInstruments(reg *metrics.Registry, buckets []float64) *Instruments {
	return &Instruments{
		scheduleSeconds: reg.HistogramVec("respect_backend_schedule_duration_seconds",
			"Wall-clock solve latency of one backend on one scheduling instance, in seconds.",
			buckets, "engine", "backend"),
		wins: reg.CounterVec("respect_portfolio_wins_total",
			"Portfolio races won by this backend (its schedule was returned).",
			"engine", "backend"),
		losses: reg.CounterVec("respect_portfolio_losses_total",
			"Portfolio races this backend lost, errored or was cancelled in.",
			"engine", "backend"),
		truncations: reg.CounterVec("respect_portfolio_truncations_total",
			"Backend results that were budget-cut incumbents rather than full-effort schedules.",
			"engine", "backend"),
		cacheOps: reg.CounterVec("respect_schedule_cache_ops_total",
			"Schedule cache operations (op is hit, miss or evict) per cache.",
			"cache", "op"),
	}
}

// ObserveOutcomes records one portfolio race's per-backend telemetry for
// the named engine: a latency observation per raced backend, a win for
// the winner, a loss for everyone else, and a truncation for each
// budget-cut incumbent. Nil-safe so un-instrumented engines pay nothing.
func (ins *Instruments) ObserveOutcomes(engine string, outs []Outcome) {
	if ins == nil {
		return
	}
	for _, o := range outs {
		ins.scheduleSeconds.With(engine, o.Backend).Observe(o.Elapsed.Seconds())
		if o.Winner {
			ins.wins.With(engine, o.Backend).Inc()
		} else {
			ins.losses.With(engine, o.Backend).Inc()
		}
		if o.Info.Truncated {
			ins.truncations.With(engine, o.Backend).Inc()
		}
	}
}

// ObserveSolve records one single-backend solve (the batch/cached path,
// where there is no race and so no win/loss bookkeeping).
func (ins *Instruments) ObserveSolve(engine, backend string, elapsed time.Duration) {
	if ins == nil {
		return
	}
	ins.scheduleSeconds.With(engine, backend).Observe(elapsed.Seconds())
}

// instrumentLRU wires one LRU's counters into the cacheOps family under
// the given cache name: hits and misses are read from the LRU itself at
// scrape time, evictions are counted live through the eviction hook.
func (ins *Instruments) instrumentLRU(name string, l *lru) {
	if ins == nil {
		return
	}
	ins.cacheOps.Func(func() float64 { h, _ := l.stats(); return float64(h) }, name, "hit")
	ins.cacheOps.Func(func() float64 { _, m := l.stats(); return float64(m) }, name, "miss")
	evict := ins.cacheOps.With(name, "evict")
	l.addEvictHook(func(cacheKey) { evict.Inc() })
}
