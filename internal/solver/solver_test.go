package solver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"respect/internal/graph"
	"respect/internal/models"
	"respect/internal/sched"
)

// chain builds a path graph v0 -> v1 -> ... with the given parameter sizes.
func chain(params ...int64) *graph.Graph {
	g := graph.New("chain")
	for i, p := range params {
		g.AddNode(graph.Node{ParamBytes: p, OutBytes: 10})
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	return g.MustBuild()
}

func randomDAG(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(fmt.Sprintf("rand%d", seed))
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{ParamBytes: 1 + int64(rng.Intn(1000)), OutBytes: 1 + int64(rng.Intn(100))})
	}
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	return g.MustBuild()
}

// fixed always returns the given schedule (pre-validated by the caller).
func fixed(name string, s sched.Schedule) Scheduler {
	return NewFunc(name, func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		return s.Clone(), nil
	})
}

// blocker blocks until its context is cancelled, then reports the ctx
// error; it records that it observed cancellation.
type blocker struct {
	cancelled chan struct{}
}

func (b *blocker) Name() string { return "blocker" }
func (b *blocker) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	<-ctx.Done()
	close(b.cancelled)
	return sched.Schedule{}, ctx.Err()
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"exact", "exact-ilp-grade", "ilp", "heur", "compiler", "compiler-full", "hu", "list", "force", "dp", "anneal"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("built-in backend %q missing from registry (have %v)", want, names)
		}
	}
	// Names is sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	s := fixed("x", sched.NewSchedule(0, 1))
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(s); err == nil {
		t.Fatal("duplicate Register should fail")
	}
	if err := r.Replace(s); err != nil {
		t.Fatalf("Replace should overwrite: %v", err)
	}
	if _, err := r.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown lookup error = %v", err)
	}
	if _, err := r.Resolve("x", "nope"); err == nil {
		t.Fatal("Resolve with unknown name should fail")
	}
	if err := r.Register(NewFunc("", nil)); err == nil {
		t.Fatal("empty name should fail")
	}
	got, err := r.Lookup("x")
	if err != nil || got.Name() != "x" {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
}

func TestBuiltinBackendsProduceValidSchedules(t *testing.T) {
	// Small enough that the generic MILP backend closes quickly.
	g := randomDAG(1, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, name := range Names() {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := b.Schedule(ctx, g, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(g); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if !s.SameStageChildrenOK(g) {
			t.Fatalf("%s: schedule not deployment-ready (children rule violated)", name)
		}
	}
}

func TestPortfolioPicksMinCost(t *testing.T) {
	g := chain(100, 100, 100, 100)
	// Bad: everything in one stage (peak 400). Good: perfectly split.
	bad := sched.Schedule{NumStages: 2, Stage: []int{0, 0, 0, 0}}
	good := sched.Schedule{NumStages: 2, Stage: []int{0, 0, 1, 1}}
	res, err := Portfolio(context.Background(), []Scheduler{fixed("bad", bad), fixed("good", good)}, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "good" {
		t.Fatalf("winner = %q, want good", res.Backend)
	}
	if res.Cost.PeakParamBytes != 200 {
		t.Fatalf("winning peak = %d, want 200", res.Cost.PeakParamBytes)
	}
	if len(res.Outcomes) != 2 || res.Outcomes[0].Backend != "bad" || res.Outcomes[1].Backend != "good" {
		t.Fatalf("outcomes not in input order: %+v", res.Outcomes)
	}
	if res.Outcomes[0].Winner || !res.Outcomes[1].Winner {
		t.Fatalf("winner flags wrong: %+v", res.Outcomes)
	}
}

func TestPortfolioBeatsEveryMember(t *testing.T) {
	g := randomDAG(7, 20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	backends, err := Resolve("heur", "compiler", "exact")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Portfolio(ctx, backends, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range backends {
		s, err := b.Schedule(ctx, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c := s.Evaluate(g); c.Less(res.Cost) {
			t.Fatalf("portfolio cost %v worse than member %s's %v", res.Cost, b.Name(), c)
		}
	}
}

func TestPortfolioCancelsLosers(t *testing.T) {
	g := chain(50, 50)
	good := sched.Schedule{NumStages: 2, Stage: []int{0, 1}}
	slow := &blocker{cancelled: make(chan struct{})}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := PortfolioOpt(ctx, []Scheduler{fixed("fast", good), slow}, g, 2,
		PortfolioOptions{Patience: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("portfolio took %v; patience should have cut the blocked loser", elapsed)
	}
	if res.Backend != "fast" {
		t.Fatalf("winner = %q", res.Backend)
	}
	select {
	case <-slow.cancelled:
	case <-time.After(time.Second):
		t.Fatal("losing backend never saw cancellation")
	}
	lost := res.Outcomes[1]
	if !errors.Is(lost.Err, context.Canceled) {
		t.Fatalf("loser outcome err = %v, want context.Canceled", lost.Err)
	}
}

func TestPortfolioDeadlineReturnsIncumbents(t *testing.T) {
	// Under a deadline, the anytime exact backend must return its incumbent
	// and the portfolio must complete within (about) the deadline.
	g, err := models.Load("ResNet152")
	if err != nil {
		t.Fatal(err)
	}
	backends, err := Resolve("heur", "exact-ilp-grade")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	res, err := Portfolio(ctx, backends, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("portfolio overran its deadline: %v", elapsed)
	}
	if err := res.Schedule.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioAllFail(t *testing.T) {
	g := chain(10, 10)
	boom := NewFunc("boom", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		return sched.Schedule{}, errors.New("boom")
	})
	// An invalid schedule (dependency violation) must be excluded too.
	invalid := fixed("invalid", sched.Schedule{NumStages: 2, Stage: []int{1, 0}})
	_, err := Portfolio(context.Background(), []Scheduler{boom, invalid}, g, 2)
	if err == nil {
		t.Fatal("want error when every backend fails")
	}
	if _, err := Portfolio(context.Background(), nil, g, 2); err == nil {
		t.Fatal("want error for an empty portfolio")
	}
}

func TestBatchPreservesOrder(t *testing.T) {
	heurB, err := Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*graph.Graph, 16)
	for i := range graphs {
		graphs[i] = randomDAG(int64(i), 6+i)
	}
	for _, jobs := range []int{1, 4, 32} {
		results, err := Batch(context.Background(), heurB, graphs, 3, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(graphs) {
			t.Fatalf("jobs=%d: %d results", jobs, len(results))
		}
		for i, r := range results {
			if r.Index != i || r.Graph != graphs[i] {
				t.Fatalf("jobs=%d: result %d out of order (index %d, graph %p)", jobs, i, r.Index, r.Graph)
			}
			if r.Err != nil {
				t.Fatalf("jobs=%d: item %d: %v", jobs, i, r.Err)
			}
			if err := r.Schedule.Validate(graphs[i]); err != nil {
				t.Fatalf("jobs=%d: item %d invalid: %v", jobs, i, err)
			}
		}
	}
	// Identical results regardless of parallelism.
	seq, _ := Batch(context.Background(), heurB, graphs, 3, 1)
	par, _ := Batch(context.Background(), heurB, graphs, 3, 8)
	for i := range seq {
		if seq[i].Cost != par[i].Cost {
			t.Fatalf("item %d: cost differs across jobs (%v vs %v)", i, seq[i].Cost, par[i].Cost)
		}
	}
}

func TestBatchCancellation(t *testing.T) {
	slow := NewFunc("slow", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		select {
		case <-ctx.Done():
			return sched.Schedule{}, ctx.Err()
		case <-time.After(10 * time.Second):
			return sched.Schedule{NumStages: numStages, Stage: make([]int, g.NumNodes())}, nil
		}
	})
	graphs := []*graph.Graph{chain(1, 2), chain(3, 4), chain(5, 6), chain(7, 8)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := Batch(ctx, slow, graphs, 2, 2)
	if err == nil {
		t.Fatal("want ctx error")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("batch did not honor cancellation")
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("item %d should have failed", i)
		}
	}
}

func TestCachedHitReturnsIdenticalSchedule(t *testing.T) {
	calls := 0
	inner := NewFunc("counted", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		calls++
		s, err := Lookup("heur")
		if err != nil {
			return sched.Schedule{}, err
		}
		return s.Schedule(ctx, g, numStages)
	})
	c := NewCached(inner, 8)
	g := randomDAG(3, 15)

	s1, err := c.Schedule(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Schedule(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("inner called %d times, want 1", calls)
	}
	if s1.NumStages != s2.NumStages || len(s1.Stage) != len(s2.Stage) {
		t.Fatal("cached schedule shape differs")
	}
	for v := range s1.Stage {
		if s1.Stage[v] != s2.Stage[v] {
			t.Fatalf("cached schedule differs at node %d", v)
		}
	}
	// Mutating the returned schedule must not poison the cache.
	s2.Stage[0] = s2.NumStages - 1
	s3, _ := c.Schedule(context.Background(), g, 4)
	if s3.Stage[0] != s1.Stage[0] {
		t.Fatal("cache entry was mutated through a returned schedule")
	}
	// A different stage count is a different key.
	if _, err := c.Schedule(context.Background(), g, 5); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("inner called %d times after new stage count, want 2", calls)
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 2/2", hits, misses)
	}
}

// truncating reports every result as a budget-cut incumbent.
type truncating struct{ calls int }

func (tr *truncating) Name() string { return "truncating" }
func (tr *truncating) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, err := tr.ScheduleInfo(ctx, g, numStages)
	return s, err
}
func (tr *truncating) ScheduleInfo(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, Info, error) {
	tr.calls++
	return sched.NewSchedule(g.NumNodes(), numStages), Info{Truncated: true}, nil
}

func TestCachedRefusesTruncatedIncumbents(t *testing.T) {
	inner := &truncating{}
	c := NewCached(inner, 8)
	g := chain(5, 5)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, hit, _, err := c.ScheduleTracked(ctx, g, 2); err != nil || hit {
			t.Fatalf("call %d: hit=%v err=%v; truncated incumbents must never be cached", i, hit, err)
		}
	}
	if inner.calls != 3 {
		t.Fatalf("inner called %d times, want 3 (no caching)", inner.calls)
	}
	// A result computed under an already-expired context must not be
	// cached either, even when the backend reports no truncation.
	heurB, _ := Lookup("heur")
	c2 := NewCached(NewFunc("expired", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		return heurB.Schedule(context.Background(), g, numStages)
	}), 8)
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := c2.ScheduleTracked(expired, g, 2); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Fatal("result solved under a cancelled context was cached")
	}
}

func TestExactBackendReportsInfo(t *testing.T) {
	g := randomDAG(41, 12)
	b, _ := Lookup("exact")
	s, info, err := ScheduleInfo(context.Background(), b, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !info.OptimalityProven || info.Truncated {
		t.Fatalf("unbounded exact solve on a 12-node DAG should prove optimality, got %+v", info)
	}
	// Pre-cancelled context: the anytime incumbent comes back truncated.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, info, err = ScheduleInfo(cctx, b, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.OptimalityProven {
		t.Fatalf("cancelled exact solve must report truncation, got %+v", info)
	}
}

func TestCachedEviction(t *testing.T) {
	heurB, _ := Lookup("heur")
	c := NewCached(heurB, 2)
	g1, g2, g3 := randomDAG(11, 8), randomDAG(12, 9), randomDAG(13, 10)
	ctx := context.Background()
	for _, g := range []*graph.Graph{g1, g2, g3} {
		if _, err := c.Schedule(ctx, g, 3); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	// g1 is the LRU victim: scheduling it again must miss.
	if _, err := c.Schedule(ctx, g1, 3); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 4 {
		t.Fatalf("stats = %d/%d, want 0 hits 4 misses", hits, misses)
	}
}

func TestBatchReportsCacheHits(t *testing.T) {
	heurB, _ := Lookup("heur")
	c := NewCached(heurB, 8)
	g := randomDAG(21, 12)
	graphs := []*graph.Graph{g, g, g, g}
	results, err := Batch(context.Background(), c, graphs, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].CacheHit {
		t.Fatal("first solve should miss")
	}
	for i := 1; i < len(results); i++ {
		if !results[i].CacheHit {
			t.Fatalf("item %d should hit the cache", i)
		}
	}
}

func TestPortfolioSchedulerComposesWithBatch(t *testing.T) {
	backends, err := Resolve("heur", "compiler", "hu")
	if err != nil {
		t.Fatal(err)
	}
	p := PortfolioScheduler("mini-portfolio", PortfolioOptions{}, backends...)
	graphs := []*graph.Graph{randomDAG(31, 10), randomDAG(32, 14), randomDAG(33, 18)}
	results, err := Batch(context.Background(), p, graphs, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		// The portfolio can never be worse than the compiler baseline.
		comp, _ := Lookup("compiler")
		s, err := comp.Schedule(context.Background(), graphs[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.Evaluate(graphs[i]).Less(r.Cost) {
			t.Fatalf("item %d: portfolio worse than compiler member", i)
		}
	}
}

func TestBatchDedupsDuplicateFingerprints(t *testing.T) {
	heurB, _ := Lookup("heur")
	c := NewCached(heurB, 8)
	a, b := randomDAG(41, 14), randomDAG(42, 14)
	graphs := []*graph.Graph{a, b, a, a, b}
	results, err := Batch(context.Background(), c, graphs, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	for _, i := range []int{0, 1} {
		if results[i].Deduped {
			t.Fatalf("representative %d marked deduped", i)
		}
	}
	for _, i := range []int{2, 3, 4} {
		if !results[i].Deduped || !results[i].CacheHit {
			t.Fatalf("duplicate %d: Deduped=%v CacheHit=%v", i, results[i].Deduped, results[i].CacheHit)
		}
	}
	// Duplicates carry the representative's exact schedule and cost.
	if results[2].Cost != results[0].Cost || results[4].Cost != results[1].Cost {
		t.Fatal("duplicate cost diverges from representative")
	}
	for v := range results[0].Schedule.Stage {
		if results[2].Schedule.Stage[v] != results[0].Schedule.Stage[v] {
			t.Fatalf("duplicate schedule diverges at node %d", v)
		}
	}
	// Deduped duplicates never reached the backend — the cache solved
	// exactly two distinct instances (both misses) — but each dedup fill
	// still counts as a hit, so Stats is independent of the optimization.
	if hits, misses := c.Stats(); hits != 3 || misses != 2 {
		t.Fatalf("cache saw hits=%d misses=%d, want 3/2", hits, misses)
	}
	// A mutated duplicate's schedule must not alias the representative's.
	results[2].Schedule.Stage[0] = -99
	if results[0].Schedule.Stage[0] == -99 {
		t.Fatal("duplicate schedule aliases representative storage")
	}
}

func TestBatchNoDedupForUncachedBackend(t *testing.T) {
	heurB, _ := Lookup("heur")
	g := randomDAG(43, 12)
	results, err := Batch(context.Background(), heurB, []*graph.Graph{g, g, g}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Deduped || r.CacheHit {
			t.Fatalf("bare backend item %d should solve fresh: Deduped=%v CacheHit=%v", i, r.Deduped, r.CacheHit)
		}
	}
}
