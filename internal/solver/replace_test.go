package solver

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"respect/internal/graph"
	"respect/internal/sched"
)

// genSched is a registry backend standing in for one generation of a
// hot-reloaded agent: it counts its calls, optionally blocks until
// released, and stamps every schedule with its generation (via the
// stage of the last node) so results are attributable.
type genSched struct {
	name  string
	gen   int
	calls atomic.Int64
	gate  chan struct{} // nil: never blocks
}

func (s *genSched) Name() string { return s.name }

func (s *genSched) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s.calls.Add(1)
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return sched.Schedule{}, ctx.Err()
		}
	}
	out := sched.NewSchedule(g.NumNodes(), numStages)
	out.Stage[g.NumNodes()-1] = s.gen % numStages
	return out, nil
}

// TestReplaceInFlightFinishesOnOldAgent: a solve racing when Replace
// lands must complete on the generation it resolved, while the next
// request sees the new generation.
func TestReplaceInFlightFinishesOnOldAgent(t *testing.T) {
	r := NewRegistry()
	gen0 := &genSched{name: "agent", gen: 0, gate: make(chan struct{})}
	if err := r.Register(gen0); err != nil {
		t.Fatal(err)
	}
	g := chain(100, 200, 300, 400)
	dyn := Dynamic(r, "agent")

	type res struct {
		out PortfolioResult
		err error
	}
	inflight := make(chan res, 1)
	go func() {
		out, err := Portfolio(context.Background(), []Scheduler{dyn}, g, 2)
		inflight <- res{out, err}
	}()
	// Wait until the in-flight solve is inside gen0, then hot-reload.
	for gen0.calls.Load() == 0 {
		select {
		case early := <-inflight:
			t.Fatalf("race finished before backend entered: %+v %v", early.out, early.err)
		default:
			runtime.Gosched()
		}
	}
	gen1 := &genSched{name: "agent", gen: 1}
	if err := r.Replace(gen1); err != nil {
		t.Fatal(err)
	}
	close(gen0.gate) // release the old generation

	got := <-inflight
	if got.err != nil {
		t.Fatal(got.err)
	}
	if stamp := got.out.Schedule.Stage[g.NumNodes()-1]; stamp != 0 {
		t.Fatalf("in-flight solve served by generation %d, want old generation 0", stamp)
	}
	if gen1.calls.Load() != 0 {
		t.Fatalf("new generation called %d times during old race", gen1.calls.Load())
	}

	// A fresh request through the same dynamic handle sees gen 1.
	out, err := Portfolio(context.Background(), []Scheduler{dyn}, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stamp := out.Schedule.Stage[g.NumNodes()-1]; stamp != 1 {
		t.Fatalf("post-replace solve served by generation %d, want 1", stamp)
	}
	if gen0.calls.Load() != 1 || gen1.calls.Load() != 1 {
		t.Fatalf("calls not conserved: gen0=%d gen1=%d", gen0.calls.Load(), gen1.calls.Load())
	}
}

// TestReplaceHammer races a storm of portfolio solves through a dynamic
// handle against a goroutine hammering Replace. Run in CI with
// -race -count=5. Invariants: every solve succeeds with an attributable
// schedule, and the per-generation call counts sum exactly to the
// number of solves — no request is lost or double-dispatched.
func TestReplaceHammer(t *testing.T) {
	r := NewRegistry()
	const generations = 40
	gens := make([]*genSched, generations)
	for i := range gens {
		gens[i] = &genSched{name: "agent", gen: i}
	}
	if err := r.Register(gens[0]); err != nil {
		t.Fatal(err)
	}
	// A static co-racer so the portfolio always has two lanes.
	heur, err := Lookup("heur")
	if err != nil {
		t.Fatal(err)
	}
	g := chain(100, 200, 300, 400, 500, 600)
	dyn := Dynamic(r, "agent")

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	stopSwap := make(chan struct{})
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 1; ; i++ {
			select {
			case <-stopSwap:
				return
			default:
			}
			if err := r.Replace(gens[i%generations]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var solves atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out, err := Portfolio(context.Background(), []Scheduler{dyn, heur}, g, 3)
				if err != nil {
					t.Error(err)
					return
				}
				if len(out.Schedule.Stage) != g.NumNodes() {
					t.Errorf("malformed schedule: %+v", out)
					return
				}
				solves.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stopSwap)
	<-swapDone

	var agentCalls int64
	for _, gs := range gens {
		agentCalls += gs.calls.Load()
	}
	if want := int64(workers * perWorker); solves.Load() != want {
		t.Fatalf("completed %d solves, want %d", solves.Load(), want)
	}
	// Every race dispatches the dynamic lane exactly once to exactly one
	// generation: the sum across generations must equal the solve count.
	if agentCalls != int64(workers*perWorker) {
		t.Fatalf("agent calls %d, want %d: calls lost or duplicated across Replace", agentCalls, workers*perWorker)
	}
}
