package solver

import (
	"context"
	"sync"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// BatchResult is one graph's outcome within a batch run. Results are
// returned in input order regardless of worker interleaving.
type BatchResult struct {
	// Index is the graph's position in the input slice.
	Index int
	// Graph is the scheduled graph.
	Graph *graph.Graph
	// Schedule and Cost are set when Err is nil.
	Schedule sched.Schedule
	Cost     sched.Cost
	// Err reports a failed instance (the rest of the batch still runs).
	Err error
	// Elapsed is the instance's solve wall time.
	Elapsed time.Duration
	// CacheHit reports that the schedule came from a Cached wrapper's
	// fingerprint cache rather than a fresh solve.
	CacheHit bool
	// Truncated reports the backend ran out of budget and Schedule is an
	// incumbent, not a full-effort result.
	Truncated bool
}

// Batch schedules every graph on numStages stages with backend b through a
// bounded pool of jobs workers (clamped to [1, len(graphs)]). The i-th
// result always corresponds to graphs[i] — deterministic ordering for any
// jobs value. Per-graph failures are recorded in their BatchResult; the
// only call-level error is caller-context cancellation, in which case
// unstarted instances carry ctx's error.
func Batch(ctx context.Context, b Scheduler, graphs []*graph.Graph, numStages, jobs int) ([]BatchResult, error) {
	results := make([]BatchResult, len(graphs))
	if len(graphs) == 0 {
		return results, ctx.Err()
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(graphs) {
		jobs = len(graphs)
	}

	hitter, _ := b.(interface {
		ScheduleTracked(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, bool, Info, error)
	})

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r := &results[i]
				r.Index = i
				r.Graph = graphs[i]
				start := time.Now()
				var info Info
				if hitter != nil {
					r.Schedule, r.CacheHit, info, r.Err = hitter.ScheduleTracked(ctx, graphs[i], numStages)
				} else {
					r.Schedule, info, r.Err = ScheduleInfo(ctx, b, graphs[i], numStages)
				}
				r.Truncated = info.Truncated
				r.Elapsed = time.Since(start)
				if r.Err == nil {
					if verr := r.Schedule.Validate(graphs[i]); verr != nil {
						r.Err = verr
					} else {
						r.Cost = r.Schedule.Evaluate(graphs[i])
					}
				}
			}
		}()
	}

feed:
	for i := range graphs {
		select {
		case work <- i:
		case <-ctx.Done():
			// Workers only touch indices already fed, so the tail from i on
			// is exclusively ours: mark it cancelled.
			for j := i; j < len(graphs); j++ {
				results[j] = BatchResult{Index: j, Graph: graphs[j], Err: ctx.Err()}
			}
			break feed
		}
	}
	close(work)
	wg.Wait()
	return results, ctx.Err()
}
