package solver

import (
	"context"
	"sync"
	"time"

	"respect/internal/graph"
	"respect/internal/sched"
)

// BatchResult is one graph's outcome within a batch run. Results are
// returned in input order regardless of worker interleaving.
type BatchResult struct {
	// Index is the graph's position in the input slice.
	Index int
	// Graph is the scheduled graph.
	Graph *graph.Graph
	// Schedule and Cost are set when Err is nil.
	Schedule sched.Schedule
	Cost     sched.Cost
	// Err reports a failed instance (the rest of the batch still runs).
	Err error
	// Elapsed is the instance's solve wall time.
	Elapsed time.Duration
	// CacheHit reports that the schedule came from a Cached wrapper's
	// fingerprint cache rather than a fresh solve.
	CacheHit bool
	// Deduped reports that this graph was a within-batch duplicate (same
	// structural fingerprint as an earlier graph) and its schedule was
	// copied from the representative instead of re-solved. Deduped results
	// also report CacheHit.
	Deduped bool
	// Truncated reports the backend ran out of budget and Schedule is an
	// incumbent, not a full-effort result.
	Truncated bool
}

// Batch schedules every graph on numStages stages with backend b through a
// bounded pool of jobs workers (clamped to [1, len(graphs)]). The i-th
// result always corresponds to graphs[i] — deterministic ordering for any
// jobs value. Per-graph failures are recorded in their BatchResult; the
// only call-level error is caller-context cancellation, in which case
// unstarted instances carry ctx's error.
func Batch(ctx context.Context, b Scheduler, graphs []*graph.Graph, numStages, jobs int) ([]BatchResult, error) {
	results := make([]BatchResult, len(graphs))
	if len(graphs) == 0 {
		return results, ctx.Err()
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(graphs) {
		jobs = len(graphs)
	}

	hitter, _ := b.(interface {
		ScheduleTracked(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, bool, Info, error)
	})

	// Within-batch fingerprint dedup: replay batches routinely repeat
	// graphs, and hashing is ~10⁴× cheaper than a solve. Only safe when
	// the backend is cache-wrapped (hitter != nil) — a Cached backend
	// already promises fingerprint-equal graphs the same schedule, so
	// copying the representative's result cannot change semantics. Bare
	// stochastic backends keep solving every instance.
	dupOf := map[int]int{} // duplicate index -> representative index
	feedList := make([]int, 0, len(graphs))
	if hitter != nil && len(graphs) > 1 {
		rep := make(map[uint64]int, len(graphs))
		for i, g := range graphs {
			fp := g.Fingerprint()
			if r, ok := rep[fp]; ok {
				dupOf[i] = r
			} else {
				rep[fp] = i
				feedList = append(feedList, i)
			}
		}
	} else {
		for i := range graphs {
			feedList = append(feedList, i)
		}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r := &results[i]
				r.Index = i
				r.Graph = graphs[i]
				start := time.Now()
				var info Info
				if hitter != nil {
					r.Schedule, r.CacheHit, info, r.Err = hitter.ScheduleTracked(ctx, graphs[i], numStages)
				} else {
					r.Schedule, info, r.Err = ScheduleInfo(ctx, b, graphs[i], numStages)
				}
				r.Truncated = info.Truncated
				r.Elapsed = time.Since(start)
				if r.Err == nil {
					if verr := r.Schedule.Validate(graphs[i]); verr != nil {
						r.Err = verr
					} else {
						r.Cost = r.Schedule.Evaluate(graphs[i])
					}
				}
			}
		}()
	}

feed:
	for fi, i := range feedList {
		select {
		case work <- i:
		case <-ctx.Done():
			// Workers only touch indices already fed, so the tail from fi on
			// is exclusively ours: mark it cancelled.
			for _, j := range feedList[fi:] {
				results[j] = BatchResult{Index: j, Graph: graphs[j], Err: ctx.Err()}
			}
			break feed
		}
	}
	close(work)
	wg.Wait()

	// Fill duplicates from their representatives. Representatives are
	// always at lower indices than their duplicates, and all are settled
	// once the workers drain. Each fill counts as a cache hit — the
	// dedup is an optimization over querying the cache, not a semantic
	// change, so Stats must not depend on it.
	recorder, _ := b.(interface{ RecordExternalHit() })
	for j, i := range dupOf {
		r := &results[j]
		src := results[i]
		r.Index = j
		r.Graph = graphs[j]
		r.Err = src.Err
		r.Deduped = true
		if src.Err == nil {
			r.Schedule = src.Schedule.Clone()
			r.Cost = src.Cost
			r.CacheHit = true
			r.Truncated = src.Truncated
			if recorder != nil {
				recorder.RecordExternalHit()
			}
		}
	}
	return results, ctx.Err()
}
