package solver

import (
	"context"

	"respect/internal/compiler"
	"respect/internal/exact"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/ilp"
	"respect/internal/sched"
)

// exactMaxStates bounds the built-in exact backends' state budget; the
// wall-clock budget comes from the caller's context.
const exactMaxStates = 200_000_000

// deployed applies the paper's deterministic deployment repair so every
// backend's output is directly comparable and hardware-ready.
func deployed(g *graph.Graph, s sched.Schedule) sched.Schedule {
	return sched.PostProcess(g, s)
}

// heuristic adapts a context-free heuristic to a Scheduler, post-processing
// its schedule; heuristics run in microseconds so only a pre-flight
// cancellation check is needed.
func heuristic(name string, fn func(g *graph.Graph, numStages int) sched.Schedule) Scheduler {
	return NewFunc(name, func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		if err := ctx.Err(); err != nil {
			return sched.Schedule{}, err
		}
		return deployed(g, fn(g, numStages)), nil
	})
}

// exactBackend is the branch-and-bound exact family; it reports Info so
// truncated incumbents are never mistaken for (or cached as) proven
// optima.
type exactBackend struct {
	name string
	opts exact.Options
}

func (b exactBackend) Name() string { return b.name }

func (b exactBackend) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, err := b.ScheduleInfo(ctx, g, numStages)
	return s, err
}

func (b exactBackend) ScheduleInfo(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, Info, error) {
	res := exact.SolveCtx(ctx, g, numStages, b.opts)
	return deployed(g, res.Schedule), Info{Truncated: !res.Optimal, OptimalityProven: res.Optimal}, nil
}

// Exact returns the branch-and-bound exact backend. It is an anytime
// solver: on context expiry it returns its incumbent (never an error), so
// it always contributes a valid schedule to a portfolio.
func Exact() Scheduler {
	return exactBackend{name: "exact", opts: exact.Options{MaxStates: exactMaxStates}}
}

// ExactILPGrade returns the exact backend with the cross-traffic tie-break
// (the paper's joint memory- and communication-aware formulation).
func ExactILPGrade() Scheduler {
	return exactBackend{name: "exact-ilp-grade", opts: exact.Options{MaxStates: exactMaxStates, TieBreakCross: true}}
}

// ilpBackend is the generic MILP backend (the CPLEX stand-in). Unlike the
// combinatorial exact solver it can run out of budget with no incumbent,
// in which case it reports an error.
type ilpBackend struct{}

func (ilpBackend) Name() string { return "ilp" }

func (b ilpBackend) Schedule(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
	s, _, err := b.ScheduleInfo(ctx, g, numStages)
	return s, err
}

func (ilpBackend) ScheduleInfo(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, Info, error) {
	res, err := exact.SolveILPCtx(ctx, g, numStages, ilp.Options{})
	if err != nil {
		return sched.Schedule{}, Info{Truncated: true}, err
	}
	return deployed(g, res.Schedule), Info{Truncated: !res.Optimal, OptimalityProven: res.Optimal}, nil
}

// ILP returns the generic MILP backend.
func ILP() Scheduler { return ilpBackend{} }

// Compiler returns the Edge TPU compiler baseline's partition
// (parameter-balanced greedy walk, hardware-repaired) without paying for
// the quantization/tiling/serialization passes.
func Compiler() Scheduler {
	return heuristic("compiler", heur.GreedyBalanced)
}

// CompilerFull returns the complete compiler-emulation flow (quantization,
// partition, tiling, allocation, serialization) as a backend; its schedule
// matches Compiler but its solve time is the paper's Figure 3 baseline.
func CompilerFull() Scheduler {
	return NewFunc("compiler-full", func(ctx context.Context, g *graph.Graph, numStages int) (sched.Schedule, error) {
		if err := ctx.Err(); err != nil {
			return sched.Schedule{}, err
		}
		res, err := compiler.Compile(g, numStages, compiler.DefaultOptions())
		if err != nil {
			return sched.Schedule{}, err
		}
		return res.Schedule, nil
	})
}

// Heur returns the strongest classic heuristic (exact DP segmentation of
// the deterministic topological order) — the portfolio's fast reliable
// member.
func Heur() Scheduler {
	return heuristic("heur", heur.DPBudget)
}

func init() {
	for _, s := range []Scheduler{
		Exact(),
		ExactILPGrade(),
		ILP(),
		Compiler(),
		CompilerFull(),
		Heur(),
		heuristic("dp", heur.DPBudget), // historical CLI name for Heur
		heuristic("hu", heur.HuLevel),
		heuristic("list", heur.ListSchedule),
		heuristic("force", heur.ForceDirected),
		heuristic("anneal", func(g *graph.Graph, numStages int) sched.Schedule {
			return heur.Annealed(g, numStages, 5000, 1)
		}),
	} {
		if err := Register(s); err != nil {
			panic(err)
		}
	}
}
