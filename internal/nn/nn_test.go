package nn

import (
	"math"
	"math/rand"
	"testing"

	ad "respect/internal/autodiff"
	"respect/internal/tensor"
)

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cell := NewLSTMCell(3, 4, rng)
	xs := [][]float64{{0.1, -0.5, 0.3}, {0.7, 0.2, -0.9}}
	worst, err := ad.GradCheck(cell.Params(), func(tp *ad.Tape) ad.Value {
		s := cell.ZeroState(tp)
		for _, x := range xs {
			s = cell.Step(tp, tp.InputVec(x), s)
		}
		return ad.Sum(ad.Mul(s.H, s.H))
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	att := NewAttention(4, rng)
	e := tensor.Xavier(5, 4, rng)
	q := tensor.Xavier(1, 4, rng)
	mask := []bool{true, true, false, true, true}
	params := append(att.Params(), e, q)
	worst, err := ad.GradCheck(params, func(tp *ad.Tape) ad.Value {
		ev := tp.Param(e)
		w1e := att.Precompute(tp, ev)
		g := att.Glimpse(tp, ev, w1e, tp.Param(q), mask)
		scores := att.Scores(tp, w1e, g)
		p := ad.SoftmaxMasked(scores, mask)
		return ad.LogPick(p, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst rel err %g", worst)
}

func TestLSTMStateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cell := NewLSTMCell(7, 16, rng)
	tp := ad.NewTape()
	s := cell.ZeroState(tp)
	s = cell.Step(tp, tp.InputVec(make([]float64, 7)), s)
	if r, c := s.H.Shape(); r != 1 || c != 16 {
		t.Fatalf("H shape %dx%d", r, c)
	}
	if r, c := s.C.Shape(); r != 1 || c != 16 {
		t.Fatalf("C shape %dx%d", r, c)
	}
}

func TestForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cell := NewLSTMCell(2, 3, rng)
	for j := 0; j < 3; j++ {
		if cell.B.Data[j] != 0 {
			t.Fatal("input gate bias not zero")
		}
		if cell.B.Data[3+j] != 1 {
			t.Fatal("forget gate bias not one")
		}
	}
}

func TestAdamDescendsQuadratic(t *testing.T) {
	// Minimize ||x - target||² with Adam; must converge near target.
	x := tensor.FromSlice(1, 3, []float64{5, -4, 2})
	target := []float64{1, 2, 3}
	opt := NewAdam([]*tensor.Mat{x}, 0.05)
	for i := 0; i < 2000; i++ {
		x.ZeroGrad()
		for j := range x.Data {
			x.Grad[j] = 2 * (x.Data[j] - target[j])
		}
		opt.Step()
	}
	for j := range target {
		if math.Abs(x.Data[j]-target[j]) > 0.05 {
			t.Fatalf("x[%d] = %v, want %v", j, x.Data[j], target[j])
		}
	}
}

func TestAdamClipsGradients(t *testing.T) {
	x := tensor.FromSlice(1, 1, []float64{0})
	opt := NewAdam([]*tensor.Mat{x}, 0.1)
	opt.ClipNorm = 1
	x.Grad[0] = 1e9
	if n := opt.GradNorm(); n != 1e9 {
		t.Fatalf("GradNorm = %v", n)
	}
	opt.Step()
	// With clipping the effective gradient is 1; Adam's first step is
	// lr·sign ≈ 0.1 regardless, but must not be NaN and grads must zero.
	if math.IsNaN(x.Data[0]) || x.Grad[0] != 0 {
		t.Fatalf("step broke state: %v grad %v", x.Data[0], x.Grad[0])
	}
}

func TestAdamStepZeroesGrads(t *testing.T) {
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	opt := NewAdam([]*tensor.Mat{x}, 0.01)
	x.Grad[0], x.Grad[1] = 3, 4
	opt.Step()
	if x.Grad[0] != 0 || x.Grad[1] != 0 {
		t.Fatal("grads survived Step")
	}
	x.Grad[0] = 5
	opt.ZeroGrads()
	if x.Grad[0] != 0 {
		t.Fatal("ZeroGrads failed")
	}
}

func TestCheckFinite(t *testing.T) {
	ok := tensor.FromSlice(1, 2, []float64{1, 2})
	if err := CheckFinite([]*tensor.Mat{ok}); err != nil {
		t.Fatal(err)
	}
	bad := tensor.FromSlice(1, 1, []float64{math.NaN()})
	if err := CheckFinite([]*tensor.Mat{ok, bad}); err == nil {
		t.Fatal("NaN undetected")
	}
}

func TestLSTMLongSequenceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cell := NewLSTMCell(4, 8, rng)
	tp := ad.NewTape()
	s := cell.ZeroState(tp)
	x := make([]float64, 4)
	for i := 0; i < 100; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		s = cell.Step(tp, tp.InputVec(x), s)
	}
	for _, v := range s.H.Data() {
		if math.IsNaN(v) || math.Abs(v) > 1 {
			t.Fatalf("hidden state out of range: %v", v)
		}
	}
}
