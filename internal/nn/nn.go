// Package nn provides the neural building blocks of the LSTM-PtrNet agent:
// LSTM cells, the glimpse and pointer attention heads (Vinyals et al.,
// Bello et al.), the Adam optimizer with global-norm gradient clipping,
// and weight (de)serialization.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	ad "respect/internal/autodiff"
	"respect/internal/tensor"
)

// LSTMCell is a single-layer LSTM with input dimension In and hidden
// dimension Hidden. Gate order in the fused weight matrices is
// [input, forget, cell, output].
type LSTMCell struct {
	In, Hidden int
	Wx         *tensor.Mat // In × 4·Hidden
	Wh         *tensor.Mat // Hidden × 4·Hidden
	B          *tensor.Mat // 1 × 4·Hidden
}

// NewLSTMCell initializes a cell with Xavier weights and a forget-gate
// bias of 1 (standard recipe for gradient flow early in training).
func NewLSTMCell(in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		In: in, Hidden: hidden,
		Wx: tensor.Xavier(in, 4*hidden, rng),
		Wh: tensor.Xavier(hidden, 4*hidden, rng),
		B:  tensor.New(1, 4*hidden),
	}
	for j := hidden; j < 2*hidden; j++ {
		c.B.Data[j] = 1
	}
	return c
}

// Params returns the cell's trainable matrices.
func (c *LSTMCell) Params() []*tensor.Mat { return []*tensor.Mat{c.Wx, c.Wh, c.B} }

// State is an LSTM hidden/cell state pair on a tape.
type State struct {
	H, C ad.Value
}

// ZeroState returns the all-zero initial state on tape t.
func (c *LSTMCell) ZeroState(t *ad.Tape) State {
	return State{
		H: t.Input(tensor.New(1, c.Hidden)),
		C: t.Input(tensor.New(1, c.Hidden)),
	}
}

// Step advances the cell by one timestep: (x, s) → s'.
func (c *LSTMCell) Step(t *ad.Tape, x ad.Value, s State) State {
	z := ad.Add(ad.Add(ad.MatMul(x, t.Param(c.Wx)), ad.MatMul(s.H, t.Param(c.Wh))), t.Param(c.B))
	h := c.Hidden
	i := ad.Sigmoid(ad.Slice(z, 0, h))
	f := ad.Sigmoid(ad.Slice(z, h, 2*h))
	g := ad.Tanh(ad.Slice(z, 2*h, 3*h))
	o := ad.Sigmoid(ad.Slice(z, 3*h, 4*h))
	cNew := ad.Add(ad.Mul(f, s.C), ad.Mul(i, g))
	hNew := ad.Mul(o, ad.Tanh(cNew))
	return State{H: hNew, C: cNew}
}

// Attention is the additive attention head used twice in the decoder:
// once as the glimpse (returning the attention-weighted context) and once
// as the pointer (returning the selection distribution):
//
//	u_i = vᵀ tanh(W1·e_i + W2·q)    (Algorithm 1's θ, ω, β)
type Attention struct {
	Dim int
	W1  *tensor.Mat // Dim × Dim, over encoder contexts
	W2  *tensor.Mat // Dim × Dim, over the query
	V   *tensor.Mat // Dim × 1
}

// NewAttention initializes an attention head of width dim.
func NewAttention(dim int, rng *rand.Rand) *Attention {
	return &Attention{
		Dim: dim,
		W1:  tensor.Xavier(dim, dim, rng),
		W2:  tensor.Xavier(dim, dim, rng),
		V:   tensor.Xavier(dim, 1, rng),
	}
}

// Params returns the head's trainable matrices.
func (a *Attention) Params() []*tensor.Mat { return []*tensor.Mat{a.W1, a.W2, a.V} }

// Precompute caches W1·E, which is constant across decoding steps.
func (a *Attention) Precompute(t *ad.Tape, contexts ad.Value) ad.Value {
	return ad.MatMul(contexts, t.Param(a.W1))
}

// Scores returns the unnormalized attention logits (n×1) for query q given
// the precomputed W1·E term.
func (a *Attention) Scores(t *ad.Tape, w1e ad.Value, q ad.Value) ad.Value {
	s := ad.Tanh(ad.AddRowBroadcast(w1e, ad.MatMul(q, t.Param(a.W2))))
	return ad.MatMul(s, t.Param(a.V))
}

// Glimpse returns the attention-weighted context Σ aᵢeᵢ for query q.
func (a *Attention) Glimpse(t *ad.Tape, contexts, w1e ad.Value, q ad.Value, mask []bool) ad.Value {
	p := ad.SoftmaxMasked(a.Scores(t, w1e, q), mask)
	return ad.MatMul(ad.Transpose(p), contexts)
}

// Adam is the Adam optimizer (Kingma & Ba) with optional global-norm
// gradient clipping, as used for the paper's training (lr 1e-4).
type Adam struct {
	LR         float64
	Beta1      float64
	Beta2      float64
	Eps        float64
	ClipNorm   float64 // 0 disables clipping
	step       int
	m, v       [][]float64
	registered []*tensor.Mat
}

// NewAdam returns an optimizer over params with the given learning rate.
func NewAdam(params []*tensor.Mat, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 2, registered: params}
	for _, p := range params {
		p.EnsureGrad()
		a.m = append(a.m, make([]float64, len(p.Data)))
		a.v = append(a.v, make([]float64, len(p.Data)))
	}
	return a
}

// GradNorm returns the current global gradient norm.
func (a *Adam) GradNorm() float64 {
	var s float64
	for _, p := range a.registered {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Step applies one update from the accumulated gradients and zeroes them.
func (a *Adam) Step() {
	a.step++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / n
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for pi, p := range a.registered {
		m, v := a.m[pi], a.v[pi]
		for j := range p.Data {
			g := p.Grad[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.Data[j] -= a.LR * (m[j] / b1c) / (math.Sqrt(v[j]/b2c) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrads clears all registered gradients without stepping.
func (a *Adam) ZeroGrads() {
	for _, p := range a.registered {
		p.ZeroGrad()
	}
}

// CheckFinite returns an error if any parameter has become NaN/Inf —
// a training-divergence guard.
func CheckFinite(params []*tensor.Mat) error {
	for i, p := range params {
		for j, v := range p.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: parameter %d entry %d is %v", i, j, v)
			}
		}
	}
	return nil
}
