// Package exact implements the exact optimal pipeline scheduler that
// RESPECT imitates — the role CPLEX-solved ILP plays in the paper.
//
// A monotone n-stage schedule of a DAG is exactly a chain of n order
// ideals (downward-closed node sets): ∅ ⊆ I₁ ⊆ … ⊆ Iₙ = V, with stage k
// executing Iₖ₊₁ \ Iₖ. The solver branches over that chain directly:
// stages are grown node by node through include/exclude decisions on ready
// nodes, with
//
//   - an incumbent seeded by the DP segmentation heuristic,
//   - a bound max(peak-so-far, segment, ⌈remaining/stagesLeft⌉) pruned
//     strictly against the incumbent, and
//   - memoization on (ideal, stage) states.
//
// The objective is the paper's Figure 5 metric: peak per-stage parameter
// memory. When the search completes within its budget (Result.Optimal),
// the returned peak is provably minimal. Cross-stage traffic is reported
// and used to order equal-peak choices inside the seed, but is not
// exhaustively optimized.
package exact

import (
	"context"
	"time"

	"respect/internal/bitset"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/sched"
)

// Options configures the solver's effort budget.
type Options struct {
	// Timeout bounds wall-clock solve time; zero means no limit. Under
	// SolveCtx the effective deadline is the earlier of start+Timeout and
	// the context deadline.
	Timeout time.Duration
	// MaxStates bounds the number of search states; zero means no limit.
	MaxStates int64
	// TieBreakCross additionally minimizes cross-stage activation traffic
	// among all peak-optimal schedules — the paper's joint memory- and
	// communication-aware exact formulation [21]. The equal-peak plateau
	// makes this search far more expensive (it is the configuration whose
	// solve time stands in for CPLEX in the Figure 3 comparison); leave it
	// off when only the optimal peak is needed (Figure 5 ground truth,
	// RL training labels).
	TieBreakCross bool
	// ChildrenRule restricts the search to schedules satisfying the Edge
	// TPU hardware constraint that all children of a node share a stage —
	// the deployable-optimal baseline. Without it the optimum is a lower
	// bound that post-processed schedules may be unable to reach.
	ChildrenRule bool
}

// DefaultOptions gives the budget used by the benchmark harness: large
// enough to close all twelve evaluation models at 4-6 stages.
func DefaultOptions() Options {
	return Options{Timeout: 120 * time.Second, MaxStates: 100_000_000}
}

// Result is the outcome of an exact solve.
type Result struct {
	// Schedule is the best schedule found.
	Schedule sched.Schedule
	// Cost is Schedule's objective value.
	Cost sched.Cost
	// Optimal reports whether the search space was exhausted, proving
	// Cost.PeakParamBytes minimal.
	Optimal bool
	// States counts explored search states (for scalability reporting).
	States int64
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

type solver struct {
	g         *graph.Graph
	numStages int
	opts      Options
	ctx       context.Context

	param []int64 // per-node parameter bytes
	total int64

	ideal    *bitset.Set   // nodes placed in closed stages or current segment
	stage    []int         // working stage assignment
	indeg    []int         // remaining unplaced predecessors
	ready    []int         // ready nodes (unplaced, all preds placed)
	excludes []*bitset.Set // per-stage current-segment exclusions
	placed   []int         // include-order stack of placed nodes
	out      []int64       // per-node activation bytes
	tieBreak bool
	children bool // enforce the children-same-stage hardware rule

	best      sched.Schedule
	bestPeak  int64
	bestCost  sched.Cost
	memo      map[string]int64
	pareto    map[string][][2]int64 // tie-break mode: (peak, cross) fronts
	states    int64
	start     time.Time
	deadline  time.Time
	truncated bool
}

// Solve finds a minimum-peak-memory monotone schedule of g on numStages
// stages.
func Solve(g *graph.Graph, numStages int, opts Options) Result {
	return SolveCtx(context.Background(), g, numStages, opts)
}

// SolveCtx is Solve under a context. Cancellation or an expired context
// deadline truncates the search (Result.Optimal false) and the best
// incumbent found so far — at minimum the DP seed — is returned, so a
// cancelled solve still yields a valid schedule.
func SolveCtx(ctx context.Context, g *graph.Graph, numStages int, opts Options) Result {
	if numStages < 1 {
		numStages = 1
	}
	n := g.NumNodes()
	s := &solver{
		g: g, numStages: numStages, opts: opts, ctx: ctx,
		param:    make([]int64, n),
		out:      make([]int64, n),
		ideal:    bitset.New(n),
		stage:    make([]int, n),
		indeg:    make([]int, n),
		memo:     make(map[string]int64),
		pareto:   make(map[string][][2]int64),
		tieBreak: opts.TieBreakCross,
		children: opts.ChildrenRule,
		start:    time.Now(),
	}
	for k := 0; k < numStages; k++ {
		s.excludes = append(s.excludes, bitset.New(n))
	}
	if opts.Timeout > 0 {
		s.deadline = s.start.Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (s.deadline.IsZero() || d.Before(s.deadline)) {
		s.deadline = d
	}
	for v := 0; v < n; v++ {
		s.param[v] = g.Node(v).ParamBytes
		s.out[v] = g.Node(v).OutBytes
		s.total += s.param[v]
		s.indeg[v] = len(g.Pred(v))
		if s.indeg[v] == 0 {
			s.ready = append(s.ready, v)
		}
	}

	// Incumbent: exact DP over the deterministic topological order
	// (hardware-repaired when the children rule is active). For
	// single-stage problems this is already optimal.
	seed := heur.DPBudget(g, numStages)
	if s.children {
		seed = sched.PostProcess(g, seed)
	}
	s.best = seed.Clone()
	s.bestCost = seed.Evaluate(g)
	s.bestPeak = s.bestCost.PeakParamBytes
	if numStages == 1 || n == 0 {
		return Result{Schedule: s.best, Cost: s.bestCost, Optimal: true, Elapsed: time.Since(s.start)}
	}
	if ctx.Err() != nil {
		// Cancelled before the search started: hand back the DP seed as a
		// truncated incumbent without exploring anything.
		s.truncated = true
	} else {
		s.extend(0, 0, 0, 0, 0, 0)
	}

	return Result{
		Schedule: s.best,
		Cost:     s.bestCost,
		Optimal:  !s.truncated,
		States:   s.states,
		Elapsed:  time.Since(s.start),
	}
}

func (s *solver) budgetExceeded() bool {
	if s.truncated {
		return true
	}
	if s.opts.MaxStates > 0 && s.states >= s.opts.MaxStates {
		s.truncated = true
		return true
	}
	if s.states&0xfff == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.truncated = true
			return true
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			s.truncated = true
			return true
		}
	}
	return false
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// extend grows stage k (weighing segMem bytes so far, with placed bytes
// placed overall across all closed stages plus this segment) by
// include/exclude decisions over the ready list; peak is the largest
// closed-segment weight so far. Invariant: k <= numStages-2 — the final
// stage is materialized in closeStage.
func (s *solver) extend(k int, peak, segMem, placed int64, segStart int, cross int64) {
	s.states++
	if s.budgetExceeded() {
		return
	}

	// Option 1: close stage k here and continue with stage k+1.
	s.closeStage(k, peak, segMem, placed, segStart, cross)

	// Option 2: grow the segment with one more ready node. The exclusion
	// set realizes the include/exclude dichotomy: once a node has headed
	// an include branch at this level it is barred from sibling branches,
	// so every ideal is generated from a canonical decision sequence.
	excl := s.excludes[k]
	var cleared []int
	defer func() {
		for _, v := range cleared {
			excl.Clear(v)
		}
	}()
	for i := 0; i < len(s.ready); i++ {
		v := s.ready[i]
		if excl.Has(v) {
			continue
		}
		if s.children && !s.siblingsCompatible(v, k) {
			// A sibling of v is already pinned to an earlier stage; v can
			// never join stage k (nor any other), so bar it from this
			// segment.
			excl.Set(v)
			cleared = append(cleared, v)
			continue
		}
		segNew := segMem + s.param[v]
		prunedByPeak := segNew > s.bestPeak
		if !s.tieBreak && segNew == s.bestPeak {
			prunedByPeak = true
		}
		if prunedByPeak {
			// Including v cannot strictly improve the incumbent; bar it
			// from this segment but keep it available for later stages.
			excl.Set(v)
			cleared = append(cleared, v)
			continue
		}

		// Include v into stage k. The removal keeps list order so the
		// post-recursion undo can pop the newly-ready nodes from the tail
		// and reinsert v at position i, restoring the list exactly.
		s.ideal.Set(v)
		s.stage[v] = k
		s.placed = append(s.placed, v)
		s.ready = append(s.ready[:i], s.ready[i+1:]...)
		for _, w := range s.g.Succ(v) {
			s.indeg[w]--
			if s.indeg[w] == 0 {
				s.ready = append(s.ready, w)
			}
		}

		s.extend(k, peak, segNew, placed+s.param[v], segStart, cross)

		// Undo in reverse.
		succ := s.g.Succ(v)
		for j := len(succ) - 1; j >= 0; j-- {
			w := succ[j]
			if s.indeg[w] == 0 {
				s.ready = s.ready[:len(s.ready)-1]
			}
			s.indeg[w]++
		}
		s.ready = append(s.ready, 0)
		copy(s.ready[i+1:], s.ready[i:len(s.ready)-1])
		s.ready[i] = v
		s.placed = s.placed[:len(s.placed)-1]
		s.ideal.Clear(v)

		excl.Set(v)
		cleared = append(cleared, v)
		if s.budgetExceeded() {
			return
		}
	}
}

// closeStage finalizes stage k at the current ideal and recurses into the
// next stage, or materializes the final-stage leaf.
func (s *solver) closeStage(k int, peak, segMem, placed int64, segStart int, cross int64) {
	if s.children && !s.segmentClosable(segStart, k) {
		return
	}
	newPeak := peak
	if segMem > newPeak {
		newPeak = segMem
	}
	remaining := s.total - placed
	stagesLeft := int64(s.numStages - k - 1)

	newCross := cross
	if s.tieBreak {
		// Producers in this segment whose consumers lie beyond the ideal
		// ship their output tensor over USB (counted once per producer).
		for _, v := range s.placed[segStart:] {
			for _, w := range s.g.Succ(v) {
				if !s.ideal.Has(w) {
					newCross += s.out[v]
					break
				}
			}
		}
	}

	// Lower bound with the remaining mass spread perfectly.
	lb := newPeak
	if remaining > 0 {
		if spread := ceilDiv(remaining, stagesLeft); spread > lb {
			lb = spread
		}
	}
	if s.tieBreak {
		if lb > s.bestPeak || (lb == s.bestPeak && newCross >= s.bestCost.CrossBytes) {
			return
		}
	} else if lb >= s.bestPeak {
		return
	}

	if stagesLeft == 1 {
		// Final stage takes the whole remainder; this is a leaf. The last
		// stage adds no crossings: successors of unplaced nodes are
		// unplaced (ideals are downward closed), hence co-located.
		finalPeak := newPeak
		if remaining > finalPeak {
			finalPeak = remaining
		}
		if s.tieBreak {
			if finalPeak > s.bestPeak || (finalPeak == s.bestPeak && newCross >= s.bestCost.CrossBytes) {
				return
			}
		} else if finalPeak >= s.bestPeak {
			return
		}
		leaf := sched.NewSchedule(len(s.stage), s.numStages)
		for v := range s.stage {
			if s.ideal.Has(v) {
				leaf.Stage[v] = s.stage[v]
			} else {
				leaf.Stage[v] = s.numStages - 1
			}
		}
		cost := leaf.Evaluate(s.g)
		if !s.tieBreak || cost.Less(s.bestCost) {
			s.bestCost = cost
			s.bestPeak = cost.PeakParamBytes
			s.best = leaf
		}
		return
	}

	key := s.ideal.Key() + string(rune('0'+k))
	if s.tieBreak {
		// Pareto memo: a previous visit dominating on both peak and cross
		// has already explored every completion at least as well.
		front := s.pareto[key]
		for _, p := range front {
			if p[0] <= newPeak && p[1] <= newCross {
				return
			}
		}
		kept := front[:0]
		for _, p := range front {
			if !(newPeak <= p[0] && newCross <= p[1]) {
				kept = append(kept, p)
			}
		}
		s.pareto[key] = append(kept, [2]int64{newPeak, newCross})
	} else {
		// Memo cut: if this (ideal, stage) was reached before with a peak
		// no worse, the earlier visit explored a superset of completions.
		if prev, ok := s.memo[key]; ok && prev <= newPeak {
			return
		}
		s.memo[key] = newPeak
	}

	s.excludes[k+1].Reset()
	s.extend(k+1, newPeak, 0, placed, len(s.placed), newCross)
}

// siblingsCompatible reports whether placing v into stage k keeps every
// already-placed sibling of v (child of a shared parent) in the same
// stage k.
func (s *solver) siblingsCompatible(v, k int) bool {
	for _, p := range s.g.Pred(v) {
		for _, w := range s.g.Succ(p) {
			if w != v && s.ideal.Has(w) && s.stage[w] != k {
				return false
			}
		}
	}
	return true
}

// segmentClosable reports whether closing the current segment leaves no
// sibling group split between this stage and unplaced nodes. Nodes placed
// in this segment whose siblings are still unplaced would force those
// siblings into strictly later stages — a children-rule violation.
func (s *solver) segmentClosable(segStart, k int) bool {
	for _, v := range s.placed[segStart:] {
		for _, p := range s.g.Pred(v) {
			for _, w := range s.g.Succ(p) {
				if !s.ideal.Has(w) {
					return false
				}
			}
		}
	}
	return true
}

// BruteForce exhaustively enumerates all monotone stage assignments; for
// test-scale graphs only (cost O(numStages^|V|) shrunk by monotonicity).
func BruteForce(g *graph.Graph, numStages int) Result {
	start := time.Now()
	n := g.NumNodes()
	topo := g.Topo()
	stage := make([]int, n)
	best := sched.NewSchedule(n, numStages)
	bestCost := sched.Cost{PeakParamBytes: 1 << 62, CrossBytes: 1 << 62}
	var states int64

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			states++
			s := sched.Schedule{NumStages: numStages, Stage: stage}
			cost := s.Evaluate(g)
			if cost.Less(bestCost) {
				bestCost = cost
				copy(best.Stage, stage)
			}
			return
		}
		v := topo[i]
		lo := 0
		for _, p := range g.Pred(v) {
			if stage[p] > lo {
				lo = stage[p]
			}
		}
		for st := lo; st < numStages; st++ {
			stage[v] = st
			rec(i + 1)
		}
	}
	rec(0)
	return Result{Schedule: best, Cost: bestCost, Optimal: true, States: states, Elapsed: time.Since(start)}
}
