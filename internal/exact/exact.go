// Package exact implements the exact optimal pipeline scheduler that
// RESPECT imitates — the role CPLEX-solved ILP plays in the paper.
//
// A monotone n-stage schedule of a DAG is exactly a chain of n order
// ideals (downward-closed node sets): ∅ ⊆ I₁ ⊆ … ⊆ Iₙ = V, with stage k
// executing Iₖ₊₁ \ Iₖ. The solver branches over that chain directly:
// stages are grown node by node through include/exclude decisions on ready
// nodes, with
//
//   - an incumbent seeded by the DP segmentation heuristic,
//   - a bound max(peak-so-far, segment, ⌈remaining/stagesLeft⌉) pruned
//     strictly against the incumbent, and
//   - memoization on (ideal, stage) states.
//
// The objective is the paper's Figure 5 metric: peak per-stage parameter
// memory. When the search completes within its budget (Result.Optimal),
// the returned peak is provably minimal. Cross-stage traffic is reported
// and used to order equal-peak choices inside the seed, but is not
// exhaustively optimized.
package exact

import (
	"context"
	"sync"
	"time"

	"respect/internal/bitset"
	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/sched"
)

// Options configures the solver's effort budget.
type Options struct {
	// Timeout bounds wall-clock solve time; zero means no limit. Under
	// SolveCtx the effective deadline is the earlier of start+Timeout and
	// the context deadline.
	Timeout time.Duration
	// MaxStates bounds the number of search states; zero means no limit.
	MaxStates int64
	// TieBreakCross additionally minimizes cross-stage activation traffic
	// among all peak-optimal schedules — the paper's joint memory- and
	// communication-aware exact formulation [21]. The equal-peak plateau
	// makes this search far more expensive (it is the configuration whose
	// solve time stands in for CPLEX in the Figure 3 comparison); leave it
	// off when only the optimal peak is needed (Figure 5 ground truth,
	// RL training labels).
	TieBreakCross bool
	// ChildrenRule restricts the search to schedules satisfying the Edge
	// TPU hardware constraint that all children of a node share a stage —
	// the deployable-optimal baseline. Without it the optimum is a lower
	// bound that post-processed schedules may be unable to reach.
	ChildrenRule bool
}

// DefaultOptions gives the budget used by the benchmark harness: large
// enough to close all twelve evaluation models at 4-6 stages.
func DefaultOptions() Options {
	return Options{Timeout: 120 * time.Second, MaxStates: 100_000_000}
}

// Result is the outcome of an exact solve.
type Result struct {
	// Schedule is the best schedule found.
	Schedule sched.Schedule
	// Cost is Schedule's objective value.
	Cost sched.Cost
	// Optimal reports whether the search space was exhausted, proving
	// Cost.PeakParamBytes minimal.
	Optimal bool
	// States counts explored search states (for scalability reporting).
	States int64
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// scratch is the solver's pooled arena: every per-solve buffer, bit set
// and memo table lives here and is recycled across solves instead of
// re-allocated per SolveCtx. All bit sets inside one scratch share a
// single capacity (capN) so word-wise operations between them are always
// aligned; a solve of a larger graph grows the arena, a smaller one
// reslices it.
type scratch struct {
	capN int // bit-set capacity every set in this arena was built with

	param  []int64
	out    []int64
	stage  []int
	indeg  []int
	ready  []int
	placed []int
	undo   []int // shared exclusion-undo stack across recursion levels
	ideal  *bitset.Set
	excl   []*bitset.Set // per-stage current-segment exclusions
	closed []*bitset.Set // per-stage snapshots of ideal (children rule)
	sib    []*bitset.Set // per-node sibling-group masks (children rule)
	memo   map[string]int64
	pareto map[string][][2]int64
	keyBuf []byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// memoRetainLimit bounds how large a memo table the pool keeps: clearing
// a map retains its buckets, which is exactly what repeated solves of
// similar graphs want, but an occasional huge search must not pin its
// peak footprint forever.
const memoRetainLimit = 1 << 18

// acquireScratch returns a reset arena sized for (n, numStages); the
// children flag additionally prepares per-node sibling masks.
func acquireScratch(n, numStages int, children bool) *scratch {
	sc := scratchPool.Get().(*scratch)
	if sc.capN < n || sc.ideal == nil {
		sc.capN = n
		sc.ideal = bitset.New(n)
		sc.excl = sc.excl[:0]
		sc.closed = sc.closed[:0]
		sc.sib = sc.sib[:0]
	}
	growInt64(&sc.param, n)
	growInt64(&sc.out, n)
	growInt(&sc.stage, n)
	growInt(&sc.indeg, n)
	sc.ready = sc.ready[:0]
	sc.placed = sc.placed[:0]
	sc.undo = sc.undo[:0]
	sc.ideal.Reset()
	for len(sc.excl) < numStages {
		sc.excl = append(sc.excl, bitset.New(sc.capN))
	}
	for k := 0; k < numStages; k++ {
		sc.excl[k].Reset()
	}
	if children {
		for len(sc.closed) < numStages {
			sc.closed = append(sc.closed, bitset.New(sc.capN))
		}
		// closed[k>0] is overwritten by CopyFrom before use; only the
		// stage-0 snapshot (always the empty ideal) needs a reset here.
		sc.closed[0].Reset()
		for len(sc.sib) < n {
			sc.sib = append(sc.sib, bitset.New(sc.capN))
		}
	}
	if sc.memo == nil {
		sc.memo = make(map[string]int64)
	}
	if sc.pareto == nil {
		sc.pareto = make(map[string][][2]int64)
	}
	return sc
}

// reset clears the memo tables so the next solve can never observe
// this solve's state. Clearing a map retains its buckets, which is what
// repeated solves of similar graphs want, but an occasional huge search
// must not pin its peak footprint forever — past memoRetainLimit the
// tables are dropped instead.
func (sc *scratch) reset() {
	if len(sc.memo) > memoRetainLimit {
		sc.memo = make(map[string]int64)
	} else {
		clear(sc.memo)
	}
	if len(sc.pareto) > memoRetainLimit {
		sc.pareto = make(map[string][][2]int64)
	} else {
		clear(sc.pareto)
	}
}

// releaseScratch returns the arena to the pool with its tables cleared.
func releaseScratch(sc *scratch) {
	sc.reset()
	scratchPool.Put(sc)
}

func growInt64(buf *[]int64, n int) {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	*buf = (*buf)[:n]
}

func growInt(buf *[]int, n int) {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
}

type solver struct {
	g         *graph.Graph
	numStages int
	opts      Options
	ctx       context.Context

	sc    *scratch
	total int64

	tieBreak bool
	children bool // enforce the children-same-stage hardware rule

	best      sched.Schedule
	bestPeak  int64
	bestCost  sched.Cost
	states    int64
	start     time.Time
	deadline  time.Time
	truncated bool
}

// Solve finds a minimum-peak-memory monotone schedule of g on numStages
// stages.
func Solve(g *graph.Graph, numStages int, opts Options) Result {
	return SolveCtx(context.Background(), g, numStages, opts)
}

// SolveCtx is Solve under a context. Cancellation or an expired context
// deadline truncates the search (Result.Optimal false) and the best
// incumbent found so far — at minimum the DP seed — is returned, so a
// cancelled solve still yields a valid schedule.
func SolveCtx(ctx context.Context, g *graph.Graph, numStages int, opts Options) Result {
	if numStages < 1 {
		numStages = 1
	}
	n := g.NumNodes()
	sc := acquireScratch(n, numStages, opts.ChildrenRule)
	defer releaseScratch(sc)
	s := &solver{
		g: g, numStages: numStages, opts: opts, ctx: ctx,
		sc:       sc,
		tieBreak: opts.TieBreakCross,
		children: opts.ChildrenRule,
		start:    time.Now(),
	}
	if opts.Timeout > 0 {
		s.deadline = s.start.Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (s.deadline.IsZero() || d.Before(s.deadline)) {
		s.deadline = d
	}
	for v := 0; v < n; v++ {
		sc.param[v] = g.Node(v).ParamBytes
		sc.out[v] = g.Node(v).OutBytes
		s.total += sc.param[v]
		sc.indeg[v] = len(g.Pred(v))
		if sc.indeg[v] == 0 {
			sc.ready = append(sc.ready, v)
		}
	}
	if s.children {
		// Sibling-group masks: sib[v] = ∪_{p∈Pred(v)} Succ(p). The mask may
		// contain v itself; the word-wise checks below never test v's own
		// bit in a context where it matters (v is unplaced during
		// siblingsCompatible, and v ∈ ideal during segmentClosable).
		for v := 0; v < n; v++ {
			sc.sib[v].Reset()
			for _, p := range g.Pred(v) {
				for _, w := range g.Succ(p) {
					sc.sib[v].Set(w)
				}
			}
		}
	}

	// Incumbent: exact DP over the deterministic topological order
	// (hardware-repaired when the children rule is active). For
	// single-stage problems this is already optimal.
	seed := heur.DPBudget(g, numStages)
	if s.children {
		seed = sched.PostProcess(g, seed)
	}
	s.best = seed.Clone()
	s.bestCost = seed.Evaluate(g)
	s.bestPeak = s.bestCost.PeakParamBytes
	if numStages == 1 || n == 0 {
		return Result{Schedule: s.best, Cost: s.bestCost, Optimal: true, Elapsed: time.Since(s.start)}
	}
	if ctx.Err() != nil {
		// Cancelled before the search started: hand back the DP seed as a
		// truncated incumbent without exploring anything.
		s.truncated = true
	} else {
		s.extend(0, 0, 0, 0, 0, 0)
	}

	return Result{
		Schedule: s.best,
		Cost:     s.bestCost,
		Optimal:  !s.truncated,
		States:   s.states,
		Elapsed:  time.Since(s.start),
	}
}

func (s *solver) budgetExceeded() bool {
	if s.truncated {
		return true
	}
	if s.opts.MaxStates > 0 && s.states >= s.opts.MaxStates {
		s.truncated = true
		return true
	}
	if s.states&0xfff == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.truncated = true
			return true
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			s.truncated = true
			return true
		}
	}
	return false
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// extend grows stage k (weighing segMem bytes so far, with placed bytes
// placed overall across all closed stages plus this segment) by
// include/exclude decisions over the ready list; peak is the largest
// closed-segment weight so far. Invariant: k <= numStages-2 — the final
// stage is materialized in closeStage.
func (s *solver) extend(k int, peak, segMem, placed int64, segStart int, cross int64) {
	s.states++
	if s.budgetExceeded() {
		return
	}

	// Option 1: close stage k here and continue with stage k+1.
	s.closeStage(k, peak, segMem, placed, segStart, cross)

	// Option 2: grow the segment with one more ready node. The exclusion
	// set realizes the include/exclude dichotomy: once a node has headed
	// an include branch at this level it is barred from sibling branches,
	// so every ideal is generated from a canonical decision sequence.
	// Exclusion bits set at this level are recorded on the shared undo
	// stack above undoMark; recursive calls only unwind their own marks.
	sc := s.sc
	excl := sc.excl[k]
	undoMark := len(sc.undo)
	defer func() {
		for _, v := range sc.undo[undoMark:] {
			excl.Clear(v)
		}
		sc.undo = sc.undo[:undoMark]
	}()
	for i := 0; i < len(sc.ready); i++ {
		v := sc.ready[i]
		if excl.Has(v) {
			continue
		}
		if s.children && sc.sib[v].Intersects(sc.closed[k]) {
			// A sibling of v is already pinned to an earlier stage; v can
			// never join stage k (nor any other), so bar it from this
			// segment.
			excl.Set(v)
			sc.undo = append(sc.undo, v)
			continue
		}
		segNew := segMem + sc.param[v]
		prunedByPeak := segNew > s.bestPeak
		if !s.tieBreak && segNew == s.bestPeak {
			prunedByPeak = true
		}
		if prunedByPeak {
			// Including v cannot strictly improve the incumbent; bar it
			// from this segment but keep it available for later stages.
			excl.Set(v)
			sc.undo = append(sc.undo, v)
			continue
		}

		// Include v into stage k. The removal keeps list order so the
		// post-recursion undo can pop the newly-ready nodes from the tail
		// and reinsert v at position i, restoring the list exactly.
		sc.ideal.Set(v)
		sc.stage[v] = k
		sc.placed = append(sc.placed, v)
		sc.ready = append(sc.ready[:i], sc.ready[i+1:]...)
		for _, w := range s.g.Succ(v) {
			sc.indeg[w]--
			if sc.indeg[w] == 0 {
				sc.ready = append(sc.ready, w)
			}
		}

		s.extend(k, peak, segNew, placed+sc.param[v], segStart, cross)

		// Undo in reverse.
		succ := s.g.Succ(v)
		for j := len(succ) - 1; j >= 0; j-- {
			w := succ[j]
			if sc.indeg[w] == 0 {
				sc.ready = sc.ready[:len(sc.ready)-1]
			}
			sc.indeg[w]++
		}
		sc.ready = append(sc.ready, 0)
		copy(sc.ready[i+1:], sc.ready[i:len(sc.ready)-1])
		sc.ready[i] = v
		sc.placed = sc.placed[:len(sc.placed)-1]
		sc.ideal.Clear(v)

		excl.Set(v)
		sc.undo = append(sc.undo, v)
		if s.budgetExceeded() {
			return
		}
	}
}

// closeStage finalizes stage k at the current ideal and recurses into the
// next stage, or materializes the final-stage leaf.
func (s *solver) closeStage(k int, peak, segMem, placed int64, segStart int, cross int64) {
	sc := s.sc
	if s.children {
		// Closing the segment must leave no sibling group split between this
		// stage and unplaced nodes: every placed node's whole sibling group
		// must already be inside the ideal.
		for _, v := range sc.placed[segStart:] {
			if !sc.sib[v].SubsetOf(sc.ideal) {
				return
			}
		}
	}
	newPeak := peak
	if segMem > newPeak {
		newPeak = segMem
	}
	remaining := s.total - placed
	stagesLeft := int64(s.numStages - k - 1)

	newCross := cross
	if s.tieBreak {
		// Producers in this segment whose consumers lie beyond the ideal
		// ship their output tensor over USB (counted once per producer).
		for _, v := range sc.placed[segStart:] {
			for _, w := range s.g.Succ(v) {
				if !sc.ideal.Has(w) {
					newCross += sc.out[v]
					break
				}
			}
		}
	}

	// Lower bound with the remaining mass spread perfectly.
	lb := newPeak
	if remaining > 0 {
		if spread := ceilDiv(remaining, stagesLeft); spread > lb {
			lb = spread
		}
	}
	if s.tieBreak {
		if lb > s.bestPeak || (lb == s.bestPeak && newCross >= s.bestCost.CrossBytes) {
			return
		}
	} else if lb >= s.bestPeak {
		return
	}

	if stagesLeft == 1 {
		// Final stage takes the whole remainder; this is a leaf. The last
		// stage adds no crossings: successors of unplaced nodes are
		// unplaced (ideals are downward closed), hence co-located.
		finalPeak := newPeak
		if remaining > finalPeak {
			finalPeak = remaining
		}
		if s.tieBreak {
			if finalPeak > s.bestPeak || (finalPeak == s.bestPeak && newCross >= s.bestCost.CrossBytes) {
				return
			}
		} else if finalPeak >= s.bestPeak {
			return
		}
		leaf := sched.NewSchedule(len(sc.stage), s.numStages)
		for v := range sc.stage {
			if sc.ideal.Has(v) {
				leaf.Stage[v] = sc.stage[v]
			} else {
				leaf.Stage[v] = s.numStages - 1
			}
		}
		cost := leaf.Evaluate(s.g)
		if !s.tieBreak || cost.Less(s.bestCost) {
			s.bestCost = cost
			s.bestPeak = cost.PeakParamBytes
			s.best = leaf
		}
		return
	}

	// Memo key: raw ideal words plus the stage index, probed through the
	// compiler's no-copy m[string(buf)] fast path. The buffer is only
	// materialized into a string on insert.
	sc.keyBuf = sc.ideal.AppendKey(sc.keyBuf[:0])
	sc.keyBuf = append(sc.keyBuf, byte(k), byte(k>>8))
	if s.tieBreak {
		// Pareto memo: a previous visit dominating on both peak and cross
		// has already explored every completion at least as well.
		front := sc.pareto[string(sc.keyBuf)]
		for _, p := range front {
			if p[0] <= newPeak && p[1] <= newCross {
				return
			}
		}
		kept := front[:0]
		for _, p := range front {
			if !(newPeak <= p[0] && newCross <= p[1]) {
				kept = append(kept, p)
			}
		}
		sc.pareto[string(sc.keyBuf)] = append(kept, [2]int64{newPeak, newCross})
	} else {
		// Memo cut: if this (ideal, stage) was reached before with a peak
		// no worse, the earlier visit explored a superset of completions.
		if prev, ok := sc.memo[string(sc.keyBuf)]; ok && prev <= newPeak {
			return
		}
		sc.memo[string(sc.keyBuf)] = newPeak
	}

	sc.excl[k+1].Reset()
	if s.children {
		sc.closed[k+1].CopyFrom(sc.ideal)
	}
	s.extend(k+1, newPeak, 0, placed, len(sc.placed), newCross)
}

// BruteForce exhaustively enumerates all monotone stage assignments; for
// test-scale graphs only (cost O(numStages^|V|) shrunk by monotonicity).
func BruteForce(g *graph.Graph, numStages int) Result {
	start := time.Now()
	n := g.NumNodes()
	topo := g.Topo()
	stage := make([]int, n)
	best := sched.NewSchedule(n, numStages)
	bestCost := sched.Cost{PeakParamBytes: 1 << 62, CrossBytes: 1 << 62}
	var states int64

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			states++
			s := sched.Schedule{NumStages: numStages, Stage: stage}
			cost := s.Evaluate(g)
			if cost.Less(bestCost) {
				bestCost = cost
				copy(best.Stage, stage)
			}
			return
		}
		v := topo[i]
		lo := 0
		for _, p := range g.Pred(v) {
			if stage[p] > lo {
				lo = stage[p]
			}
		}
		for st := lo; st < numStages; st++ {
			stage[v] = st
			rec(i + 1)
		}
	}
	rec(0)
	return Result{Schedule: best, Cost: bestCost, Optimal: true, States: states, Elapsed: time.Since(start)}
}
