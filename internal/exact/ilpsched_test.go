package exact

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"respect/internal/ilp"
)

func TestILPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 8)
		for _, ns := range []int{2, 3} {
			bf := BruteForce(g, ns)
			res, err := SolveILP(g, ns, ilp.Options{Timeout: 30 * time.Second})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if !res.Optimal {
				t.Logf("seed %d: MILP not optimal", seed)
				return false
			}
			if res.Cost.PeakParamBytes != bf.Cost.PeakParamBytes {
				t.Logf("seed %d ns %d: ILP %v != brute %v", seed, ns, res.Cost, bf.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestILPMatchesCombinatorialSolver(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 12)
		res, err := SolveILP(g, 3, ilp.Options{Timeout: 30 * time.Second})
		if err != nil || !res.Optimal {
			return false
		}
		comb := Solve(g, 3, Options{})
		return comb.Optimal && comb.Cost.PeakParamBytes == res.Cost.PeakParamBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestILPObjectiveMatchesScaledPeak(t *testing.T) {
	g := randomDAG(5, 10)
	res, err := SolveILP(g, 2, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.Cost.PeakParamBytes) * ilpScale(g)
	if math.Abs(res.MILP.Objective-want) > 1e-6 {
		t.Fatalf("MILP objective %v, schedule peak %v (scaled)", res.MILP.Objective, want)
	}
}

func TestBuildILPShape(t *testing.T) {
	g := randomDAG(7, 9)
	ns := 3
	p := BuildILP(g, ns)
	n := g.NumNodes()
	wantVars := n*ns + 1
	if p.LP.NumVars != wantVars {
		t.Fatalf("vars = %d, want %d", p.LP.NumVars, wantVars)
	}
	wantRows := n + g.NumEdges() + ns
	if len(p.LP.Constraints) != wantRows {
		t.Fatalf("rows = %d, want %d", len(p.LP.Constraints), wantRows)
	}
	ints := 0
	for _, b := range p.Integer {
		if b {
			ints++
		}
	}
	if ints != n*ns {
		t.Fatalf("integer vars = %d, want %d", ints, n*ns)
	}
}

func TestILPScheduleValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 10)
		res, err := SolveILP(g, 2, ilp.Options{Timeout: 20 * time.Second})
		if err != nil {
			return false
		}
		return res.Schedule.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
