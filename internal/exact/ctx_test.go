package exact

import (
	"context"
	"testing"
	"time"

	"respect/internal/ilp"
	"respect/internal/models"
)

func TestSolveCtxCancellation(t *testing.T) {
	g := models.MustLoad("InceptionResNetv2")
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	// TieBreakCross makes the search long enough that only cancellation can
	// end it this fast.
	res := SolveCtx(ctx, g, 6, Options{TieBreakCross: true})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation ignored: solve ran %v", elapsed)
	}
	if res.Optimal {
		t.Fatal("a cancelled solve must not claim optimality")
	}
	// The incumbent must still be a valid deployable-grade schedule.
	if err := res.Schedule.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCtxDeadlineIntersectsTimeout(t *testing.T) {
	g := models.MustLoad("InceptionResNetv2")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	// Options.Timeout is far looser than the ctx deadline; the ctx must win.
	res := SolveCtx(ctx, g, 6, Options{Timeout: time.Hour, TieBreakCross: true})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctx deadline ignored: solve ran %v", elapsed)
	}
	if err := res.Schedule.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSolveILPCtxCancellation(t *testing.T) {
	g := models.MustLoad("ResNet152")
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := SolveILPCtx(ctx, g, 6, ilp.Options{})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation ignored: MILP ran %v", elapsed)
	}
	// Either an incumbent surfaced in time (nil error) or the cut-off is
	// reported; both are acceptable — blocking is not.
	_ = err
}
