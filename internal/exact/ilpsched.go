package exact

import (
	"context"
	"fmt"
	"math"

	"respect/internal/graph"
	"respect/internal/ilp"
	"respect/internal/lp"
	"respect/internal/sched"
)

// ilpScale normalizes parameter bytes by the largest per-node footprint so
// the tableau's memory coefficients are O(1) — scale-free conditioning
// keeps one-byte objective differences far above the simplex tolerance.
func ilpScale(g *graph.Graph) float64 {
	var max int64 = 1
	for v := 0; v < g.NumNodes(); v++ {
		if p := g.Node(v).ParamBytes; p > max {
			max = p
		}
	}
	return 1 / float64(max)
}

// ILPResult pairs the recovered schedule with the raw MILP solution.
type ILPResult struct {
	Schedule sched.Schedule
	Cost     sched.Cost
	// Optimal reports proven optimality of the MILP.
	Optimal bool
	// MILP is the underlying solver result (nodes, elapsed, status).
	MILP ilp.Solution
}

// BuildILP constructs the paper's constraint-solving formulation of the
// pipeline scheduling problem ([21], [24]):
//
//	binaries x_{v,k}   — node v runs in stage k
//	continuous M       — peak per-stage parameter memory (MiB)
//
//	min M
//	s.t. Σ_k x_{v,k} = 1                      ∀ v      (assignment)
//	     Σ_k k·x_{u,k} ≤ Σ_k k·x_{v,k}        ∀ (u,v)  (dependency)
//	     Σ_v m_v·x_{v,k} ≤ M                  ∀ k      (memory/peak)
func BuildILP(g *graph.Graph, numStages int) *ilp.Problem {
	n := g.NumNodes()
	nv := n*numStages + 1 // + peak variable M
	mVar := n * numStages
	xv := func(v, k int) int { return v*numStages + k }

	p := &ilp.Problem{
		LP:      lp.Problem{NumVars: nv, Objective: make([]float64, nv)},
		Integer: make([]bool, nv),
	}
	p.LP.Objective[mVar] = 1
	for v := 0; v < n; v++ {
		for k := 0; k < numStages; k++ {
			p.Integer[xv(v, k)] = true
		}
	}

	row := func() []float64 { return make([]float64, nv) }

	// Assignment: each node in exactly one stage.
	for v := 0; v < n; v++ {
		r := row()
		for k := 0; k < numStages; k++ {
			r[xv(v, k)] = 1
		}
		p.LP.Constraints = append(p.LP.Constraints, lp.Constraint{Coeffs: r, Sense: lp.EQ, RHS: 1})
	}

	// Dependency: stage(u) <= stage(v) for every edge.
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			r := row()
			for k := 0; k < numStages; k++ {
				r[xv(u, k)] += float64(k)
				r[xv(v, k)] -= float64(k)
			}
			p.LP.Constraints = append(p.LP.Constraints, lp.Constraint{Coeffs: r, Sense: lp.LE, RHS: 0})
		}
	}

	// Memory: per-stage parameter load below the peak variable.
	scale := ilpScale(g)
	for k := 0; k < numStages; k++ {
		r := row()
		for v := 0; v < n; v++ {
			r[xv(v, k)] = float64(g.Node(v).ParamBytes) * scale
		}
		r[mVar] = -1
		p.LP.Constraints = append(p.LP.Constraints, lp.Constraint{Coeffs: r, Sense: lp.LE, RHS: 0})
	}

	// Explicit x <= 1 rows are omitted: the assignment equalities with
	// x >= 0 already imply them, and dropping n·numStages rows keeps the
	// dense tableau tractable at model scale.
	return p
}

// SolveILP formulates and solves the scheduling MILP, recovering the stage
// assignment from the binaries. This is the paper's exact baseline path;
// the combinatorial Solve is orders of magnitude faster and is used to
// cross-validate it in tests.
func SolveILP(g *graph.Graph, numStages int, opts ilp.Options) (ILPResult, error) {
	return SolveILPCtx(context.Background(), g, numStages, opts)
}

// SolveILPCtx is SolveILP under a context; the MILP search stops at the
// earlier of the context deadline and opts.Timeout, and honors explicit
// cancellation between (and within) LP relaxations.
func SolveILPCtx(ctx context.Context, g *graph.Graph, numStages int, opts ilp.Options) (ILPResult, error) {
	p := BuildILP(g, numStages)
	sol, err := ilp.SolveCtx(ctx, p, opts)
	if err != nil {
		return ILPResult{}, err
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return ILPResult{MILP: sol}, fmt.Errorf("exact: MILP returned no schedule (status %d)", sol.Status)
	}
	n := g.NumNodes()
	s := sched.NewSchedule(n, numStages)
	for v := 0; v < n; v++ {
		best, bestVal := 0, math.Inf(-1)
		for k := 0; k < numStages; k++ {
			if x := sol.X[v*numStages+k]; x > bestVal {
				bestVal = x
				best = k
			}
		}
		s.Stage[v] = best
	}
	if err := s.Validate(g); err != nil {
		return ILPResult{MILP: sol}, fmt.Errorf("exact: MILP schedule invalid: %w", err)
	}
	return ILPResult{
		Schedule: s,
		Cost:     s.Evaluate(g),
		Optimal:  sol.Status == ilp.Optimal,
		MILP:     sol,
	}, nil
}
