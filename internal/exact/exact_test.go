package exact

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"respect/internal/graph"
	"respect/internal/heur"
	"respect/internal/models"
	"respect/internal/sched"
)

func randomDAG(seed int64, maxN int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	g := graph.New("rand")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{ParamBytes: int64(rng.Intn(100)), OutBytes: 1 + int64(rng.Intn(50))})
	}
	for v := 1; v < n; v++ {
		for _, u := range rng.Perm(v)[:1+rng.Intn(minInt(v, 2))] {
			g.AddEdge(u, v)
		}
	}
	return g.MustBuild()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSolveMatchesBruteForcePeak(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 10)
		for _, ns := range []int{2, 3} {
			bf := BruteForce(g, ns)
			ex := Solve(g, ns, Options{})
			if !ex.Optimal {
				t.Logf("seed %d: solver truncated without budget", seed)
				return false
			}
			if ex.Cost.PeakParamBytes != bf.Cost.PeakParamBytes {
				t.Logf("seed %d ns %d: exact %v != brute %v", seed, ns, ex.Cost, bf.Cost)
				return false
			}
			if err := ex.Schedule.Validate(g); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNeverWorseThanHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 25)
		for _, ns := range []int{2, 4} {
			ex := Solve(g, ns, Options{})
			if !ex.Optimal {
				return false
			}
			if ex.Cost.PeakParamBytes > heur.GreedyBalanced(g, ns).Evaluate(g).PeakParamBytes {
				return false
			}
			if ex.Cost.PeakParamBytes > heur.DPBudget(g, ns).Evaluate(g).PeakParamBytes {
				return false
			}
			if ex.Cost.PeakParamBytes > heur.ListSchedule(g, ns).Evaluate(g).PeakParamBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBeatsSingleOrderDPWhenBranchy(t *testing.T) {
	// Two parallel heavy branches: the fixed topo order interleaves
	// suboptimally for some weights; the exact solver must find the true
	// optimum. Construct: source -> (a:90, b:10) -> sink, 2 stages.
	g := graph.New("branchy")
	src := g.AddNode(graph.Node{})
	a1 := g.AddNode(graph.Node{ParamBytes: 60})
	a2 := g.AddNode(graph.Node{ParamBytes: 30})
	b1 := g.AddNode(graph.Node{ParamBytes: 50})
	b2 := g.AddNode(graph.Node{ParamBytes: 40})
	sink := g.AddNode(graph.Node{})
	g.AddEdge(src, a1)
	g.AddEdge(a1, a2)
	g.AddEdge(src, b1)
	g.AddEdge(b1, b2)
	g.AddEdge(a2, sink)
	g.AddEdge(b2, sink)
	g.MustBuild()

	ex := Solve(g, 2, Options{})
	if !ex.Optimal {
		t.Fatal("truncated")
	}
	// Optimal split: {a1, b1 side mix} peak 90: e.g. stage0 = {src,a1,a2}
	// (90), stage1 = {b1,b2,sink} (90). Brute force confirms.
	bf := BruteForce(g, 2)
	if ex.Cost.PeakParamBytes != bf.Cost.PeakParamBytes {
		t.Fatalf("exact %v != brute %v", ex.Cost, bf.Cost)
	}
	if ex.Cost.PeakParamBytes != 90 {
		t.Fatalf("peak = %d, want 90", ex.Cost.PeakParamBytes)
	}
}

func TestSolveSingleStage(t *testing.T) {
	g := randomDAG(1, 15)
	r := Solve(g, 1, Options{})
	if !r.Optimal || r.Cost.PeakParamBytes != g.TotalParamBytes() {
		t.Fatalf("single-stage: %+v", r.Cost)
	}
}

func TestSolveTimeoutTruncates(t *testing.T) {
	g := models.MustLoad("ResNet50")
	r := Solve(g, 6, Options{Timeout: time.Millisecond, MaxStates: 0})
	if err := r.Schedule.Validate(g); err != nil {
		t.Fatalf("truncated result invalid: %v", err)
	}
	// With a 1ms budget on a 177-node graph the search cannot finish...
	// unless pruning is extraordinarily effective; either way the result
	// must be at least as good as the DP seed.
	seed := heur.DPBudget(g, 6).Evaluate(g)
	if seed.PeakParamBytes < r.Cost.PeakParamBytes {
		t.Fatalf("result worse than its own seed: %v vs %v", r.Cost, seed)
	}
}

func TestSolveMaxStatesTruncates(t *testing.T) {
	g := models.MustLoad("Xception")
	r := Solve(g, 4, Options{MaxStates: 100})
	if r.Optimal && r.States > 100 {
		t.Fatalf("claimed optimal beyond state budget: %+v", r)
	}
	if err := r.Schedule.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSolveOnRealModels(t *testing.T) {
	if testing.Short() {
		t.Skip("model-scale exact solves in short mode")
	}
	for _, name := range []string{"Xception", "ResNet50"} {
		g := models.MustLoad(name)
		for _, ns := range []int{4, 5, 6} {
			r := Solve(g, ns, Options{Timeout: 20 * time.Second, MaxStates: 20_000_000})
			if err := r.Schedule.Validate(g); err != nil {
				t.Errorf("%s/%d: %v", name, ns, err)
			}
			dp := heur.DPBudget(g, ns).Evaluate(g)
			if r.Cost.PeakParamBytes > dp.PeakParamBytes {
				t.Errorf("%s/%d: exact %v worse than DP %v", name, ns, r.Cost, dp)
			}
			t.Logf("%s/%d: peak %.3f MiB optimal=%v states=%d in %v",
				name, ns, float64(r.Cost.PeakParamBytes)/(1<<20), r.Optimal, r.States, r.Elapsed)
		}
	}
}

func TestBruteForceTieBreaksOnCross(t *testing.T) {
	// Chain of two equal-weight nodes with a huge tensor between them:
	// both cuts give peak 10; the cross tie-break must pick the cut
	// outside the fat edge.
	g := graph.New("tie")
	a := g.AddNode(graph.Node{ParamBytes: 10, OutBytes: 1000})
	bn := g.AddNode(graph.Node{ParamBytes: 10, OutBytes: 1})
	c := g.AddNode(graph.Node{ParamBytes: 10, OutBytes: 1})
	g.AddEdge(a, bn)
	g.AddEdge(bn, c)
	g.MustBuild()
	// Cutting after a or after b both give peak 20; only the cut after b
	// avoids shipping a's 1000-byte tensor across the boundary.
	r := BruteForce(g, 2)
	if r.Cost.PeakParamBytes != 20 {
		t.Fatalf("peak = %d", r.Cost.PeakParamBytes)
	}
	if r.Cost.CrossBytes != 1 {
		t.Fatalf("cross = %d, want 1 (cut after b)", r.Cost.CrossBytes)
	}
}

func TestTieBreakCrossMatchesBruteForceLex(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 9)
		for _, ns := range []int{2, 3} {
			bf := BruteForce(g, ns)
			ex := Solve(g, ns, Options{TieBreakCross: true})
			if !ex.Optimal {
				return false
			}
			if ex.Cost != bf.Cost {
				t.Logf("seed %d ns %d: tiebreak %+v != brute %+v", seed, ns, ex.Cost, bf.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTieBreakCrossNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 16)
		fast := Solve(g, 3, Options{})
		lex := Solve(g, 3, Options{TieBreakCross: true, Timeout: 20 * time.Second})
		if !fast.Optimal || !lex.Optimal {
			return false
		}
		if lex.Cost.PeakParamBytes != fast.Cost.PeakParamBytes {
			return false
		}
		return lex.Cost.CrossBytes <= fast.Cost.CrossBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceChildrenRule enumerates monotone schedules satisfying the
// children-same-stage rule (reference for the ChildrenRule solver mode).
func bruteForceChildrenRule(g *graph.Graph, numStages int) (sched.Schedule, sched.Cost, bool) {
	n := g.NumNodes()
	topo := g.Topo()
	stage := make([]int, n)
	best := sched.NewSchedule(n, numStages)
	bestCost := sched.Cost{PeakParamBytes: 1 << 62, CrossBytes: 1 << 62}
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			s := sched.Schedule{NumStages: numStages, Stage: stage}
			if !s.SameStageChildrenOK(g) {
				return
			}
			if cost := s.Evaluate(g); cost.Less(bestCost) {
				bestCost = cost
				copy(best.Stage, stage)
				found = true
			}
			return
		}
		v := topo[i]
		lo := 0
		for _, p := range g.Pred(v) {
			if stage[p] > lo {
				lo = stage[p]
			}
		}
		for st := lo; st < numStages; st++ {
			stage[v] = st
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestCost, found
}

func TestChildrenRuleMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 9)
		for _, ns := range []int{2, 3} {
			_, want, ok := bruteForceChildrenRule(g, ns)
			if !ok {
				continue
			}
			res := Solve(g, ns, Options{ChildrenRule: true})
			if !res.Optimal {
				return false
			}
			if !res.Schedule.SameStageChildrenOK(g) {
				t.Logf("seed %d: children rule violated", seed)
				return false
			}
			if res.Cost.PeakParamBytes != want.PeakParamBytes {
				t.Logf("seed %d ns %d: solver %v != brute %v", seed, ns, res.Cost, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenRuleAtLeastMonotoneOptimum(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 16)
		free := Solve(g, 3, Options{})
		constrained := Solve(g, 3, Options{ChildrenRule: true})
		if !free.Optimal || !constrained.Optimal {
			return false
		}
		return constrained.Cost.PeakParamBytes >= free.Cost.PeakParamBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenRuleOnRealModels(t *testing.T) {
	for _, name := range []string{"Xception", "ResNet50", "DenseNet121"} {
		g := models.MustLoad(name)
		for _, ns := range []int{4, 6} {
			res := Solve(g, ns, Options{ChildrenRule: true, Timeout: 30 * time.Second, MaxStates: 50_000_000})
			if !res.Schedule.SameStageChildrenOK(g) {
				t.Fatalf("%s/%d: children rule violated", name, ns)
			}
			free := Solve(g, ns, Options{})
			if res.Optimal && res.Cost.PeakParamBytes < free.Cost.PeakParamBytes {
				t.Fatalf("%s/%d: constrained beat unconstrained", name, ns)
			}
			t.Logf("%s/%d: deployable-optimal %.3f MiB vs monotone %.3f MiB (optimal=%v, %v)",
				name, ns, float64(res.Cost.PeakParamBytes)/(1<<20),
				float64(free.Cost.PeakParamBytes)/(1<<20), res.Optimal, res.Elapsed)
		}
	}
}
