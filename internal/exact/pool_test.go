package exact

import (
	"sync"
	"testing"

	"respect/internal/models"
)

// poolTestCases mixes graph sizes and option sets so consecutive solves
// acquire arenas of mismatched shape — the scenario a stale scratch would
// corrupt. MaxStates bounds (never timeouts) keep every run deterministic.
func poolTestCases() []struct {
	model string
	k     int
	opts  Options
} {
	return []struct {
		model string
		k     int
		opts  Options
	}{
		{"Xception", 4, Options{MaxStates: 500_000}},
		{"ResNet50", 3, Options{MaxStates: 300_000}},
		{"Xception", 6, Options{MaxStates: 500_000, ChildrenRule: true}},
		{"Inception_v3", 4, Options{MaxStates: 200_000, ChildrenRule: true}},
		{"MobileNet", 2, Options{MaxStates: 100_000, TieBreakCross: true}},
		{"DenseNet121", 5, Options{MaxStates: 200_000}},
	}
}

func assertSameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost diverged across pooled solves: %v vs %v", label, got.Cost, want.Cost)
	}
	if got.States != want.States {
		t.Fatalf("%s: explored states diverged across pooled solves: %d vs %d", label, got.States, want.States)
	}
	if got.Optimal != want.Optimal {
		t.Fatalf("%s: optimality flag diverged: %v vs %v", label, got.Optimal, want.Optimal)
	}
	for v := range want.Schedule.Stage {
		if got.Schedule.Stage[v] != want.Schedule.Stage[v] {
			t.Fatalf("%s: node %d staged %d vs %d across pooled solves",
				label, v, got.Schedule.Stage[v], want.Schedule.Stage[v])
		}
	}
}

// TestPooledSolveDeterministic asserts the scratch arena is fully reset
// between solves: re-solving the same instance after the pool has served
// other instances (different sizes, different option sets) must reproduce
// the schedule, cost, AND the exact explored-state count of the first
// solve. Any bit of leaked state — a stale exclusion bit, a memo entry
// from another graph, an unreset sibling mask — shifts States.
func TestPooledSolveDeterministic(t *testing.T) {
	cases := poolTestCases()
	first := make([]Result, len(cases))
	for i, c := range cases {
		g := models.MustLoad(c.model)
		first[i] = Solve(g, c.k, c.opts)
		if err := first[i].Schedule.Validate(g); err != nil {
			t.Fatalf("%s k=%d: invalid schedule: %v", c.model, c.k, err)
		}
	}
	// Interleave all cases twice more; each re-solve reuses arenas the
	// other cases dirtied.
	for round := 0; round < 2; round++ {
		for i, c := range cases {
			g := models.MustLoad(c.model)
			got := Solve(g, c.k, c.opts)
			assertSameResult(t, c.model, first[i], got)
		}
	}
}

// TestPooledSolveConcurrentReset hammers the pool from many goroutines
// under -race: concurrent solves must neither share live scratch state
// (the race detector catches that) nor perturb each other's results.
func TestPooledSolveConcurrentReset(t *testing.T) {
	cases := poolTestCases()
	expect := make([]Result, len(cases))
	for i, c := range cases {
		expect[i] = Solve(models.MustLoad(c.model), c.k, c.opts)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (w + rep) % len(cases)
				c := cases[i]
				got := Solve(models.MustLoad(c.model), c.k, c.opts)
				if got.Cost != expect[i].Cost || got.States != expect[i].States {
					errs <- c.model
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for m := range errs {
		t.Fatalf("concurrent pooled solve diverged on %s", m)
	}
}

// TestChildrenRuleBitsetPathMatchesScan pins the word-wise sibling checks
// to a direct re-derivation: every children-rule schedule the solver
// returns must satisfy the constraint, and its peak must match an
// independent evaluation.
func TestChildrenRuleBitsetPathMatchesScan(t *testing.T) {
	for _, name := range []string{"Xception", "Inception_v3", "InceptionResNetv2"} {
		g := models.MustLoad(name)
		res := Solve(g, 4, Options{MaxStates: 2_000_000, ChildrenRule: true})
		if err := res.Schedule.Validate(g); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if !res.Schedule.SameStageChildrenOK(g) {
			t.Fatalf("%s: children rule violated by children-rule solve", name)
		}
		if got := res.Schedule.Evaluate(g); got != res.Cost {
			t.Fatalf("%s: reported cost %v, re-evaluated %v", name, res.Cost, got)
		}
		// The hardware-constrained optimum can never beat the unconstrained
		// monotone optimum.
		free := Solve(g, 4, Options{MaxStates: 2_000_000})
		if res.Cost.PeakParamBytes < free.Cost.PeakParamBytes && free.Optimal {
			t.Fatalf("%s: children-rule peak %d below unconstrained optimum %d",
				name, res.Cost.PeakParamBytes, free.Cost.PeakParamBytes)
		}
	}
}

// differentialSchedule re-checks that pooled exact solves agree with an
// evaluation from scratch structures over the whole zoo — the solver
// outputs must be bit-identical before/after the arena rewrite, and this
// pins the invariants any regression would break: validity, cost
// consistency, and (when optimal) peak <= every heuristic's peak.
func TestZooDifferentialConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo sweep is long under -race")
	}
	for _, name := range models.Names() {
		g := models.MustLoad(name)
		res := Solve(g, 4, Options{MaxStates: 300_000})
		if err := res.Schedule.Validate(g); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
		if got := res.Schedule.Evaluate(g); got != res.Cost {
			t.Fatalf("%s: cost mismatch: %v vs %v", name, got, res.Cost)
		}
		again := Solve(g, 4, Options{MaxStates: 300_000})
		assertSameResult(t, name, res, again)
	}
}
